#include "apps/matrix_product.h"

#include "mcs/factory.h"
#include "simnet/check.h"
#include "simnet/rng.h"

namespace pardsm::apps {

Matrix multiply_reference(const Matrix& a, const Matrix& b) {
  const std::size_t n = a.size();
  Matrix c(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) {
        c[i][j] += a[i][k] * b[k][j];
      }
    }
  }
  return c;
}

Matrix random_matrix(std::size_t n, std::int64_t bound, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, std::vector<std::int64_t>(n, 0));
  for (auto& row : m) {
    for (auto& cell : row) cell = rng.range(-bound, bound);
  }
  return m;
}

namespace {

/// Variable layout for an n×n multiply with P processes:
///   a(i,j) = i*n + j;   b(i,j) = n² + i*n + j;   c(i,j) = 2n² + i*n + j;
///   f_p    = 3n² + p.
struct Layout {
  std::size_t n = 0;
  std::size_t procs = 0;

  [[nodiscard]] VarId a(std::size_t i, std::size_t j) const {
    return static_cast<VarId>(i * n + j);
  }
  [[nodiscard]] VarId b(std::size_t i, std::size_t j) const {
    return static_cast<VarId>(n * n + i * n + j);
  }
  [[nodiscard]] VarId c(std::size_t i, std::size_t j) const {
    return static_cast<VarId>(2 * n * n + i * n + j);
  }
  [[nodiscard]] VarId f(std::size_t p) const {
    return static_cast<VarId>(3 * n * n + p);
  }
  [[nodiscard]] std::size_t var_count() const { return 3 * n * n + procs; }

  [[nodiscard]] std::size_t row_begin(std::size_t p) const {
    return p * n / procs;
  }
  [[nodiscard]] std::size_t row_end(std::size_t p) const {
    return (p + 1) * n / procs;
  }
  [[nodiscard]] std::size_t owner_of_row(std::size_t i) const {
    for (std::size_t p = 0; p < procs; ++p) {
      if (i >= row_begin(p) && i < row_end(p)) return p;
    }
    return procs - 1;
  }
};

graph::Distribution make_distribution(const Layout& lay) {
  graph::Distribution d;
  d.name = "matmul-n" + std::to_string(lay.n) + "-p" +
           std::to_string(lay.procs);
  d.var_count = lay.var_count();
  d.per_process.resize(lay.procs);
  for (std::size_t p = 0; p < lay.procs; ++p) {
    auto& xs = d.per_process[p];
    // Own A and C rows.
    for (std::size_t i = lay.row_begin(p); i < lay.row_end(p); ++i) {
      for (std::size_t j = 0; j < lay.n; ++j) {
        xs.push_back(lay.a(i, j));
        xs.push_back(lay.c(i, j));
      }
    }
    // All of B, all flags.
    for (std::size_t i = 0; i < lay.n; ++i) {
      for (std::size_t j = 0; j < lay.n; ++j) {
        xs.push_back(lay.b(i, j));
      }
    }
    for (std::size_t q = 0; q < lay.procs; ++q) {
      xs.push_back(lay.f(q));
    }
    std::sort(xs.begin(), xs.end());
  }
  return d;
}

/// Per-process worker: publish inputs, barrier on flags, compute C rows.
class Worker {
 public:
  Worker(std::size_t self, const Layout& lay, const Matrix& a,
         const Matrix& b, mcs::McsProcess& mcs, Simulator& sim,
         Duration poll)
      : self_(self), lay_(lay), a_(a), b_(b), mcs_(mcs), sim_(sim),
        poll_(poll) {}

  void start() { publish_inputs(); }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const Matrix& result_rows() const { return c_rows_; }

 private:
  void publish_inputs() {
    // Write own A rows and own B rows (cells in a fixed order), then raise
    // the flag.  PRAM's per-writer pipelining makes the flag a barrier.
    std::vector<std::pair<VarId, Value>> writes;
    for (std::size_t i = lay_.row_begin(self_); i < lay_.row_end(self_);
         ++i) {
      for (std::size_t j = 0; j < lay_.n; ++j) {
        writes.emplace_back(lay_.a(i, j), a_[i][j]);
        writes.emplace_back(lay_.b(i, j), b_[i][j]);
      }
    }
    write_chain(std::move(writes), 0);
  }

  void write_chain(std::vector<std::pair<VarId, Value>> writes,
                   std::size_t idx) {
    if (idx == writes.size()) {
      mcs_.write(lay_.f(self_), 1, [this] { barrier(0); });
      return;
    }
    const auto [x, v] = writes[idx];
    mcs_.write(x, v, [this, writes = std::move(writes), idx]() mutable {
      write_chain(std::move(writes), idx + 1);
    });
  }

  void barrier(std::size_t q) {
    if (q == lay_.procs) {
      compute();
      return;
    }
    mcs_.read(lay_.f(q), [this, q](Value flag) {
      if (flag == 1) {
        barrier(q + 1);
      } else {
        sim_.schedule_at(sim_.now() + poll_, [this, q] { barrier(q); });
      }
    });
  }

  void compute() {
    // Read all of B from shared memory (cells owned by other processes
    // were replicated here by their writers).
    b_read_.assign(lay_.n, std::vector<std::int64_t>(lay_.n, 0));
    read_b(0, 0);
  }

  void read_b(std::size_t i, std::size_t j) {
    if (i == lay_.n) {
      emit();
      return;
    }
    mcs_.read(lay_.b(i, j), [this, i, j](Value v) {
      PARDSM_CHECK(v != kBottom, "B cell missing after flag barrier");
      b_read_[i][j] = v;
      const std::size_t nj = (j + 1 == lay_.n) ? 0 : j + 1;
      const std::size_t ni = (j + 1 == lay_.n) ? i + 1 : i;
      read_b(ni, nj);
    });
  }

  void emit() {
    c_rows_.clear();
    std::vector<std::pair<VarId, Value>> writes;
    for (std::size_t i = lay_.row_begin(self_); i < lay_.row_end(self_);
         ++i) {
      std::vector<std::int64_t> row(lay_.n, 0);
      for (std::size_t k = 0; k < lay_.n; ++k) {
        for (std::size_t j = 0; j < lay_.n; ++j) {
          row[j] += a_[i][k] * b_read_[k][j];
        }
      }
      for (std::size_t j = 0; j < lay_.n; ++j) {
        writes.emplace_back(lay_.c(i, j), row[j]);
      }
      c_rows_.push_back(std::move(row));
    }
    emit_chain(std::move(writes), 0);
  }

  void emit_chain(std::vector<std::pair<VarId, Value>> writes,
                  std::size_t idx) {
    if (idx == writes.size()) {
      done_ = true;
      return;
    }
    const auto [x, v] = writes[idx];
    mcs_.write(x, v, [this, writes = std::move(writes), idx]() mutable {
      emit_chain(std::move(writes), idx + 1);
    });
  }

  std::size_t self_;
  Layout lay_;
  const Matrix& a_;
  const Matrix& b_;
  mcs::McsProcess& mcs_;
  Simulator& sim_;
  Duration poll_;
  Matrix b_read_;
  Matrix c_rows_;
  bool done_ = false;
};

}  // namespace

MatrixProductResult run_matrix_product(const Matrix& a, const Matrix& b,
                                       std::size_t processes,
                                       const MatrixProductOptions& options) {
  const std::size_t n = a.size();
  PARDSM_CHECK(n > 0 && b.size() == n, "square matrices of equal size");
  PARDSM_CHECK(processes >= 1 && processes <= n,
               "process count must be in [1, n]");
  Layout lay{n, processes};
  const auto dist = make_distribution(lay);

  SimOptions sim_options;
  sim_options.seed = options.sim_seed;
  sim_options.latency = std::make_unique<UniformLatency>(millis(1), millis(4));
  Simulator sim(std::move(sim_options));

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs = mcs::make_processes(options.protocol, dist, recorder);
  for (auto& proc : procs) {
    sim.add_endpoint(proc.get());
    proc->attach(sim);
  }

  std::vector<std::unique_ptr<Worker>> workers;
  for (std::size_t p = 0; p < processes; ++p) {
    workers.push_back(std::make_unique<Worker>(p, lay, a, b, *procs[p], sim,
                                               options.poll));
  }
  for (auto& w : workers) {
    sim.schedule_at(kTimeZero, [worker = w.get()] { worker->start(); });
  }
  sim.run();

  MatrixProductResult result;
  result.product.assign(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t p = 0; p < processes; ++p) {
    PARDSM_CHECK(workers[p]->done(), "matrix worker did not finish");
    const auto& rows = workers[p]->result_rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      result.product[lay.row_begin(p) + r] = rows[r];
    }
  }
  result.matches_reference = result.product == multiply_reference(a, b);
  result.total_traffic = sim.stats().total();
  result.finished_at = sim.now();
  return result;
}

}  // namespace pardsm::apps
