// Vector clock unit tests.

#include <gtest/gtest.h>

#include "mcs/vector_clock.h"

namespace pardsm::mcs {
namespace {

TEST(VectorClock, StartsAtZero) {
  VectorClock vc(4);
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(vc.at(p), 0);
  EXPECT_EQ(vc.wire_bytes(), 32u);
}

TEST(VectorClock, IncrementAndSet) {
  VectorClock vc(3);
  vc.increment(1);
  vc.increment(1);
  vc.set(2, 7);
  EXPECT_EQ(vc.at(0), 0);
  EXPECT_EQ(vc.at(1), 2);
  EXPECT_EQ(vc.at(2), 7);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a(3), b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 4);
  b.set(2, 2);
  a.merge(b);
  EXPECT_EQ(a.at(0), 5);
  EXPECT_EQ(a.at(1), 4);
  EXPECT_EQ(a.at(2), 2);
}

TEST(VectorClock, LeqIsComponentwise) {
  VectorClock a(2), b(2);
  a.set(0, 1);
  b.set(0, 1);
  b.set(1, 3);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClock, ReadyFromRequiresExactNextFromSender) {
  VectorClock local(3);
  // Sender p1's first message: msg[1] == 1, others <= local.
  VectorClock msg(3);
  msg.set(1, 1);
  EXPECT_TRUE(local.ready_from(msg, 1));
  // Skipping a message from the sender is not ready.
  VectorClock msg2(3);
  msg2.set(1, 2);
  EXPECT_FALSE(local.ready_from(msg2, 1));
  // A dependency on an undelivered third-party write is not ready.
  VectorClock msg3(3);
  msg3.set(1, 1);
  msg3.set(2, 1);
  EXPECT_FALSE(local.ready_from(msg3, 1));
  // After catching up on p2 it becomes ready.
  local.set(2, 1);
  EXPECT_TRUE(local.ready_from(msg3, 1));
}

TEST(VectorClock, EqualityAndToString) {
  VectorClock a(2), b(2);
  EXPECT_EQ(a, b);
  a.increment(0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string(), "[1,0]");
}

}  // namespace
}  // namespace pardsm::mcs
