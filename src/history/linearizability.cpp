#include "history/linearizability.h"

namespace pardsm::hist {

LinearizabilityResult check_linearizable(const History& h,
                                         const SearchOptions& options) {
  LinearizabilityResult result;
  result.linearizable = true;
  result.witnesses.assign(h.var_count(), {});

  for (std::size_t xv = 0; xv < h.var_count(); ++xv) {
    const auto x = static_cast<VarId>(xv);
    std::vector<OpIndex> subset;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h.op(static_cast<OpIndex>(i)).var == x) {
        subset.push_back(static_cast<OpIndex>(i));
      }
    }
    if (subset.empty()) continue;

    // Real-time precedence: a before b iff a responded before b was
    // invoked.  Unset intervals (0,0) never strictly precede anything of
    // positive start time; two unset intervals are mutually concurrent.
    Relation rt(h.size());
    for (OpIndex a : subset) {
      const Operation& oa = h.op(a);
      const bool a_has_interval =
          oa.responded > oa.invoked || oa.invoked.us > 0;
      if (!a_has_interval) continue;
      for (OpIndex b : subset) {
        if (a == b) continue;
        const Operation& ob = h.op(b);
        const bool b_has_interval =
            ob.responded > ob.invoked || ob.invoked.us > 0;
        if (!b_has_interval) continue;
        if (oa.responded < ob.invoked) {
          rt.add(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
        }
      }
    }

    auto sr = find_serialization(h, subset, rt, options);
    if (sr.verdict == SearchVerdict::kUnknown) result.definitive = false;
    if (sr.verdict != SearchVerdict::kSerializable) {
      result.linearizable = false;
      return result;
    }
    result.witnesses[xv] = std::move(sr.order);
  }
  return result;
}

}  // namespace pardsm::hist
