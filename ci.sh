#!/usr/bin/env bash
# Tier-1 verify + quick bench sweep.  This is what CI runs and what a
# contributor should run before pushing:
#
#   ./ci.sh                 # build + ctest + bench_all --quick
#   SANITIZE=1 ./ci.sh      # ASan+UBSan build + ctest (no bench sweep) —
#                           # the ARQ retransmit path and crash/recovery
#                           # teardown are exactly where lifetime bugs hide
#   SANITIZE=tsan ./ci.sh   # ThreadSanitizer build + ctest — gates the
#                           # parallel engine's worker threads and the
#                           # std::thread runtime
#   SOCKETS_SMOKE=1 ./ci.sh # release build + socket-layer tests + real
#                           # multi-process pardsm_node drills over
#                           # loopback TCP, incl. a kill -9 / respawn /
#                           # resync cycle (see docs/DEPLOYMENT.md)
#   LINT=1 ./ci.sh          # static analysis: pardsm_lint over src/ (the
#                           # determinism / rng / pooled-reset / unordered /
#                           # layer-DAG contracts, docs/LINT.md), the
#                           # header self-containment build, and clang-tidy
#                           # when installed (skipped gracefully otherwise)
#   BUILD_DIR=out ./ci.sh
#   BENCH_FILTER=batching ./ci.sh   # only benches matching the regex
#
# ccache is picked up automatically when installed (CI caches its
# directory, so the sanitizer jobs stop rebuilding the world on every push).
set -euo pipefail

cd "$(dirname "$0")"
SANITIZE="${SANITIZE:-0}"
if [ "$SANITIZE" = "tsan" ]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  SANITIZE_FLAVOUR=tsan
elif [ "$SANITIZE" != "0" ]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  SANITIZE_FLAVOUR=asan
elif [ "${SOCKETS_SMOKE:-0}" != "0" ]; then
  # Own build tree: the smoke configures with benches off, which must not
  # stick in the regular build directory's CMake cache.
  BUILD_DIR="${BUILD_DIR:-build-sockets}"
  SANITIZE_FLAVOUR=
elif [ "${LINT:-0}" != "0" ]; then
  # Own build tree: lint configures tests/benches/examples off and exports
  # compile_commands.json, neither of which belongs in the regular cache.
  BUILD_DIR="${BUILD_DIR:-build-lint}"
  SANITIZE_FLAVOUR=
else
  BUILD_DIR="${BUILD_DIR:-build}"
  SANITIZE_FLAVOUR=
fi
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

CMAKE_EXTRA=()
if command -v ccache >/dev/null 2>&1; then
  CMAKE_EXTRA+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "== configure =="
if [ "$SANITIZE" != "0" ]; then
  # Benches are skipped: google-benchmark timings under a sanitizer measure
  # the sanitizer, not the engine.  The full ctest suite (golden gates,
  # property sweeps, scenario faults, the parallel differential net) runs
  # instrumented.
  cmake -B "$BUILD_DIR" -S . "-DPARDSM_SANITIZE=$SANITIZE_FLAVOUR" \
        -DPARDSM_BUILD_BENCHES=OFF "${CMAKE_EXTRA[@]}"
elif [ "${SOCKETS_SMOKE:-0}" != "0" ]; then
  # Benches are irrelevant to the deployment smoke; skipping them keeps
  # the job's build well under the minute budget.
  cmake -B "$BUILD_DIR" -S . -DPARDSM_BUILD_BENCHES=OFF "${CMAKE_EXTRA[@]}"
elif [ "${LINT:-0}" != "0" ]; then
  # Only the analyzer, the library and the header self-containment TUs are
  # needed; compile_commands.json feeds clang-tidy.
  cmake -B "$BUILD_DIR" -S . -DPARDSM_BUILD_TESTS=OFF \
        -DPARDSM_BUILD_BENCHES=OFF -DPARDSM_BUILD_EXAMPLES=OFF \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "${CMAKE_EXTRA[@]}"
else
  cmake -B "$BUILD_DIR" -S . "${CMAKE_EXTRA[@]}"
fi

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

if [ "${LINT:-0}" != "0" ]; then
  # The build above already gates header self-containment: every public
  # header compiled as its own TU inside pardsm_headers_selfcontained.
  echo "== lint: pardsm_lint over src/ =="
  "$BUILD_DIR/tools/lint/pardsm_lint" src
  "$BUILD_DIR/tools/lint/pardsm_lint" --json src > "$BUILD_DIR/lint_report.json"
  echo "report: $BUILD_DIR/lint_report.json"
  if command -v clang-tidy >/dev/null 2>&1; then
    # The portable subset of the rules (see .clang-tidy): libc rand and
    # <random>/<ctime> includes.  Headers are covered transitively via the
    # self-containment TUs' compile commands.
    echo "== lint: clang-tidy (portable rule subset) =="
    find src -name '*.cpp' -print0 | \
      xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$BUILD_DIR" --quiet
  else
    echo "== lint: clang-tidy not installed, skipping portable subset =="
  fi
  echo "== done (lint) =="
  exit 0
fi

if [ "${SOCKETS_SMOKE:-0}" != "0" ]; then
  # Deployment smoke: the socket-rooted test binaries plus real
  # multi-process drills — pardsm_node forks n OS processes that speak
  # length-prefixed TCP over loopback, so this exercises fork/exec, the
  # wire codec, heartbeat failure detection and RSYNC state transfer in a
  # way the in-process suite cannot.  Keep it under a minute: small n,
  # short scripts.  Kill drills use home-based protocols (cache-partial /
  # atomic-home / sequencer-sc) — pram's writer-only resync adoption
  # cannot refill a killed node's whole replica (docs/DEPLOYMENT.md).
  echo "== sockets smoke: in-process socket suites =="
  (cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS" \
      -R 'Sockets\.|SocketStacks')
  NODE="$BUILD_DIR/src/apps/pardsm_node"
  echo "== sockets smoke: lossless multi-process sweep =="
  for proto in pram-partial sequencer-sc; do
    "$NODE" --spawn --protocol "$proto" --nodes 3 --writes 4 --delay-us 1000
  done
  echo "== sockets smoke: chaos disconnect sweep =="
  "$NODE" --spawn --protocol atomic-home --nodes 3 --writes 4 \
      --delay-us 1000 --chaos-disconnect 0.1
  echo "== sockets smoke: kill -9 / respawn / resync drill =="
  "$NODE" --spawn --protocol cache-partial --nodes 3 --writes 5 \
      --delay-us 2000 --kill 2 --kill-after-ms 120 --respawn-after-ms 350
  echo "== done (sockets smoke) =="
  exit 0
fi

echo "== test =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

if [ "$SANITIZE" != "0" ]; then
  echo "== done (sanitized) =="
  exit 0
fi

echo "== bench (quick) =="
# A filtered sweep must not clobber the full merged document: keep the
# subset in BENCH_FILTERED.json (bench_all's own default for --filter).
BENCH_OUT=BENCH_ALL.json
BENCH_ARGS=(--quick)
if [ -n "${BENCH_FILTER:-}" ]; then
  BENCH_OUT=BENCH_FILTERED.json
  BENCH_ARGS+=(--filter "$BENCH_FILTER")
elif [ -f BENCH_BASELINE.json ]; then
  # Perf smoke against the committed baseline: fails on non-finite
  # wall_ns rows or any row wildly (>10x) slower than the baseline.
  # Filtered runs skip it — a subset diff would under-match the baseline.
  BENCH_ARGS+=(--baseline "$PWD/BENCH_BASELINE.json" --gate)
fi
BENCH_ARGS+=(--out "$BENCH_OUT")
(cd "$BUILD_DIR" && ./bench/bench_all "${BENCH_ARGS[@]}")
python3 - "$BUILD_DIR/$BENCH_OUT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = sum(len(b["results"]) for b in doc["benches"])
assert doc["schema"] == "pardsm-bench-v4" and doc["benches"], doc.keys()
for b in doc["benches"]:
    assert b["schema"] == "pardsm-bench-v4", b["bench"]
    for r in b["results"]:
        assert "max_rss_kb" in r, (b["bench"], r.get("label"))
        # v4 percentile columns: present on every row, and monotone
        # whenever the row actually captured latency (p999 > 0).
        for key in ("p50_us", "p99_us", "p999_us", "censored_ops"):
            assert key in r, (b["bench"], r.get("label"), key)
        if r["p999_us"] > 0:
            assert r["p50_us"] <= r["p99_us"] <= r["p999_us"], \
                (b["bench"], r.get("label"), r["p50_us"], r["p99_us"], r["p999_us"])
timed = [r for b in doc["benches"] for r in b["results"] if r.get("wall_ns", 0) > 0]
total_ms = sum(r["wall_ns"] for r in timed) / 1e6
rss_rows = [r for b in doc["benches"] for r in b["results"] if r["max_rss_kb"] > 0]
peak_mb = max((r["max_rss_kb"] for r in rss_rows), default=0) / 1024
import os
print(f"{os.path.basename(sys.argv[1])} ok: {len(doc['benches'])} benches, "
      f"{rows} result rows, {len(timed)} timed rows ({total_ms:.1f} ms wall), "
      f"{len(rss_rows)} RSS-sampled rows (peak {peak_mb:.0f} MB)")
EOF

echo "== done =="
