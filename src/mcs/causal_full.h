// Causal consistency with complete replication (the classical baseline).
//
// Ahamad et al. [3]-style protocol: every process replicates every
// variable; a write is applied locally (wait-free) and broadcast with the
// writer's vector clock; receivers delay updates until causally ready.
//
// Control information per update: an n-entry vector clock — and the update
// goes to *everyone*.  This is the "complete replication avoids
// scalability" strawman of the paper's introduction, measured in
// bench_control_overhead.
#pragma once

#include <deque>

#include "mcs/protocol.h"
#include "mcs/vector_clock.h"

namespace pardsm::mcs {

struct CausalUpdate;

/// One process of the full-replication causal protocol.
class CausalFullProcess final : public McsProcess {
 public:
  CausalFullProcess(ProcessId self, const graph::Distribution& dist,
                    HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override { return "causal-full"; }
  [[nodiscard]] bool wait_free() const override { return true; }

  [[nodiscard]] const VectorClock& clock() const { return vc_; }

 protected:
  /// Full replication: every peer holds every variable, so re-sync always
  /// has a source even when C(x) excludes this process.
  [[nodiscard]] ProcessId resync_source(VarId) const override {
    if (distribution().process_count() < 2) return kNoProcess;
    return id() == 0 ? 1 : 0;
  }

 private:
  void try_deliver();

  /// Pool handle cached at attach() so each write is a freelist pop.
  BodyPool<CausalUpdate>* update_pool_ = nullptr;
  VectorClock vc_;
  std::int64_t next_write_seq_ = 0;
  std::deque<Message> buffer_;
};

}  // namespace pardsm::mcs
