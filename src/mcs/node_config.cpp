#include "mcs/node_config.h"

#include <sstream>

#include "simnet/check.h"

namespace pardsm::mcs {

namespace {

/// Reject trailing garbage loudly: a typo'd line should not half-parse.
void expect_done(std::istringstream& in, const std::string& line) {
  std::string extra;
  PARDSM_CHECK(!(in >> extra), "node spec: trailing tokens on line: " + line);
}

}  // namespace

ProtocolKind parse_protocol(const std::string& name) {
  for (ProtocolKind k : all_protocols()) {
    if (name == to_string(k)) return k;
  }
  PARDSM_CHECK(false, "node spec: unknown protocol: " + name);
  return ProtocolKind::kPramPartial;  // unreachable
}

std::string serialize_node_spec(const NodeSpec& spec) {
  std::ostringstream out;
  out << "pardsm-node-v1\n";
  out << "protocol " << to_string(spec.protocol) << "\n";
  out << "name " << (spec.distribution.name.empty() ? "unnamed"
                                                    : spec.distribution.name)
      << "\n";
  out << "processes " << spec.distribution.process_count() << "\n";
  out << "vars " << spec.distribution.var_count << "\n";
  for (std::size_t p = 0; p < spec.distribution.per_process.size(); ++p) {
    out << "holds " << p;
    for (VarId x : spec.distribution.per_process[p]) out << " " << x;
    out << "\n";
  }
  for (std::size_t p = 0; p < spec.scripts.size(); ++p) {
    for (const ScriptOp& op : spec.scripts[p]) {
      out << "op " << p << " "
          << (op.kind == ScriptOp::Kind::kWrite ? "w" : "r") << " " << op.var
          << " " << op.value << " " << op.delay.us << "\n";
    }
  }
  for (std::size_t p = 0; p < spec.addrs.size(); ++p) {
    out << "addr " << p << " " << spec.addrs[p] << "\n";
  }
  out << "node " << spec.node << "\n";
  out << "incarnation " << spec.incarnation << "\n";
  out << "listen_fd " << spec.listen_fd << "\n";
  const SocketOptions& s = spec.sockets;
  out << "heartbeat_period_us " << s.heartbeat_period.us << "\n";
  out << "heartbeat_timeout_us " << s.heartbeat_timeout.us << "\n";
  out << "dial_backoff_base_us " << s.dial_backoff_base.us << "\n";
  out << "dial_backoff_max_us " << s.dial_backoff_max.us << "\n";
  out << "dial_backoff_factor " << s.dial_backoff_factor << "\n";
  out << "dial_jitter " << s.dial_jitter << "\n";
  out << "backoff_seed " << s.backoff_seed << "\n";
  out << "chaos_drop " << s.chaos.drop_probability << "\n";
  out << "chaos_duplicate " << s.chaos.duplicate_probability << "\n";
  out << "chaos_disconnect " << s.chaos.disconnect_probability << "\n";
  out << "chaos_delay_min_us " << s.chaos.delay_min.us << "\n";
  out << "chaos_delay_max_us " << s.chaos.delay_max.us << "\n";
  out << "chaos_seed " << s.chaos.seed << "\n";
  out << "drain_idle_ms " << spec.drain_idle_ms << "\n";
  out << "drain_timeout_ms " << spec.drain_timeout_ms << "\n";
  out << "end\n";
  return out.str();
}

NodeSpec parse_node_spec(const std::string& text) {
  NodeSpec spec;
  std::istringstream lines(text);
  std::string line;
  bool saw_magic = false;
  bool saw_end = false;
  std::size_t processes = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!saw_magic) {
      PARDSM_CHECK(line == "pardsm-node-v1",
                   "node spec: bad magic line: " + line);
      saw_magic = true;
      continue;
    }
    std::istringstream in(line);
    std::string key;
    in >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "protocol") {
      std::string name;
      in >> name;
      spec.protocol = parse_protocol(name);
    } else if (key == "name") {
      in >> spec.distribution.name;
    } else if (key == "processes") {
      in >> processes;
      PARDSM_CHECK(processes > 0 && processes <= 1024,
                   "node spec: bad process count: " + line);
      spec.distribution.per_process.resize(processes);
      spec.scripts.resize(processes);
      spec.addrs.resize(processes);
    } else if (key == "vars") {
      in >> spec.distribution.var_count;
    } else if (key == "holds") {
      std::size_t p = 0;
      in >> p;
      PARDSM_CHECK(p < processes, "node spec: holds out of range: " + line);
      VarId x = kNoVar;
      while (in >> x) spec.distribution.per_process[p].push_back(x);
      continue;  // consumed to end of line
    } else if (key == "op") {
      std::size_t p = 0;
      std::string kind;
      ScriptOp op;
      std::int64_t delay_us = 0;
      in >> p >> kind >> op.var >> op.value >> delay_us;
      PARDSM_CHECK(p < processes, "node spec: op out of range: " + line);
      PARDSM_CHECK(kind == "r" || kind == "w",
                   "node spec: bad op kind: " + line);
      op.kind = kind == "w" ? ScriptOp::Kind::kWrite : ScriptOp::Kind::kRead;
      op.delay = Duration{delay_us};
      spec.scripts[p].push_back(op);
    } else if (key == "addr") {
      std::size_t p = 0;
      std::string addr;
      in >> p >> addr;
      PARDSM_CHECK(p < processes, "node spec: addr out of range: " + line);
      spec.addrs[p] = addr;
    } else if (key == "node") {
      in >> spec.node;
    } else if (key == "incarnation") {
      in >> spec.incarnation;
    } else if (key == "listen_fd") {
      in >> spec.listen_fd;
    } else if (key == "heartbeat_period_us") {
      in >> spec.sockets.heartbeat_period.us;
    } else if (key == "heartbeat_timeout_us") {
      in >> spec.sockets.heartbeat_timeout.us;
    } else if (key == "dial_backoff_base_us") {
      in >> spec.sockets.dial_backoff_base.us;
    } else if (key == "dial_backoff_max_us") {
      in >> spec.sockets.dial_backoff_max.us;
    } else if (key == "dial_backoff_factor") {
      in >> spec.sockets.dial_backoff_factor;
    } else if (key == "dial_jitter") {
      in >> spec.sockets.dial_jitter;
    } else if (key == "backoff_seed") {
      in >> spec.sockets.backoff_seed;
    } else if (key == "chaos_drop") {
      in >> spec.sockets.chaos.drop_probability;
    } else if (key == "chaos_duplicate") {
      in >> spec.sockets.chaos.duplicate_probability;
    } else if (key == "chaos_disconnect") {
      in >> spec.sockets.chaos.disconnect_probability;
    } else if (key == "chaos_delay_min_us") {
      in >> spec.sockets.chaos.delay_min.us;
    } else if (key == "chaos_delay_max_us") {
      in >> spec.sockets.chaos.delay_max.us;
    } else if (key == "chaos_seed") {
      in >> spec.sockets.chaos.seed;
    } else if (key == "drain_idle_ms") {
      in >> spec.drain_idle_ms;
    } else if (key == "drain_timeout_ms") {
      in >> spec.drain_timeout_ms;
    } else {
      PARDSM_CHECK(false, "node spec: unknown key: " + line);
    }
    PARDSM_CHECK(!in.fail(), "node spec: malformed line: " + line);
    expect_done(in, line);
  }
  PARDSM_CHECK(saw_magic, "node spec: missing magic line");
  PARDSM_CHECK(saw_end, "node spec: missing end line");
  PARDSM_CHECK(processes > 0, "node spec: missing processes line");
  PARDSM_CHECK(spec.node != kNoProcess &&
                   static_cast<std::size_t>(spec.node) < processes,
               "node spec: node id out of range");
  for (std::size_t p = 0; p < processes; ++p) {
    PARDSM_CHECK(!spec.addrs[p].empty(),
                 "node spec: missing addr for a process");
  }
  // The child fills in its SocketOptions identity from the spec fields.
  spec.sockets.total_processes = processes;
  spec.sockets.local_ids = {spec.node};
  spec.sockets.addrs = spec.addrs;
  spec.sockets.listen_fd = spec.listen_fd;
  spec.sockets.incarnation = spec.incarnation;
  return spec;
}

}  // namespace pardsm::mcs
