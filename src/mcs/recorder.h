// History recording.
//
// Protocols report every application-level operation here; the recorder
// assembles a hist::History with exact read-from provenance and real-time
// intervals, which the test suite feeds to the exact consistency checkers.
// Thread-safe (the thread runtime records from many threads).
#pragma once

#include <mutex>

#include "history/history.h"
#include "simnet/sim_time.h"

namespace pardsm::mcs {

/// Thread-safe builder of a hist::History from live protocol runs.
class HistoryRecorder {
 public:
  HistoryRecorder(std::size_t process_count, std::size_t var_count)
      : history_(process_count, var_count) {}

  /// Record a completed write (its WriteId must be the one the protocol
  /// attached to the stored value).
  void record_write(ProcessId p, VarId x, Value v, WriteId id,
                    TimePoint invoked, TimePoint responded);

  /// Record a completed read returning `got` (value + provenance).
  void record_read(ProcessId p, VarId x, Value value, WriteId source,
                   TimePoint invoked, TimePoint responded);

  /// Snapshot of the history so far (copy; safe after the run finished).
  [[nodiscard]] hist::History history() const;

  /// Move the history out (no copy).  The recorder is empty afterwards —
  /// only for drivers that are done with it.
  [[nodiscard]] hist::History take_history();

  /// Number of recorded operations.
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  hist::History history_;
};

}  // namespace pardsm::mcs
