// pardsm_lint: repo-specific static analyzer enforcing the determinism,
// hot-path and body-plane contracts (docs/LINT.md has the rule catalogue).
//
//   pardsm_lint [--json] [path...]       default path: src
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "engine.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: pardsm_lint [--json] [--list-rules] [path...]\n"
      "  path          source roots to lint (default: src); layer names\n"
      "                come from the first directory below each root\n"
      "  --json        emit a pardsm-lint-v1 JSON report on stdout\n"
      "  --list-rules  print the rule names and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  pardsm::lint::LintOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : pardsm::lint::rule_names()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pardsm_lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    } else {
      options.roots.push_back(arg);
    }
  }
  if (options.roots.empty()) options.roots.push_back("src");

  try {
    const pardsm::lint::Report report = pardsm::lint::run_lint(options);
    const std::string out = json ? pardsm::lint::render_json(report)
                                 : pardsm::lint::render_text(report);
    std::fputs(out.c_str(), stdout);
    return report.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
