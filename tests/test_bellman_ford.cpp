// Section 6 / Figures 7-9: distributed Bellman-Ford on partial-replication
// DSM.

#include <gtest/gtest.h>

#include "apps/bellman_ford.h"
#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"

namespace pardsm::apps {
namespace {

TEST(WeightedGraph, Fig8Structure) {
  const auto g = WeightedGraph::fig8();
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.edges().size(), 8u);
  // Predecessor sets from the paper's variable distribution.
  EXPECT_EQ(g.predecessors(1), (std::vector<int>{0, 2}));  // Γ⁻¹(2)={1,3}
  EXPECT_EQ(g.predecessors(2), (std::vector<int>{0, 1}));  // Γ⁻¹(3)={1,2}
  EXPECT_EQ(g.predecessors(3), (std::vector<int>{1, 2}));  // Γ⁻¹(4)={2,3}
  EXPECT_EQ(g.predecessors(4), (std::vector<int>{2, 3}));  // Γ⁻¹(5)={3,4}
  // Weight label multiset {4,1,1,2,8,2,3,3}.
  std::vector<std::int64_t> weights;
  for (const auto& e : g.edges()) weights.push_back(e.weight);
  std::sort(weights.begin(), weights.end());
  EXPECT_EQ(weights, (std::vector<std::int64_t>{1, 1, 2, 2, 3, 3, 4, 8}));
}

TEST(WeightedGraph, Fig8ReferenceDistances) {
  const auto g = WeightedGraph::fig8();
  const auto d = bellman_ford_reference(g, 0);
  EXPECT_EQ(d, (std::vector<std::int64_t>{0, 2, 1, 4, 4}));
}

TEST(WeightedGraph, ReferenceHandlesUnreachable) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 5);
  const auto d = bellman_ford_reference(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 5);
  EXPECT_EQ(d[2], kInfDistance);
}

TEST(BellmanFordDistribution, MatchesPaperSection6) {
  // The derived distribution on Fig 8 must equal the topology module's
  // verbatim copy of the paper's X_1..X_5.
  const auto derived = bellman_ford_distribution(WeightedGraph::fig8());
  const auto verbatim = graph::topo::bellman_ford_fig8();
  ASSERT_EQ(derived.process_count(), verbatim.process_count());
  EXPECT_EQ(derived.var_count, verbatim.var_count);
  for (std::size_t p = 0; p < derived.process_count(); ++p) {
    EXPECT_EQ(derived.per_process[p], verbatim.per_process[p]) << "X_" << p;
  }
}

TEST(BellmanFord, Fig8OnPram) {
  const auto result = run_bellman_ford(WeightedGraph::fig8());
  EXPECT_TRUE(result.matches_reference)
      << "got: " << ::testing::PrintToString(result.distances);
  EXPECT_EQ(result.distances, (std::vector<std::int64_t>{0, 2, 1, 4, 4}));
  // Each node performed exactly N iterations (Figure 7 line 5).
  for (std::int64_t k : result.rounds) EXPECT_EQ(k, 5);
  EXPECT_EQ(result.handoff_violations, 0u);
}

TEST(BellmanFord, Fig8OnStrongerProtocolsAgrees) {
  for (auto kind : {mcs::ProtocolKind::kCausalPartialNaive,
                    mcs::ProtocolKind::kCausalPartialAdHoc,
                    mcs::ProtocolKind::kCausalFull,
                    mcs::ProtocolKind::kSequencerSC,
                    mcs::ProtocolKind::kAtomicHome}) {
    BellmanFordOptions options;
    options.protocol = kind;
    const auto result = run_bellman_ford(WeightedGraph::fig8(), options);
    EXPECT_TRUE(result.matches_reference) << mcs::to_string(kind);
  }
}

TEST(BellmanFord, PramBeatsCausalOnBytes) {
  // The paper's motivation: with PRAM the same computation moves far less
  // control information than a causal memory needs.
  BellmanFordOptions pram;
  const auto r_pram = run_bellman_ford(WeightedGraph::fig8(), pram);

  BellmanFordOptions naive;
  naive.protocol = mcs::ProtocolKind::kCausalPartialNaive;
  const auto r_naive = run_bellman_ford(WeightedGraph::fig8(), naive);

  EXPECT_LT(r_pram.total_traffic.control_bytes_sent,
            r_naive.total_traffic.control_bytes_sent);
  EXPECT_LT(r_pram.total_traffic.msgs_sent, r_naive.total_traffic.msgs_sent);
}

TEST(BellmanFord, RandomNetworksConvergeOnPram) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = WeightedGraph::random_network(6 + seed % 3, 6, 9, seed);
    BellmanFordOptions options;
    options.sim_seed = seed;
    const auto result = run_bellman_ford(g, options);
    EXPECT_TRUE(result.matches_reference) << "seed " << seed;
    EXPECT_EQ(result.handoff_violations, 0u) << "seed " << seed;
  }
}

TEST(BellmanFord, DifferentSourceNode) {
  const auto g = WeightedGraph::fig8();
  BellmanFordOptions options;
  options.source = 2;  // paper node 3
  const auto result = run_bellman_ford(g, options);
  EXPECT_TRUE(result.matches_reference);
  EXPECT_EQ(result.distances, bellman_ford_reference(g, 2));
}

TEST(BellmanFord, DeterministicUnderSeed) {
  BellmanFordOptions options;
  options.sim_seed = 99;
  const auto a = run_bellman_ford(WeightedGraph::fig8(), options);
  const auto b = run_bellman_ford(WeightedGraph::fig8(), options);
  EXPECT_EQ(a.total_traffic.msgs_sent, b.total_traffic.msgs_sent);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.barrier_polls, b.barrier_polls);
}

// Figure 9 regeneration: in the recorded history, each process's writes on
// its own x and k variables alternate (x first, then k) per round — the
// "two last write operations made by each process at each step" pattern —
// and values read by successors respect their writers' program order.
TEST(BellmanFord, Fig9WritePatternPerRound) {
  const auto result = run_bellman_ford(WeightedGraph::fig8());
  const auto& h = result.history;
  const std::size_t n = 5;
  for (ProcessId p = 0; p < static_cast<ProcessId>(n); ++p) {
    std::vector<VarId> own_writes;
    for (hist::OpIndex op : h.ops_of(p)) {
      if (h.op(op).is_write()) own_writes.push_back(h.op(op).var);
    }
    // Expected: x, k (init), then per round: x, k.
    ASSERT_GE(own_writes.size(), 2u);
    for (std::size_t w = 0; w < own_writes.size(); w += 2) {
      EXPECT_EQ(own_writes[w], x_var(p)) << "p" << p << " write " << w;
      EXPECT_EQ(own_writes[w + 1], k_var(n, p)) << "p" << p;
    }
  }
}

TEST(BellmanFord, Fig9TableFormat) {
  const auto result = run_bellman_ford(WeightedGraph::fig8());
  const auto table = format_fig9_table(result, 5, 2);
  // Every process appears with at least the initialization step and the
  // first iteration; steps end with the k-write.
  for (int p = 1; p <= 5; ++p) {
    // Two-step append: avoids GCC 12's -Wrestrict false positive on
    // operator+(const char*, string&&).
    std::string needle = "p";
    needle += std::to_string(p);
    needle += ":";
    EXPECT_NE(table.find(needle), std::string::npos);
  }
  EXPECT_NE(table.find("step 0:"), std::string::npos);
  EXPECT_NE(table.find("step 1:"), std::string::npos);
  // The source's init step writes x_1 = 0 then k_1 = 0.
  EXPECT_NE(table.find("w0(x0)0 w0(x5)0"), std::string::npos);
}

// The Bellman-Ford distribution has hoops (e.g. around the 2↔3 cycle), so
// under causal consistency the run is *not* efficiently partially
// replicable — while PRAM confines all x-metadata to C(x).  This is the
// paper's whole point, on its own example.
TEST(BellmanFord, Fig8DistributionHasHoopsButPramStaysInCliques) {
  const auto dist = bellman_ford_distribution(WeightedGraph::fig8());
  const graph::ShareGraph sg(dist);
  const auto summary = graph::summarize_relevance(sg);
  EXPECT_GT(summary.vars_with_hoops, 0u);

  BellmanFordOptions options;
  const auto g = WeightedGraph::fig8();
  // Re-run through the driver to get exposure: use run_bellman_ford's
  // traffic indirectly — PRAM sends only to C(x) by construction; the
  // protocol-level test suite already asserts exposure, so here we only
  // sanity-check totals are consistent.
  const auto result = run_bellman_ford(g, options);
  EXPECT_GT(result.total_traffic.msgs_sent, 0u);
}

}  // namespace
}  // namespace pardsm::apps
