// Message batching: per-sender coalescing windows with piggybacked frames.
//
// The paper's efficiency argument is about control-message and byte
// counts; batching is the classic orthogonal axis that amortizes exactly
// the per-message overhead those counts price.  BatchingTransport is a
// stackable decorator (see HostTransport in transport.h): protocol sends
// to the same destination are held in a per-(sender, destination) queue
// and flushed as one piggybacked BatchFrame when the sender's coalescing
// window expires, when the queue reaches max_batch, or immediately when
// an urgent message (MessageMeta::urgent) arrives for that destination.
//
// Byte-accounting contract (docs/BATCHING.md; NetworkStats sees frames,
// the application sees the original messages):
//
//   * window == 0: exact pass-through.  Every send goes straight to the
//     layer below — bit-identical traffic, timing and stats (the golden
//     regression in tests/test_transport_conformance.cpp pins this).
//   * singleton flush: a queue holding one message at flush time is sent
//     unwrapped — identical bytes to the unbatched send, just delayed.
//   * k >= 2 messages flush as ONE frame: control bytes are the sum of
//     the members' control bytes plus kPerItemFramingBytes per member
//     (length + kind marker), payload bytes are the exact sum, and
//     vars_mentioned is the concatenation — per-(process, variable)
//     exposure counts are preserved exactly.  The 16-byte wire header is
//     paid once per frame instead of once per message, so a k-frame saves
//     16*(k-1) - kPerItemFramingBytes*k wire bytes (> 0 for k >= 2) and
//     k-1 messages.
//
// Ordering: per-pair FIFO is preserved — queues flush in enqueue order,
// an urgent send flushes its destination's queue *including itself*, and
// the layer below delivers frames FIFO per pair.  Receivers unpack frames
// in order and hand each member to the application endpoint with its
// original metadata, so protocols cannot tell they were batched (except
// by the clock).
//
// Stacking: compose over the raw Simulator, over ReliableTransport
// (frames become single ARQ DATA frames — fewer acks), or under it
// (DATA/ACK frames coalesce; keep window << retransmit_after).  Under the
// ThreadRuntime the per-sender state is only touched by the owning
// process's thread (sends and flush timers both run there), so batching
// is preemption-safe too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "simnet/transport.h"
#include "simnet/wire.h"

namespace pardsm {

/// Options for the batching layer.
struct BatchingOptions {
  /// Coalescing window per sender: the longest a non-urgent message waits
  /// in a queue.  Zero = exact pass-through (no queues, no timers).
  Duration window{};
  /// Flush a destination's queue when it reaches this many messages.
  std::size_t max_batch = 64;
};

/// Per-member framing overhead inside a BatchFrame (length + kind marker).
inline constexpr std::uint64_t kPerItemFramingBytes = 4;

/// A piggybacked frame: several application messages to one destination.
struct BatchFrame final : MessageBody {
  struct Item {
    BodyRef body;
    MessageMeta meta;
    TimePoint enqueued{};  ///< send_time the application observed
  };
  std::vector<Item> items;

  /// Pool recycle hook: drop member bodies now, keep the items vector's
  /// capacity for the next frame.
  void reset() { items.clear(); }

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kBatchFrame;
  }
  void wire_encode(WireWriter& w) const override {
    w.u32(static_cast<std::uint32_t>(items.size()));
    for (const Item& item : items) {
      wire::put_time(w, item.enqueued);
      wire::encode_meta(w, item.meta);
      wire::encode_body(w, *item.body);
    }
  }
};

/// Aggregate batching counters (all senders).
struct BatchingStats {
  std::uint64_t frames_sent = 0;      ///< multi-message frames (k >= 2)
  std::uint64_t messages_batched = 0; ///< messages that travelled in frames
  std::uint64_t singleton_flushes = 0;///< queues flushed with one message
  std::uint64_t urgent_flushes = 0;   ///< flushes forced by an urgent send
};

/// Coalescing transport decorator.
class BatchingTransport final : public HostTransport {
 public:
  BatchingTransport(HostTransport& lower, BatchingOptions options);
  ~BatchingTransport() override;

  /// Register an application endpoint (the decorator interposes a shim on
  /// the layer below).
  ProcessId add_endpoint(Endpoint* ep) override;

  // -- Transport ------------------------------------------------------------
  void send(ProcessId from, ProcessId to, BodyRef body,
            MessageMeta meta) override;
  [[nodiscard]] TimePoint now() const override { return lower_.now(); }
  void set_timer(ProcessId who, Duration delay, TimerTag tag) override;
  [[nodiscard]] std::size_t process_count() const override;
  /// Decorators allocate from the root runtime's pools.
  [[nodiscard]] BodyArena& arena(ProcessId owner) override {
    return lower_.arena(owner);
  }

  [[nodiscard]] const BatchingOptions& options() const { return options_; }

  /// Counters summed over all senders.
  [[nodiscard]] BatchingStats stats() const;

 private:
  class Shim;

  HostTransport& lower_;
  BatchingOptions options_;
  std::vector<std::unique_ptr<Shim>> shims_;
};

}  // namespace pardsm
