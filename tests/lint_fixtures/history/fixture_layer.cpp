// pardsm_lint fixture: R5 (layer-dag) seeded violations.  history sits
// below mcs and apps in the layer DAG, so including upward fires; simnet
// is below history and stays legal.  Lines pinned by test_lint.cpp.
#include "history/history.h"
#include "simnet/check.h"
#include "mcs/protocol.h"
#include "apps/bellman_ford.h"  // pardsm-lint: allow(layer-dag): fixture exception
#include <vector>

namespace fixture {

int uses_nothing() { return 0; }

}  // namespace fixture
