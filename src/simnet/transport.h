// Runtime-independent interface between protocols and the world.
//
// Protocols (src/mcs) are written once against Transport + Endpoint and run
// unchanged under the deterministic discrete-event simulator and under the
// std::thread runtime.  This is the boundary that makes the "multi-node
// emulation" substitution of DESIGN.md §2 possible.
#pragma once

#include <cstdint>

#include "simnet/message.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Opaque timer identity passed back to Endpoint::on_timer.
using TimerTag = std::uint64_t;

/// Something that receives messages and timer callbacks: one per process.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// A message addressed to this endpoint has been delivered.
  virtual void on_message(const Message& m) = 0;

  /// A timer armed via Transport::set_timer has fired.
  virtual void on_timer(TimerTag tag) { (void)tag; }
};

/// Facilities a protocol may use: sending, clock, timers.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue a message for asynchronous delivery.  Ownership of the body is
  /// shared; the same body object may be multicast to several receivers.
  virtual void send(ProcessId from, ProcessId to,
                    std::shared_ptr<const MessageBody> body,
                    MessageMeta meta) = 0;

  /// Current time (simulated or wall-derived, depending on runtime).
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Arm a one-shot timer for process `who`, firing after `delay`.
  virtual void set_timer(ProcessId who, Duration delay, TimerTag tag) = 0;

  /// Number of processes in the system.
  [[nodiscard]] virtual std::size_t process_count() const = 0;
};

}  // namespace pardsm
