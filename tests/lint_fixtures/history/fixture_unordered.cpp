// pardsm_lint fixture: R4 (unordered-iter) seeded violations.  history is
// an order-sensitive layer (serialized output), so both the declaration
// and the range-for fire.  Line numbers are pinned by test_lint.cpp.
#include <unordered_map>
#include <vector>

namespace fixture {

int bad_iteration() {
  std::unordered_map<int, int> counters;
  int sum = 0;
  for (const auto& kv : counters) {
    sum += kv.second;
  }
  return sum;
}

int fine_vector() {
  std::vector<int> ordered{1, 2, 3};
  int sum = 0;
  for (int v : ordered) {
    sum += v;
  }
  return sum;
}

int suppressed_decl() {
  // pardsm-lint: allow(unordered-iter): fixture — membership-only set
  std::unordered_map<int, int> memo;
  return static_cast<int>(memo.count(3));
}

}  // namespace fixture
