// Share graph construction (Section 3.1, Figure 1) and topologies.

#include <gtest/gtest.h>

#include "sharegraph/share_graph.h"
#include "sharegraph/topologies.h"

namespace pardsm::graph {
namespace {

TEST(ShareGraph, Fig1MatchesThePaper) {
  const ShareGraph sg(topo::fig1());
  // Cliques: C(x1) = {p_i, p_j} = {0, 1}; C(x2) = {p_i, p_k} = {0, 2}.
  EXPECT_EQ(sg.clique(0), (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(sg.clique(1), (std::vector<ProcessId>{0, 2}));
  // Edges: (i,j) labelled {x1}; (i,k) labelled {x2}; no (j,k) edge.
  EXPECT_TRUE(sg.has_edge(0, 1));
  EXPECT_TRUE(sg.has_edge(0, 2));
  EXPECT_FALSE(sg.has_edge(1, 2));
  EXPECT_EQ(sg.label(0, 1), (std::vector<VarId>{0}));
  EXPECT_EQ(sg.label(0, 2), (std::vector<VarId>{1}));
  EXPECT_EQ(sg.edge_count(), 2u);
}

TEST(ShareGraph, CliqueIsAClique) {
  const ShareGraph sg(topo::random_replication(12, 8, 4, /*seed=*/7));
  for (std::size_t x = 0; x < sg.var_count(); ++x) {
    const auto& clique = sg.clique(static_cast<VarId>(x));
    for (ProcessId a : clique) {
      for (ProcessId b : clique) {
        if (a != b) {
          EXPECT_TRUE(sg.has_edge(a, b))
              << "C(x" << x << ") members " << a << "," << b;
        }
      }
    }
  }
}

TEST(ShareGraph, EdgeIffSharedVariable) {
  const ShareGraph sg(topo::random_replication(10, 12, 3, /*seed=*/3));
  const auto& dist = sg.distribution();
  for (ProcessId i = 0; i < 10; ++i) {
    for (ProcessId j = 0; j < 10; ++j) {
      if (i == j) continue;
      bool share = false;
      for (VarId x = 0; x < 12; ++x) {
        if (dist.holds(i, x) && dist.holds(j, x)) share = true;
      }
      EXPECT_EQ(sg.has_edge(i, j), share) << i << "," << j;
    }
  }
}

TEST(ShareGraph, LabelSymmetricAndCorrect) {
  const ShareGraph sg(topo::bellman_ford_fig8());
  for (ProcessId i = 0; i < 5; ++i) {
    for (ProcessId j = 0; j < 5; ++j) {
      EXPECT_EQ(sg.label(i, j), sg.label(j, i));
    }
  }
  // p1 (index 0) and p2 (index 1) share {x1, k1} = ids {0, 5}.
  EXPECT_EQ(sg.label(0, 1), (std::vector<VarId>{0, 5}));
}

TEST(ShareGraph, ComponentsOfDisconnectedGraph) {
  Distribution d;
  d.name = "two-islands";
  d.var_count = 2;
  d.per_process = {{0}, {0}, {1}, {1}};
  const ShareGraph sg(d);
  const auto comps = sg.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<ProcessId>{2, 3}));
}

TEST(ShareGraph, CompleteReplicationIsOneClique) {
  const ShareGraph sg(topo::complete(6, 3));
  EXPECT_EQ(sg.edge_count(), 15u);  // K6
  for (VarId x = 0; x < 3; ++x) {
    EXPECT_EQ(sg.clique(x).size(), 6u);
  }
}

TEST(ShareGraph, DotExportMentionsEveryEdge) {
  const ShareGraph sg(topo::fig1());
  const std::string dot = sg.to_dot();
  EXPECT_NE(dot.find("p0 -- p1"), std::string::npos);
  EXPECT_NE(dot.find("p0 -- p2"), std::string::npos);
  EXPECT_EQ(dot.find("p1 -- p2"), std::string::npos);
}

TEST(Topologies, AverageReplication) {
  const auto d = topo::complete(8, 4);
  EXPECT_DOUBLE_EQ(d.average_replication(), 8.0);
  const auto r = topo::random_replication(10, 20, 3, 1);
  EXPECT_DOUBLE_EQ(r.average_replication(), 3.0);
}

TEST(Topologies, GridEdgeCount) {
  const auto d = topo::grid(3, 4);
  // Horizontal: 3 rows * 3 = 9; vertical: 2 * 4 = 8.
  EXPECT_EQ(d.var_count, 17u);
  const ShareGraph sg(d);
  EXPECT_EQ(sg.edge_count(), 17u);
}

TEST(Topologies, RandomReplicationExactDegree) {
  const auto d = topo::random_replication(9, 30, 4, 42);
  const ShareGraph sg(d);
  for (VarId x = 0; x < 30; ++x) {
    EXPECT_EQ(sg.clique(x).size(), 4u) << "x" << x;
  }
}

TEST(Topologies, DeterministicInSeed) {
  const auto a = topo::random_replication(9, 30, 4, 42);
  const auto b = topo::random_replication(9, 30, 4, 42);
  const auto c = topo::random_replication(9, 30, 4, 43);
  EXPECT_EQ(a.per_process, b.per_process);
  EXPECT_NE(a.per_process, c.per_process);
}

TEST(Topologies, Fig8DistributionMatchesPaper) {
  const auto d = topo::bellman_ford_fig8();
  ASSERT_EQ(d.process_count(), 5u);
  // X_2 = {x1, x2, x3, k1, k2, k3} = ids {0,1,2,5,6,7}.
  EXPECT_EQ(d.per_process[1], (std::vector<VarId>{0, 1, 2, 5, 6, 7}));
  // X_5 = {x3, x4, x5, k3, k4, k5} = ids {2,3,4,7,8,9}.
  EXPECT_EQ(d.per_process[4], (std::vector<VarId>{2, 3, 4, 7, 8, 9}));
}

}  // namespace
}  // namespace pardsm::graph
