// Node bootstrap configuration: the serialized contract between the
// pardsm_node spawn parent and its child node processes.
//
// A NodeSpec is everything one OS process needs to join a multi-process
// deployment: the protocol, the full variable distribution (every node
// derives the same share graph), every process's script, every peer's
// address, and the socket-root tuning knobs.  The parent writes one spec
// per child (differing only in `node`, `incarnation` and `listen_fd`) to
// a file; the child parses it back with parse_node_spec().
//
// The format is a deliberately boring line-oriented text file — one
// "key value..." pair per line, `#` comments, order-insensitive except
// that the magic line comes first — so a spec is diffable in a failing
// CI log and writable by hand for ad-hoc deployments (docs/DEPLOYMENT.md
// walks through one).  parse errors throw std::logic_error with the
// offending line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mcs/engine.h"
#include "sharegraph/share_graph.h"

namespace pardsm::mcs {

/// One node's view of a multi-process deployment.
struct NodeSpec {
  ProtocolKind protocol = ProtocolKind::kPramPartial;
  graph::Distribution distribution;
  std::vector<Script> scripts;  ///< one per process (all nodes know all)
  std::vector<std::string> addrs;  ///< "host:port" per process

  /// Which process this spec instantiates.
  ProcessId node = kNoProcess;
  std::uint64_t incarnation = 1;
  /// Listening socket inherited from the spawn parent (-1 = bind our own
  /// at addrs[node]).  Never serialized as anything but a number; the fd
  /// itself travels by inheritance across fork/exec.
  int listen_fd = -1;

  /// Socket-root tuning (heartbeats, backoff, chaos) — applied verbatim.
  SocketOptions sockets;

  /// Settle parameters: a node is done when no non-heartbeat activity has
  /// happened for `drain_idle_ms` (bounded by `drain_timeout_ms`).
  std::uint32_t drain_idle_ms = 200;
  std::uint32_t drain_timeout_ms = 30000;
};

/// Round-trip protocol names ("pram-partial" etc., as to_string emits).
[[nodiscard]] ProtocolKind parse_protocol(const std::string& name);

/// Serialize / parse the spec (see the file comment for the format).
[[nodiscard]] std::string serialize_node_spec(const NodeSpec& spec);
[[nodiscard]] NodeSpec parse_node_spec(const std::string& text);

}  // namespace pardsm::mcs
