// Transport-stack conformance: every HostTransport stack — the raw
// simulator, the ARQ layer, the batching layer, and both stacking orders
// of the two decorators — must deliver the same contract to the layer
// above: per-pair FIFO, timers in time order with tags intact, and stats
// attribution per the documented byte-accounting rules (reliable.h,
// docs/BATCHING.md).  Plus the window=0 golden regression: an engine run
// with a forced pass-through batching layer is bit-identical to the run
// without the layer, for all nine protocols on all three golden
// topologies.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "golden_metrics_common.h"
#include "mcs/engine.h"
#include "simnet/batching.h"
#include "simnet/reliable.h"
#include "simnet/simulator.h"
#include "simnet/socket_transport.h"
#include "simnet/wire.h"

namespace pardsm {
namespace {

// ---------------------------------------------------------------------------
// Stack factory: builds a named transport stack over one simulator.
// ---------------------------------------------------------------------------

struct Stack {
  std::unique_ptr<BatchingTransport> batch_low;
  std::unique_ptr<ReliableTransport> rel;
  std::unique_ptr<BatchingTransport> batch_high;
  HostTransport* top = nullptr;
};

constexpr Duration kWindow = millis(2);

Stack make_stack(const std::string& name, Simulator& sim) {
  Stack s;
  s.top = &sim;
  if (name == "sim") return s;
  if (name == "reliable") {
    s.rel = std::make_unique<ReliableTransport>(sim, ReliableOptions{});
    s.top = s.rel.get();
    return s;
  }
  if (name == "batching") {
    s.batch_high =
        std::make_unique<BatchingTransport>(sim, BatchingOptions{kWindow});
    s.top = s.batch_high.get();
    return s;
  }
  if (name == "batching-over-reliable") {
    s.rel = std::make_unique<ReliableTransport>(sim, ReliableOptions{});
    s.batch_high = std::make_unique<BatchingTransport>(
        *s.rel, BatchingOptions{kWindow});
    s.top = s.batch_high.get();
    return s;
  }
  if (name == "reliable-over-batching") {
    s.batch_low =
        std::make_unique<BatchingTransport>(sim, BatchingOptions{kWindow});
    s.rel = std::make_unique<ReliableTransport>(*s.batch_low,
                                                ReliableOptions{});
    s.top = s.rel.get();
    return s;
  }
  ADD_FAILURE() << "unknown stack " << name;
  return s;
}

const char* kStacks[] = {"sim", "reliable", "batching",
                         "batching-over-reliable", "reliable-over-batching"};

struct Payload final : MessageBody {
  ProcessId sender = kNoProcess;
  int seq = 0;

  // Wire codec so the same payload crosses the socket-rooted stacks.
  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kTestPayload;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(sender);
    w.i32(seq);
  }
};

BodyRef decode_test_payload(WireReader& r, BodyArena& arena) {
  auto* p = arena.create<Payload>();
  p->sender = r.i32();
  p->seq = r.i32();
  return BodyRef::adopt(p);
}
const wire::BodyRegistrar kPayloadReg(wire::kTestPayload, decode_test_payload);

/// Records (sender, seq, sim-time) of everything delivered.
struct Collector final : Endpoint {
  explicit Collector(const Transport* clock = nullptr) : clock_(clock) {}
  struct Got {
    ProcessId from;
    int seq;
    TimePoint at;
  };
  std::vector<Got> got;
  void on_message(const Message& m) override {
    const auto* p = m.as<Payload>();
    ASSERT_NE(p, nullptr);
    got.push_back({p->sender, p->seq,
                   clock_ != nullptr ? clock_->now() : TimePoint{}});
  }

 private:
  const Transport* clock_;
};

MessageMeta meta_of(VarId x, bool urgent = false) {
  MessageMeta meta;
  meta.kind = KindId("CONF");
  meta.control_bytes = 24;
  meta.payload_bytes = 8;
  meta.vars_mentioned = {x};
  meta.urgent = urgent;
  return meta;
}

void send_seq(HostTransport& top, ProcessId from, ProcessId to, int seq,
              bool urgent = false) {
  auto* body = new_body<Payload>();
  body->sender = from;
  body->seq = seq;
  top.send(from, to, BodyRef::adopt(body), meta_of(/*x=*/2, urgent));
}

// ---------------------------------------------------------------------------
// Per-pair FIFO: two senders interleave 20 messages each toward one
// receiver, every fifth urgent (exercising the urgent-flush path through
// batching stacks); each sender's sequence must arrive in order.
// ---------------------------------------------------------------------------

TEST(TransportConformance, PerPairFifo) {
  for (const char* stack_name : kStacks) {
    SCOPED_TRACE(stack_name);
    Simulator sim;
    Stack stack = make_stack(stack_name, sim);
    Collector a, b, c;
    const ProcessId pa = stack.top->add_endpoint(&a);
    const ProcessId pb = stack.top->add_endpoint(&b);
    const ProcessId pc = stack.top->add_endpoint(&c);

    for (int i = 0; i < 20; ++i) {
      // Spread sends over time so batching windows both split and merge.
      sim.schedule_at(kTimeZero + micros(700 * i), [&, i] {
        send_seq(*stack.top, pa, pc, i, /*urgent=*/i % 5 == 4);
        send_seq(*stack.top, pb, pc, 100 + i);
      });
    }
    sim.run();

    ASSERT_EQ(c.got.size(), 40u);
    int next_a = 0;
    int next_b = 100;
    for (const auto& g : c.got) {
      if (g.from == pa) {
        EXPECT_EQ(g.seq, next_a++);
      } else {
        EXPECT_EQ(g.from, pb);
        EXPECT_EQ(g.seq, next_b++);
      }
    }
    EXPECT_EQ(next_a, 20);
    EXPECT_EQ(next_b, 120);
    EXPECT_TRUE(a.got.empty());
    EXPECT_TRUE(b.got.empty());
  }
}

// ---------------------------------------------------------------------------
// Timer ordering: application timers fire in time order with their tags
// intact, through every shim layer (the decorators reserve bits 62/63 for
// their own timers and must pass everything else down unchanged).
// ---------------------------------------------------------------------------

TEST(TransportConformance, TimerOrderingAndTagPassThrough) {
  struct Timed final : Endpoint {
    const Transport* clock = nullptr;
    std::vector<std::pair<TimerTag, TimePoint>> fired;
    void on_message(const Message&) override {}
    void on_timer(TimerTag t) override {
      fired.emplace_back(t, clock->now());
    }
  };
  for (const char* stack_name : kStacks) {
    SCOPED_TRACE(stack_name);
    Simulator sim;
    Stack stack = make_stack(stack_name, sim);
    Timed t;
    t.clock = stack.top;
    const ProcessId p = stack.top->add_endpoint(&t);

    sim.schedule_at(kTimeZero, [&] {
      stack.top->set_timer(p, millis(3), 30);
      stack.top->set_timer(p, millis(1), 10);
      stack.top->set_timer(p, millis(2), 20);
    });
    sim.run();

    ASSERT_EQ(t.fired.size(), 3u);
    EXPECT_EQ(t.fired[0].first, 10u);
    EXPECT_EQ(t.fired[1].first, 20u);
    EXPECT_EQ(t.fired[2].first, 30u);
    EXPECT_EQ(t.fired[0].second, kTimeZero + millis(1));
    EXPECT_EQ(t.fired[1].second, kTimeZero + millis(2));
    EXPECT_EQ(t.fired[2].second, kTimeZero + millis(3));
  }
}

// ---------------------------------------------------------------------------
// Stats attribution.  Lossless channel, k identical messages:
//   * the application receives exactly k messages with original metadata;
//   * payload bytes are conserved exactly on every stack (neither ARQ nor
//     batching touches payload accounting);
//   * exposure — received messages mentioning x — is exactly k on every
//     stack (ARQ DATA frames and batch frames both preserve
//     vars_mentioned multiplicity; acks mention nothing);
//   * control bytes follow the layer contracts: raw = sum; batching adds
//     at most kPerItemFramingBytes per member; ARQ adds 16 per DATA frame
//     plus 8 per ack.
// ---------------------------------------------------------------------------

TEST(TransportConformance, StatsAttribution) {
  constexpr int k = 10;
  for (const char* stack_name : kStacks) {
    SCOPED_TRACE(stack_name);
    Simulator sim;
    Stack stack = make_stack(stack_name, sim);
    Collector a, b;
    const ProcessId pa = stack.top->add_endpoint(&a);
    const ProcessId pb = stack.top->add_endpoint(&b);

    sim.schedule_at(kTimeZero, [&] {
      for (int i = 0; i < k; ++i) send_seq(*stack.top, pa, pb, i);
    });
    sim.run();

    ASSERT_EQ(b.got.size(), static_cast<std::size_t>(k));
    const ProcessTraffic total = sim.stats().total();
    // Payload conserved exactly.
    EXPECT_EQ(total.payload_bytes_sent, 8u * k);
    EXPECT_EQ(total.payload_bytes_received, 8u * k);
    // Exposure multiplicity conserved exactly.
    EXPECT_EQ(sim.stats().exposure(pb, 2), static_cast<std::uint64_t>(k));
    EXPECT_EQ(sim.stats().exposure(pa, 2), 0u);
    // Control bytes: at least the application's, at most the per-layer
    // overhead cap (ARQ: +16/frame and +8/ack; batching: +4 per framed
    // member — with ARQ above batching, both DATA and ACK frames coalesce
    // and each pays the member framing).
    const std::uint64_t app_control = 24u * k;
    EXPECT_GE(total.control_bytes_sent, app_control);
    EXPECT_LE(total.control_bytes_sent,
              app_control + (16u + 8u + 2 * kPerItemFramingBytes) * k);
    // Batching coalesces: fewer wire messages than app messages (the k
    // sends land in fewer frames), and all stacks conserve delivery.
    if (std::string(stack_name) == "batching") {
      EXPECT_LT(total.msgs_sent, static_cast<std::uint64_t>(k));
      const BatchingStats bs = stack.batch_high->stats();
      EXPECT_GT(bs.frames_sent, 0u);
      EXPECT_EQ(bs.messages_batched + bs.singleton_flushes,
                static_cast<std::uint64_t>(k));
    }
  }
}

// ---------------------------------------------------------------------------
// Urgent flush: with a batching window open, an urgent message leaves
// immediately — and a non-urgent message to a *different* destination
// keeps waiting for the window.
// ---------------------------------------------------------------------------

TEST(TransportConformance, UrgentBypassesWindow) {
  for (const char* stack_name :
       {"batching", "batching-over-reliable", "reliable-over-batching"}) {
    SCOPED_TRACE(stack_name);
    Simulator sim;  // constant 1ms latency
    Stack stack = make_stack(stack_name, sim);
    Collector a(stack.top), b(stack.top), c(stack.top);
    const ProcessId pa = stack.top->add_endpoint(&a);
    const ProcessId pb = stack.top->add_endpoint(&b);
    const ProcessId pc = stack.top->add_endpoint(&c);

    sim.schedule_at(kTimeZero, [&] {
      send_seq(*stack.top, pa, pb, 1, /*urgent=*/false);
      send_seq(*stack.top, pa, pc, 2, /*urgent=*/true);
    });
    sim.run();

    ASSERT_EQ(b.got.size(), 1u);
    ASSERT_EQ(c.got.size(), 1u);
    // Urgent: one network hop only.
    EXPECT_EQ(c.got[0].at, kTimeZero + millis(1));
    // Non-urgent: held for the window, then one hop.
    EXPECT_EQ(b.got[0].at, kTimeZero + kWindow + millis(1));
  }
}

// ---------------------------------------------------------------------------
// Window=0 golden regression: a forced pass-through batching layer is
// bit-identical to no batching layer, for all nine protocols on all three
// golden topologies — messages, bytes, exposure fingerprint, events,
// quiescence time and the full recorded history.
// ---------------------------------------------------------------------------

golden::Metrics engine_metrics(mcs::ProtocolKind kind,
                               const graph::Distribution& dist,
                               bool forced_window0_layer,
                               std::string* history_out) {
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.read_fraction = 0.5;
  spec.seed = 42;
  const auto scripts = mcs::make_random_scripts(dist, spec);

  mcs::EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.reliability = mcs::ReliabilityMode::kNever;
  config.force_batching_layer = forced_window0_layer;  // window stays 0
  const auto r = mcs::run(std::move(config));

  golden::Metrics out;
  out.messages = r.total_traffic.msgs_sent;
  out.bytes = r.total_traffic.wire_bytes_sent();
  out.exposure_hash = 1469598103934665603ULL;  // FNV offset basis
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    for (ProcessId p : r.observed_relevant[x]) {
      golden::fnv1a(out.exposure_hash, static_cast<std::uint64_t>(p));
      golden::fnv1a(out.exposure_hash, x);
    }
  }
  out.events = r.events;
  out.finished_us = r.finished_at.us;
  *history_out = r.history.to_string();
  return out;
}

TEST(TransportConformance, Window0BatchingLayerIsBitIdentical) {
  for (const auto& topo : golden::golden_topologies()) {
    for (auto kind : mcs::all_protocols()) {
      SCOPED_TRACE(std::string(mcs::to_string(kind)) + " on " + topo.name);
      std::string history_plain;
      std::string history_layered;
      const auto plain =
          engine_metrics(kind, topo.dist, false, &history_plain);
      const auto layered =
          engine_metrics(kind, topo.dist, true, &history_layered);
      EXPECT_EQ(plain.messages, layered.messages);
      EXPECT_EQ(plain.bytes, layered.bytes);
      EXPECT_EQ(plain.exposure_hash, layered.exposure_hash);
      EXPECT_EQ(plain.events, layered.events);
      EXPECT_EQ(plain.finished_us, layered.finished_us);
      EXPECT_EQ(history_plain, history_layered);
    }
  }
}

// The wrappers and the engine are the same code path: run_workload must
// produce exactly what an equivalent EngineConfig produces.
TEST(TransportConformance, RunWorkloadEqualsEngineRun) {
  const auto dist = graph::topo::ring(6);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.seed = 42;
  const auto scripts = mcs::make_random_scripts(dist, spec);

  const auto via_wrapper =
      mcs::run_workload(mcs::ProtocolKind::kCausalPartialAdHoc, dist, scripts);

  mcs::EngineConfig config;
  config.protocol = mcs::ProtocolKind::kCausalPartialAdHoc;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.reliability = mcs::ReliabilityMode::kNever;
  const auto via_engine = mcs::run(std::move(config));

  EXPECT_EQ(via_wrapper.total_traffic.msgs_sent,
            via_engine.total_traffic.msgs_sent);
  EXPECT_EQ(via_wrapper.total_traffic.wire_bytes_sent(),
            via_engine.total_traffic.wire_bytes_sent());
  EXPECT_EQ(via_wrapper.events, via_engine.events);
  EXPECT_EQ(via_wrapper.finished_at.us, via_engine.finished_at.us);
  EXPECT_EQ(via_wrapper.history.to_string(), via_engine.history.to_string());
  EXPECT_EQ(via_wrapper.final_replicas, via_engine.final_replicas);
}

// ---------------------------------------------------------------------------
// Socket-rooted stacks: the same decorator contract over real loopback
// TCP.  Wall-clock timing is non-deterministic, so these assert ordering
// and accounting, never exact times.  Sends are posted onto the owner's
// mailbox thread — decorator shims are owner-thread-only, exactly like
// protocol code above them.
// ---------------------------------------------------------------------------

struct SocketStack {
  std::unique_ptr<SocketTransport> root;
  std::unique_ptr<BatchingTransport> batch_low;
  std::unique_ptr<ReliableTransport> rel;
  std::unique_ptr<BatchingTransport> batch_high;
  HostTransport* top = nullptr;
};

SocketStack make_socket_stack(const std::string& name, std::size_t n) {
  SocketStack s;
  SocketOptions o;
  o.total_processes = n;
  s.root = std::make_unique<SocketTransport>(std::move(o));
  s.top = s.root.get();
  if (name == "socket") return s;
  if (name == "socket-reliable") {
    s.rel = std::make_unique<ReliableTransport>(*s.root, ReliableOptions{});
    s.top = s.rel.get();
    return s;
  }
  if (name == "socket-batching") {
    s.batch_high =
        std::make_unique<BatchingTransport>(*s.root, BatchingOptions{kWindow});
    s.top = s.batch_high.get();
    return s;
  }
  if (name == "socket-batching-over-reliable") {
    s.rel = std::make_unique<ReliableTransport>(*s.root, ReliableOptions{});
    s.batch_high =
        std::make_unique<BatchingTransport>(*s.rel, BatchingOptions{kWindow});
    s.top = s.batch_high.get();
    return s;
  }
  if (name == "socket-reliable-over-batching") {
    s.batch_low =
        std::make_unique<BatchingTransport>(*s.root, BatchingOptions{kWindow});
    s.rel =
        std::make_unique<ReliableTransport>(*s.batch_low, ReliableOptions{});
    s.top = s.rel.get();
    return s;
  }
  ADD_FAILURE() << "unknown socket stack " << name;
  return s;
}

const char* kSocketStacks[] = {"socket", "socket-reliable", "socket-batching",
                               "socket-batching-over-reliable",
                               "socket-reliable-over-batching"};

constexpr std::chrono::milliseconds kSocketQuiesce{20000};

TEST(TransportConformance, SocketStacksPerPairFifo) {
  for (const char* stack_name : kSocketStacks) {
    SCOPED_TRACE(stack_name);
    SocketStack stack = make_socket_stack(stack_name, 3);
    Collector a, b, c;
    const ProcessId pa = stack.top->add_endpoint(&a);
    const ProcessId pb = stack.top->add_endpoint(&b);
    const ProcessId pc = stack.top->add_endpoint(&c);
    stack.root->start();

    stack.root->post(pa, [&] {
      for (int i = 0; i < 20; ++i) {
        send_seq(*stack.top, pa, pc, i, /*urgent=*/i % 5 == 4);
      }
    });
    stack.root->post(pb, [&] {
      for (int i = 0; i < 20; ++i) send_seq(*stack.top, pb, pc, 100 + i);
    });
    ASSERT_TRUE(stack.root->await_quiescence(kSocketQuiesce));

    ASSERT_EQ(c.got.size(), 40u);
    int next_a = 0;
    int next_b = 100;
    for (const auto& g : c.got) {
      if (g.from == pa) {
        EXPECT_EQ(g.seq, next_a++);
      } else {
        EXPECT_EQ(g.from, pb);
        EXPECT_EQ(g.seq, next_b++);
      }
    }
    EXPECT_EQ(next_a, 20);
    EXPECT_EQ(next_b, 120);
    EXPECT_TRUE(a.got.empty());
    EXPECT_TRUE(b.got.empty());
    stack.root->stop();
  }
}

TEST(TransportConformance, SocketStacksStatsAttribution) {
  constexpr int k = 10;
  for (const char* stack_name : kSocketStacks) {
    SCOPED_TRACE(stack_name);
    SocketStack stack = make_socket_stack(stack_name, 2);
    Collector a, b;
    const ProcessId pa = stack.top->add_endpoint(&a);
    const ProcessId pb = stack.top->add_endpoint(&b);
    stack.root->start();

    stack.root->post(pa, [&] {
      for (int i = 0; i < k; ++i) send_seq(*stack.top, pa, pb, i);
    });
    ASSERT_TRUE(stack.root->await_quiescence(kSocketQuiesce));

    ASSERT_EQ(b.got.size(), static_cast<std::size_t>(k));
    const ProcessTraffic total = stack.root->stats().total();
    // Payload conserved exactly — same contract as the simulator stacks.
    EXPECT_EQ(total.payload_bytes_sent, 8u * k);
    EXPECT_EQ(total.payload_bytes_received, 8u * k);
    EXPECT_EQ(stack.root->stats().exposure(pb, 2),
              static_cast<std::uint64_t>(k));
    EXPECT_EQ(stack.root->stats().exposure(pa, 2), 0u);
    const std::uint64_t app_control = 24u * k;
    EXPECT_GE(total.control_bytes_sent, app_control);
    EXPECT_LE(total.control_bytes_sent,
              app_control + (16u + 8u + 2 * kPerItemFramingBytes) * k);
    // The wire ledger saw real frames (exact counts depend on batching
    // windows and ack timing — wall clock, so only inequalities hold).
    const SocketCounters sc = stack.root->counters();
    EXPECT_GT(sc.frames_sent, 0u);
    EXPECT_EQ(sc.frames_sent, sc.frames_received);
    EXPECT_GT(sc.bytes_sent, 0u);
    stack.root->stop();
  }
}

TEST(TransportConformance, SocketStacksTimerOrderingAndTagPassThrough) {
  struct Timed final : Endpoint {
    std::vector<TimerTag> fired;
    void on_message(const Message&) override {}
    void on_timer(TimerTag t) override { fired.push_back(t); }
  };
  for (const char* stack_name : kSocketStacks) {
    SCOPED_TRACE(stack_name);
    SocketStack stack = make_socket_stack(stack_name, 1);
    Timed t;
    const ProcessId p = stack.top->add_endpoint(&t);
    stack.root->start();

    // Generous spacing: the assertion is the firing order and the intact
    // tags, not the exact wall-clock instants.
    stack.root->post(p, [&] {
      stack.top->set_timer(p, millis(150), 30);
      stack.top->set_timer(p, millis(50), 10);
      stack.top->set_timer(p, millis(100), 20);
    });
    ASSERT_TRUE(stack.root->await_quiescence(kSocketQuiesce));

    ASSERT_EQ(t.fired.size(), 3u);
    EXPECT_EQ(t.fired[0], 10u);
    EXPECT_EQ(t.fired[1], 20u);
    EXPECT_EQ(t.fired[2], 30u);
    stack.root->stop();
  }
}

}  // namespace
}  // namespace pardsm
