#include "mcs/slow_partial.h"

#include "simnet/wire.h"

namespace pardsm::mcs {

struct SlowUpdate final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  std::int64_t var_seq = 0;  ///< per-(writer, x) sequence, 1-based

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kSlowUpdate;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    w.i64(var_seq);
  }
};

namespace {

const wire::BodyRegistrar slow_codec(
    wire::kSlowUpdate, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<SlowUpdate>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->var_seq = r.i64();
      return BodyRef::adopt(b);
    });

/// Deterministic application jitter (microseconds) per (writer, var, seq):
/// spreads the apply times of different variables' updates so the
/// cross-variable reordering freedom of slow memory is actually exercised,
/// identically under both runtimes.
Duration jitter(ProcessId writer, VarId x, std::int64_t seq) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(writer) * 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<std::uint64_t>(x) * 0x94D049BB133111EBULL;
  h ^= static_cast<std::uint64_t>(seq) * 0xD6E8FEB86659FD93ULL;
  h ^= h >> 29;
  return micros(static_cast<std::int64_t>(h % 300));
}

/// Message kind, interned once so the send path never hits the table.
const KindId kUpdateKind("SLOW");

}  // namespace

SlowPartialProcess::SlowPartialProcess(ProcessId self,
                                       const graph::Distribution& dist,
                                       HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder) {}

void SlowPartialProcess::on_attach() {
  update_pool_ = &arena().pool<SlowUpdate>();
}

void SlowPartialProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void SlowPartialProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();
  mutable_store().put(x, v, wid);
  recorder().record_write(id(), x, v, wid, t, t);
  ++mutable_stats().writes;

  auto* body = update_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->var_seq = ++my_var_seq_[x];

  SendPlan plan;
  plan.body = BodyRef::adopt(body);
  plan.meta.kind = kUpdateKind;
  plan.meta.control_bytes = 16 + 8 + 8;
  plan.meta.payload_bytes = 8;
  plan.meta.vars_mentioned = {x};
  for (ProcessId q : replicas_of(x)) {
    if (q != id()) plan.to.push_back(q);
  }
  emit(std::move(plan));
  done();
}

void SlowPartialProcess::handle_message(const Message& m) {
  const auto* u = m.as<SlowUpdate>();
  PARDSM_CHECK(u != nullptr, "slow: unexpected message body");
  Pending p;
  p.x = u->x;
  p.v = u->v;
  p.id = u->id;
  p.var_seq = u->var_seq;
  p.writer = m.from;
  // try_emplace (not operator[]): the recycling-allocated queue has no
  // default constructor — a fresh key wires the shared node pool in.
  auto [qit, fresh] = pending_.try_emplace(
      std::make_pair(m.from, u->x),
      PendingQueue::allocator_type(&node_pool_));
  qit->second.insert_or_assign(u->var_seq, p);
  ++mutable_stats().updates_buffered;

  const TimerTag tag = next_timer_++;
  timers_[tag] = {m.from, u->x};
  transport().set_timer(id(), jitter(m.from, u->x, u->var_seq), tag);
}

void SlowPartialProcess::handle_timer(TimerTag tag) {
  auto it = timers_.find(tag);
  if (it == timers_.end()) return;
  const auto [writer, x] = it->second;
  timers_.erase(it);
  drain(writer, x);
}

void SlowPartialProcess::drain(ProcessId writer, VarId x) {
  auto key = std::make_pair(writer, x);
  auto qit = pending_.find(key);
  if (qit == pending_.end()) return;  // only reachable after handle_message
  auto& queue = qit->second;
  auto& expect = expected_[key];  // default 0 → first var_seq is 1
  // Discard stale entries (duplicated copies of already-applied updates).
  while (!queue.empty() && queue.begin()->first <= expect) {
    queue.erase(queue.begin());
  }
  while (!queue.empty() && queue.begin()->first == expect + 1) {
    const Pending& p = queue.begin()->second;
    if (replicates(p.x)) {
      mutable_store().put(p.x, p.v, p.id);
      ++mutable_stats().updates_applied;
    }
    ++expect;
    queue.erase(queue.begin());
    while (!queue.empty() && queue.begin()->first <= expect) {
      queue.erase(queue.begin());
    }
  }
}

}  // namespace pardsm::mcs
