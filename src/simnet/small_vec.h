// Small-buffer vector for message metadata.
//
// MessageMeta::vars_mentioned holds 0-2 variables for every protocol in
// the repository, yet as a std::vector it cost one heap allocation per
// message constructed, copied or queued.  SmallVec stores up to N elements
// inline and only spills to the heap beyond that, so moving a Message
// through the event queue never allocates on the steady-state path.
//
// Restricted to trivially copyable element types (ids, integers): inline
// storage is copied with memcpy semantics and no destructors are run on
// elements.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <type_traits>

#include "simnet/check.h"

namespace pardsm {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially copyable element types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& other) { append_all(other); }

  SmallVec(SmallVec&& other) noexcept { steal(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      // Reuse existing capacity (inline or heap): pooled objects assign
      // into recycled storage on every reuse, and freeing the buffer here
      // would put an allocation back on that steady-state path.
      clear();
      append_all(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear_storage();
      steal(other);
    }
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    clear();
    for (const T& v : init) push_back(v);
    return *this;
  }

  ~SmallVec() { clear_storage(); }

  void push_back(const T& v) {
    // Copy first: `v` may alias an element and grow() frees the old
    // buffer (same self-insertion safety std::vector gives).
    const T value = v;
    if (size_ == capacity_) grow();
    data()[size_++] = value;
  }

  void clear() { size_ = 0; }  // keeps any heap capacity for reuse

  /// Grow or shrink to exactly `n` elements; new elements take `fill`.
  /// Capacity is only ever kept or increased.
  void resize(std::size_t n, const T& fill = T{}) {
    while (capacity_ < n) grow();
    for (std::size_t i = size_; i < n; ++i) data()[i] = fill;
    size_ = static_cast<std::uint32_t>(n);
  }

  /// Replace the contents with `n` copies of `value`, reusing capacity.
  void assign(std::size_t n, const T& value) {
    clear();
    resize(n, value);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool inline_storage() const { return heap_ == nullptr; }

  [[nodiscard]] T* data() { return heap_ ? heap_ : inline_; }
  [[nodiscard]] const T* data() const { return heap_ ? heap_ : inline_; }

  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  /// The doubled capacity grow() moves to.  `capacity * 2` in 32 bits
  /// wraps silently at 2³¹ elements; the check makes that failure loud
  /// (matching the kind-table overflow check) instead of a zero-sized
  /// buffer and an out-of-bounds write.  Public so the overflow guard is
  /// unit-testable without materializing 2³¹ elements.
  [[nodiscard]] static std::uint32_t next_capacity(std::uint32_t capacity) {
    PARDSM_CHECK(capacity <= (~std::uint32_t{0}) / 2,
                 "SmallVec: capacity overflow (2^31 elements)");
    return capacity * 2;
  }

 private:
  void append_all(const SmallVec& other) {
    for (const T& v : other) push_back(v);
  }

  void steal(SmallVec& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = static_cast<std::uint32_t>(N);
    } else {
      std::copy(other.inline_, other.inline_ + other.size_, inline_);
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void grow() {
    const auto new_capacity = next_capacity(capacity_);
    T* bigger = new T[new_capacity];
    std::copy(data(), data() + size_, bigger);
    delete[] heap_;
    heap_ = bigger;
    capacity_ = new_capacity;
  }

  void clear_storage() {
    delete[] heap_;
    heap_ = nullptr;
    size_ = 0;
    capacity_ = static_cast<std::uint32_t>(N);
  }

  T* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = static_cast<std::uint32_t>(N);
  T inline_[N] = {};
};

}  // namespace pardsm
