// Open-loop YCSB-style workload generation.
//
// A Spec names a synthetic load — read/write mix, key popularity
// (uniform or zipf over each process's own replica set), per-process op
// count, and an optional open-loop arrival rate — and a Generator turns
// it into an operation stream *lazily*: op(p, k) is a pure function of
// (spec.seed, p, k) via a counter-based RNG stream, so the k-th operation
// of process p is the same no matter when, where, or in what order it is
// asked for.  Nothing is ever materialized: a million-op stream costs the
// same memory as a ten-op stream, which is what lets the engine's
// WorkloadClient (mcs/engine.h) stream millions of ops per run with peak
// RSS independent of the op count — the property a Script (one stored
// ScriptOp per op) cannot have.
//
// Key popularity follows the YCSB zipfian construction: rank r of a
// process's |X_i| local variables is drawn with probability ∝ 1/(r+1)^θ,
// rank 0 (the process's first variable) hottest.  θ ∈ (0, 1); the YCSB
// default is 0.99.  Zeta normalization tables are precomputed per
// distinct replica-set size at construction, so the per-op draw is
// allocation-free.
//
// Open- vs closed-loop: arrival_rate == 0 is the classic closed loop —
// each client issues its next op when the previous one completes.  A
// positive rate is an open loop: op k of every process *arrives* at
// start + k/rate regardless of how the system is doing, and latency is
// measured from that scheduled arrival (so queueing delay behind a slow
// or crashed system is charged to the op — no coordinated omission).
// Open loop needs simulated time and is therefore restricted to the
// simulator runtimes; see docs/WORKLOADS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "sharegraph/share_graph.h"
#include "simnet/sim_time.h"

namespace pardsm::workload {

enum class KeyDist : std::uint8_t {
  kUniform,  ///< every local variable equally likely
  kZipf,     ///< zipfian by local rank (rank 0 hottest), skew = zipf_theta
};

/// A complete synthetic-load description.  Value semantics, trivially
/// copyable; EngineConfig borrows a pointer to one.
struct Spec {
  std::uint64_t ops_per_process = 1'000;
  /// Probability that an op is a read (the rest are writes).
  double read_fraction = 0.95;
  KeyDist keys = KeyDist::kUniform;
  /// Zipf skew θ ∈ (0, 1); only read under KeyDist::kZipf.
  double zipf_theta = 0.99;
  /// Open-loop arrivals per simulated second per process; 0 = closed loop.
  double arrival_rate = 0.0;
  std::uint64_t seed = 1;
};

/// One generated operation.
struct OpSpec {
  bool is_read = true;
  VarId var = kNoVar;
  Value value = kBottom;  ///< written value (writes only), globally unique
};

class Generator {
 public:
  /// Precomputes the zipf tables; `dist` is borrowed and must outlive the
  /// generator.  Every process must replicate at least one variable.
  Generator(const graph::Distribution& dist, const Spec& spec);

  /// The k-th operation of process p — a pure function of
  /// (spec.seed, p, k), independent of call order, thread count and
  /// schedule (the determinism tests pin this).
  [[nodiscard]] OpSpec op(ProcessId p, std::uint64_t k) const;

  /// Scheduled open-loop arrival instant of op k (closed loop: `start`).
  [[nodiscard]] TimePoint arrival(TimePoint start, std::uint64_t k) const {
    return open_loop()
               ? start + Duration{static_cast<std::int64_t>(
                             arrival_offset_us(spec_.arrival_rate, k))}
               : start;
  }

  [[nodiscard]] bool open_loop() const { return spec_.arrival_rate > 0.0; }
  [[nodiscard]] std::uint64_t ops_per_process() const {
    return spec_.ops_per_process;
  }
  [[nodiscard]] const Spec& spec() const { return spec_; }

  /// The globally unique value written by process p's op k, packed as
  /// (k << kProcessBits) | p.  Guarded against the wrap that packing
  /// invites at scale: p must fit kProcessBits and k the remaining 43
  /// value bits — ~8.8e12 writes per process before the guard trips,
  /// loudly, instead of two writes silently colliding.  Public static so
  /// the wrap regression test can probe the boundary without issuing
  /// 2^43 real ops.
  [[nodiscard]] static Value packed_value(ProcessId p, std::uint64_t k);
  static constexpr unsigned kProcessBits = 20;  ///< up to ~1M processes

  /// Open-loop arrival offset of op k in microseconds: round(k * 1e6 /
  /// rate), computed in double (exact for any feasible k: k * 1e6 stays
  /// under 2^53 until k ~ 9e9 ops even at rate 1).  Guarded against
  /// overflowing the int64 microsecond clock.  Public static for the wrap
  /// harness.
  [[nodiscard]] static std::uint64_t arrival_offset_us(double rate,
                                                       std::uint64_t k);

 private:
  /// YCSB zipfian constants for a universe of n ranks.
  struct ZipfParams {
    std::uint64_t n = 0;
    double zetan = 0.0;
    double theta = 0.0;
    double alpha = 0.0;
    double eta = 0.0;
  };

  [[nodiscard]] static std::uint64_t zipf_rank(const ZipfParams& z, double u);

  const graph::Distribution* dist_;
  Spec spec_;
  /// Per-process zipf constants (empty unless keys == kZipf); processes
  /// with the same |X_i| share the same values but the table is indexed by
  /// process for an O(1) branch-free lookup on the per-op path.
  std::vector<ZipfParams> zipf_;
};

}  // namespace pardsm::workload
