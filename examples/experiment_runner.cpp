// experiment_runner — command-line driver for ad-hoc experiments.
//
//   ./examples/experiment_runner <protocol> <topology> [n] [ops] [seed]
//
//   protocol: atomic | sc | causal-full | causal-naive | causal-adhoc |
//             pram | slow | cache | processor
//   topology: chain | open-chain | ring | star | grid | clusters |
//             hypercube | torus | random | prefattach
//
// Runs a random workload, prints the efficiency report (observed vs
// Theorem-1 relevance), traffic totals and the history's classification.

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "core/analysis.h"
#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;

mcs::ProtocolKind parse_protocol(const std::string& s) {
  static const std::map<std::string, mcs::ProtocolKind> kMap = {
      {"atomic", mcs::ProtocolKind::kAtomicHome},
      {"sc", mcs::ProtocolKind::kSequencerSC},
      {"causal-full", mcs::ProtocolKind::kCausalFull},
      {"causal-naive", mcs::ProtocolKind::kCausalPartialNaive},
      {"causal-adhoc", mcs::ProtocolKind::kCausalPartialAdHoc},
      {"pram", mcs::ProtocolKind::kPramPartial},
      {"slow", mcs::ProtocolKind::kSlowPartial},
      {"cache", mcs::ProtocolKind::kCachePartial},
      {"processor", mcs::ProtocolKind::kProcessorPartial},
  };
  auto it = kMap.find(s);
  if (it == kMap.end()) {
    std::cerr << "unknown protocol '" << s << "'\n";
    std::exit(2);
  }
  return it->second;
}

graph::Distribution parse_topology(const std::string& s, std::size_t n,
                                   std::uint64_t seed) {
  if (s == "chain") return graph::topo::chain_with_hoop(n);
  if (s == "open-chain") return graph::topo::open_chain(n);
  if (s == "ring") return graph::topo::ring(n);
  if (s == "star") return graph::topo::star(n);
  if (s == "grid") return graph::topo::grid(n, n);
  if (s == "clusters") return graph::topo::clusters(n, 3, true);
  if (s == "hypercube") return graph::topo::hypercube(n);
  if (s == "torus") return graph::topo::torus(n, n);
  if (s == "random") return graph::topo::random_replication(n, 2 * n, 3, seed);
  if (s == "prefattach") {
    return graph::topo::preferential_attachment(n, 2, seed);
  }
  std::cerr << "unknown topology '" << s << "'\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " <protocol> <topology> [n=8] [ops=6] [seed=1]\n";
    return 2;
  }
  const auto kind = parse_protocol(argv[1]);
  const std::size_t n = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;
  const std::size_t ops = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 6;
  const std::uint64_t seed =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
  const auto dist = parse_topology(argv[2], n, seed);

  mcs::WorkloadSpec spec;
  spec.ops_per_process = ops;
  spec.read_fraction = 0.5;
  spec.seed = seed;
  const auto scripts = mcs::make_random_scripts(dist, spec);

  mcs::RunOptions options;
  options.sim_seed = seed;
  options.latency = std::make_unique<UniformLatency>(millis(1), millis(10));
  const auto run = mcs::run_workload(kind, dist, scripts, std::move(options));

  std::cout << "protocol : " << mcs::to_string(kind) << '\n'
            << "topology : " << dist.name << "  (" << dist.process_count()
            << " processes, " << dist.var_count << " variables)\n"
            << "ops      : " << run.history.size() << " recorded\n"
            << "sim time : " << run.finished_at.us / 1000 << " ms\n"
            << "traffic  : " << run.total_traffic.msgs_sent << " msgs, "
            << run.total_traffic.control_bytes_sent << " control B, "
            << run.total_traffic.payload_bytes_sent << " payload B\n\n";

  const auto report =
      core::analyze_run(dist, run.observed_relevant, run.total_traffic);
  std::cout << report.to_table() << '\n';

  const auto model = core::predict(kind, dist);
  std::cout << "analytic model: " << model.messages_per_write
            << " msgs/write, " << model.control_bytes_per_write
            << " control B/write, " << model.recipients_outside_clique
            << " recipients beyond C(x)/write\n\n";

  std::cout << "classification: "
            << hist::classify(run.history).to_string() << '\n';
  return 0;
}
