// S3 — scale past paper-size systems: protocols × large-n topologies.
//
// The paper's figures stop at a handful of processes; its efficiency
// claim — message and metadata cost track *which* processes share a
// variable, not how many processes exist — only becomes measurable when
// n is large enough for O(n) and O(|C(x)|) to diverge by orders of
// magnitude.  This sweep runs every protocol over four large-n shapes
// (the hoop-free open chain, datacenter sharding, a hierarchical tree of
// cells, and Zipf-skewed replication) at n ∈ {64, 256, 1024, 4096} and
// reports, besides the usual message/byte/exposure counters:
//
//   active_pairs  directed pairs that carried traffic — the sparse
//                 network's channel state is O(this), not O(n²)
//   net_state_kb  bytes the per-pair tables actually hold
//   max_rss_kb    process peak RSS at row completion (high-water: rows
//                 run in ascending n order, so the first row of each n
//                 bounds that configuration's footprint)
//
// Expected shape: for the efficient protocols (pram/slow/cache/
// processor/atomic-home) messages grow with Σ|C(x)|, active pairs stay
// near the share-graph edge count, and RSS grows roughly linearly in n.
// The inefficient protocols hit walls the sweep itself documents:
// causal-full and causal-partial-naive (O(n) fan-out per write, O(n·m)
// replica/clock state) are swept through n = 1024 and excluded at 4096;
// causal-partial-adhoc is excluded exactly where Theorem 1 predicts —
// on the hoop-rich zipf shape past n = 256 its R(x)-routed dependency
// metadata goes super-linear (minutes per run), and at 4096 the static
// relevance analysis alone (per-candidate max-flow over every variable)
// costs minutes.  Those exclusions *are* the paper's point, priced in
// RAM, messages and wall-clock.
//
// --quick caps the sweep at n = 256 (CI budget); the full run adds
// n = 1024 and 4096.
//
// --threads N runs the sweep on the sharded parallel engine instead of
// the sequential simulator: every cell executes once at 1 worker thread
// and once at N, and the row gains a speedup_vs_1t column (extra keys
// `threads` / `speedup_vs_1t`; the document schema stays
// pardsm-bench-v3).  Meaningful speedups need real cores — on a
// single-core host the column reads ~1.0 and mostly prices the barrier
// overhead (docs/PARALLEL.md records both regimes).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

/// Total application operations per cell, split evenly over processes:
/// keeps big-n cells tractable while small-n cells stay statistically
/// interesting.
constexpr std::uint64_t kOpsBudget = 2048;

/// The four large-n shapes at a target size.  hierarchical() sizes are
/// the nearest complete 4-ary tree (85/341/1365/5461 processes).
std::vector<graph::Distribution> topologies_at(std::size_t n) {
  const std::size_t depth = n <= 64 ? 4 : n <= 256 ? 5 : n <= 1024 ? 6 : 7;
  std::vector<graph::Distribution> out;
  out.push_back(graph::topo::open_chain(n));
  out.push_back(graph::topo::sharded(/*shards=*/n / 8,
                                     /*replicas_per_var=*/8, /*vars=*/n));
  out.push_back(graph::topo::hierarchical(/*branching=*/4, depth));
  out.push_back(graph::topo::zipf_replication(n, /*m=*/n, /*r=*/3,
                                              /*skew=*/1.1, /*seed=*/7));
  return out;
}

/// Where each protocol stops fitting a laptop-class budget (see the
/// header comment): the broadcast protocols past n = 1024, the ad-hoc
/// causal protocol past n = 256 on the hoop-rich zipf shape and past
/// n = 1024 everywhere (static relevance analysis cost).
bool feasible_at(ProtocolKind kind, std::size_t n,
                 const graph::Distribution& dist) {
  if (kind == ProtocolKind::kCausalFull ||
      kind == ProtocolKind::kCausalPartialNaive) {
    return n <= 1024;
  }
  if (kind == ProtocolKind::kCausalPartialAdHoc) {
    const bool hoop_rich = dist.name.rfind("zipf", 0) == 0;
    return hoop_rich ? n <= 256 : n <= 1024;
  }
  return true;
}

void sweep(bu::Harness& h, unsigned threads) {
  std::vector<std::size_t> sizes = {64, 256};
  if (!h.quick()) {
    sizes.push_back(1024);
    sizes.push_back(4096);
  }

  {
    std::ostringstream title;
    title << "S3 scale sweep (ops budget " << kOpsBudget << ", n ascending";
    if (threads > 0) title << ", parallel engine, " << threads << " threads";
    title << ")";
    bu::banner(title.str());
  }
  std::vector<std::string> header = {"distribution", "protocol", "n",
                                     "msgs",         "bytes",    "pairs",
                                     "netKB",        "rssMB",    "ms"};
  if (threads > 0) header.push_back("x1t");
  bu::row(header);

  for (const std::size_t n : sizes) {
    for (const auto& dist : topologies_at(n)) {
      WorkloadSpec spec;
      spec.ops_per_process =
          std::max<std::size_t>(1, kOpsBudget / dist.process_count());
      spec.read_fraction = 0.5;
      spec.seed = 42;
      const auto scripts = make_random_scripts(dist, spec);

      // Built via append: GCC 12's -Wrestrict false-fires on the
      // char* + std::string&& operator at -O2.
      std::string label = "n";
      label += bu::num(std::uint64_t{n});

      for (auto kind : all_protocols()) {
        if (!feasible_at(kind, n, dist)) continue;
        // Threads mode: time the same cell at 1 worker first so the row
        // can carry its own parallel speedup.
        std::uint64_t wall_1t_ns = 0;
        if (threads > 0) {
          bu::WallTimer t1;
          const auto r1 = run_workload_parallel(kind, dist, scripts, 1, {});
          wall_1t_ns = t1.ns();
          benchmark::DoNotOptimize(&r1);
        }
        bu::WallTimer timer;
        const auto r =
            threads > 0
                ? run_workload_parallel(kind, dist, scripts, threads, {})
                : run_workload(kind, dist, scripts, {});
        const std::uint64_t wall_ns = timer.ns();
        const std::uint64_t rss_kb = bu::max_rss_kb();
        const double speedup_vs_1t =
            threads > 0 && wall_ns > 0
                ? static_cast<double>(wall_1t_ns) /
                      static_cast<double>(wall_ns)
                : 0.0;

        const auto pairs = static_cast<double>(r.active_channel_pairs);
        const double net_kb =
            static_cast<double>(r.channel_state_bytes) / 1024.0;
        std::vector<std::string> cells = {
            dist.name, to_string(kind), bu::num(std::uint64_t{n}),
            bu::num(r.total_traffic.msgs_sent),
            bu::num(r.total_traffic.wire_bytes_sent()),
            bu::num(r.active_channel_pairs), bu::num(net_kb, 1),
            bu::num(static_cast<double>(rss_kb) / 1024.0, 1),
            bu::num(static_cast<double>(wall_ns) / 1e6, 1)};
        if (threads > 0) cells.push_back(bu::num(speedup_vs_1t, 2));
        bu::row(cells);
        std::vector<std::pair<std::string, double>> extra = {
            {"n", static_cast<double>(n)},
            {"processes", static_cast<double>(dist.process_count())},
            {"vars", static_cast<double>(dist.var_count)},
            {"active_pairs", pairs},
            {"net_state_kb", net_kb},
            {"pair_fraction_of_n2",
             pairs / (static_cast<double>(dist.process_count()) *
                      static_cast<double>(dist.process_count()))},
            {"events", static_cast<double>(r.events)},
        };
        if (threads > 0) {
          extra.emplace_back("threads", static_cast<double>(threads));
          extra.emplace_back("speedup_vs_1t", speedup_vs_1t);
        }
        h.record(
            {.label = label,
             .protocol = to_string(kind),
             .distribution = dist.name,
             .ops = r.history.size(),
             .messages = r.total_traffic.msgs_sent,
             .bytes = r.total_traffic.wire_bytes_sent(),
             .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
             .wall_ns = wall_ns,
             .max_rss_kb = rss_kb,
             .extra = std::move(extra)});
      }
    }
  }
  std::cout << "(active pairs / netKB are the sparse Network's channel "
               "state — O(active pairs), not O(n^2); rssMB is the process "
               "high-water, rows run in ascending n)\n";
}

void BM_Scale(benchmark::State& state, ProtocolKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dist = graph::topo::sharded(n / 8, 8, n);
  WorkloadSpec spec;
  spec.ops_per_process = std::max<std::size_t>(1, kOpsBudget / n);
  spec.seed = 42;
  const auto scripts = make_random_scripts(dist, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(kind, dist, scripts, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * spec.ops_per_process));
}
BENCHMARK_CAPTURE(BM_Scale, pram_sharded, ProtocolKind::kPramPartial)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_Scale, atomic_sharded, ProtocolKind::kAtomicHome)
    ->Arg(64)
    ->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "scale");
  // Bench-specific flag, stripped before benchmark::Initialize:
  // --threads N (or --threads=N) switches the sweep to the parallel
  // engine with N worker threads; 0 (the default) keeps the sequential
  // simulator and the historical rows.
  unsigned threads = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argv[kept] = nullptr;
  argc = kept;

  sweep(h, threads);
  if (!h.quick() && threads == 0) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
