// Fundamental identifier and value types shared by every pardsm layer.
//
// The paper models a system of n MCS processes p_1..p_n and m shared
// variables x_1..x_m.  We index both from 0.  Values are 64-bit integers;
// the paper's initial value "bottom" is represented by kBottom.
#pragma once

#include <cstdint>
#include <limits>

namespace pardsm {

/// Index of an MCS/application process pair (the paper's p_i / ap_i).
using ProcessId = std::int32_t;

/// Index of a shared variable (the paper's x_h).
using VarId = std::int32_t;

/// Value stored in a shared variable.
using Value = std::int64_t;

/// Sentinel used where a process id is not yet known.
inline constexpr ProcessId kNoProcess = -1;

/// Sentinel used where a variable id is not yet known.
inline constexpr VarId kNoVar = -1;

/// The paper's initial value "bottom": every variable holds it before any
/// write.  A read returning kBottom models r(x)⊥.
inline constexpr Value kBottom = std::numeric_limits<Value>::min();

/// Identity of a write operation: writer process plus the writer-local
/// sequence number of the write (0-based position among that writer's
/// writes).  Replicas carry provenance so the read-from relation of
/// recorded histories is exact, never inferred from value equality.
struct WriteId {
  ProcessId writer = kNoProcess;
  std::int64_t seq = -1;

  friend bool operator==(const WriteId&, const WriteId&) = default;
  friend auto operator<=>(const WriteId&, const WriteId&) = default;

  /// True if this id denotes a real write (not the initial value).
  [[nodiscard]] bool valid() const { return writer != kNoProcess; }
};

/// WriteId for "nobody wrote yet" (the initial ⊥ content of a variable).
inline constexpr WriteId kInitialWrite{};

}  // namespace pardsm
