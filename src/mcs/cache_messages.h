// Wire messages shared by the cache- and processor-consistency protocols.
#pragma once

#include <map>

#include "simnet/message.h"

namespace pardsm::mcs::detail {

/// Writer -> home: please sequence this write.
struct CacheWriteReq final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  TimePoint invoked{};
  std::int64_t writer_seq = 0;
  /// Per receiver q ∈ C(x): number of the writer's prior writes on
  /// variables q replicates (processor consistency only; empty for cache).
  std::map<ProcessId, std::int64_t> prior_counts;
};

/// Home -> C(x): the write, with its position in x's total order.
struct CacheCommit final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  std::int64_t var_seq = 0;
  ProcessId requester = kNoProcess;
  TimePoint invoked{};
  std::int64_t writer_seq = 0;
  std::map<ProcessId, std::int64_t> prior_counts;
};

}  // namespace pardsm::mcs::detail
