// Distributed Bellman-Ford over pardsm shared memory (paper Section 6,
// Figures 7-9).
//
// Each network node is an application process ap_i cooperating through
// shared variables:
//   x_i (distance of node i from the source), written only by ap_i;
//   k_i (iteration counter of ap_i),          written only by ap_i.
// ap_i accesses x_h, k_h for h = i and every predecessor h ∈ Γ⁻¹(i) —
// exactly the partial-replication distribution printed in the paper.
//
// The algorithm is Figure 7 verbatim, in event-driven form: the busy-wait
// barrier of line 6 ("while exists h ∈ Γ⁻¹(i): k_h < k_i") becomes a
// polling timer.  Since x_i and k_i are single-writer and ap_i writes x_i
// *before* advancing k_i, PRAM consistency suffices: a reader that
// observes k_h = r has, by pipelined per-writer order, already received
// the round-r value of x_h.  (Slow memory does NOT suffice — the
// cross-variable reorder of k_h ahead of x_h breaks the hand-off; see
// tests and DESIGN.md.)
#pragma once

#include <memory>
#include <vector>

#include "apps/weighted_graph.h"
#include "mcs/driver.h"
#include "sharegraph/share_graph.h"

namespace pardsm::apps {

/// Variable layout: x_i has id i, k_i has id n+i.
[[nodiscard]] inline VarId x_var(int i) { return static_cast<VarId>(i); }
[[nodiscard]] inline VarId k_var(std::size_t n, int i) {
  return static_cast<VarId>(n + static_cast<std::size_t>(i));
}

/// The paper's Section 6 variable distribution for a network graph:
/// X_i = {x_h, k_h : h = i or h ∈ Γ⁻¹(i)}.
[[nodiscard]] graph::Distribution bellman_ford_distribution(
    const WeightedGraph& g);

/// Options for a distributed run.
struct BellmanFordOptions {
  int source = 0;
  mcs::ProtocolKind protocol = mcs::ProtocolKind::kPramPartial;
  std::uint64_t sim_seed = 1;
  /// Poll interval of the line-6 barrier.
  Duration poll = millis(2);
  /// Network latency bounds (uniform).
  Duration latency_lo = millis(1);
  Duration latency_hi = millis(5);
  /// Safety bound on barrier polls per process (0 = default).
  std::uint64_t max_polls = 100000;
};

/// Result of a distributed run.
struct BellmanFordResult {
  std::vector<std::int64_t> distances;  ///< final x_i at each owner
  std::vector<std::int64_t> rounds;     ///< final k_i
  bool matches_reference = false;
  std::vector<std::int64_t> reference;
  /// Traffic summary of the underlying MCS.
  ProcessTraffic total_traffic;
  std::uint64_t barrier_polls = 0;  ///< total spin iterations (line 6)
  /// Times a reader saw k_j without the preceding x_j (impossible under
  /// PRAM; nonzero runs witness the slow-memory ablation).
  std::uint64_t handoff_violations = 0;
  TimePoint finished_at{};
  hist::History history;  ///< recorded shared-memory operations
};

/// Run the Figure 7 algorithm on the given network and protocol.
[[nodiscard]] BellmanFordResult run_bellman_ford(
    const WeightedGraph& g, const BellmanFordOptions& options = {});

/// Render the recorded history as the paper's Figure 9 step table: one
/// row per process and iteration step, each step's operations in program
/// order, ending with the step's w(x_i) and w(k_i) pair.  `max_steps`
/// bounds the number of steps shown per process (0 = all).
[[nodiscard]] std::string format_fig9_table(const BellmanFordResult& result,
                                            std::size_t node_count,
                                            std::size_t max_steps = 2);

}  // namespace pardsm::apps
