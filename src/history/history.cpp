#include "history/history.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "simnet/check.h"

namespace pardsm::hist {

History::History(std::size_t process_count, std::size_t var_count)
    : var_count_(var_count),
      per_process_(process_count),
      writes_by_proc_(process_count, 0) {}

OpIndex History::push_write(ProcessId proc, VarId var, Value value,
                            std::optional<WriteId> explicit_id) {
  PARDSM_CHECK(proc >= 0 && static_cast<std::size_t>(proc) < process_count(),
               "push_write: bad process");
  PARDSM_CHECK(var >= 0 && static_cast<std::size_t>(var) < var_count_,
               "push_write: bad variable");
  Operation op;
  op.kind = Operation::Kind::kWrite;
  op.proc = proc;
  op.var = var;
  op.value = value;
  op.proc_seq = static_cast<std::int32_t>(per_process_[proc].size());
  op.write_id = explicit_id.value_or(
      WriteId{proc, writes_by_proc_[static_cast<std::size_t>(proc)]});
  ++writes_by_proc_[static_cast<std::size_t>(proc)];
  const OpIndex idx = checked_op_index(ops_.size());
  ops_.push_back(op);
  per_process_[static_cast<std::size_t>(proc)].push_back(idx);
  return idx;
}

OpIndex History::push_read(ProcessId proc, VarId var, Value value,
                           std::optional<WriteId> source) {
  PARDSM_CHECK(proc >= 0 && static_cast<std::size_t>(proc) < process_count(),
               "push_read: bad process");
  PARDSM_CHECK(var >= 0 && static_cast<std::size_t>(var) < var_count_,
               "push_read: bad variable");
  Operation op;
  op.kind = Operation::Kind::kRead;
  op.proc = proc;
  op.var = var;
  op.value = value;
  op.proc_seq = static_cast<std::int32_t>(per_process_[proc].size());
  if (source.has_value()) {
    op.write_id = *source;
  } else if (value == kBottom) {
    op.write_id = kInitialWrite;
  } else {
    op.write_id = WriteId{kNoProcess, -2};  // "unresolved": match by value
  }
  const OpIndex idx = checked_op_index(ops_.size());
  ops_.push_back(op);
  per_process_[static_cast<std::size_t>(proc)].push_back(idx);
  return idx;
}

OpIndex History::checked_op_index(std::size_t op_count) {
  PARDSM_CHECK(op_count <= 0x7FFF'FFFEULL,
               "history exceeds 2^31-1 operations — use the recorder's "
               "discard mode for streamed runs");
  return static_cast<OpIndex>(op_count);
}

void History::set_interval(OpIndex op, TimePoint invoked,
                           TimePoint responded) {
  PARDSM_CHECK(op >= 0 && static_cast<std::size_t>(op) < ops_.size(),
               "set_interval: bad op");
  ops_[static_cast<std::size_t>(op)].invoked = invoked;
  ops_[static_cast<std::size_t>(op)].responded = responded;
}

const Operation& History::op(OpIndex i) const {
  PARDSM_CHECK(i >= 0 && static_cast<std::size_t>(i) < ops_.size(),
               "op: bad index");
  return ops_[static_cast<std::size_t>(i)];
}

const std::vector<OpIndex>& History::ops_of(ProcessId p) const {
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < per_process_.size(),
               "ops_of: bad process");
  return per_process_[static_cast<std::size_t>(p)];
}

std::vector<OpIndex> History::writes() const {
  std::vector<OpIndex> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].is_write()) out.push_back(static_cast<OpIndex>(i));
  }
  return out;
}

std::vector<OpIndex> History::writes_on(VarId x) const {
  std::vector<OpIndex> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].is_write() && ops_[i].var == x) {
      out.push_back(static_cast<OpIndex>(i));
    }
  }
  return out;
}

std::vector<OpIndex> History::projection_i_plus_w(ProcessId p) const {
  std::vector<OpIndex> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].is_write() || ops_[i].proc == p) {
      out.push_back(static_cast<OpIndex>(i));
    }
  }
  return out;
}

std::vector<OpIndex> History::resolve_read_from() const {
  // Index writes by provenance and by (var, value).
  std::map<WriteId, OpIndex> by_id;
  std::map<std::pair<VarId, Value>, std::vector<OpIndex>> by_value;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    if (!op.is_write()) continue;
    by_id[op.write_id] = static_cast<OpIndex>(i);
    by_value[{op.var, op.value}].push_back(static_cast<OpIndex>(i));
  }

  std::vector<OpIndex> source(ops_.size(), kNoOp);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Operation& op = ops_[i];
    if (!op.is_read()) continue;
    if (op.write_id == kInitialWrite) continue;  // r(x)⊥
    if (op.write_id.valid()) {
      auto it = by_id.find(op.write_id);
      if (it == by_id.end()) {
        throw std::logic_error("resolve_read_from: read " + op.to_string() +
                               " has provenance of an unknown write");
      }
      source[i] = it->second;
      continue;
    }
    // Unresolved: match by unique (var, value).
    auto it = by_value.find({op.var, op.value});
    if (it == by_value.end() || it->second.empty()) {
      throw std::logic_error("resolve_read_from: read " + op.to_string() +
                             " returns a value never written");
    }
    if (it->second.size() > 1) {
      throw std::logic_error(
          "resolve_read_from: read " + op.to_string() +
          " is ambiguous (value written more than once; give provenance)");
    }
    source[i] = it->second.front();
  }
  return source;
}

bool History::read_from_resolvable() const {
  try {
    (void)resolve_read_from();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

std::string History::to_string() const {
  std::ostringstream os;
  for (std::size_t p = 0; p < per_process_.size(); ++p) {
    os << 'p' << p << ':';
    for (OpIndex i : per_process_[p]) {
      os << ' ' << ops_[static_cast<std::size_t>(i)].to_string();
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace pardsm::hist
