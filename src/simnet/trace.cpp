#include "simnet/trace.h"

#include <ostream>

namespace pardsm {

void Trace::record(TraceEntry e) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  entries_.push_back(std::move(e));
}

std::vector<TraceEntry> Trace::entries() const {
  std::lock_guard lock(mu_);
  return entries_;
}

std::size_t Trace::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void Trace::dump(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& e : entries_) {
    os << e.when.us << "us " << to_string(e.type) << " p" << e.from;
    if (e.to != kNoProcess) os << " -> p" << e.to;
    os << " [" << e.kind << "] #" << e.msg_id << '\n';
  }
}

void Trace::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

const char* to_string(TraceEntry::Type t) {
  switch (t) {
    case TraceEntry::Type::kSend:
      return "SEND";
    case TraceEntry::Type::kDeliver:
      return "DELV";
    case TraceEntry::Type::kDrop:
      return "DROP";
    case TraceEntry::Type::kTimer:
      return "TIMR";
  }
  return "????";
}

}  // namespace pardsm
