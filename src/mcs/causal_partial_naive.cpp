#include "mcs/causal_partial_naive.h"

#include <algorithm>

#include "simnet/wire.h"

namespace pardsm::mcs {

/// Update (with value) to C(x) members / notification (no value) to the
/// rest.  Both advance the receiver's vector clock.
struct PartialCausalMsg final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  bool has_value = false;
  WriteId id{};
  VectorClock vc;

  /// Pool reset: every field is overwritten on reuse (the send path
  /// assigns update/notify fields explicitly, the wire decoder assigns
  /// them all) and the clock's copy-assignment reuses its storage, so
  /// nothing needs clearing.
  // pardsm-lint: overwritten-by-creator(x, v, has_value, id, vc)
  void reset() {}

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kPartialCausalMsg;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    w.boolean(has_value);
    wire::put_write_id(w, id);
    put_vector_clock(w, vc);
  }
};

namespace {

const wire::BodyRegistrar partial_causal_codec(
    wire::kPartialCausalMsg, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<PartialCausalMsg>();
      b->x = r.i32();
      b->v = r.i64();
      b->has_value = r.boolean();
      b->id = wire::get_write_id(r);
      b->vc = get_vector_clock(r);
      return BodyRef::adopt(b);
    });

/// Message kinds, interned once so the send path never hits the table.
const KindId kUpdateKind("PUPD");
const KindId kNotifyKind("PNOT");

}  // namespace

CausalPartialNaiveProcess::CausalPartialNaiveProcess(
    ProcessId self, const graph::Distribution& dist,
    HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder), vc_(dist.process_count()) {}

void CausalPartialNaiveProcess::on_attach() {
  msg_pool_ = &arena().pool<PartialCausalMsg>();
}

void CausalPartialNaiveProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void CausalPartialNaiveProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  vc_.increment(id());
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();
  mutable_store().put(x, v, wid);
  recorder().record_write(id(), x, v, wid, t, t);
  ++mutable_stats().writes;

  auto* update = msg_pool_->create();
  update->x = x;
  update->v = v;
  update->has_value = true;
  update->id = wid;
  update->vc = vc_;

  auto* notify = msg_pool_->create();
  *notify = *update;  // payload fields only: each body keeps its identity
  notify->has_value = false;
  notify->v = kBottom;

  const BodyRef update_ref = BodyRef::adopt(update);
  const BodyRef notify_ref = BodyRef::adopt(notify);

  MessageMeta upd_meta;
  upd_meta.kind = kUpdateKind;
  upd_meta.control_bytes = vc_.wire_bytes() + 16 + 8;
  upd_meta.payload_bytes = 8;
  upd_meta.vars_mentioned = {x};

  MessageMeta not_meta = upd_meta;
  not_meta.kind = kNotifyKind;
  not_meta.payload_bytes = 0;

  // Per-recipient metadata (update vs notify) splits the round into
  // single-destination plans, emitted in ascending-q order — the exact
  // send order (and hence channel RNG draw order) of the pre-seam loop.
  const auto n = static_cast<ProcessId>(transport().process_count());
  for (ProcessId q = 0; q < n; ++q) {
    if (q == id()) continue;
    if (clique_holds(q, x)) {
      emit_to(q, update_ref, upd_meta);
    } else {
      emit_to(q, notify_ref, not_meta);
    }
  }
  done();
}

void CausalPartialNaiveProcess::handle_message(const Message& m) {
  buffer_.push_back(m);
  mutable_stats().max_buffer_depth = std::max(
      mutable_stats().max_buffer_depth,
      static_cast<std::uint64_t>(buffer_.size()));
  try_deliver();
}

void CausalPartialNaiveProcess::try_deliver() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      const auto* u = it->as<PartialCausalMsg>();
      PARDSM_CHECK(u != nullptr, "causal-partial: unexpected message body");
      if (!vc_.ready_from(u->vc, it->from)) {
        ++mutable_stats().updates_buffered;
        continue;
      }
      vc_.merge(u->vc);
      if (u->has_value && replicates(u->x)) {
        mutable_store().put(u->x, u->v, u->id);
        ++mutable_stats().updates_applied;
      }
      buffer_.erase(it);
      progress = true;
      break;
    }
  }
}

}  // namespace pardsm::mcs
