// Distributed matrix product on PRAM shared memory.
//
// Lipton & Sandberg [13] list matrix product among the oblivious
// computations PRAM memories can run (the paper repeats the claim in §5).
// Each process owns a block of rows of A and computes the matching rows of
// C = A × B:
//
//   variables: a_i (row block of A, written once by owner i),
//              b_j (row block of B, written once by owner j),
//              c_i (result block, written by owner i),
//              f_i (owner i's "inputs published" flag).
//
// Process i publishes its a/b blocks, raises f_i, spins until every f_j is
// up (same single-writer flag hand-off as Bellman-Ford — PRAM suffices),
// reads all of B and writes its rows of C.  The distribution is partial:
// A-cells and C-cells live only at their owner; B-cells and the flags are
// replicated everywhere (they are read by everyone).  One shared variable
// per matrix cell.
#pragma once

#include <cstdint>
#include <vector>

#include "mcs/driver.h"
#include "sharegraph/share_graph.h"

namespace pardsm::apps {

/// Square matrix, row-major.
using Matrix = std::vector<std::vector<std::int64_t>>;

/// Reference product (oracle).
[[nodiscard]] Matrix multiply_reference(const Matrix& a, const Matrix& b);

/// Deterministic random matrix with entries in [-bound, bound].
[[nodiscard]] Matrix random_matrix(std::size_t n, std::int64_t bound,
                                   std::uint64_t seed);

/// Options for a distributed multiply.
struct MatrixProductOptions {
  mcs::ProtocolKind protocol = mcs::ProtocolKind::kPramPartial;
  std::uint64_t sim_seed = 1;
  Duration poll = millis(2);
};

/// Result of a distributed multiply over `processes` row blocks.
struct MatrixProductResult {
  Matrix product;
  bool matches_reference = false;
  ProcessTraffic total_traffic;
  TimePoint finished_at{};
};

/// Multiply a × b with one process per row block.
[[nodiscard]] MatrixProductResult run_matrix_product(
    const Matrix& a, const Matrix& b, std::size_t processes,
    const MatrixProductOptions& options = {});

}  // namespace pardsm::apps
