// Channel behaviour: latency, FIFO ordering, loss and duplication.
//
// Network decides *when* (and whether, and how many times) each sent
// message is delivered.  It is deliberately independent of the event queue
// so channel semantics can be unit-tested in isolation.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "simnet/ids.h"
#include "simnet/latency.h"
#include "simnet/rng.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Per-channel fault and ordering knobs.
struct ChannelOptions {
  /// Deliver messages of each directed pair in send order.  PRAM and slow
  /// protocols rely on FIFO; causal protocols tolerate reordering.
  bool fifo = true;

  /// Probability that a message is silently dropped.
  double drop_probability = 0.0;

  /// Probability that a message is delivered twice.
  double duplicate_probability = 0.0;
};

/// Computes delivery schedules for messages.
class Network {
 public:
  /// Build a network over `n` processes.  `latency` may be null, meaning
  /// a default 1ms constant latency.
  Network(std::size_t n, ChannelOptions options,
          std::unique_ptr<LatencyModel> latency, Rng rng);

  /// Decide the fate of one message sent at `send_time`: returns the list
  /// of delivery times (empty if dropped, two entries if duplicated).
  /// FIFO clamping guarantees strictly increasing delivery times per
  /// directed pair when options.fifo is set.
  std::vector<TimePoint> plan_delivery(ProcessId from, ProcessId to,
                                       TimePoint send_time);

  [[nodiscard]] std::size_t process_count() const { return n_; }
  [[nodiscard]] const ChannelOptions& options() const { return options_; }

  /// Partition control: while a directed pair is severed, messages are
  /// dropped.  Used by fault-injection tests.
  void sever(ProcessId from, ProcessId to);
  void heal(ProcessId from, ProcessId to);
  [[nodiscard]] bool severed(ProcessId from, ProcessId to) const;

  /// Messages dropped so far (by fault injection or loss probability).
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }

 private:
  std::size_t n_;
  ChannelOptions options_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  /// Last planned delivery time per directed pair (FIFO clamp state).
  std::map<std::pair<ProcessId, ProcessId>, TimePoint> last_delivery_;
  std::map<std::pair<ProcessId, ProcessId>, bool> severed_;
  std::uint64_t dropped_ = 0;
};

}  // namespace pardsm
