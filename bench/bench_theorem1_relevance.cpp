// T1 — Theorem 1 measured: who observably handles x-information under
// each protocol, against the predicted x-relevant sets.
//
// Columns: Σ_x |C(x)| (the efficient ideal), Σ_x |R(x)| (Theorem 1),
// Σ_x |observed(x)|, and leak counts.  Expected shape:
//   pram/slow:   observed ⊆ C(x)               (efficient)
//   adhoc:       C(x) ⊆ observed ⊆ R(x)        (Theorem 1 exactly)
//   naive/full:  observed ≈ everyone           (the impossibility price)
//   sequencer:   C(x) ∪ {sequencer}            (centralisation)

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/analysis.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

std::vector<Script> exhaustive_scripts(const graph::Distribution& dist) {
  std::vector<Script> scripts(dist.process_count());
  Value v = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    for (VarId x : dist.per_process[p]) {
      scripts[p].push_back(ScriptOp::write(x, v++));
      scripts[p].push_back(ScriptOp::read(x));
    }
  }
  return scripts;
}

void print_table(bu::Harness& h) {
  const std::vector<graph::Distribution> corpus = {
      graph::topo::chain_with_hoop(6),
      graph::topo::star(5),
      graph::topo::clusters(3, 2, true),
      graph::topo::random_replication(8, 6, 2, 3),
  };
  for (const auto& dist : corpus) {
    const graph::ShareGraph sg(dist);
    std::size_t sum_c = 0, sum_r = 0;
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      sum_c += sg.clique(static_cast<VarId>(x)).size();
      sum_r += graph::x_relevant(sg, static_cast<VarId>(x)).size();
    }
    bu::banner("T1 on " + dist.name + "  (Σ|C|=" + std::to_string(sum_c) +
               ", Σ|R|=" + std::to_string(sum_r) + ", n*m=" +
               std::to_string(dist.process_count() * dist.var_count) + ")");
    bu::row({"protocol", "Σ|observed|", "leak>C(x)", "leak>R(x)",
             "efficient?"});
    for (auto kind : all_protocols()) {
      const auto scripts = exhaustive_scripts(dist);
      RunOptions options;
      options.latency = std::make_unique<UniformLatency>(millis(1), millis(8));
      const auto run = run_workload(kind, dist, scripts, std::move(options));
      // wall_ns times a second, warm run of the identical (deterministic)
      // workload so the row measures the engine, not cold-start noise.
      const std::uint64_t wall_ns = bu::time_ns([&] {
        RunOptions rerun;
        rerun.latency = std::make_unique<UniformLatency>(millis(1), millis(8));
        (void)run_workload(kind, dist, scripts, std::move(rerun));
      });
      const auto report = core::analyze_run(dist, run.observed_relevant,
                                            run.total_traffic);
      std::size_t observed = 0;
      for (const auto& vr : report.per_var) observed += vr.observed.size();
      bu::row({to_string(kind), bu::num(static_cast<std::uint64_t>(observed)),
               bu::num(static_cast<std::uint64_t>(
                   report.vars_leaking_past_clique)),
               bu::num(static_cast<std::uint64_t>(
                   report.vars_leaking_past_relevant)),
               bu::yesno(report.efficient())});
      h.record(
          {.label = dist.name,
           .protocol = to_string(kind),
           .distribution = dist.name,
           .ops = run.history.size(),
           .messages = run.total_traffic.msgs_sent,
           .bytes = run.total_traffic.wire_bytes_sent(),
           .sim_time_ms = static_cast<double>(run.finished_at.us) / 1000.0,
           .wall_ns = wall_ns,
           .extra = {{"sum_clique", static_cast<double>(sum_c)},
                     {"sum_relevant", static_cast<double>(sum_r)},
                     {"sum_observed", static_cast<double>(observed)},
                     {"leak_past_clique",
                      static_cast<double>(report.vars_leaking_past_clique)},
                     {"leak_past_relevant",
                      static_cast<double>(report.vars_leaking_past_relevant)},
                     {"efficient", report.efficient() ? 1.0 : 0.0}}});
    }
  }
}

void BM_RelevanceAnalysis(benchmark::State& state) {
  const auto dist = graph::topo::random_replication(
      static_cast<std::size_t>(state.range(0)),
      2 * static_cast<std::size_t>(state.range(0)), 3, 3);
  const graph::ShareGraph sg(dist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::all_relevant_sets(sg));
  }
}
BENCHMARK(BM_RelevanceAnalysis)->Range(8, 32);

void BM_WorkloadAdhocVsNaive(benchmark::State& state, ProtocolKind kind) {
  const auto dist = graph::topo::clusters(3, 2, true);
  const auto scripts = exhaustive_scripts(dist);
  for (auto _ : state) {
    RunOptions options;
    benchmark::DoNotOptimize(run_workload(kind, dist, scripts,
                                          std::move(options)));
  }
}
BENCHMARK_CAPTURE(BM_WorkloadAdhocVsNaive, naive,
                  ProtocolKind::kCausalPartialNaive);
BENCHMARK_CAPTURE(BM_WorkloadAdhocVsNaive, adhoc,
                  ProtocolKind::kCausalPartialAdHoc);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "theorem1_relevance");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
