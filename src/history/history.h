// Histories: collections of local histories, one per application process.
//
// H = <h_1, ..., h_n>, each h_i the sequence of operations invoked by
// ap_i.  This class stores O_H flat (global OpIndex order is insertion
// order) and maintains per-process sequences.  It also resolves the
// read-from relation: either exactly from write provenance (recorded
// protocol runs) or by unique-value matching (hand-written examples).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "history/operation.h"

namespace pardsm::hist {

/// A complete history H over n processes and m variables.
class History {
 public:
  /// An empty default-constructed history has no processes and no
  /// variables; useful only as a placeholder to assign into.
  explicit History(std::size_t process_count = 0, std::size_t var_count = 0);

  /// Append a write w_proc(var)value to h_proc.  Returns the new op's
  /// global index.  The write's WriteId seq is assigned automatically
  /// (writer-local write count) unless `explicit_id` is provided.
  OpIndex push_write(ProcessId proc, VarId var, Value value,
                     std::optional<WriteId> explicit_id = std::nullopt);

  /// Append a read r_proc(var)value.  `source` is the provenance of the
  /// write read from; omit it for hand-built histories (it will be
  /// resolved by unique-value matching) and pass kInitialWrite for r(x)⊥.
  OpIndex push_read(ProcessId proc, VarId var, Value value,
                    std::optional<WriteId> source = std::nullopt);

  /// Set the real-time interval of an operation (protocol recorders).
  void set_interval(OpIndex op, TimePoint invoked, TimePoint responded);

  /// Global index of the next pushed operation.  OpIndex is a 32-bit
  /// signed handle (it rides in every read-from edge and projection), so
  /// a history asked to hold more than 2^31-1 operations must fail
  /// loudly instead of wrapping into negative indices — million-op runs
  /// that do not need a history stream through
  /// HistoryRecorder::use_discard_mode() instead.  Public static so the
  /// wrap regression test can probe the boundary without 2^31 real ops.
  [[nodiscard]] static OpIndex checked_op_index(std::size_t op_count);

  [[nodiscard]] std::size_t process_count() const { return per_process_.size(); }
  [[nodiscard]] std::size_t var_count() const { return var_count_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }

  [[nodiscard]] const Operation& op(OpIndex i) const;
  [[nodiscard]] const std::vector<Operation>& ops() const { return ops_; }

  /// Global indices of the operations of h_i, in program order.
  [[nodiscard]] const std::vector<OpIndex>& ops_of(ProcessId p) const;

  /// Global indices of every write in O_H (in global insertion order).
  [[nodiscard]] std::vector<OpIndex> writes() const;

  /// Global indices of every write on variable x.
  [[nodiscard]] std::vector<OpIndex> writes_on(VarId x) const;

  /// The paper's H_{i+w}: all operations of h_i plus all writes of H.
  /// Returned in a deterministic order (global index order).
  [[nodiscard]] std::vector<OpIndex> projection_i_plus_w(ProcessId p) const;

  /// Resolve the read-from source of every read.
  ///
  /// Returns, for each op index, the global index of the write it reads
  /// from (kNoOp for writes and for reads of ⊥).  Resolution uses write
  /// provenance when present, else unique (var, value) matching.  Throws
  /// std::logic_error when a read's source is ambiguous (two writes wrote
  /// the same value to the same variable and no provenance is available)
  /// or missing (value never written).
  [[nodiscard]] std::vector<OpIndex> resolve_read_from() const;

  /// True if every value in the history could be resolved.
  [[nodiscard]] bool read_from_resolvable() const;

  /// Multi-line rendering of all local histories (diffable; tests use it).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t var_count_;
  std::vector<Operation> ops_;
  std::vector<std::vector<OpIndex>> per_process_;
  std::vector<std::int64_t> writes_by_proc_;  ///< per-writer write counter
};

}  // namespace pardsm::hist
