// Wire messages shared by the cache- and processor-consistency protocols.
#pragma once

#include <map>

#include "simnet/message.h"
#include "simnet/wire.h"

namespace pardsm::mcs::detail {

inline void put_prior_counts(WireWriter& w,
                             const std::map<ProcessId, std::int64_t>& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [q, c] : m) {
    w.i32(q);
    w.i64(c);
  }
}
inline std::map<ProcessId, std::int64_t> get_prior_counts(WireReader& r) {
  std::map<ProcessId, std::int64_t> m;
  const std::size_t n = r.u32();
  for (std::size_t i = 0; i < n; ++i) {
    const ProcessId q = r.i32();
    m[q] = r.i64();
  }
  return m;
}

/// Writer -> home: please sequence this write.
struct CacheWriteReq final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  TimePoint invoked{};
  std::int64_t writer_seq = 0;
  /// Per receiver q ∈ C(x): number of the writer's prior writes on
  /// variables q replicates (processor consistency only; empty for cache).
  std::map<ProcessId, std::int64_t> prior_counts;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kCacheWriteReq;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    wire::put_time(w, invoked);
    w.i64(writer_seq);
    put_prior_counts(w, prior_counts);
  }
};

/// Home -> C(x): the write, with its position in x's total order.
struct CacheCommit final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  std::int64_t var_seq = 0;
  ProcessId requester = kNoProcess;
  TimePoint invoked{};
  std::int64_t writer_seq = 0;
  std::map<ProcessId, std::int64_t> prior_counts;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kCacheCommit;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    w.i64(var_seq);
    w.i32(requester);
    wire::put_time(w, invoked);
    w.i64(writer_seq);
    put_prior_counts(w, prior_counts);
  }
};

}  // namespace pardsm::mcs::detail
