// Vector clocks over processes.
//
// Used by the causal protocols to timestamp updates.  Entry k counts the
// writes by process k that the owner has causally incorporated.
#pragma once

#include <cstdint>
#include <string>

#include "simnet/ids.h"
#include "simnet/small_vec.h"
#include "simnet/wire.h"

namespace pardsm::mcs {

/// A process-indexed vector clock.
///
/// Small-buffer storage: systems of up to 8 processes (every golden-table
/// configuration) keep their entries inline, so copying a clock into an
/// update body never allocates; larger systems spill to the heap once and
/// copy-assignment reuses that capacity thereafter.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) { entries_.resize(n, 0); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::int64_t at(ProcessId p) const {
    return entries_[static_cast<std::size_t>(p)];
  }
  void set(ProcessId p, std::int64_t v) {
    entries_[static_cast<std::size_t>(p)] = v;
  }
  void increment(ProcessId p) { ++entries_[static_cast<std::size_t>(p)]; }

  /// Component-wise maximum.
  void merge(const VectorClock& other);

  /// True if every entry of *this <= the matching entry of other.
  [[nodiscard]] bool leq(const VectorClock& other) const;

  /// Causal-delivery readiness test for a message timestamped `msg` from
  /// `sender`, at a receiver whose clock is *this:
  ///   msg[sender] == this[sender] + 1 and msg[k] <= this[k] for k≠sender.
  [[nodiscard]] bool ready_from(const VectorClock& msg,
                                ProcessId sender) const;

  /// Serialized size in bytes (8 per entry) — control-byte accounting.
  [[nodiscard]] std::uint64_t wire_bytes() const { return 8 * entries_.size(); }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  SmallVec<std::int64_t, 8> entries_;
};

/// Wire codec helpers shared by the causal protocol bodies.
inline void put_vector_clock(WireWriter& w, const VectorClock& vc) {
  w.u32(static_cast<std::uint32_t>(vc.size()));
  for (std::size_t p = 0; p < vc.size(); ++p) {
    w.i64(vc.at(static_cast<ProcessId>(p)));
  }
}
inline VectorClock get_vector_clock(WireReader& r) {
  const std::size_t n = r.u32();
  VectorClock vc(n);
  for (std::size_t p = 0; p < n; ++p) {
    vc.set(static_cast<ProcessId>(p), r.i64());
  }
  return vc;
}

}  // namespace pardsm::mcs
