#include "core/dsm.h"

#include "mcs/factory.h"
#include "simnet/check.h"

namespace pardsm {

System::System(SystemConfig config) : config_(std::move(config)) {
  SimOptions sim_options;
  sim_options.seed = config_.seed;
  sim_options.channel = config_.channel;
  sim_options.latency = std::make_unique<UniformLatency>(config_.latency_lo,
                                                         config_.latency_hi);
  sim_ = std::make_unique<Simulator>(std::move(sim_options));
  recorder_ = std::make_unique<mcs::HistoryRecorder>(
      config_.distribution.process_count(), config_.distribution.var_count);
  processes_ =
      mcs::make_processes(config_.protocol, config_.distribution, *recorder_);
  for (auto& proc : processes_) {
    const ProcessId assigned = sim_->add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(*sim_);
  }
}

System::~System() = default;

void System::read(ProcessId p, VarId x, mcs::ReadCallback done) {
  process(p).read(x, std::move(done));
}

void System::write(ProcessId p, VarId x, Value v, mcs::WriteCallback done) {
  process(p).write(x, v, std::move(done));
}

Value System::read_now(ProcessId p, VarId x) {
  PARDSM_CHECK(process(p).wait_free(),
               "read_now requires a wait-free protocol; use read()");
  Value out = kBottom;
  bool fired = false;
  process(p).read(x, [&](Value v) {
    out = v;
    fired = true;
  });
  PARDSM_CHECK(fired, "wait-free read did not complete inline");
  return out;
}

void System::at(TimePoint when, std::function<void()> fn) {
  sim_->schedule_at(when, std::move(fn));
}

void System::after(Duration d, std::function<void()> fn) {
  sim_->schedule_at(sim_->now() + d, std::move(fn));
}

void System::run() { sim_->run(); }

bool System::run_until(TimePoint deadline) { return sim_->run_until(deadline); }

TimePoint System::now() const { return sim_->now(); }

hist::History System::history() const { return recorder_->history(); }

const NetworkStats& System::stats() const { return sim_->stats(); }

std::vector<std::set<ProcessId>> System::observed_relevance() const {
  return sim_->stats().exposure_sets(config_.distribution.var_count);
}

mcs::McsProcess& System::process(ProcessId p) {
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < processes_.size(),
               "System::process: bad id");
  return *processes_[static_cast<std::size_t>(p)];
}

const graph::Distribution& System::distribution() const {
  return config_.distribution;
}

std::size_t System::process_count() const { return processes_.size(); }

const char* version() { return "pardsm 1.0.0 (PI-1727 reproduction)"; }

}  // namespace pardsm
