// Simulated time.
//
// The simulator's clock is a 64-bit count of microseconds.  Using an
// integral representation keeps event ordering exact and portable; helper
// constructors give readable literals at call sites (micros/millis/secs).
#pragma once

#include <cstdint>

namespace pardsm {

/// A duration in simulated microseconds.
struct Duration {
  std::int64_t us = 0;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.us + b.us};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.us - b.us};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.us * k};
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;
};

/// An absolute simulated time (microseconds since simulation start).
struct TimePoint {
  std::int64_t us = 0;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.us + d.us};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration{a.us - b.us};
  }
  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr bool operator==(TimePoint, TimePoint) = default;
};

/// Readable duration literals.
constexpr Duration micros(std::int64_t n) { return Duration{n}; }
constexpr Duration millis(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration seconds(std::int64_t n) { return Duration{n * 1000000}; }

/// Simulation epoch.
inline constexpr TimePoint kTimeZero{};

/// "Never": scenario timelines use it for conditions that hold to the end
/// of the run (an unhealed partition, a permanent loss rate).
inline constexpr TimePoint kTimeForever{INT64_MAX};

}  // namespace pardsm
