#include "simnet/reliable.h"

#include <deque>

#include "simnet/check.h"

namespace pardsm {

namespace {

/// Payload-bearing frame.
struct DataFrame final : MessageBody {
  std::uint64_t seq = 0;  ///< per (sender, receiver) sequence, 1-based
  std::shared_ptr<const MessageBody> payload;
  MessageMeta payload_meta;
  KindId wrapped_kind;  ///< "ARQ:"+kind, resolved once per frame so
                        ///< (re)transmissions never touch the table lock
};

/// Acknowledgement: cumulative per directed pair.
struct AckFrame final : MessageBody {
  std::uint64_t cumulative = 0;  ///< all seq <= cumulative received
};

/// Timer tags: the ARQ layer owns the upper bit space so application tags
/// pass through unchanged.
constexpr TimerTag kArqTimerBit = 1ULL << 63;

/// Cumulative-ack kind, interned once.
const KindId kAckKind("ARQ:ACK");

}  // namespace

/// Per-process shim: the simulator endpoint that hides the ARQ machinery
/// from the real application endpoint.
class ReliableTransport::Shim final : public Endpoint {
 public:
  Shim(ReliableTransport& owner, Endpoint* app, ProcessId self)
      : owner_(owner), app_(app), self_(self) {}

  // ---- sending side -------------------------------------------------------
  void send_app(ProcessId to, std::shared_ptr<const MessageBody> body,
                MessageMeta meta) {
    auto& out = outgoing_[to];
    const std::uint64_t seq = ++out.next_seq;
    auto frame = std::make_shared<DataFrame>();
    frame->seq = seq;
    frame->payload = std::move(body);
    frame->payload_meta = meta;
    frame->wrapped_kind = arq_wrapped(meta.kind);

    Pending& pending = out.unacked[seq];
    pending.frame = std::move(frame);
    transmit(to, pending.frame);
    arm_timer();
  }

  void transmit(ProcessId to, const std::shared_ptr<DataFrame>& frame) {
    MessageMeta meta = frame->payload_meta;
    meta.kind = frame->wrapped_kind;
    meta.control_bytes += 16;  // seq + ack piggyback space
    owner_.lower_.send(self_, to, frame, std::move(meta));
  }

  // ---- receiving side -------------------------------------------------------
  void on_message(const Message& m) override {
    if (const auto* ack = m.as<AckFrame>()) {
      auto& out = outgoing_[m.from];
      for (auto it = out.unacked.begin();
           it != out.unacked.end() && it->first <= ack->cumulative;) {
        it = out.unacked.erase(it);
      }
      return;
    }
    const auto* frame = m.as<DataFrame>();
    if (frame == nullptr) {
      // Not an ARQ frame (foreign traffic): pass through untouched.
      app_->on_message(m);
      return;
    }
    auto& in = incoming_[m.from];
    if (frame->seq > in.delivered) {
      in.pending.emplace(frame->seq, *frame);
      // Deliver any in-sequence prefix exactly once.
      while (!in.pending.empty() &&
             in.pending.begin()->first == in.delivered + 1) {
        const DataFrame& next = in.pending.begin()->second;
        Message app_msg;
        app_msg.from = m.from;
        app_msg.to = self_;
        app_msg.body = next.payload;
        app_msg.meta = next.payload_meta;
        app_msg.id = m.id;
        app_msg.send_time = m.send_time;
        app_msg.deliver_time = m.deliver_time;
        ++in.delivered;
        in.pending.erase(in.pending.begin());
        app_->on_message(app_msg);
      }
    }
    // Cumulative ack (also for duplicates — the original ack may be lost).
    auto ack = std::make_shared<AckFrame>();
    ack->cumulative = in.delivered;
    MessageMeta ack_meta;
    ack_meta.kind = kAckKind;
    ack_meta.control_bytes = 8;
    owner_.lower_.send(self_, m.from, std::move(ack), std::move(ack_meta));
  }

  void on_timer(TimerTag tag) override {
    if ((tag & kArqTimerBit) == 0) {
      app_->on_timer(tag);
      return;
    }
    timer_armed_ = false;
    bool anything_pending = false;
    for (auto& [to, out] : outgoing_) {
      for (auto& [seq, pending] : out.unacked) {
        PARDSM_CHECK(++pending.retries <= owner_.options_.max_retransmits,
                     "ARQ gave up: frame retransmitted too often");
        ++retransmissions_;
        transmit(to, pending.frame);
        anything_pending = true;
      }
    }
    if (anything_pending) arm_timer();
  }

  void arm_timer() {
    if (timer_armed_) return;
    timer_armed_ = true;
    owner_.lower_.set_timer(self_, owner_.options_.retransmit_after,
                          kArqTimerBit);
  }

  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }

 private:
  /// An unacked frame plus its retransmit count (acking erases both, so
  /// the counter's lifetime is exactly the frame's).
  struct Pending {
    std::shared_ptr<DataFrame> frame;
    std::uint32_t retries = 0;
  };
  struct Outgoing {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Pending> unacked;
  };
  struct Incoming {
    std::uint64_t delivered = 0;
    std::map<std::uint64_t, DataFrame> pending;
  };

  ReliableTransport& owner_;
  Endpoint* app_;
  ProcessId self_;
  std::map<ProcessId, Outgoing> outgoing_;
  std::map<ProcessId, Incoming> incoming_;
  std::uint64_t retransmissions_ = 0;
  bool timer_armed_ = false;
};

ReliableTransport::ReliableTransport(HostTransport& lower,
                                     ReliableOptions options)
    : lower_(lower), options_(options) {}

ReliableTransport::~ReliableTransport() = default;

ProcessId ReliableTransport::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  auto shim = std::make_unique<Shim>(*this, ep,
                                     static_cast<ProcessId>(shims_.size()));
  const ProcessId assigned = lower_.add_endpoint(shim.get());
  PARDSM_CHECK(assigned == static_cast<ProcessId>(shims_.size()),
               "interleaved registration with the layer below");
  shims_.push_back(std::move(shim));
  return assigned;
}

void ReliableTransport::send(ProcessId from, ProcessId to,
                             std::shared_ptr<const MessageBody> body,
                             MessageMeta meta) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < shims_.size(),
               "send: bad sender");
  shims_[static_cast<std::size_t>(from)]->send_app(to, std::move(body),
                                                   std::move(meta));
}

void ReliableTransport::set_timer(ProcessId who, Duration delay,
                                  TimerTag tag) {
  PARDSM_CHECK((tag & (1ULL << 63)) == 0,
               "application timer tags must not use the top bit");
  lower_.set_timer(who, delay, tag);
}

std::size_t ReliableTransport::process_count() const { return shims_.size(); }

std::uint64_t ReliableTransport::retransmissions() const {
  std::uint64_t sum = 0;
  for (const auto& shim : shims_) sum += shim->retransmissions();
  return sum;
}

}  // namespace pardsm
