#include "mcs/factory.h"

#include "mcs/atomic_home.h"
#include "mcs/cache_partial.h"
#include "mcs/causal_full.h"
#include "mcs/causal_partial_adhoc.h"
#include "mcs/causal_partial_naive.h"
#include "mcs/pram_partial.h"
#include "mcs/processor_partial.h"
#include "mcs/sequencer_sc.h"
#include "mcs/slow_partial.h"

namespace pardsm::mcs {

std::vector<std::unique_ptr<McsProcess>> make_processes(
    ProtocolKind kind, const graph::Distribution& dist,
    HistoryRecorder& recorder) {
  const std::size_t n = dist.process_count();
  std::vector<std::unique_ptr<McsProcess>> out;
  out.reserve(n);

  std::shared_ptr<const StaticRelevance> analysis;
  if (kind == ProtocolKind::kCausalPartialAdHoc) {
    analysis = StaticRelevance::analyze(dist);
  }

  for (std::size_t p = 0; p < n; ++p) {
    const auto self = static_cast<ProcessId>(p);
    switch (kind) {
      case ProtocolKind::kAtomicHome:
        out.push_back(
            std::make_unique<AtomicHomeProcess>(self, dist, recorder));
        break;
      case ProtocolKind::kSequencerSC:
        out.push_back(
            std::make_unique<SequencerScProcess>(self, dist, recorder));
        break;
      case ProtocolKind::kCausalFull:
        out.push_back(
            std::make_unique<CausalFullProcess>(self, dist, recorder));
        break;
      case ProtocolKind::kCausalPartialNaive:
        out.push_back(std::make_unique<CausalPartialNaiveProcess>(self, dist,
                                                                  recorder));
        break;
      case ProtocolKind::kCausalPartialAdHoc:
        out.push_back(std::make_unique<CausalPartialAdHocProcess>(
            self, dist, recorder, analysis));
        break;
      case ProtocolKind::kPramPartial:
        out.push_back(
            std::make_unique<PramPartialProcess>(self, dist, recorder));
        break;
      case ProtocolKind::kSlowPartial:
        out.push_back(
            std::make_unique<SlowPartialProcess>(self, dist, recorder));
        break;
      case ProtocolKind::kCachePartial:
        out.push_back(
            std::make_unique<CachePartialProcess>(self, dist, recorder));
        break;
      case ProtocolKind::kProcessorPartial:
        out.push_back(
            std::make_unique<ProcessorPartialProcess>(self, dist, recorder));
        break;
    }
  }
  const auto cliques = std::make_shared<const CliqueTable>(dist);
  for (auto& proc : out) proc->use_clique_table(cliques);
  return out;
}

}  // namespace pardsm::mcs
