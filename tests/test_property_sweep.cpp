// Parameterized property sweeps across the whole protocol × topology ×
// seed space — the repository's broadest correctness net.
//
// Invariants checked on every combination:
//   P1  recorded history satisfies the protocol's weakest criterion;
//   P2  metadata exposure never exceeds the protocol's predicted reach
//       (C(x) for pram/slow/cache/processor/atomic, R(x) for ad-hoc);
//   P3  traffic accounting balances (received <= sent; no phantom bytes);
//   P4  read provenance resolves exactly;
//   P5  simulator runs are reproducible bit-for-bit per seed.
//
// The FaultySweep suite re-checks P1–P5 with a scenario axis — channel
// loss, a partition/heal cycle, a crash/recover cycle — with the system
// routed through ReliableTransport: faults must cost retransmissions and
// recovery traffic, never consistency, provenance or determinism.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"
#include "simnet/scenario.h"

#include "scenario_families.h"

namespace pardsm::mcs {
namespace {

using graph::Distribution;
using hist::Criterion;

enum class Topo {
  kChainHoop,
  kStar,
  kRing,
  kClusters,
  kRandom,
  kHypercube,
  kTorus,
  kPrefAttach,
};

Distribution make_topo(Topo t, std::uint64_t seed) {
  switch (t) {
    case Topo::kChainHoop:
      return graph::topo::chain_with_hoop(5);
    case Topo::kStar:
      return graph::topo::star(4);
    case Topo::kRing:
      return graph::topo::ring(5);
    case Topo::kClusters:
      return graph::topo::clusters(2, 3, true);
    case Topo::kRandom:
      return graph::topo::random_replication(6, 5, 2, seed);
    case Topo::kHypercube:
      return graph::topo::hypercube(3);
    case Topo::kTorus:
      return graph::topo::torus(3, 3);
    case Topo::kPrefAttach:
      return graph::topo::preferential_attachment(7, 2, seed);
  }
  return graph::topo::complete(3, 2);
}

const char* topo_name(Topo t) {
  switch (t) {
    case Topo::kChainHoop:
      return "chain";
    case Topo::kStar:
      return "star";
    case Topo::kRing:
      return "ring";
    case Topo::kClusters:
      return "clusters";
    case Topo::kRandom:
      return "random";
    case Topo::kHypercube:
      return "hypercube";
    case Topo::kTorus:
      return "torus";
    case Topo::kPrefAttach:
      return "prefattach";
  }
  return "?";
}

Criterion weakest_criterion(ProtocolKind kind) {
  switch (guarantee_of(kind)) {
    case GuaranteeLevel::kAtomic:
    case GuaranteeLevel::kSequential:
      return Criterion::kSequential;
    case GuaranteeLevel::kCausal:
      return Criterion::kCausal;
    case GuaranteeLevel::kProcessor:
    case GuaranteeLevel::kPram:
      return Criterion::kPram;
    case GuaranteeLevel::kCache:
      return Criterion::kCache;
    case GuaranteeLevel::kSlow:
      return Criterion::kSlow;
  }
  return Criterion::kSlow;
}

/// Protocols whose metadata must stay inside C(x).
bool clique_confined(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPramPartial:
    case ProtocolKind::kSlowPartial:
    case ProtocolKind::kCachePartial:
    case ProtocolKind::kProcessorPartial:
    case ProtocolKind::kAtomicHome:
      return true;
    default:
      return false;
  }
}

class PropertySweep
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, Topo, int>> {};

TEST_P(PropertySweep, InvariantsHold) {
  const auto [kind, topo, seed] = GetParam();
  const auto dist = make_topo(topo, static_cast<std::uint64_t>(seed));

  WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.read_fraction = 0.5;
  spec.seed = static_cast<std::uint64_t>(seed) * 131 + 7;
  const auto scripts = make_random_scripts(dist, spec);

  const auto run = [&] {
    RunOptions options;
    options.sim_seed = static_cast<std::uint64_t>(seed);
    options.latency = std::make_unique<UniformLatency>(millis(1), millis(9));
    return run_workload(kind, dist, scripts, std::move(options));
  };
  const auto result = run();

  // P1: weakest-criterion consistency.
  const auto check = hist::check_history(result.history,
                                         weakest_criterion(kind));
  EXPECT_TRUE(check.definitive);
  EXPECT_TRUE(check.consistent)
      << to_string(kind) << " on " << topo_name(topo) << " seed " << seed
      << "\n" << result.history.to_string();

  // P2: exposure bounds.
  const graph::ShareGraph sg(dist);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto xv = static_cast<VarId>(x);
    std::set<ProcessId> bound;
    if (clique_confined(kind)) {
      const auto clique = sg.clique(xv);
      bound.insert(clique.begin(), clique.end());
    } else if (kind == ProtocolKind::kCausalPartialAdHoc) {
      bound = graph::x_relevant(sg, xv);
    } else {
      continue;  // gossip/centralised protocols may reach anyone
    }
    for (ProcessId p : result.observed_relevant[x]) {
      EXPECT_TRUE(bound.count(p))
          << to_string(kind) << " on " << topo_name(topo) << ": x" << x
          << " metadata reached p" << p;
    }
  }

  // P3: accounting sanity.
  EXPECT_LE(result.total_traffic.msgs_received,
            result.total_traffic.msgs_sent);
  EXPECT_LE(result.total_traffic.control_bytes_received,
            result.total_traffic.control_bytes_sent);

  // P4: provenance.
  EXPECT_TRUE(result.history.read_from_resolvable());

  // P5: determinism.
  const auto again = run();
  EXPECT_EQ(result.history.to_string(), again.history.to_string());
  EXPECT_EQ(result.total_traffic.msgs_sent, again.total_traffic.msgs_sent);
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, Topo, int>>&
        info) {
  std::string s = to_string(std::get<0>(info.param));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_" + topo_name(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Everything, PropertySweep,
    ::testing::Combine(::testing::ValuesIn(all_protocols()),
                       ::testing::Values(Topo::kChainHoop, Topo::kStar,
                                         Topo::kRing, Topo::kClusters,
                                         Topo::kRandom, Topo::kHypercube,
                                         Topo::kTorus, Topo::kPrefAttach),
                       ::testing::Values(1, 2)),
    sweep_name);

// ------------------------------------------------ fault-aware sweep
//
// Same invariants, now with the channel actively hostile.  One topology
// (two bridged clusters, 6 processes) keeps the suite fast; the scenario
// axis is where the diversity lives.

using golden::FaultFamily;
using golden::family_name;

class FaultySweep
    : public ::testing::TestWithParam<
          std::tuple<ProtocolKind, FaultFamily, int>> {};

TEST_P(FaultySweep, InvariantsHoldUnderFaults) {
  const auto [kind, fault, seed] = GetParam();
  const auto dist = graph::topo::clusters(2, 3, true);

  WorkloadSpec spec;
  spec.ops_per_process = 5;
  spec.read_fraction = 0.5;
  spec.seed = static_cast<std::uint64_t>(seed) * 389 + 3;
  spec.think_time = millis(1);  // ops overlap the fault windows
  const auto scripts = make_random_scripts(dist, spec);

  const auto run = [&, kind = kind, fault = fault, seed = seed] {
    RunOptions options;
    options.sim_seed = static_cast<std::uint64_t>(seed);
    options.latency = std::make_unique<UniformLatency>(millis(1), millis(4));
    return run_scenario(kind, dist, scripts,
                        golden::make_fault_scenario(fault, 0.05),
                        std::move(options));
  };
  const auto result = run();
  EXPECT_TRUE(result.used_reliable_transport);

  // P1: weakest-criterion consistency survives the faults.
  const auto check =
      hist::check_history(result.history, weakest_criterion(kind));
  EXPECT_TRUE(check.definitive);
  EXPECT_TRUE(check.consistent)
      << to_string(kind) << " under " << family_name(fault) << " seed "
      << seed << "\n"
      << result.history.to_string();

  // P2: exposure bounds hold for protocol, ARQ and re-sync traffic alike.
  const graph::ShareGraph sg(dist);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto xv = static_cast<VarId>(x);
    std::set<ProcessId> bound;
    if (clique_confined(kind)) {
      const auto clique = sg.clique(xv);
      bound.insert(clique.begin(), clique.end());
    } else if (kind == ProtocolKind::kCausalPartialAdHoc) {
      bound = graph::x_relevant(sg, xv);
    } else {
      continue;
    }
    for (ProcessId p : result.observed_relevant[x]) {
      EXPECT_TRUE(bound.count(p))
          << to_string(kind) << " under " << family_name(fault) << ": x" << x
          << " metadata reached p" << p;
    }
  }

  // P3: accounting sanity (drops mean received <= sent, never the reverse).
  EXPECT_LE(result.total_traffic.msgs_received,
            result.total_traffic.msgs_sent);
  EXPECT_LE(result.total_traffic.control_bytes_received,
            result.total_traffic.control_bytes_sent);

  // P4: provenance still exact.
  EXPECT_TRUE(result.history.read_from_resolvable());

  // Fault machinery actually engaged.
  EXPECT_GT(result.drops.total(), 0u) << family_name(fault);
  if (fault == FaultFamily::kCrash) {
    EXPECT_EQ(result.crashes, 1u);
    EXPECT_GT(result.resync_messages, 0u);
  }

  // P5: bit-for-bit determinism.
  const auto again = run();
  EXPECT_EQ(result.history.to_string(), again.history.to_string());
  EXPECT_EQ(result.total_traffic.msgs_sent, again.total_traffic.msgs_sent);
  EXPECT_EQ(result.retransmissions, again.retransmissions);
}

std::string faulty_name(
    const ::testing::TestParamInfo<
        std::tuple<ProtocolKind, FaultFamily, int>>& info) {
  std::string s = to_string(std::get<0>(info.param));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_" + family_name(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Everything, FaultySweep,
    ::testing::Combine(::testing::ValuesIn(all_protocols()),
                       ::testing::Values(FaultFamily::kLoss,
                                         FaultFamily::kPartition,
                                         FaultFamily::kCrash),
                       ::testing::Values(1, 2)),
    faulty_name);

// New topology generators: structural sanity.
TEST(NewTopologies, HypercubeStructure) {
  const auto d = graph::topo::hypercube(3);
  EXPECT_EQ(d.process_count(), 8u);
  EXPECT_EQ(d.var_count, 12u);  // d * 2^d / 2 edges
  const graph::ShareGraph sg(d);
  EXPECT_EQ(sg.edge_count(), 12u);
  for (ProcessId p = 0; p < 8; ++p) {
    EXPECT_EQ(sg.neighbours(p).size(), 3u);
  }
  // Every edge variable has a hoop (the cube is 3-connected).
  EXPECT_TRUE(graph::hoop_exists(sg, 0));
}

TEST(NewTopologies, TorusStructure) {
  const auto d = graph::topo::torus(3, 4);
  EXPECT_EQ(d.process_count(), 12u);
  EXPECT_EQ(d.var_count, 24u);  // 2 edges per vertex
  const graph::ShareGraph sg(d);
  for (ProcessId p = 0; p < 12; ++p) {
    EXPECT_EQ(sg.neighbours(p).size(), 4u);
  }
}

TEST(NewTopologies, PreferentialAttachmentConnectedAndDeterministic) {
  const auto a = graph::topo::preferential_attachment(12, 2, 5);
  const auto b = graph::topo::preferential_attachment(12, 2, 5);
  EXPECT_EQ(a.per_process, b.per_process);
  const graph::ShareGraph sg(a);
  EXPECT_EQ(sg.components().size(), 1u);
}

}  // namespace
}  // namespace pardsm::mcs
