// Sequential consistency via a sequencer (total-order write broadcast).
//
// Process 0 doubles as the sequencer.  Writes are blocking: the writer
// sends its write to the sequencer, which assigns a global sequence number
// and multicasts the commit to C(x); the writer's operation completes when
// its own commit comes back.  Reads are wait-free local reads.
//
// Correctness: all writes are totally ordered by the sequencer; each
// process applies the FIFO-ordered projection of that total order onto its
// replicated variables; a process's read sees a prefix that includes all
// of its own completed writes.  The classical fast-read/slow-write SC
// construction.
//
// Partial-replication relevance: commits go only to C(x) — but every
// write's request crosses the sequencer, which therefore is relevant to
// *every* variable: centralisation, the other way stronger criteria defeat
// efficient partial replication (bench_theorem1_relevance reports it).
#pragma once

#include <map>

#include "mcs/protocol.h"
#include "mcs/write_id_dedup.h"
#include "simnet/recycling_alloc.h"

namespace pardsm::mcs {

struct SeqWriteRequest;
struct SeqWriteCommit;

/// One process of the sequencer-based sequentially-consistent protocol.
class SequencerScProcess final : public McsProcess {
 public:
  /// The sequencer role is held by process `kSequencer` (0).
  static constexpr ProcessId kSequencer = 0;

  SequencerScProcess(ProcessId self, const graph::Distribution& dist,
                     HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override { return "sequencer-sc"; }
  [[nodiscard]] bool wait_free() const override { return false; }

  /// Sequencer-side count of sequenced writes (0 on non-sequencers).
  [[nodiscard]] std::uint64_t sequenced() const { return sequenced_; }

 protected:
  /// Commits reach every process only from the sequencer, so copies the
  /// sequencer serves ride the same FIFO channel as any backlog and can
  /// safely be adopted.  The sequencer itself adopts nothing: its own
  /// state is ahead of (or equal to) every standby's by construction.
  [[nodiscard]] bool resync_adoptable(VarId, ProcessId responder,
                                      const WriteId&) const override {
    return responder == kSequencer && id() != kSequencer;
  }

  /// Standbys re-sync from the sequencer (the only FIFO-safe source, see
  /// resync_adoptable); the sequencer falls back to the clique default.
  [[nodiscard]] ProcessId resync_source(VarId x) const override {
    return id() == kSequencer ? McsProcess::resync_source(x) : kSequencer;
  }

 private:
  void sequence_write(VarId x, Value v, WriteId id, ProcessId requester,
                      TimePoint invoked);
  void apply_commit(VarId x, Value v, WriteId id, ProcessId requester,
                    TimePoint invoked, std::int64_t gseq);

  /// Pool handles cached at attach() so each request/commit is a
  /// freelist pop.
  BodyPool<SeqWriteRequest>* request_pool_ = nullptr;
  BodyPool<SeqWriteCommit>* commit_pool_ = nullptr;
  std::int64_t next_write_seq_ = 0;
  std::int64_t global_seq_ = 0;  ///< sequencer only
  std::uint64_t sequenced_ = 0;  ///< sequencer only
  /// Node freelist for the per-in-flight-write maps below (declared
  /// first: containers must die before their pool).
  RecyclingPool node_pool_;
  /// Writer-side: write completions waiting for their commit.
  std::map<WriteId, WriteCallback, std::less<WriteId>,
           RecyclingAlloc<std::pair<const WriteId, WriteCallback>>>
      waiting_{RecyclingAlloc<std::pair<const WriteId, WriteCallback>>(
          &node_pool_)};
  /// Writer-side: invocation times for interval recording.
  std::map<WriteId, TimePoint, std::less<WriteId>,
           RecyclingAlloc<std::pair<const WriteId, TimePoint>>>
      invoked_at_{RecyclingAlloc<std::pair<const WriteId, TimePoint>>(
          &node_pool_)};
  /// Sequencer-side duplicate suppression of write requests (watermark +
  /// frontier — a std::set would grow one node per write forever).
  WriteIdDedup sequenced_ids_;
  /// Receiver-side duplicate suppression: highest gseq applied.
  std::int64_t last_gseq_applied_ = 0;
};

}  // namespace pardsm::mcs
