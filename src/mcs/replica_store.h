// Per-process variable store with write provenance.
//
// Each MCS process keeps local copies of exactly the variables in X_i
// (partial replication) or of every variable (full replication).  Stored
// values carry the WriteId of the write that produced them, so that reads
// recorded into histories have an exact read-from source.
#pragma once

#include <map>
#include <vector>

#include "simnet/ids.h"

namespace pardsm::mcs {

/// A stored value plus its provenance.
struct Stored {
  Value value = kBottom;
  WriteId source{};  ///< kInitialWrite for the initial ⊥
};

/// The local replica set of one MCS process.
class ReplicaStore {
 public:
  /// Construct holding exactly `vars` (every entry initialized to ⊥).
  explicit ReplicaStore(const std::vector<VarId>& vars = {});

  /// True if x is locally replicated.
  [[nodiscard]] bool holds(VarId x) const { return data_.count(x) > 0; }

  /// Current content of x.  Requires holds(x).
  [[nodiscard]] const Stored& get(VarId x) const;

  /// Overwrite x with (value, source).  Requires holds(x).
  void put(VarId x, Value value, WriteId source);

  /// Locally replicated variables (sorted).
  [[nodiscard]] std::vector<VarId> vars() const;

  /// Number of applied puts (diagnostics).
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  std::map<VarId, Stored> data_;
  std::uint64_t version_ = 0;
};

}  // namespace pardsm::mcs
