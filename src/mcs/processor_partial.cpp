#include "mcs/processor_partial.h"

#include "mcs/cache_messages.h"

namespace pardsm::mcs {

ProcessorPartialProcess::ProcessorPartialProcess(
    ProcessId self, const graph::Distribution& dist,
    HistoryRecorder& recorder)
    : CachePartialProcess(self, dist, recorder) {}

std::map<ProcessId, std::int64_t> ProcessorPartialProcess::prior_counts_for(
    VarId x) {
  std::map<ProcessId, std::int64_t> priors;
  for (ProcessId q : replicas_of(x)) {
    priors[q] = sent_to_[q];
    ++sent_to_[q];
  }
  return priors;
}

bool ProcessorPartialProcess::commit_ready(const Message& m) {
  const auto* c = m.as<detail::CacheCommit>();
  PARDSM_CHECK(c != nullptr, "processor: unexpected commit body");
  auto it = c->prior_counts.find(id());
  if (it == c->prior_counts.end()) return true;  // no constraint for us
  return applied_from_[c->id.writer] >= it->second;
}

void ProcessorPartialProcess::on_applied(ProcessId writer) {
  ++applied_from_[writer];
}

}  // namespace pardsm::mcs
