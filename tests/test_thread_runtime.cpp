// The std::thread runtime: protocols under genuine preemptive parallelism.
//
// Executions are nondeterministic; the assertions are the same consistency
// properties as the simulator suite — they must hold for *every*
// interleaving the OS produces.

#include <gtest/gtest.h>

#include <atomic>

#include "history/checkers.h"
#include "history/linearizability.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/thread_runtime.h"

namespace pardsm::mcs {
namespace {

using hist::Criterion;

TEST(ThreadRuntime, DeliversPairwiseFifo) {
  // A bare-transport check: 200 messages from p0 to p1 arrive in order.
  struct Body final : MessageBody {
    int n = 0;
  };
  struct Receiver final : Endpoint {
    std::vector<int> got;
    void on_message(const Message& m) override {
      got.push_back(m.as<Body>()->n);
    }
  };
  struct Sender final : Endpoint {
    void on_message(const Message&) override {}
  };

  ThreadRuntime rt;
  Sender sender;
  Receiver receiver;
  const ProcessId s = rt.add_endpoint(&sender);
  const ProcessId r = rt.add_endpoint(&receiver);
  rt.start();
  rt.post(s, [&] {
    for (int i = 0; i < 200; ++i) {
      auto* body = new_body<Body>();
      body->n = i;
      rt.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
    }
  });
  ASSERT_TRUE(rt.await_quiescence(std::chrono::milliseconds(5000)));
  rt.stop();
  ASSERT_EQ(receiver.got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(receiver.got[i], i);
}

TEST(ThreadRuntime, TimersFire) {
  struct Waiter final : Endpoint {
    std::atomic<int> fired{0};
    void on_message(const Message&) override {}
    void on_timer(TimerTag) override { fired.fetch_add(1); }
  };
  ThreadRuntime rt;
  Waiter w;
  const ProcessId p = rt.add_endpoint(&w);
  rt.start();
  rt.set_timer(p, millis(1), 1);
  rt.set_timer(p, millis(2), 2);
  ASSERT_TRUE(rt.await_quiescence(std::chrono::milliseconds(5000)));
  rt.stop();
  EXPECT_EQ(w.fired.load(), 2);
}

class ThreadedProtocol : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ThreadedProtocol, ConsistencyHoldsUnderRealThreads) {
  const ProtocolKind kind = GetParam();
  const auto dist = graph::topo::random_replication(4, 3, 2, 17);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.read_fraction = 0.5;
  spec.seed = 23;
  const auto scripts = make_random_scripts(dist, spec);

  const auto result = run_workload_threaded(kind, dist, scripts);

  std::vector<Criterion> required;
  switch (guarantee_of(kind)) {
    case GuaranteeLevel::kAtomic:
    case GuaranteeLevel::kSequential:
      required = {Criterion::kSequential};
      break;
    case GuaranteeLevel::kCausal:
      required = {Criterion::kCausal};
      break;
    case GuaranteeLevel::kProcessor:
      required = {Criterion::kPram, Criterion::kCache};
      break;
    case GuaranteeLevel::kPram:
      required = {Criterion::kPram};
      break;
    case GuaranteeLevel::kCache:
      required = {Criterion::kCache};
      break;
    case GuaranteeLevel::kSlow:
      required = {Criterion::kSlow};
      break;
  }
  for (Criterion c : required) {
    const auto check = hist::check_history(result.history, c);
    EXPECT_TRUE(check.definitive);
    EXPECT_TRUE(check.consistent)
        << to_string(kind) << " violated " << to_string(c)
        << " under threads:\n"
        << result.history.to_string();
  }
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(All, ThreadedProtocol,
                         ::testing::ValuesIn(all_protocols()),
                         [](const auto& info) {
                           return sanitize(to_string(info.param));
                         });

TEST(ThreadRuntime, AtomicHomeLinearizableUnderThreads) {
  const auto dist = graph::topo::random_replication(4, 3, 2, 29);
  WorkloadSpec spec;
  spec.ops_per_process = 10;
  spec.read_fraction = 0.6;
  spec.seed = 31;
  const auto scripts = make_random_scripts(dist, spec);
  const auto result =
      run_workload_threaded(ProtocolKind::kAtomicHome, dist, scripts);
  const auto lin = hist::check_linearizable(result.history);
  EXPECT_TRUE(lin.definitive);
  EXPECT_TRUE(lin.linearizable) << result.history.to_string();
}

TEST(ThreadRuntime, PramExposureConfinedToCliqueUnderThreads) {
  const auto dist = graph::topo::chain_with_hoop(5);
  std::vector<Script> scripts(dist.process_count());
  Value v = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    for (VarId x : dist.per_process[p]) {
      scripts[p].push_back(ScriptOp::write(x, v++));
      scripts[p].push_back(ScriptOp::read(x));
    }
  }
  const auto result =
      run_workload_threaded(ProtocolKind::kPramPartial, dist, scripts);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto clique = dist.replicas_of(static_cast<VarId>(x));
    const std::set<ProcessId> cset(clique.begin(), clique.end());
    for (ProcessId p : result.observed_relevant[x]) {
      EXPECT_TRUE(cset.count(p)) << "x" << x << " leaked to p" << p;
    }
  }
}

}  // namespace
}  // namespace pardsm::mcs
