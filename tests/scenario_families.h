// Shared fault-scenario families for the scenario-aware test suites.
//
// The fault-aware property sweep (test_property_sweep.cpp) and the P6
// differential-convergence suite (test_scenario_convergence.cpp) sweep the
// same three fault families over all nine protocols; this header keeps the
// family enum, names and canonical timelines in one place so a new family
// or a timing change lands in every suite at once.  (bench_scenarios.cpp
// deliberately keeps its own Schedule axis: there loss is an independent
// dimension and every cell is forced through the ARQ layer.)
#pragma once

#include "simnet/scenario.h"

namespace pardsm::golden {

enum class FaultFamily { kLoss, kPartition, kCrash };

inline const char* family_name(FaultFamily f) {
  switch (f) {
    case FaultFamily::kLoss:
      return "loss";
    case FaultFamily::kPartition:
      return "partition";
    case FaultFamily::kCrash:
      return "crash";
  }
  return "?";
}

/// The canonical six-process timeline of one family: `loss` everywhere for
/// the whole run, plus the family's structural fault — a 3|3 partition over
/// 2..8ms, or a crash of process 1 over 3..7ms.  Suites pick the loss rate
/// (the sweep stresses one rate across families; convergence pairs a high
/// pure-loss rate with milder structural cells).
inline Scenario make_fault_scenario(FaultFamily family, double loss) {
  Scenario s(std::string(family_name(family)) + "-loss" +
             std::to_string(loss));
  if (loss > 0.0) s.set_loss(loss);
  switch (family) {
    case FaultFamily::kLoss:
      break;
    case FaultFamily::kPartition:
      s.partition({{0, 1, 2}, {3, 4, 5}}, after(millis(2)),
                  after(millis(8)));
      break;
    case FaultFamily::kCrash:
      s.crash(1, after(millis(3)), after(millis(7)));
      break;
  }
  return s;
}

}  // namespace pardsm::golden
