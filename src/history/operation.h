// Read/write operations — the paper's w_i(x)v and r_i(x)v.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "simnet/ids.h"
#include "simnet/sim_time.h"

namespace pardsm::hist {

/// Global index of an operation inside a History (position in O_H).
using OpIndex = std::int32_t;

/// Sentinel "no operation", used e.g. for the source of a read that
/// returned the initial value ⊥.
inline constexpr OpIndex kNoOp = -1;

/// One shared-memory operation.
struct Operation {
  enum class Kind : std::uint8_t { kRead, kWrite };

  Kind kind = Kind::kRead;
  ProcessId proc = kNoProcess;  ///< invoking application process ap_i
  VarId var = kNoVar;           ///< accessed variable x_h
  Value value = kBottom;        ///< value written, or value returned

  /// Position of this operation in its process's local history h_i.
  std::int32_t proc_seq = -1;

  /// For writes: the write's own provenance id (writer, per-writer seq).
  /// For reads: the WriteId of the write whose value was returned, or
  /// kInitialWrite when the read returned ⊥.
  WriteId write_id{};

  /// Real-time interval, filled by protocol recorders; used only by the
  /// linearizability checker.  Both zero when unknown.
  TimePoint invoked{};
  TimePoint responded{};

  [[nodiscard]] bool is_read() const { return kind == Kind::kRead; }
  [[nodiscard]] bool is_write() const { return kind == Kind::kWrite; }

  /// Compact rendering, e.g. "w1(x2)5" / "r3(x0)⊥".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Operation&, const Operation&) = default;
};

std::ostream& operator<<(std::ostream& os, const Operation& op);

}  // namespace pardsm::hist
