// Unit tests for the allocation-free hot-path containers introduced by
// the pooled-event refactor: the event pool (slot reuse, (time, seq) tie
// ordering), the kind interner (stable ids, round-trip names, ARQ
// wrapping) and the small-buffer variable list (inline → heap spill).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "mcs/driver.h"
#include "mcs/factory.h"
#include "sharegraph/topologies.h"
#include "simnet/event_queue.h"
#include "simnet/kind_table.h"
#include "simnet/pair_map.h"
#include "simnet/simulator.h"
#include "simnet/small_vec.h"

// ---------------------------------------------------------------------------
// Global allocation counter: counts every operator new while armed.  Used
// by the steady-state gate at the bottom of this file.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// new is malloc-backed so the matching delete frees with std::free; GCC
// cannot see the pairing across the replaced global operators and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace pardsm {
namespace {

// ------------------------------------------------------------- EventQueue
TEST(EventPool, SlotsAreReusedAcrossPops) {
  EventQueue q;
  // Fill to depth 4, drain, refill: the pool must not grow past the peak.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      q.schedule_timer(TimePoint{10 * round + i}, 0, static_cast<unsigned>(i));
    }
    while (!q.empty()) (void)q.pop();
  }
  EXPECT_EQ(q.pool_slots(), 4u);
  EXPECT_EQ(q.scheduled_total(), 200u);
}

TEST(EventPool, OrderingBreaksTiesBySequence) {
  EventQueue q;
  q.schedule_timer(TimePoint{5}, 0, 100);
  q.schedule_timer(TimePoint{1}, 0, 101);
  q.schedule_timer(TimePoint{5}, 0, 102);  // same time as 100: FIFO
  q.schedule_timer(TimePoint{1}, 0, 103);  // same time as 101: FIFO
  std::vector<std::uint64_t> tags;
  while (!q.empty()) tags.push_back(q.pop().timer_tag);
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{101, 103, 100, 102}));
}

TEST(EventPool, MixedTypedEventsCarryTheirPayloads) {
  EventQueue q;
  int fired = 0;
  q.schedule(TimePoint{3}, [&] { ++fired; });
  Message m;
  m.from = 1;
  m.to = 2;
  m.meta.kind = "MIX";
  q.schedule_deliver(TimePoint{1}, std::move(m));
  q.schedule_timer(TimePoint{2}, 7, 42);

  Event first = q.pop();
  ASSERT_EQ(first.type, Event::Type::kDeliver);
  EXPECT_EQ(first.msg.to, 2);
  EXPECT_EQ(first.msg.meta.kind.name(), "MIX");

  Event second = q.pop();
  ASSERT_EQ(second.type, Event::Type::kTimer);
  EXPECT_EQ(second.timer_who, 7);
  EXPECT_EQ(second.timer_tag, 42u);

  Event third = q.pop();
  ASSERT_EQ(third.type, Event::Type::kClosure);
  third.fire();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventPool, InPlacePopReferencesStayValidAcrossScheduling) {
  EventQueue q;
  q.schedule_timer(TimePoint{1}, 3, 30);
  Event& e = q.pop_ref();
  // Scheduling more events (forcing pool growth) must not invalidate `e`.
  for (int i = 0; i < 100; ++i) q.schedule_timer(TimePoint{2 + i}, 0, 0);
  EXPECT_EQ(e.timer_who, 3);
  EXPECT_EQ(e.timer_tag, 30u);
  q.release(e);
  while (!q.empty()) (void)q.pop();
}

// ------------------------------------------------------------ KindId
TEST(KindTable, StableIdsAndRoundTripNames) {
  const KindId a("HOTPATH-A");
  const KindId b("HOTPATH-B");
  const KindId a2("HOTPATH-A");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.name(), "HOTPATH-A");
  EXPECT_EQ(b.name(), "HOTPATH-B");
}

TEST(KindTable, DefaultIsEmptyKind) {
  const KindId none;
  EXPECT_EQ(none.value(), 0);
  EXPECT_EQ(none.name(), "");
  EXPECT_EQ(none, KindId(""));
}

TEST(KindTable, ArqWrappingIsCachedAndPrefixed) {
  const KindId base("HOTPATH-C");
  const KindId wrapped = arq_wrapped(base);
  EXPECT_EQ(wrapped.name(), "ARQ:HOTPATH-C");
  const std::size_t before = kind_table_size();
  EXPECT_EQ(arq_wrapped(base), wrapped);  // second wrap: cached
  EXPECT_EQ(kind_table_size(), before);
}

// ------------------------------------------------------------ SmallVec
TEST(SmallVecTest, StaysInlineUpToCapacity) {
  SmallVec<VarId, 2> v;
  EXPECT_TRUE(v.empty());
  v.push_back(10);
  v.push_back(20);
  EXPECT_TRUE(v.inline_storage());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
}

TEST(SmallVecTest, SpillsToHeapPastCapacityAndKeepsContents) {
  SmallVec<VarId, 2> v{1, 2};
  v.push_back(3);
  EXPECT_FALSE(v.inline_storage());
  EXPECT_EQ(v.size(), 3u);
  for (VarId i = 0; i < 3; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i + 1);
  // And keeps growing.
  for (VarId i = 4; i <= 40; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_EQ(v[39], 40);
}

TEST(SmallVecTest, CopyAndMoveBothStorageModes) {
  SmallVec<VarId, 2> small{7};
  SmallVec<VarId, 2> big{1, 2, 3, 4};

  SmallVec<VarId, 2> small_copy = small;
  EXPECT_EQ(small_copy, small);
  EXPECT_TRUE(small_copy.inline_storage());

  SmallVec<VarId, 2> big_copy = big;
  EXPECT_EQ(big_copy, big);

  SmallVec<VarId, 2> moved = std::move(big_copy);
  EXPECT_EQ(moved, big);
  EXPECT_TRUE(big_copy.empty());  // NOLINT(bugprone-use-after-move)

  moved = {9};  // initializer-list assignment resets
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], 9);
}

TEST(SmallVecTest, AssignmentReleasesAndCopies) {
  SmallVec<VarId, 2> a{1, 2, 3};
  SmallVec<VarId, 2> b{5};
  a = b;
  EXPECT_EQ(a, b);
  b = SmallVec<VarId, 2>{1, 2, 3, 4};
  EXPECT_EQ(b.size(), 4u);
}

// capacity * 2 in 32 bits wraps at 2^31: the doubling must refuse loudly
// instead of allocating a zero-sized buffer and writing past it.  The
// computation is a public static exactly so this is testable without
// materializing 2^31 elements.
TEST(SmallVecTest, GrowRefusesCapacityOverflow) {
  using V = SmallVec<VarId, 2>;
  EXPECT_EQ(V::next_capacity(2), 4u);
  EXPECT_EQ(V::next_capacity(1u << 30), 1u << 31);
  EXPECT_THROW((void)V::next_capacity((1u << 31) + 1), std::logic_error);
  EXPECT_THROW((void)V::next_capacity(~std::uint32_t{0}), std::logic_error);
}

// --------------------------------------------------------------- PairMap
TEST(PairMapTest, FindMissesUntilInserted) {
  PairMap<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42), nullptr);
  map.get_or_insert(42, 0.5) = 0.7;
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 0.7);
  EXPECT_EQ(map.find(43), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(PairMapTest, GetOrInsertKeepsExistingValue) {
  PairMap<std::uint32_t> map;
  ++map.get_or_insert(7, 0);
  ++map.get_or_insert(7, 0);
  EXPECT_EQ(*map.find(7), 2u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(PairMapTest, SurvivesGrowthWithRegularPairKeys) {
  // Packed pair indices are stripes of consecutive integers — the worst
  // case for a weak hash.  Insert a large n×n-ish sample and verify every
  // key still resolves after many rehashes.
  PairMap<std::uint64_t> map;
  const std::uint64_t n = 97;
  for (std::uint64_t from = 0; from < n; ++from) {
    for (std::uint64_t to = 0; to < n; to += 3) {
      map.get_or_insert(from * n + to, 0) = from * 1000 + to;
    }
  }
  for (std::uint64_t from = 0; from < n; ++from) {
    for (std::uint64_t to = 0; to < n; ++to) {
      const auto* v = map.find(from * n + to);
      if (to % 3 == 0) {
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, from * 1000 + to);
      } else {
        EXPECT_EQ(v, nullptr);
      }
    }
  }
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.memory_bytes(), 0u);
}

// ------------------------------------------------- steady-state allocation
// The tentpole's hard gate: once the pools are warm, delivering messages
// must not allocate per message.  A PRAM workload on a clique-rich ring
// multiplies messages per write, so an allocation-per-message regression
// shows up as counts scaling with messages; the budget below only allows
// the per-write costs (one body make_shared, history append amortization,
// client callbacks).
TEST(SteadyStateAllocations, DeliverPathIsAllocationFree) {
  const auto dist = graph::topo::complete(12, 4);  // C(x) = all 12
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 20;
  spec.read_fraction = 0.0;  // writes only: maximum deliveries
  spec.seed = 99;
  const auto scripts = mcs::make_random_scripts(dist, spec);

  // Warm run: grows pools, interner, history vectors, etc.
  const auto warm = mcs::run_workload(mcs::ProtocolKind::kPramPartial, dist,
                                      scripts, {});
  const std::uint64_t messages = warm.total_traffic.msgs_sent;
  const std::uint64_t writes = 12 * 20;
  ASSERT_EQ(messages, writes * 11);  // every write updates 11 replicas

  // Counted run: identical workload, fresh system (pools start cold again
  // inside run_workload, so the budget must cover pool growth too — what
  // it must NOT cover is an allocation per delivered message).
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  const auto counted = mcs::run_workload(mcs::ProtocolKind::kPramPartial,
                                         dist, scripts, {});
  g_count_allocs.store(false);
  ASSERT_EQ(counted.total_traffic.msgs_sent, messages);

  const std::uint64_t allocs = g_alloc_count.load();
  // 2640 deliveries vs 240 writes: before the refactor this took > 4
  // allocations per delivered message (closure + meta strings/vectors +
  // heap churn), i.e. > 10000.  Now the whole run — setup, pool growth,
  // bodies, history, result collection included — must fit well under
  // one allocation per delivered message.
  EXPECT_LT(allocs, messages)
      << "deliver path allocates per message again: " << allocs
      << " allocations for " << messages << " deliveries";
}

// The pooled-body plane's hard gate, per protocol: once every pool,
// freelist and container is warm, a full operation lifecycle — issue,
// body creation, fanout, delivery, apply, completion — performs ZERO heap
// allocations on the simulator root.  Unlike the budgeted run_workload
// gate above, this drives processes directly inside ONE system so the
// measured rounds really are steady state (run_workload rebuilds the
// system, whose cold pools would dominate the count).
TEST(SteadyStateAllocations, EveryProtocolSteadyStateOpIsAllocationFree) {
  for (const mcs::ProtocolKind kind : mcs::all_protocols()) {
    SCOPED_TRACE(mcs::to_string(kind));
    // Full replication on 6 processes: C(x) = everyone (maximum fanout),
    // n ≤ 8 keeps vector clocks and prior-count vectors inline.
    const auto dist = graph::topo::complete(6, 4);
    Simulator sim;
    mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
    recorder.use_discard_mode();  // O(1) memory: no per-op history append
    auto processes = mcs::make_processes(kind, dist, recorder);
    for (auto& proc : processes) {
      const ProcessId assigned = sim.add_endpoint(proc.get());
      ASSERT_EQ(assigned, proc->id());
      proc->attach(sim);
    }

    std::uint64_t completed = 0;
    Value next_value = 1;
    // One write + one read of every variable by every process, each op
    // drained to completion before the next is issued (blocking protocols
    // allow one operation in flight per process).
    const auto round = [&] {
      for (auto& proc : processes) {
        for (VarId x = 0; x < static_cast<VarId>(dist.var_count); ++x) {
          proc->write(x, next_value++, [&completed] { ++completed; });
          sim.run();
          proc->read(x, [&completed](Value) { ++completed; });
          sim.run();
        }
      }
    };
    // Warm rounds: grow the body pools, event pool, recycling-map
    // freelists and every per-key container entry the workload touches.
    for (int warm = 0; warm < 3; ++warm) round();

    const std::uint64_t before = completed;
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    round();
    g_count_allocs.store(false);

    const std::uint64_t ops = completed - before;
    EXPECT_EQ(ops, 2u * dist.process_count() * dist.var_count);
    EXPECT_EQ(g_alloc_count.load(), 0u)
        << mcs::to_string(kind) << ": " << g_alloc_count.load()
        << " heap allocations across " << ops << " steady-state operations";
  }
}

}  // namespace
}  // namespace pardsm
