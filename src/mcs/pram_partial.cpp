#include "mcs/pram_partial.h"

#include "simnet/wire.h"

namespace pardsm::mcs {

struct PramUpdate final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kPramUpdate;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
  }
};

namespace {

const wire::BodyRegistrar pram_codec(
    wire::kPramUpdate, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<PramUpdate>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      return BodyRef::adopt(b);
    });

/// Message kinds, interned once so the send path never hits the table.
const KindId kUpdateKind("PRAM");

}  // namespace

PramPartialProcess::PramPartialProcess(ProcessId self,
                                       const graph::Distribution& dist,
                                       HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder),
      last_applied_(dist.process_count(), -1) {}

void PramPartialProcess::on_attach() {
  update_pool_ = &arena().pool<PramUpdate>();
}

void PramPartialProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void PramPartialProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();
  mutable_store().put(x, v, wid);
  recorder().record_write(id(), x, v, wid, t, t);
  ++mutable_stats().writes;

  auto* body = update_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;

  SendPlan plan;
  plan.body = BodyRef::adopt(body);
  plan.meta.kind = kUpdateKind;
  plan.meta.control_bytes = 16 /*write id*/ + 8 /*var*/;
  plan.meta.payload_bytes = 8;
  plan.meta.vars_mentioned = {x};
  for (ProcessId q : replicas_of(x)) {
    if (q != id()) plan.to.push_back(q);
  }
  emit(std::move(plan));
  done();
}

void PramPartialProcess::handle_message(const Message& m) {
  const auto* u = m.as<PramUpdate>();
  PARDSM_CHECK(u != nullptr, "pram: unexpected message body");
  PARDSM_CHECK(replicates(u->x), "pram: update for unreplicated variable");
  // Ignore duplicated (hence stale: originals arrive FIFO) copies — an old
  // value must never overwrite a newer one from the same writer.
  auto& last = last_applied_[static_cast<std::size_t>(m.from)];
  if (u->id.seq <= last) return;
  last = u->id.seq;
  mutable_store().put(u->x, u->v, u->id);
  ++mutable_stats().updates_applied;
}

}  // namespace pardsm::mcs
