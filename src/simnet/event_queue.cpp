#include "simnet/event_queue.h"

#include "simnet/check.h"

namespace pardsm {

void EventQueue::schedule(TimePoint when, std::function<void()> fn) {
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

TimePoint EventQueue::next_time() const {
  PARDSM_CHECK(!heap_.empty(), "next_time on empty queue");
  return heap_.top().when;
}

Event EventQueue::pop() {
  PARDSM_CHECK(!heap_.empty(), "pop on empty queue");
  // priority_queue::top returns const&; we must copy then pop.  The
  // std::function move is the expensive part, so copy via const_cast-free
  // pattern: take a copy of top, then pop.
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace pardsm
