// Scenario engine: fault-RNG stream isolation, per-pair loss tables,
// partition group expansion, crash windows, and the run_scenario driver.

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/scenario.h"

namespace pardsm {
namespace {

// ------------------------------------------------- RNG stream isolation
//
// The regression the dedicated fault stream exists to prevent: enabling
// loss (anywhere) used to shift the latency RNG stream, silently changing
// the delivery times of every *surviving* message.

std::unique_ptr<LatencyModel> jittery() {
  return std::make_unique<UniformLatency>(millis(1), millis(50));
}

TEST(ScenarioRng, LossOnOnePairNeverPerturbsLatencySampling) {
  ChannelOptions ch;
  ch.fifo = false;  // no clamping: observe raw latency samples
  Network clean(4, ch, jittery(), Rng(11));
  Network faulty(4, ch, jittery(), Rng(11));
  faulty.set_loss(2, 3, 0.9);

  for (int i = 0; i < 200; ++i) {
    // Interleave two pairs; the lossy pair sits between every probe of the
    // observed pair, so any stream coupling would show immediately.
    const auto t = TimePoint{i * 100};
    const auto clean01 = clean.plan_delivery(0, 1, t);
    const auto clean23 = clean.plan_delivery(2, 3, t);
    const auto faulty01 = faulty.plan_delivery(0, 1, t);
    const auto faulty23 = faulty.plan_delivery(2, 3, t);

    // The observed pair is bit-identical under faults elsewhere.
    ASSERT_EQ(clean01.size(), 1u);
    ASSERT_EQ(faulty01.size(), 1u);
    EXPECT_EQ(clean01[0], faulty01[0]);

    // And a message that *survives* the lossy pair is delivered exactly
    // when the fault-free run would have delivered it.
    ASSERT_EQ(clean23.size(), 1u);
    if (!faulty23.empty()) {
      EXPECT_EQ(faulty23[0], clean23[0]);
    }
  }
  EXPECT_GT(faulty.drop_counters().loss, 0u);
  EXPECT_EQ(clean.dropped_count(), 0u);
}

TEST(ScenarioRng, ZeroLossArmedIsIdenticalToFaultsDisabled) {
  // The ISSUE-level statement: drop_probability = 0 with the fault
  // machinery armed is bit-identical to a run with faults disabled.
  const auto dist = graph::topo::ring(5);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 9;
  const auto scripts = mcs::make_random_scripts(dist, spec);

  const auto plain = [&] {
    mcs::RunOptions o;
    o.sim_seed = 5;
    o.latency = jittery();
    return mcs::run_workload(mcs::ProtocolKind::kPramPartial, dist, scripts,
                             std::move(o));
  }();
  const auto armed = [&] {
    mcs::RunOptions o;
    o.sim_seed = 5;
    o.latency = jittery();
    Scenario s("zero-loss");
    s.set_loss(0.0);  // arms the per-pair tables without any loss
    return mcs::run_scenario(mcs::ProtocolKind::kPramPartial, dist, scripts,
                             s, std::move(o));
  }();

  EXPECT_FALSE(armed.used_reliable_transport);
  EXPECT_EQ(plain.history.to_string(), armed.history.to_string());
  EXPECT_EQ(plain.total_traffic.msgs_sent, armed.total_traffic.msgs_sent);
  EXPECT_EQ(plain.finished_at, armed.finished_at);
  EXPECT_EQ(plain.events, armed.events);
  EXPECT_EQ(plain.final_replicas, armed.final_replicas);
}

TEST(ScenarioRng, DuplicateCopyLatencyComesFromFaultStream) {
  ChannelOptions ch;
  ch.fifo = false;
  Network clean(2, ch, jittery(), Rng(21));
  Network duping(2, ch, jittery(), Rng(21));
  duping.set_duplicate(0, 1, 1.0);

  for (int i = 0; i < 100; ++i) {
    const auto t = TimePoint{i * 1000};
    const auto a = clean.plan_delivery(0, 1, t);
    const auto b = duping.plan_delivery(0, 1, t);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 2u);
    // First copy: identical to the fault-free delivery.
    EXPECT_EQ(a[0], b[0]);
  }
}

// ------------------------------------------------------------ partitions

TEST(Scenario, PartitionSeversExactlyCrossGroupPairsThenHeals) {
  SimOptions so;
  so.seed = 3;
  Simulator sim(std::move(so));
  struct Sink final : Endpoint {
    void on_message(const Message&) override {}
  };
  std::vector<Sink> sinks(5);
  for (auto& s : sinks) sim.add_endpoint(&s);

  Scenario s("split");
  // Process 4 is listed nowhere: it becomes a singleton group.
  s.partition({{0, 1}, {2, 3}}, after(millis(2)), after(millis(5)));

  std::vector<std::pair<ProcessId, ProcessId>> cross = {
      {0, 2}, {0, 3}, {1, 2}, {1, 3}, {0, 4}, {2, 4}, {4, 1}, {4, 3}};
  std::vector<std::pair<ProcessId, ProcessId>> intra = {{0, 1}, {1, 0},
                                                        {2, 3}, {3, 2}};

  bool probed_mid = false, probed_after = false;
  sim.schedule_at(TimePoint{} + millis(3), [&] {
    probed_mid = true;
    for (auto [a, b] : cross) {
      EXPECT_TRUE(sim.network().severed(a, b)) << a << "->" << b;
      EXPECT_TRUE(sim.network().severed(b, a)) << b << "->" << a;
    }
    for (auto [a, b] : intra) {
      EXPECT_FALSE(sim.network().severed(a, b)) << a << "->" << b;
    }
  });
  sim.schedule_at(TimePoint{} + millis(6), [&] {
    probed_after = true;
    for (auto [a, b] : cross) {
      EXPECT_FALSE(sim.network().severed(a, b)) << a << "->" << b;
    }
  });
  s.apply(sim);
  sim.run();
  EXPECT_TRUE(probed_mid);
  EXPECT_TRUE(probed_after);
}

TEST(Scenario, PairLossWindowRestoresTheEnclosingGlobalRate) {
  // A pair burst inside a global loss regime: when the burst window closes
  // the pair must return to the scenario's 5%, not to the channel default.
  SimOptions so;
  so.seed = 9;
  Simulator sim(std::move(so));
  struct Sink final : Endpoint {
    void on_message(const Message&) override {}
  };
  std::vector<Sink> sinks(4);
  for (auto& s : sinks) sim.add_endpoint(&s);

  Scenario s("burst-inside-regime");
  s.set_loss(0.05);
  s.set_loss(2, 3, 0.5, after(millis(1)), after(millis(3)));
  s.duplicate(0.02);
  s.duplicate(0, 1, 0.9, after(millis(1)), after(millis(3)));

  bool probed_mid = false, probed_after = false;
  sim.schedule_at(after(millis(2)), [&] {
    probed_mid = true;
    EXPECT_DOUBLE_EQ(sim.network().effective_loss(2, 3, sim.now()), 0.5);
    EXPECT_DOUBLE_EQ(sim.network().effective_loss(0, 1, sim.now()), 0.05);
    EXPECT_DOUBLE_EQ(sim.network().effective_duplicate(0, 1, sim.now()), 0.9);
  });
  sim.schedule_at(after(millis(4)), [&] {
    probed_after = true;
    EXPECT_DOUBLE_EQ(sim.network().effective_loss(2, 3, sim.now()), 0.05);  // regime, not 0
    EXPECT_DOUBLE_EQ(sim.network().effective_duplicate(0, 1, sim.now()), 0.02);
  });
  s.apply(sim);
  sim.run();
  EXPECT_TRUE(probed_mid);
  EXPECT_TRUE(probed_after);
}

TEST(Scenario, CrossedWindowsRecomputeToTheStillOpenRegime) {
  // Crossed (non-nested) windows: A = [0, 6ms) at 0.5 and B = [2ms, 10ms)
  // at 0.2.  When A closes, B's regime must be in force — and after B
  // closes the network returns to the base, not to a stale saved rate.
  SimOptions so;
  so.seed = 6;
  Simulator sim(std::move(so));
  struct Sink final : Endpoint {
    void on_message(const Message&) override {}
  };
  std::vector<Sink> sinks(2);
  for (auto& s : sinks) sim.add_endpoint(&s);

  Scenario s("crossed");
  s.set_loss(0.5, kTimeZero, after(millis(6)));
  s.set_loss(0.2, after(millis(2)), after(millis(10)));

  int probes = 0;
  const auto probe = [&](Duration at, double want) {
    sim.schedule_at(after(at), [&, want] {
      ++probes;
      EXPECT_DOUBLE_EQ(sim.network().effective_loss(0, 1, sim.now()), want);
    });
  };
  probe(millis(1), 0.5);   // only A open
  probe(millis(3), 0.2);   // B opened later: B wins
  probe(millis(7), 0.2);   // A closed: B's regime, not A's saved state
  probe(millis(11), 0.0);  // both closed: base, not 0.5
  s.apply(sim);
  sim.run();
  EXPECT_EQ(probes, 4);
}

TEST(Scenario, PermanentTotalLossIsRejectedAtBuildTime) {
  // The liveness contract covers probability windows too: total loss with
  // no end time can never drain the ARQ channel, so it must not build.
  Scenario s("blackout");
  EXPECT_THROW(s.set_loss(1.0), std::logic_error);
  // Bounded total loss is fine: the window ends, the backlog drains.
  s.set_loss(1.0, kTimeZero, after(millis(5)));
}

TEST(Scenario, OverlappingPartitionsComposeCutsAreCounted) {
  // An inner partition healing at 6ms must not reopen pairs an outer
  // partition keeps severed until 10ms.
  SimOptions so;
  so.seed = 4;
  Simulator sim(std::move(so));
  struct Sink final : Endpoint {
    void on_message(const Message&) override {}
  };
  std::vector<Sink> sinks(4);
  for (auto& s : sinks) sim.add_endpoint(&s);

  Scenario s("nested-split");
  s.partition({{0, 1}, {2, 3}}, after(millis(2)), after(millis(10)));
  s.partition({{0}, {1, 2, 3}}, after(millis(4)), after(millis(6)));

  bool probed = false;
  sim.schedule_at(after(millis(7)), [&] {
    probed = true;
    EXPECT_TRUE(sim.network().severed(0, 2));   // outer cut still open
    EXPECT_TRUE(sim.network().severed(1, 3));
    EXPECT_FALSE(sim.network().severed(0, 1));  // inner cut healed
  });
  sim.schedule_at(after(millis(11)), [&] {
    EXPECT_FALSE(sim.network().severed(0, 2));  // outer healed too
  });
  s.apply(sim);
  sim.run();
  EXPECT_TRUE(probed);
}

TEST(Scenario, SameTimeWindowEdgesCloseBeforeTheyOpen) {
  // Built out of chronological order: a burst starting exactly when a
  // global window ends must take effect (the global revert fires first).
  SimOptions so;
  so.seed = 5;
  Simulator sim(std::move(so));
  struct Sink final : Endpoint {
    void on_message(const Message&) override {}
  };
  std::vector<Sink> sinks(4);
  for (auto& s : sinks) sim.add_endpoint(&s);

  Scenario s("edge-race");
  s.set_loss(2, 3, 0.9, after(millis(5)), after(millis(9)));  // built first
  s.set_loss(0.1, kTimeZero, after(millis(5)));               // ends at 5ms

  bool probed = false;
  sim.schedule_at(after(millis(6)), [&] {
    probed = true;
    EXPECT_DOUBLE_EQ(sim.network().effective_loss(2, 3, sim.now()), 0.9);  // burst in effect
    EXPECT_DOUBLE_EQ(sim.network().effective_loss(0, 1, sim.now()), 0.0);  // global reverted
  });
  sim.schedule_at(after(millis(10)), [&] {
    EXPECT_DOUBLE_EQ(sim.network().effective_loss(2, 3, sim.now()), 0.0);  // burst reverted
  });
  s.apply(sim);
  sim.run();
  EXPECT_TRUE(probed);
}

// ---------------------------------------------------------------- crashes

TEST(Scenario, CrashDropsInFlightAndBlocksTrafficUntilRecovery) {
  struct Sink final : Endpoint {
    std::vector<TimePoint> got;
    Simulator* sim = nullptr;
    void on_message(const Message&) override { got.push_back(sim->now()); }
  };
  SimOptions so;
  so.seed = 7;
  Simulator sim(std::move(so));  // constant 1ms latency
  Sink a, b;
  a.sim = &sim;
  b.sim = &sim;
  sim.add_endpoint(&a);
  sim.add_endpoint(&b);

  const auto send = [&](TimePoint at) {
    sim.schedule_at(at, [&] {
      sim.send(0, 1, make_body<MessageBody>(),
               MessageMeta{"PING", 0, 0, {}});
    });
  };
  // In flight across the crash boundary: sent at 1.5ms, would arrive at
  // 2.5ms — inside the 2..4ms downtime — and is lost with the crash.
  send(TimePoint{} + micros(1500));
  // Sent during downtime: dropped at planning time.
  send(TimePoint{} + millis(3));
  // Sent after recovery: delivered normally.
  send(TimePoint{} + millis(5));

  Scenario s("one-crash");
  s.crash(1, after(millis(2)), after(millis(4)));
  s.apply(sim);
  sim.run();

  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0], TimePoint{} + millis(6));
  EXPECT_EQ(sim.network().drop_counters().in_flight, 1u);
  EXPECT_EQ(sim.network().drop_counters().down, 1u);
}

// ------------------------------------------------------- run_scenario

Scenario kitchen_sink() {
  Scenario s("loss+partition+crash");
  s.set_loss(0.1)
      .partition({{0, 1}, {2, 3}}, after(millis(2)), after(millis(10)))
      .crash(1, after(millis(4)), after(millis(12)));
  return s;
}

TEST(RunScenario, PramLiveConsistentAndDeterministicUnderKitchenSink) {
  const auto dist = graph::topo::random_replication(4, 3, 2, 17);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.seed = 3;
  spec.think_time = millis(1);  // spread ops across the fault windows
  const auto scripts = mcs::make_random_scripts(dist, spec);

  const auto run = [&] {
    mcs::RunOptions o;
    o.sim_seed = 17;
    return mcs::run_scenario(mcs::ProtocolKind::kPramPartial, dist, scripts,
                             kitchen_sink(), std::move(o));
  };
  const auto r = run();

  EXPECT_TRUE(r.used_reliable_transport);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.drops.total(), 0u);
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_GT(r.resync_messages, 0u);
  EXPECT_GT(r.resync_bytes, 0u);
  EXPECT_GT(r.max_recovery_latency.us, 0);
  EXPECT_TRUE(
      hist::check_history(r.history, hist::Criterion::kPram).consistent)
      << r.history.to_string();

  // Deterministic replay, byte for byte.
  const auto again = run();
  EXPECT_EQ(r.history.to_string(), again.history.to_string());
  EXPECT_EQ(r.total_traffic.msgs_sent, again.total_traffic.msgs_sent);
}

TEST(RunScenario, ResyncBytesAreChargedToNetworkStats) {
  // A crash-only scenario on a lossless channel: the only extra traffic
  // beyond the baseline run is ARQ framing and the recovery re-sync, and
  // the re-sync bytes must be part of the NetworkStats ledger.
  const auto dist = graph::topo::ring(4);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.seed = 2;
  spec.think_time = millis(1);
  const auto scripts = mcs::make_random_scripts(dist, spec);

  Scenario s("crash-only");
  s.crash(2, after(millis(1)), after(millis(3)));
  mcs::RunOptions o;
  o.sim_seed = 4;
  const auto r = mcs::run_scenario(mcs::ProtocolKind::kPramPartial, dist,
                                   scripts, s, std::move(o));
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_GT(r.resync_bytes, 0u);
  // The total ledger contains at least the re-sync bytes the victim
  // charged (they travelled as ordinary messages).
  EXPECT_GT(r.total_traffic.control_bytes_sent, 0u);
  EXPECT_GE(r.total_traffic.wire_bytes_sent(), r.resync_bytes);
}

TEST(RunScenario, EveryProtocolSurvivesTheKitchenSink) {
  const auto dist = graph::topo::ring(4);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.seed = 5;
  spec.think_time = millis(1);
  const auto scripts = mcs::make_random_scripts(dist, spec);
  for (auto kind : mcs::all_protocols()) {
    mcs::RunOptions o;
    o.sim_seed = 23;
    const auto r =
        mcs::run_scenario(kind, dist, scripts, kitchen_sink(), std::move(o));
    EXPECT_TRUE(r.used_reliable_transport) << mcs::to_string(kind);
    EXPECT_EQ(r.crashes, 1u) << mcs::to_string(kind);
  }
}

}  // namespace
}  // namespace pardsm
