// Discrete-event priority queue.
//
// Events are ordered by (time, insertion sequence), which makes simulation
// runs fully deterministic: ties are broken by insertion order, never by
// container internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simnet/sim_time.h"

namespace pardsm {

/// A scheduled simulation event.
struct Event {
  TimePoint when{};
  std::uint64_t seq = 0;  ///< tie-breaker: insertion order
  std::function<void()> fire;
};

/// Min-heap of events keyed by (when, seq).
class EventQueue {
 public:
  /// Schedule `fn` to run at absolute time `when`.
  void schedule(TimePoint when, std::function<void()> fn);

  /// True if no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the next event; only valid when !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Remove and return the next event.  Only valid when !empty().
  Event pop();

  /// Total number of events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t scheduled_total() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return b.when < a.when;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pardsm
