#include "simnet/reliable.h"

#include <algorithm>
#include <deque>

#include "simnet/check.h"
#include "simnet/rng.h"
#include "simnet/wire.h"

namespace pardsm {

namespace {

/// Payload-bearing frame.
struct DataFrame final : MessageBody {
  std::uint64_t seq = 0;  ///< per (sender, receiver) sequence, 1-based
  BodyRef payload;
  MessageMeta payload_meta;
  KindId wrapped_kind;  ///< "ARQ:"+kind, resolved once per frame so
                        ///< (re)transmissions never touch the table lock

  /// Pool recycle hook: release the payload now (not when the slot is
  /// reused); the meta's small-buffer storage keeps its capacity.  The
  /// remaining fields are assigned at both creation sites (send_reliably
  /// and the wire decoder) before the frame escapes.
  // pardsm-lint: overwritten-by-creator(seq, payload_meta, wrapped_kind)
  void reset() { payload.reset(); }

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kArqData;
  }
  void wire_encode(WireWriter& w) const override {
    w.u64(seq);
    wire::encode_meta(w, payload_meta);
    wire::encode_body(w, *payload);
  }
};

/// Acknowledgement: cumulative per directed pair.
struct AckFrame final : MessageBody {
  std::uint64_t cumulative = 0;  ///< all seq <= cumulative received

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kArqAck;
  }
  void wire_encode(WireWriter& w) const override { w.u64(cumulative); }
};

const wire::BodyRegistrar arq_data_codec(
    wire::kArqData, [](WireReader& r, BodyArena& arena) -> BodyRef {
      DataFrame* f = arena.create<DataFrame>();
      f->seq = r.u64();
      f->payload_meta = wire::decode_meta(r);
      f->payload = wire::decode_body(r, arena);
      f->wrapped_kind = arq_wrapped(f->payload_meta.kind);
      return BodyRef::adopt(f);
    });

const wire::BodyRegistrar arq_ack_codec(
    wire::kArqAck, [](WireReader& r, BodyArena& arena) -> BodyRef {
      AckFrame* f = arena.create<AckFrame>();
      f->cumulative = r.u64();
      return BodyRef::adopt(f);
    });

/// Timer tags: the ARQ layer owns the upper bit space so application tags
/// pass through unchanged.
constexpr TimerTag kArqTimerBit = 1ULL << 63;

/// Stream tag of the retransmit-jitter draws (see ReliableOptions::jitter).
constexpr std::uint64_t kJitterStreamTag = 0xA7'0B0F;

/// Cumulative-ack kind, interned once.
const KindId kAckKind("ARQ:ACK");

}  // namespace

/// Per-process shim: the simulator endpoint that hides the ARQ machinery
/// from the real application endpoint.
class ReliableTransport::Shim final : public Endpoint {
 public:
  Shim(ReliableTransport& owner, Endpoint* app, ProcessId self)
      : owner_(owner),
        app_(app),
        self_(self),
        data_pool_(&owner.lower_.arena(self).pool<DataFrame>()),
        ack_pool_(&owner.lower_.arena(self).pool<AckFrame>()) {}

  // ---- sending side -------------------------------------------------------
  void send_app(ProcessId to, BodyRef body, MessageMeta meta) {
    auto& out = outgoing_[to];
    if (out.dead) {
      ++dead_drops_;
      return;
    }
    const std::uint64_t seq = ++out.next_seq;
    DataFrame* frame = data_pool_->create();
    frame->seq = seq;
    frame->payload = std::move(body);
    frame->payload_meta = meta;
    frame->wrapped_kind = arq_wrapped(meta.kind);

    Pending& pending = out.unacked[seq];
    pending.frame = BodyRef::adopt(frame);
    transmit(to, pending.frame);
    if (owner_.adaptive_) {
      if (out.unacked.size() == 1) {
        // First pending frame on this channel: (re)base the schedule.
        out.interval = owner_.options_.retransmit_after;
        out.next_fire = owner_.lower_.now() + jittered(to, out.interval);
        arm_until(out.next_fire);
      }
    } else {
      arm_timer();
    }
  }

  void transmit(ProcessId to, const BodyRef& frame) {
    const auto* f = static_cast<const DataFrame*>(frame.get());
    MessageMeta meta = f->payload_meta;
    meta.kind = f->wrapped_kind;
    meta.control_bytes += 16;  // seq + ack piggyback space
    owner_.lower_.send(self_, to, frame, std::move(meta));
  }

  // ---- receiving side -------------------------------------------------------
  void on_message(const Message& m) override {
    if (const auto* ack = m.try_as<AckFrame>()) {
      auto& out = outgoing_[m.from];
      for (auto it = out.unacked.begin();
           it != out.unacked.end() && it->first <= ack->cumulative;) {
        it = out.unacked.erase(it);
      }
      // Progress resets the backoff: the channel is alive again.
      if (out.unacked.empty()) out.interval = Duration{};
      return;
    }
    const auto* frame = m.try_as<DataFrame>();
    if (frame == nullptr) {
      // Not an ARQ frame (foreign traffic): pass through untouched.
      app_->on_message(m);
      return;
    }
    auto& in = incoming_[m.from];
    if (frame->seq > in.delivered) {
      in.pending.emplace(frame->seq, m.body);
      // Deliver any in-sequence prefix exactly once.
      while (!in.pending.empty() &&
             in.pending.begin()->first == in.delivered + 1) {
        const auto& next = *static_cast<const DataFrame*>(
            in.pending.begin()->second.get());
        Message app_msg;
        app_msg.from = m.from;
        app_msg.to = self_;
        app_msg.body = next.payload;
        app_msg.meta = next.payload_meta;
        app_msg.id = m.id;
        app_msg.send_time = m.send_time;
        app_msg.deliver_time = m.deliver_time;
        ++in.delivered;
        in.pending.erase(in.pending.begin());
        app_->on_message(app_msg);
      }
    }
    // Cumulative ack (also for duplicates — the original ack may be lost).
    AckFrame* ack = ack_pool_->create();
    ack->cumulative = in.delivered;
    MessageMeta ack_meta;
    ack_meta.kind = kAckKind;
    ack_meta.control_bytes = 8;
    owner_.lower_.send(self_, m.from, BodyRef::adopt(ack),
                       std::move(ack_meta));
  }

  void on_timer(TimerTag tag) override {
    if ((tag & kArqTimerBit) == 0) {
      app_->on_timer(tag);
      return;
    }
    if (owner_.adaptive_) {
      on_backoff_timer();
      return;
    }
    timer_armed_ = false;
    bool anything_pending = false;
    for (auto& [to, out] : outgoing_) {
      if (retransmit_all(to, out)) anything_pending = true;
    }
    if (anything_pending) arm_timer();
  }

  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t dead_drops() const { return dead_drops_; }
  [[nodiscard]] const std::vector<ProcessId>& dead_targets() const {
    return dead_targets_;
  }

 private:
  /// An unacked frame plus its retransmit count (acking erases both, so
  /// the counter's lifetime is exactly the frame's).  The frame is never
  /// mutated after construction, so a plain owning ref suffices.
  struct Pending {
    BodyRef frame;  ///< always a DataFrame
    std::uint32_t retries = 0;
  };
  struct Outgoing {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Pending> unacked;
    // Backoff-scheduler state (unused by the legacy fixed-period path).
    Duration interval{};    ///< current retransmit interval
    TimePoint next_fire{};  ///< next scheduled retransmission round
    std::uint64_t jitter_draws = 0;  ///< per-destination draw index
    bool dead = false;
  };
  struct Incoming {
    std::uint64_t delivered = 0;
    std::map<std::uint64_t, BodyRef> pending;  ///< out-of-order DataFrames
  };

  /// Retransmit every pending frame to `to`; returns true if frames remain
  /// pending afterwards (false also when the channel just died).
  bool retransmit_all(ProcessId to, Outgoing& out) {
    for (auto& [seq, pending] : out.unacked) {
      if (++pending.retries > owner_.options_.max_retransmits) {
        give_up(to, out);
        return false;
      }
      ++retransmissions_;
      transmit(to, pending.frame);
    }
    return !out.unacked.empty();
  }

  /// A frame exhausted max_retransmits.
  void give_up(ProcessId to, Outgoing& out) {
    if (owner_.options_.on_exhausted == OnExhausted::kThrow) {
      PARDSM_CHECK(false, "ARQ gave up: frame retransmitted too often");
    }
    dead_drops_ += out.unacked.size();
    out.unacked.clear();
    out.dead = true;
    dead_targets_.push_back(to);
  }

  /// Legacy scheduler: one shared fixed-period timer per process.
  void arm_timer() {
    if (timer_armed_) return;
    timer_armed_ = true;
    owner_.lower_.set_timer(self_, owner_.options_.retransmit_after,
                          kArqTimerBit);
  }

  // ---- per-destination backoff scheduler ----------------------------------

  /// Scale `interval` by a deterministic jitter factor in
  /// [1 - jitter, 1 + jitter].  The draw is keyed on logical coordinates
  /// (seed, sender, destination, draw index), so it does not depend on the
  /// interleaving of timers across destinations or processes.
  Duration jittered(ProcessId to, Duration interval) {
    const double j = owner_.options_.jitter;
    if (j <= 0.0) return interval;
    Rng rng = counter_rng(owner_.options_.jitter_seed,
                          static_cast<std::uint64_t>(self_),
                          static_cast<std::uint64_t>(to),
                          outgoing_[to].jitter_draws++, kJitterStreamTag);
    const double factor = 1.0 + j * (2.0 * rng.uniform01() - 1.0);
    const auto us = static_cast<std::int64_t>(
        static_cast<double>(interval.us) * factor);
    return Duration{std::max<std::int64_t>(us, 1)};
  }

  [[nodiscard]] Duration interval_cap() const {
    return owner_.options_.retransmit_max.us > 0
               ? owner_.options_.retransmit_max
               : Duration{owner_.options_.retransmit_after.us * 32};
  }

  /// Make sure an ARQ timer fires no later than `deadline`.  Extra timers
  /// from earlier arms fire spuriously and simply re-scan.
  void arm_until(TimePoint deadline) {
    if (timer_armed_ && armed_deadline_.us <= deadline.us) return;
    timer_armed_ = true;
    armed_deadline_ = deadline;
    const TimePoint t = owner_.lower_.now();
    owner_.lower_.set_timer(
        self_, Duration{std::max<std::int64_t>(deadline.us - t.us, 0)},
        kArqTimerBit);
  }

  void on_backoff_timer() {
    timer_armed_ = false;
    const TimePoint t = owner_.lower_.now();
    bool have_next = false;
    TimePoint next{};
    for (auto& [to, out] : outgoing_) {
      if (out.dead || out.unacked.empty()) continue;
      if (out.next_fire.us <= t.us) {
        if (!retransmit_all(to, out)) continue;  // acked empty or died
        const double f = std::max(owner_.options_.backoff_factor, 1.0);
        const auto grown = static_cast<std::int64_t>(
            static_cast<double>(out.interval.us) * f);
        out.interval =
            Duration{std::min<std::int64_t>(grown, interval_cap().us)};
        out.next_fire = t + jittered(to, out.interval);
      }
      if (!have_next || out.next_fire.us < next.us) {
        have_next = true;
        next = out.next_fire;
      }
    }
    if (have_next) arm_until(next);
  }

  ReliableTransport& owner_;
  Endpoint* app_;
  ProcessId self_;
  BodyPool<DataFrame>* data_pool_;
  BodyPool<AckFrame>* ack_pool_;
  std::map<ProcessId, Outgoing> outgoing_;
  std::map<ProcessId, Incoming> incoming_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t dead_drops_ = 0;
  std::vector<ProcessId> dead_targets_;
  bool timer_armed_ = false;
  TimePoint armed_deadline_{};
};

ReliableTransport::ReliableTransport(HostTransport& lower,
                                     ReliableOptions options)
    : lower_(lower), options_(options), adaptive_(options.adaptive()) {}

ReliableTransport::~ReliableTransport() = default;

ProcessId ReliableTransport::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  auto shim = std::make_unique<Shim>(*this, ep,
                                     static_cast<ProcessId>(shims_.size()));
  const ProcessId assigned = lower_.add_endpoint(shim.get());
  PARDSM_CHECK(assigned == static_cast<ProcessId>(shims_.size()),
               "interleaved registration with the layer below");
  shims_.push_back(std::move(shim));
  return assigned;
}

void ReliableTransport::send(ProcessId from, ProcessId to, BodyRef body,
                             MessageMeta meta) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < shims_.size(),
               "send: bad sender");
  shims_[static_cast<std::size_t>(from)]->send_app(to, std::move(body),
                                                   std::move(meta));
}

void ReliableTransport::set_timer(ProcessId who, Duration delay,
                                  TimerTag tag) {
  PARDSM_CHECK((tag & (1ULL << 63)) == 0,
               "application timer tags must not use the top bit");
  lower_.set_timer(who, delay, tag);
}

std::size_t ReliableTransport::process_count() const { return shims_.size(); }

std::uint64_t ReliableTransport::retransmissions() const {
  std::uint64_t sum = 0;
  for (const auto& shim : shims_) sum += shim->retransmissions();
  return sum;
}

std::vector<std::pair<ProcessId, ProcessId>> ReliableTransport::dead_channels()
    const {
  std::vector<std::pair<ProcessId, ProcessId>> out;
  for (std::size_t i = 0; i < shims_.size(); ++i) {
    for (ProcessId to : shims_[i]->dead_targets()) {
      out.emplace_back(static_cast<ProcessId>(i), to);
    }
  }
  return out;
}

std::uint64_t ReliableTransport::dead_channel_drops() const {
  std::uint64_t sum = 0;
  for (const auto& shim : shims_) sum += shim->dead_drops();
  return sum;
}

}  // namespace pardsm
