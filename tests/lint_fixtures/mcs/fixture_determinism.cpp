// pardsm_lint fixture: R1 (determinism) seeded violations.  This file is
// never compiled — the tree under tests/lint_fixtures/ is shaped like src/
// so layer-sensitive rules resolve, and test_lint.cpp pins the exact
// file:line of every expected finding.  Renumbering lines breaks the test.
#include <chrono>
#include <cstdlib>

namespace fixture {

long bad_wall_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

int bad_rand() {
  return std::rand();
}

long bad_time_call() {
  return time(nullptr);
}

int suppressed_rand() {
  return std::rand();  // pardsm-lint: allow(determinism)
}

// pardsm-lint: allow(determinism)
const char* suppressed_env = getenv("HOME");

struct HasTimeMember {
  long time = 0;           // a member named `time` is legal
  long clock() { return time; }  // a method named `clock` is legal
};

}  // namespace fixture
