#!/usr/bin/env bash
# Tier-1 verify + quick bench sweep.  This is what CI runs and what a
# contributor should run before pushing:
#
#   ./ci.sh              # build + ctest + bench_all --quick
#   SANITIZE=1 ./ci.sh   # ASan+UBSan build + ctest (no bench sweep) — the
#                        # ARQ retransmit path and crash/recovery teardown
#                        # are exactly where lifetime bugs hide
#   BUILD_DIR=out ./ci.sh
set -euo pipefail

cd "$(dirname "$0")"
SANITIZE="${SANITIZE:-0}"
if [ "$SANITIZE" != "0" ]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
if [ "$SANITIZE" != "0" ]; then
  # Benches are skipped: google-benchmark timings under ASan measure the
  # sanitizer, not the engine.  The full ctest suite (golden gates,
  # property sweeps, scenario faults) runs instrumented.
  cmake -B "$BUILD_DIR" -S . -DPARDSM_SANITIZE=ON -DPARDSM_BUILD_BENCHES=OFF
else
  cmake -B "$BUILD_DIR" -S .
fi

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

if [ "$SANITIZE" != "0" ]; then
  echo "== done (sanitized) =="
  exit 0
fi

echo "== bench (quick) =="
(cd "$BUILD_DIR" && ./bench/bench_all --quick --out BENCH_ALL.json)
python3 - "$BUILD_DIR/BENCH_ALL.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = sum(len(b["results"]) for b in doc["benches"])
assert doc["schema"] == "pardsm-bench-v2" and doc["benches"], doc.keys()
timed = [r for b in doc["benches"] for r in b["results"] if r.get("wall_ns", 0) > 0]
total_ms = sum(r["wall_ns"] for r in timed) / 1e6
print(f"BENCH_ALL.json ok: {len(doc['benches'])} benches, {rows} result rows, "
      f"{len(timed)} timed rows ({total_ms:.1f} ms wall)")
EOF

echo "== done =="
