// x-dependency chains along hoops (Definition 4).
//
// H includes an x-dependency chain along the x-hoop [p_a, ..., p_b] when
// O_H contains w_a(x)v, an operation o_b(x), and a pattern of operations —
// at least one per hoop process — that *implies* w_a(x)v 7-> o_b(x) under
// the consistency criterion's order relation.
//
// The "implies" is witnessed by a path of the relation's *generating
// edges* (program-order steps, read-from edges, lazy writes-before edges,
// ...), since the full relation is their transitive closure.  The detector
// searches for such a path that touches every process of the hoop.
//
// For PRAM the relation has no transitivity (Definition 11), so a
// multi-edge path implies nothing; Theorem 2 falls out: the detector can
// only accept a direct read-from edge, which never involves intermediaries.
#pragma once

#include <cstdint>
#include <vector>

#include "history/orders.h"
#include "sharegraph/hoops.h"

namespace pardsm::graph {

/// Which criterion's dependency notion to use.
enum class ChainRelation {
  kCausal,          ///< generating edges: program-order steps ∪ read-from
  kLazyCausal,      ///< lazy-program steps ∪ read-from
  kLazySemiCausal,  ///< lazy-program steps ∪ lazy-writes-before
  kPram,            ///< program-order steps ∪ read-from, NOT chainable
};

/// Generating edges of the relation (the closure of which is the
/// criterion's order), as a Relation over h's op indices.
[[nodiscard]] hist::Relation generating_edges(
    const hist::History& h, ChainRelation rel,
    hist::LazyMode mode = hist::LazyMode::kPaperConsistent);

/// Whether this criterion's relation is closed under transitivity (false
/// only for PRAM).
[[nodiscard]] bool chain_relation_transitive(ChainRelation rel);

/// A found chain.
struct ChainWitness {
  bool found = false;
  /// The op path from the initial write w_a(x)v to the final o_b(x).
  std::vector<hist::OpIndex> ops;
  Hoop hoop;  ///< hoop it was found along

  /// Processes touched by the witness path.
  [[nodiscard]] std::vector<ProcessId> touched(const hist::History& h) const;
};

/// Search for an x-dependency chain along one specific hoop.
/// `max_steps` bounds the (op, covered-set) state space.
[[nodiscard]] ChainWitness find_chain_along_hoop(
    const hist::History& h, VarId x, const Hoop& hoop, ChainRelation rel,
    hist::LazyMode mode = hist::LazyMode::kPaperConsistent,
    std::uint64_t max_steps = 1'000'000);

/// Search every enumerated x-hoop of the share graph (up to `hoop_limit`)
/// for a chain; returns the first witness found.
[[nodiscard]] ChainWitness find_chain(
    const hist::History& h, const ShareGraph& sg, VarId x, ChainRelation rel,
    hist::LazyMode mode = hist::LazyMode::kPaperConsistent,
    std::size_t hoop_limit = 4096);

}  // namespace pardsm::graph
