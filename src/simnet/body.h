// Pooled, intrusively refcounted message bodies.
//
// PR 2 made the event queue allocation-free; this layer does the same for
// the bodies those events carry.  Instead of std::make_shared<Body>() per
// protocol send (heap allocation + atomic control block + dynamic_cast on
// delivery), bodies live in per-type slab pools, carry their own refcount,
// and are dispatched by a 1-byte type tag:
//
//   * BodyRef        — owning smart pointer (copy = retain, move = steal).
//                      On the last release the body returns to its pool's
//                      freelist; unpooled bodies (make_body) are deleted.
//   * BodyPool<T>    — slab pool for one body type: a deque of slots plus
//                      a freelist.  Types with a reset() member stay
//                      constructed across recycles so their containers keep
//                      their capacity; others are destroyed on recycle and
//                      placement-new'ed on create.
//   * BodyArena      — per-transport-root registry of pools, indexed by
//                      BodyTypeId.  A serial arena (single-threaded
//                      Simulator) skips both the freelist mutex and atomic
//                      refcounts; a concurrent arena (ThreadRuntime,
//                      SocketTransport, ParallelSimulator shards) locks the
//                      freelist and stamps bodies for atomic refcounting.
//   * body_type_id<T>() — process-wide dense tag (< 256) used both for
//                      arena slots and for Message::as<T> tag dispatch.
//
// Threading contract (docs/HOTPATH.md has the long version): a body's
// refcount discipline is fixed at creation by the arena that made it.
// Serial-arena bodies must never escape their simulator thread; make_body
// and every concurrent arena stamp atomic refcounts, so those bodies may
// cross threads freely.  recycle() pushes to the owning pool's freelist
// (locked iff the pool is concurrent), so a body may die on any thread
// that may legally hold it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "simnet/check.h"

namespace pardsm {

class BodyPoolBase;
class MessageBody;
class WireWriter;  // simnet/wire.h

/// Dense per-process tag identifying a concrete MessageBody subclass.
/// 0 is reserved for "unstamped" (a body constructed outside the pool /
/// make_body machinery); real ids start at 1.
using BodyTypeId = std::uint8_t;

namespace detail {

inline BodyTypeId allocate_body_type_id() {
  static std::atomic<unsigned> next{1};
  const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  PARDSM_CHECK(id < 256, "body_type_id: more than 255 body types");
  return static_cast<BodyTypeId>(id);
}

struct BodyAccess;

}  // namespace detail

/// The process-wide tag for body type T.  First call allocates the next
/// id (thread-safe via the function-local static); ids are dense so a
/// 256-slot arena array covers every type.
template <typename T>
[[nodiscard]] inline BodyTypeId body_type_id() {
  static_assert(!std::is_const_v<T> && !std::is_volatile_v<T>,
                "body_type_id: use the unqualified body type");
  static const BodyTypeId id = detail::allocate_body_type_id();
  return id;
}

/// Base class for protocol-defined message contents.
///
/// Bodies are plain in-memory objects for the simulated runtimes (one
/// address space, no serialization).  The real-sockets root needs bytes:
/// a body that may cross a TCP frame overrides wire_type()/wire_encode()
/// and registers a decoder (wire::BodyRegistrar).  The default wire_type
/// of 0 means "not serializable" — SocketTransport rejects such bodies
/// loudly instead of silently corrupting a frame.
///
/// The intrusive header (refcount, owning pool, type tag, sharing flag)
/// is stamped by BodyPool<T>::create / make_body<T> and deliberately NOT
/// copied by the copy operations: `*b = other` copies payload fields of
/// the derived type while `b` keeps its own identity, pool and refcount.
class MessageBody {
 public:
  MessageBody() = default;
  MessageBody(const MessageBody&) noexcept {}
  MessageBody& operator=(const MessageBody&) noexcept { return *this; }
  virtual ~MessageBody() = default;

  /// Stable wire tag (wire::WireType); 0 = cannot cross a socket.
  [[nodiscard]] virtual std::uint32_t wire_type() const { return 0; }

  /// Append the body's fields to `w` (inverse of the registered decoder).
  virtual void wire_encode(WireWriter& w) const { (void)w; }

 private:
  friend struct detail::BodyAccess;

  /// Refcount.  Always stored in an atomic, but serial-arena bodies are
  /// touched with relaxed load+store (plain moves — no lock prefix); only
  /// shared_ bodies pay for real atomic RMW.
  mutable std::atomic<std::uint32_t> rc_{0};
  /// Owning pool (nullptr = make_body heap object, deleted on release).
  BodyPoolBase* pool_ = nullptr;
  /// body_type_id<DerivedT>() — drives Message::as<T> tag dispatch.
  BodyTypeId type_id_ = 0;
  /// True when the refcount may be touched from multiple threads.
  bool shared_ = false;
};

namespace detail {

/// Single friend of MessageBody through which BodyRef, the pools and the
/// message plane touch the intrusive header.
struct BodyAccess {
  static void stamp(const MessageBody& b, BodyPoolBase* pool, BodyTypeId id,
                    bool shared) noexcept {
    b.rc_.store(1, std::memory_order_relaxed);
    const_cast<MessageBody&>(b).pool_ = pool;
    const_cast<MessageBody&>(b).type_id_ = id;
    const_cast<MessageBody&>(b).shared_ = shared;
  }

  static void retain(const MessageBody& b) noexcept {
    if (b.shared_) {
      b.rc_.fetch_add(1, std::memory_order_relaxed);
    } else {
      b.rc_.store(b.rc_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    }
  }

  /// Returns true when this was the last reference.
  [[nodiscard]] static bool release(const MessageBody& b) noexcept {
    if (b.shared_) {
      return b.rc_.fetch_sub(1, std::memory_order_acq_rel) == 1;
    }
    const std::uint32_t v = b.rc_.load(std::memory_order_relaxed);
    b.rc_.store(v - 1, std::memory_order_relaxed);
    return v == 1;
  }

  [[nodiscard]] static BodyTypeId type_of(const MessageBody& b) noexcept {
    return b.type_id_;
  }
  [[nodiscard]] static BodyPoolBase* pool_of(const MessageBody& b) noexcept {
    return b.pool_;
  }
  [[nodiscard]] static std::uint32_t refcount(const MessageBody& b) noexcept {
    return b.rc_.load(std::memory_order_relaxed);
  }
};

}  // namespace detail

/// Type-erased pool interface: BodyRef only needs recycle().
class BodyPoolBase {
 public:
  virtual ~BodyPoolBase() = default;
  virtual void recycle(const MessageBody* body) noexcept = 0;
};

/// Owning reference to a (usually pooled) immutable message body.
/// Copy retains, move steals; the last release recycles into the owning
/// pool, or deletes when the body came from make_body.
class BodyRef {
 public:
  BodyRef() = default;
  BodyRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Take ownership of a body whose refcount is already 1 (fresh from
  /// BodyPool<T>::create or make_body).
  [[nodiscard]] static BodyRef adopt(const MessageBody* body) noexcept {
    BodyRef r;
    r.ptr_ = body;
    return r;
  }

  BodyRef(const BodyRef& other) noexcept : ptr_(other.ptr_) {
    if (ptr_ != nullptr) detail::BodyAccess::retain(*ptr_);
  }
  BodyRef(BodyRef&& other) noexcept : ptr_(other.ptr_) {
    other.ptr_ = nullptr;
  }
  BodyRef& operator=(const BodyRef& other) noexcept {
    if (this != &other) {
      const MessageBody* old = ptr_;
      ptr_ = other.ptr_;
      if (ptr_ != nullptr) detail::BodyAccess::retain(*ptr_);
      drop(old);
    }
    return *this;
  }
  BodyRef& operator=(BodyRef&& other) noexcept {
    if (this != &other) {
      const MessageBody* old = ptr_;
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
      drop(old);
    }
    return *this;
  }
  ~BodyRef() { drop(ptr_); }

  void reset() noexcept {
    drop(ptr_);
    ptr_ = nullptr;
  }

  [[nodiscard]] const MessageBody* get() const noexcept { return ptr_; }
  [[nodiscard]] const MessageBody& operator*() const noexcept { return *ptr_; }
  const MessageBody* operator->() const noexcept { return ptr_; }
  explicit operator bool() const noexcept { return ptr_ != nullptr; }
  friend bool operator==(const BodyRef& r, std::nullptr_t) noexcept {
    return r.ptr_ == nullptr;
  }
  friend bool operator==(const BodyRef& a, const BodyRef& b) noexcept {
    return a.ptr_ == b.ptr_;
  }

 private:
  static void drop(const MessageBody* p) noexcept {
    if (p == nullptr || !detail::BodyAccess::release(*p)) return;
    if (BodyPoolBase* pool = detail::BodyAccess::pool_of(*p)) {
      pool->recycle(p);
    } else {
      delete p;
    }
  }

  const MessageBody* ptr_ = nullptr;
};

namespace detail {

/// Body types with a reset() member stay constructed across recycles so
/// their containers keep their heap capacity (BatchFrame's item vector,
/// DepSnapshotBody's entries).
template <typename T>
concept PoolResettable = requires(T& t) {
  { t.reset() };
};

}  // namespace detail

/// Slab pool for one concrete body type: a deque of stable slots plus a
/// freelist.  `concurrent` pools guard the freelist with a mutex and
/// stamp bodies for atomic refcounting; serial pools do neither.
template <typename T>
class BodyPool final : public BodyPoolBase {
  static_assert(std::is_base_of_v<MessageBody, T>,
                "BodyPool: T must derive from MessageBody");

 public:
  explicit BodyPool(bool concurrent) : concurrent_(concurrent) {}

  BodyPool(const BodyPool&) = delete;
  BodyPool& operator=(const BodyPool&) = delete;

  ~BodyPool() override {
    // All BodyRefs into this pool must be gone by now (the arena outlives
    // its transport root's in-flight traffic); destroy surviving slots.
    for (Slot& s : slots_) {
      if (s.live) object_of(s)->~T();
    }
  }

  /// A default-constructed (or freelist-reset) body with refcount 1; fill
  /// its fields, then wrap with BodyRef::adopt.
  [[nodiscard]] T* create() {
    Slot* s = take_slot();
    T* t;
    if (s->live) {
      t = object_of(*s);
    } else {
      t = ::new (static_cast<void*>(s->raw)) T();
      s->live = true;
    }
    detail::BodyAccess::stamp(*t, this, body_type_id<T>(), concurrent_);
    return t;
  }

  void recycle(const MessageBody* body) noexcept override {
    T* t = const_cast<T*>(static_cast<const T*>(body));
    if constexpr (detail::PoolResettable<T>) {
      t->reset();
    } else {
      slot_of(t)->live = false;
      t->~T();
    }
    if (concurrent_) {
      std::lock_guard lock(mu_);
      free_.push_back(t);
    } else {
      free_.push_back(t);
    }
  }

 private:
  struct Slot {
    alignas(T) unsigned char raw[sizeof(T)];
    bool live = false;
  };

  static T* object_of(Slot& s) noexcept {
    return std::launder(reinterpret_cast<T*>(s.raw));
  }
  static Slot* slot_of(T* t) noexcept {
    // raw is the first member of the standard-layout Slot, so the object
    // address is the slot address.
    return reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(t));
  }

  Slot* take_slot() {
    if (concurrent_) {
      std::lock_guard lock(mu_);
      return take_slot_locked();
    }
    return take_slot_locked();
  }
  Slot* take_slot_locked() {
    if (!free_.empty()) {
      T* t = free_.back();
      free_.pop_back();
      return slot_of(t);
    }
    slots_.emplace_back();
    return &slots_.back();
  }

  const bool concurrent_;
  std::mutex mu_;
  std::deque<Slot> slots_;   // stable addresses across growth
  std::vector<T*> free_;
};

/// Per-transport-root registry of BodyPools, indexed by BodyTypeId.
/// Lookup is one acquire load off an array; pool creation (cold, once per
/// type per arena) is mutex-guarded.
class BodyArena {
 public:
  explicit BodyArena(bool concurrent) : concurrent_(concurrent) {}

  BodyArena(const BodyArena&) = delete;
  BodyArena& operator=(const BodyArena&) = delete;

  ~BodyArena() {
    for (auto& slot : pools_) delete slot.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool concurrent() const noexcept { return concurrent_; }

  template <typename T>
  [[nodiscard]] BodyPool<T>& pool() {
    const BodyTypeId id = body_type_id<T>();
    BodyPoolBase* p = pools_[id].load(std::memory_order_acquire);
    if (p == nullptr) {
      std::lock_guard lock(create_mu_);
      p = pools_[id].load(std::memory_order_relaxed);
      if (p == nullptr) {
        p = new BodyPool<T>(concurrent_);
        pools_[id].store(p, std::memory_order_release);
      }
    }
    return *static_cast<BodyPool<T>*>(p);
  }

  /// Shorthand: create a body of type T from this arena's pool.
  template <typename T>
  [[nodiscard]] T* create() {
    return pool<T>().create();
  }

 private:
  const bool concurrent_;
  std::mutex create_mu_;
  std::array<std::atomic<BodyPoolBase*>, 256> pools_{};
};

/// Unpooled heap body for tests and cold paths (resync, drivers), returned
/// as a mutable pointer so fields can be filled in before the caller wraps
/// it with BodyRef::adopt.  Always stamped shared (atomic refcount) so it
/// is safe on any runtime root; the last release deletes it.
template <typename T, typename... Args>
[[nodiscard]] T* new_body(Args&&... args) {
  static_assert(std::is_base_of_v<MessageBody, T>,
                "new_body: T must derive from MessageBody");
  T* t = new T(std::forward<Args>(args)...);
  detail::BodyAccess::stamp(*t, nullptr, body_type_id<T>(), /*shared=*/true);
  return t;
}

/// Unpooled heap body for tests and cold paths: a drop-in replacement for
/// the old std::make_shared<T>(...) when no post-construction filling is
/// needed.
template <typename T, typename... Args>
[[nodiscard]] BodyRef make_body(Args&&... args) {
  return BodyRef::adopt(new_body<T>(std::forward<Args>(args)...));
}

}  // namespace pardsm
