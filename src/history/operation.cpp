#include "history/operation.h"

#include <ostream>
#include <sstream>

namespace pardsm::hist {

std::string Operation::to_string() const {
  std::ostringstream os;
  os << (is_write() ? 'w' : 'r') << proc << "(x" << var << ')';
  if (value == kBottom) {
    os << "⊥";
  } else {
    os << value;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Operation& op) {
  return os << op.to_string();
}

}  // namespace pardsm::hist
