// Sockets runtime end-to-end: every protocol over real loopback TCP, the
// decorator stacks composed above the socket root, chaos injection routed
// through ARQ, scenario crash/recover with RSYNC on the wall clock, the
// receiver-side heartbeat failure detector, and the multi-process
// bootstrap (pardsm_node) including a SIGKILL/respawn drill.
//
// Everything timing-sensitive here asserts *outcomes* (delivery,
// convergence, counters), never exact times: the sockets runtime is as
// non-deterministic in timing as kThreads.  Convergence checks use
// single-writer workloads, whose final replica contents are a pure
// function of the workload — comparable against a deterministic
// kSimulator reference run (the same trick as the P6 property).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/socket_transport.h"

namespace pardsm {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Reference run: the deterministic simulator executing the same workload
// losslessly.  Single-writer scripts make final_replicas order-free, so
// the socket run must land on exactly these (value, WriteId) entries.
// ---------------------------------------------------------------------------

struct Workload {
  graph::Distribution dist;
  std::vector<mcs::Script> scripts;
};

Workload make_workload(std::size_t n, std::size_t ops, std::uint64_t seed) {
  Workload w;
  w.dist = graph::topo::complete(n, n);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = ops;
  spec.seed = seed;
  w.scripts = mcs::make_single_writer_scripts(w.dist, spec);
  return w;
}

mcs::ScenarioRunResult reference_run(mcs::ProtocolKind kind,
                                     const Workload& w) {
  mcs::EngineConfig config;
  config.protocol = kind;
  config.distribution = &w.dist;
  config.scripts = &w.scripts;
  return mcs::run(std::move(config));
}

mcs::EngineConfig socket_config(mcs::ProtocolKind kind, const Workload& w) {
  mcs::EngineConfig config;
  config.protocol = kind;
  config.distribution = &w.dist;
  config.scripts = &w.scripts;
  config.runtime = mcs::EngineRuntime::kSockets;
  return config;
}

// ---------------------------------------------------------------------------
// All nine protocols complete a loopback run on the sockets root with
// exact model-level conservation and the reference final replica state.
// ---------------------------------------------------------------------------

TEST(Sockets, EveryProtocolConvergesOverLoopback) {
  const Workload w = make_workload(4, 6, 3);
  for (const mcs::ProtocolKind kind : mcs::all_protocols()) {
    SCOPED_TRACE(mcs::to_string(kind));
    const auto ref = reference_run(kind, w);
    const auto r = mcs::run(socket_config(kind, w));

    EXPECT_FALSE(r.used_reliable_transport);  // lossless => raw socket root
    EXPECT_EQ(r.unfinished_clients, 0u);
    EXPECT_TRUE(r.dead_channels.empty());
    // Lossless wire: every modelled message sent was received.
    EXPECT_EQ(r.total_traffic.msgs_sent, r.total_traffic.msgs_received);
    EXPECT_EQ(r.total_traffic.msgs_sent, ref.total_traffic.msgs_sent);
    // Real frames actually crossed the loopback sockets.
    EXPECT_GT(r.socket_counters.frames_sent, 0u);
    EXPECT_EQ(r.socket_counters.frames_sent, r.socket_counters.frames_received);
    EXPECT_GT(r.socket_counters.bytes_sent, 0u);
    // Wall-clock timing differs; final replica contents must not.
    EXPECT_EQ(r.final_replicas, ref.final_replicas);
  }
}

// ---------------------------------------------------------------------------
// The decorator stacks (ARQ, batching, both stacking orders) compose
// above the socket root exactly as above the simulator.
// ---------------------------------------------------------------------------

TEST(Sockets, TransportStacksComposeAboveSocketRoot) {
  const Workload w = make_workload(3, 6, 7);
  const mcs::ProtocolKind kind = mcs::ProtocolKind::kPramPartial;
  const auto ref = reference_run(kind, w);

  struct Case {
    const char* name;
    mcs::ReliabilityMode reliability;
    Duration window;
    mcs::BatchPlacement placement;
  };
  const Case cases[] = {
      {"arq-only", mcs::ReliabilityMode::kAlways, Duration{},
       mcs::BatchPlacement::kAboveReliable},
      {"batching-only", mcs::ReliabilityMode::kAuto, millis(1),
       mcs::BatchPlacement::kAboveReliable},
      {"batching-over-arq", mcs::ReliabilityMode::kAlways, millis(1),
       mcs::BatchPlacement::kAboveReliable},
      {"arq-over-batching", mcs::ReliabilityMode::kAlways, millis(1),
       mcs::BatchPlacement::kBelowReliable},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    mcs::EngineConfig config = socket_config(kind, w);
    config.reliability = c.reliability;
    config.batching.window = c.window;
    config.batch_placement = c.placement;
    const auto r = mcs::run(std::move(config));

    EXPECT_EQ(r.used_reliable_transport,
              c.reliability == mcs::ReliabilityMode::kAlways);
    if (c.window.us > 0) {
      EXPECT_GT(r.batching.frames_sent, 0u);
    }
    EXPECT_EQ(r.unfinished_clients, 0u);
    EXPECT_EQ(r.final_replicas, ref.final_replicas);
  }
}

// ---------------------------------------------------------------------------
// Chaos injection: frame drops/duplicates at the socket layer force the
// run through ARQ (ReliabilityMode::kAuto), which repairs them — same
// liveness story as simulated channel loss, now on a real wire.
// ---------------------------------------------------------------------------

TEST(Sockets, ChaosLossAutoRoutesThroughArqAndConverges) {
  const Workload w = make_workload(3, 10, 11);
  const mcs::ProtocolKind kind = mcs::ProtocolKind::kPramPartial;
  const auto ref = reference_run(kind, w);

  mcs::EngineConfig config = socket_config(kind, w);
  config.sockets.chaos.drop_probability = 0.15;
  config.sockets.chaos.duplicate_probability = 0.05;
  const auto r = mcs::run(std::move(config));

  EXPECT_TRUE(r.used_reliable_transport);
  EXPECT_GT(r.socket_counters.chaos_drops, 0u);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_EQ(r.unfinished_clients, 0u);
  EXPECT_TRUE(r.dead_channels.empty());
  EXPECT_EQ(r.final_replicas, ref.final_replicas);
}

// Deliberate mid-stream disconnects exercise reconnection with backoff.
// The frame that triggers the close still arrives and queued frames are
// retained across the reconnect, so a disconnect-only chaos run loses
// nothing and needs no ARQ.
TEST(Sockets, MidStreamDisconnectsReconnectWithoutLoss) {
  const Workload w = make_workload(3, 8, 13);
  const mcs::ProtocolKind kind = mcs::ProtocolKind::kCausalPartialNaive;
  const auto ref = reference_run(kind, w);

  mcs::EngineConfig config = socket_config(kind, w);
  config.sockets.chaos.disconnect_probability = 0.2;
  const auto r = mcs::run(std::move(config));

  EXPECT_FALSE(r.used_reliable_transport);
  EXPECT_GT(r.socket_counters.chaos_disconnects, 0u);
  EXPECT_GT(r.socket_counters.reconnects, 0u);
  EXPECT_EQ(r.total_traffic.msgs_sent, r.total_traffic.msgs_received);
  EXPECT_EQ(r.unfinished_clients, 0u);
  EXPECT_EQ(r.final_replicas, ref.final_replicas);
}

// ---------------------------------------------------------------------------
// Scenario replay on the wall clock: a crash/recover window maps onto
// set_down() + the McsProcess crash()/recover() + RSYNC machinery.
// Chaos delays keep updates in flight across the crash window, so the
// downed process genuinely misses traffic.  The contract pinned here:
//
//   * the socket layer suppresses those deliveries *below* the ARQ shims
//     (drops.down) — never above them, where the ack would already have
//     been sent and the message lost for good;
//   * the ARQ backlog repairs every missed message after recovery
//     (retransmissions), so the run converges and the victim's in-flight
//     operation completes late instead of stranding its client;
//   * the RSYNC handshake runs (resync_messages, recovery latency) but
//     adopts nothing: its response from the home rides the same ARQ FIFO
//     pair as the dropped commits, so the repaired backlog always lands
//     first and the never-regress rule refuses the then-stale-equal
//     copies.  Fail-pause crashes keep replica state; RSYNC *adoption* is
//     for real state loss — the multi-process SIGKILL drill below, where
//     pardsm_node requires resync_applied > 0.
// ---------------------------------------------------------------------------

TEST(Sockets, ScenarioCrashRecoverRepairsBelowArqOverSockets) {
  const Workload w = make_workload(3, 6, 5);
  const mcs::ProtocolKind kind = mcs::ProtocolKind::kCachePartial;
  const auto ref = reference_run(kind, w);

  Scenario scenario("socket-crash");
  scenario.crash(2, after(millis(15)), after(millis(200)));

  mcs::EngineConfig config = socket_config(kind, w);
  config.scenario = &scenario;
  // Every frame rides a 20-60ms head-of-line delay: traffic issued before
  // the crash at 15ms arrives inside the window and is dropped as "down".
  config.sockets.chaos.delay_min = millis(20);
  config.sockets.chaos.delay_max = millis(60);
  const auto r = mcs::run(std::move(config));

  EXPECT_TRUE(r.used_reliable_transport);  // faulty scenario => ARQ
  EXPECT_EQ(r.crashes, 1u);
  EXPECT_GT(r.drops.down, 0u);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.resync_messages, 0u);
  EXPECT_GT(r.max_recovery_latency.us, 0);
  EXPECT_EQ(r.resync_values_applied, 0u);
  EXPECT_EQ(r.unfinished_clients, 0u);
  EXPECT_EQ(r.final_replicas, ref.final_replicas);
}

// ---------------------------------------------------------------------------
// Heartbeat failure detector, observed directly on two multi-process-
// shaped transports in one test process: peer up on first HELLO, down
// after silence past heartbeat_timeout, up again with a bumped
// incarnation when a "respawned" transport rebinds the same listener.
// ---------------------------------------------------------------------------

int bind_listener(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, 16), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
  return fd;
}

bool wait_for(const std::function<bool()>& pred,
              std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

struct Sink final : Endpoint {
  void on_message(const Message&) override {}
};

TEST(Sockets, HeartbeatDetectorTracksPeerLifecycle) {
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  const int fd_a = bind_listener(&port_a);
  const int fd_b = bind_listener(&port_b);

  const auto options = [&](ProcessId me, int fd, std::uint64_t incarnation) {
    SocketOptions o;
    o.total_processes = 2;
    o.local_ids = {me};
    o.addrs = {"127.0.0.1:" + std::to_string(port_a),
               "127.0.0.1:" + std::to_string(port_b)};
    o.listen_fd = ::dup(fd);  // the test keeps the original, like pardsm_node
    o.incarnation = incarnation;
    o.heartbeat_period = millis(10);
    o.heartbeat_timeout = millis(80);
    return o;
  };

  Sink ea;
  SocketTransport a(options(0, fd_a, 1));
  a.add_endpoint(&ea);
  std::atomic<int> downs{0};
  std::atomic<int> ups{0};
  a.set_peer_callback([&](ProcessId peer, bool up, std::uint64_t) {
    if (peer != 1) return;
    if (up) {
      ++ups;
    } else {
      ++downs;
    }
  });
  a.start();

  // First incarnation of the peer comes up.
  Sink eb1;
  auto b1 = std::make_unique<SocketTransport>(options(1, fd_b, 1));
  b1->add_endpoint(&eb1);
  b1->start();
  EXPECT_TRUE(wait_for([&] { return a.peer_incarnation(1) == 1; }));
  EXPECT_TRUE(a.peer_up(1));

  // Silence (stopped peer) is declared down after heartbeat_timeout.
  b1->stop();
  b1.reset();
  EXPECT_TRUE(wait_for([&] { return !a.peer_up(1); }));
  EXPECT_GE(downs.load(), 1);

  // A respawned incarnation on the same listener is detected as up again,
  // with the bumped incarnation from its HELLO.
  Sink eb2;
  SocketTransport b2(options(1, fd_b, 2));
  b2.add_endpoint(&eb2);
  b2.start();
  EXPECT_TRUE(
      wait_for([&] { return a.peer_up(1) && a.peer_incarnation(1) == 2; }));
  EXPECT_GE(ups.load(), 1);
  EXPECT_GT(a.counters().heartbeats_received, 0u);

  b2.stop();
  a.stop();
  ::close(fd_a);
  ::close(fd_b);
}

// ---------------------------------------------------------------------------
// Multi-process deployment via the pardsm_node bootstrap: real fork/exec
// node processes over loopback.  The binary itself asserts conservation
// (lossless runs) and convergence against the simulator reference, and
// exits non-zero on any violation — the test just drives it.
// ---------------------------------------------------------------------------

#ifdef PARDSM_NODE_BINARY

int run_bootstrap(const std::string& args) {
  const std::string cmd = std::string(PARDSM_NODE_BINARY) + " --spawn " + args;
  const int rc = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(rc)) << cmd;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(Sockets, MultiProcessLosslessRunsConserve) {
  for (const char* protocol : {"pram-partial", "sequencer-sc"}) {
    SCOPED_TRACE(protocol);
    EXPECT_EQ(run_bootstrap("--protocol " + std::string(protocol) +
                            " --nodes 3 --writes 4 --delay-us 1000"),
              0);
  }
}

// SIGKILL drill: node 2 is killed mid-run and respawned with a bumped
// incarnation on the parent-held listener; the binary requires heartbeat
// down/up detection, reconnection, applied RSYNC entries and final
// replica convergence before exiting 0.  cache-partial because its
// resync adopts home-served entries (docs/DEPLOYMENT.md — pram's
// writer-only adoption cannot fully restore a killed node without ARQ).
TEST(Sockets, MultiProcessKillDrillRecoversAndConverges) {
  EXPECT_EQ(run_bootstrap("--protocol cache-partial --nodes 3 --writes 5 "
                          "--delay-us 2000 --kill 2 --kill-after-ms 120 "
                          "--respawn-after-ms 350"),
            0);
}

#endif  // PARDSM_NODE_BINARY

}  // namespace
}  // namespace pardsm
