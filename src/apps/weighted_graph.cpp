#include "apps/weighted_graph.h"

#include <algorithm>

#include "simnet/check.h"
#include "simnet/rng.h"

namespace pardsm::apps {

void WeightedGraph::add_edge(int from, int to, std::int64_t weight) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_ && to >= 0 &&
                   static_cast<std::size_t>(to) < n_,
               "add_edge: node out of range");
  PARDSM_CHECK(weight >= 0, "add_edge: negative weights unsupported");
  edges_.push_back(Edge{from, to, weight});
}

std::vector<int> WeightedGraph::predecessors(int i) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.to == i) out.push_back(e.from);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::int64_t WeightedGraph::weight(int from, int to) const {
  if (from == to) return 0;
  std::int64_t best = kInfDistance;
  for (const Edge& e : edges_) {
    if (e.from == from && e.to == to) best = std::min(best, e.weight);
  }
  return best;
}

WeightedGraph WeightedGraph::fig8() {
  WeightedGraph g(5);
  // Paper node i == our node i-1.  Weight multiset {4,1,1,2,8,2,3,3}.
  g.add_edge(0, 1, 4);  // 1 -> 2
  g.add_edge(0, 2, 1);  // 1 -> 3
  g.add_edge(1, 2, 2);  // 2 -> 3
  g.add_edge(2, 1, 1);  // 3 -> 2
  g.add_edge(1, 3, 2);  // 2 -> 4
  g.add_edge(2, 3, 8);  // 3 -> 4
  g.add_edge(2, 4, 3);  // 3 -> 5
  g.add_edge(3, 4, 3);  // 4 -> 5
  return g;
}

WeightedGraph WeightedGraph::random_network(std::size_t n, std::size_t extra,
                                            std::int64_t max_weight,
                                            std::uint64_t seed) {
  PARDSM_CHECK(n >= 2, "random_network needs >= 2 nodes");
  PARDSM_CHECK(max_weight >= 1, "random_network needs positive weights");
  Rng rng(seed);
  WeightedGraph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    const int from = static_cast<int>(rng.below(i));
    g.add_edge(from, static_cast<int>(i), rng.range(1, max_weight));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.below(n));
    const int b = static_cast<int>(rng.below(n));
    if (a == b) continue;
    g.add_edge(a, b, rng.range(1, max_weight));
  }
  return g;
}

std::vector<std::int64_t> bellman_ford_reference(const WeightedGraph& g,
                                                 int source) {
  std::vector<std::int64_t> dist(g.size(), kInfDistance);
  dist[static_cast<std::size_t>(source)] = 0;
  for (std::size_t round = 0; round + 1 < g.size(); ++round) {
    bool changed = false;
    for (const Edge& e : g.edges()) {
      const auto from = static_cast<std::size_t>(e.from);
      const auto to = static_cast<std::size_t>(e.to);
      if (dist[from] != kInfDistance && dist[from] + e.weight < dist[to]) {
        dist[to] = dist[from] + e.weight;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace pardsm::apps
