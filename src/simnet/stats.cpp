#include "simnet/stats.h"

#include <algorithm>

#include "simnet/check.h"

namespace pardsm {

void NetworkStats::resize(std::size_t n) {
  std::lock_guard lock(mu_);
  per_process_.assign(n, ProcessTraffic{});
  exposure_.assign(n, std::vector<std::uint64_t>(var_hint_, 0));
}

void NetworkStats::set_var_hint(std::size_t m) {
  std::lock_guard lock(mu_);
  if (m <= var_hint_) return;
  var_hint_ = m;
  for (auto& row : exposure_) {
    if (row.size() < m) row.resize(m, 0);
  }
}

void NetworkStats::on_send(const Message& m) {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(m.from >= 0 &&
                   static_cast<std::size_t>(m.from) < per_process_.size(),
               "on_send: bad sender");
  auto& t = per_process_[static_cast<std::size_t>(m.from)];
  ++t.msgs_sent;
  t.control_bytes_sent += m.meta.control_bytes;
  t.payload_bytes_sent += m.meta.payload_bytes;
}

void NetworkStats::on_deliver(const Message& m) {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(m.to >= 0 &&
                   static_cast<std::size_t>(m.to) < per_process_.size(),
               "on_deliver: bad receiver");
  auto& t = per_process_[static_cast<std::size_t>(m.to)];
  ++t.msgs_received;
  t.control_bytes_received += m.meta.control_bytes;
  t.payload_bytes_received += m.meta.payload_bytes;
  auto& exp = exposure_[static_cast<std::size_t>(m.to)];
  for (VarId x : m.meta.vars_mentioned) {
    const auto xi = static_cast<std::size_t>(x);
    // Guarded fallback only: rows are pre-sized to the declared variable
    // count, so this branch fires solely for callers that never gave a
    // var hint (or a message mentioning an undeclared variable).
    if (xi >= exp.size()) exp.resize(xi + 1, 0);
    ++exp[xi];
  }
}

ProcessTraffic NetworkStats::traffic(ProcessId p) const {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < per_process_.size(),
               "traffic: bad process");
  return per_process_[static_cast<std::size_t>(p)];
}

std::vector<ProcessTraffic> NetworkStats::per_process_snapshot() const {
  std::lock_guard lock(mu_);
  return per_process_;
}

ProcessTraffic NetworkStats::total() const {
  std::lock_guard lock(mu_);
  ProcessTraffic sum;
  for (const auto& t : per_process_) {
    sum.msgs_sent += t.msgs_sent;
    sum.msgs_received += t.msgs_received;
    sum.control_bytes_sent += t.control_bytes_sent;
    sum.payload_bytes_sent += t.payload_bytes_sent;
    sum.control_bytes_received += t.control_bytes_received;
    sum.payload_bytes_received += t.payload_bytes_received;
  }
  return sum;
}

std::uint64_t NetworkStats::exposure(ProcessId p, VarId x) const {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < exposure_.size(),
               "exposure: bad process");
  const auto& exp = exposure_[static_cast<std::size_t>(p)];
  const auto xi = static_cast<std::size_t>(x);
  return x >= 0 && xi < exp.size() ? exp[xi] : 0;
}

std::set<ProcessId> NetworkStats::processes_exposed_to(VarId x) const {
  std::lock_guard lock(mu_);
  std::set<ProcessId> out;
  const auto xi = static_cast<std::size_t>(x);
  for (std::size_t p = 0; p < exposure_.size(); ++p) {
    if (xi < exposure_[p].size() && exposure_[p][xi] > 0) {
      out.insert(static_cast<ProcessId>(p));
    }
  }
  return out;
}

std::vector<std::set<ProcessId>> NetworkStats::exposure_sets(
    std::size_t var_count) const {
  std::lock_guard lock(mu_);
  std::vector<std::set<ProcessId>> out(var_count);
  for (std::size_t p = 0; p < exposure_.size(); ++p) {
    const auto& exp = exposure_[p];
    const std::size_t bound = std::min(var_count, exp.size());
    for (std::size_t x = 0; x < bound; ++x) {
      if (exp[x] > 0) out[x].insert(static_cast<ProcessId>(p));
    }
  }
  return out;
}

std::set<VarId> NetworkStats::variables_seen_by(ProcessId p) const {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < exposure_.size(),
               "variables_seen_by: bad process");
  std::set<VarId> out;
  const auto& exp = exposure_[static_cast<std::size_t>(p)];
  for (std::size_t x = 0; x < exp.size(); ++x) {
    if (exp[x] > 0) out.insert(static_cast<VarId>(x));
  }
  return out;
}

std::uint64_t NetworkStats::messages_delivered() const {
  std::lock_guard lock(mu_);
  std::uint64_t sum = 0;
  for (const auto& t : per_process_) sum += t.msgs_received;
  return sum;
}

void NetworkStats::merge_from(const NetworkStats& other) {
  std::scoped_lock lock(mu_, other.mu_);
  PARDSM_CHECK(other.per_process_.size() <= per_process_.size(),
               "merge_from: other covers more processes");
  for (std::size_t p = 0; p < other.per_process_.size(); ++p) {
    const auto& src = other.per_process_[p];
    auto& dst = per_process_[p];
    dst.msgs_sent += src.msgs_sent;
    dst.msgs_received += src.msgs_received;
    dst.control_bytes_sent += src.control_bytes_sent;
    dst.payload_bytes_sent += src.payload_bytes_sent;
    dst.control_bytes_received += src.control_bytes_received;
    dst.payload_bytes_received += src.payload_bytes_received;
    const auto& srow = other.exposure_[p];
    auto& drow = exposure_[p];
    if (drow.size() < srow.size()) drow.resize(srow.size(), 0);
    for (std::size_t x = 0; x < srow.size(); ++x) drow[x] += srow[x];
  }
}

void NetworkStats::clear() {
  std::lock_guard lock(mu_);
  for (auto& t : per_process_) t = ProcessTraffic{};
  for (auto& e : exposure_) e.assign(e.size(), 0);
}

}  // namespace pardsm
