// OQ — the paper's open question, measured.
//
// Conclusion of the paper: "the existence of a consistency criterion
// stronger than PRAM, and allowing efficient partial replication
// implementation, remains open."
//
// This bench demonstrates the repository's engineering answer: processor
// consistency (PRAM ∧ cache) is implementable with every message confined
// to C(x).  The price is moved from control-information spread to write
// latency (one home round trip), which Theorem 1 does not forbid — its
// impossibility argument needs causal transitivity through hoops, which
// PRAM ∧ cache does not require.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/analysis.h"
#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

RunResult run(ProtocolKind kind, const graph::Distribution& dist) {
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.read_fraction = 0.5;
  spec.seed = 5;
  const auto scripts = make_random_scripts(dist, spec);
  RunOptions options;
  options.latency = std::make_unique<UniformLatency>(millis(2), millis(10));
  return run_workload(kind, dist, scripts, std::move(options));
}

void print_table() {
  bu::banner("OQ: criteria vs efficiency vs latency (ring-8, hoop-rich)");
  bu::row({"protocol", "PRAM ok", "cache ok", "leak>C(x)", "wr-lat-ms",
           "ctrl-B/msg"});
  const auto dist = graph::topo::ring(8);
  for (auto kind :
       {ProtocolKind::kPramPartial, ProtocolKind::kCachePartial,
        ProtocolKind::kProcessorPartial, ProtocolKind::kCausalPartialNaive,
        ProtocolKind::kSequencerSC}) {
    const auto r = run(kind, dist);
    const auto report =
        core::analyze_run(dist, r.observed_relevant, r.total_traffic);
    const bool pram_ok =
        hist::check_history(r.history, hist::Criterion::kPram).consistent;
    const bool cache_ok =
        hist::check_history(r.history, hist::Criterion::kCache).consistent;
    double wr_total = 0;
    std::uint64_t writes = 0;
    for (const auto& op : r.history.ops()) {
      if (op.is_write()) {
        wr_total += static_cast<double>((op.responded - op.invoked).us);
        ++writes;
      }
    }
    bu::row({to_string(kind), bu::yesno(pram_ok), bu::yesno(cache_ok),
             bu::num(static_cast<std::uint64_t>(
                 report.vars_leaking_past_clique)),
             bu::num(writes ? wr_total / 1000.0 /
                                  static_cast<double>(writes)
                            : 0.0,
                     2),
             bu::num(static_cast<double>(
                         r.total_traffic.control_bytes_sent) /
                         static_cast<double>(r.total_traffic.msgs_sent),
                     1)});
  }
  std::cout
      << "(expected: processor-partial passes BOTH checkers with zero "
         "leaks — a criterion\n strictly stronger than PRAM, efficiently "
         "partially replicated; it pays with\n write latency, unlike "
         "wait-free PRAM; causal still leaks; sequencer centralises)\n";
}

void BM_Run(benchmark::State& state, ProtocolKind kind) {
  const auto dist = graph::topo::ring(8);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  const auto scripts = make_random_scripts(dist, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(kind, dist, scripts, {}));
  }
}
BENCHMARK_CAPTURE(BM_Run, pram, ProtocolKind::kPramPartial);
BENCHMARK_CAPTURE(BM_Run, cache, ProtocolKind::kCachePartial);
BENCHMARK_CAPTURE(BM_Run, processor, ProtocolKind::kProcessorPartial);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
