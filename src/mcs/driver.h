// Workload drivers: scripted clients and complete system runs.
//
// A ScriptedClient executes a fixed sequence of operations through one
// McsProcess, issuing the next operation when the previous completes
// (program order).  run_workload() wires distribution + protocol + script
// into a Simulator, runs to quiescence and returns the recorded history
// with all traffic statistics — the workhorse of the property tests and
// most benches.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mcs/factory.h"
#include "simnet/reliable.h"
#include "simnet/scenario.h"
#include "simnet/simulator.h"

namespace pardsm::mcs {

/// One scripted operation.
struct ScriptOp {
  enum class Kind : std::uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  VarId var = kNoVar;
  Value value = kBottom;  ///< written value (writes only)
  /// Delay before issuing this operation (think time).
  Duration delay{};

  static ScriptOp read(VarId x, Duration delay = {}) {
    return {Kind::kRead, x, kBottom, delay};
  }
  static ScriptOp write(VarId x, Value v, Duration delay = {}) {
    return {Kind::kWrite, x, v, delay};
  }
};

/// A per-process operation script.
using Script = std::vector<ScriptOp>;

/// Drives one McsProcess through its script (simulator runtime).
///
/// Crash-aware: the application is co-located with its MCS process, so
/// while the process is down the client neither issues operations (an
/// issue attempt stalls) nor loses its place in the script.  The scenario
/// driver calls resume() from the recovery hook; an operation that was
/// in flight at crash time simply completes late — its response is
/// retransmitted by the ARQ layer — and the script continues from there.
class ScriptedClient {
 public:
  ScriptedClient(McsProcess& process, Simulator& sim, Script script);

  /// Schedule the first operation at `start`.
  void start(TimePoint start);

  /// Re-issue the stalled operation after the process recovered (no-op if
  /// the client was not stalled).
  void resume(TimePoint at);

  [[nodiscard]] bool done() const { return next_ >= script_.size(); }
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] const std::vector<Value>& read_results() const {
    return reads_;
  }

 private:
  void issue();

  McsProcess& process_;
  Simulator& sim_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool stalled_ = false;
};

/// Workload generation parameters.
struct WorkloadSpec {
  std::size_t ops_per_process = 8;
  double read_fraction = 0.5;
  std::uint64_t seed = 1;
  Duration think_time{};  ///< fixed delay between a process's operations
};

/// Random scripts over the distribution: process i only touches X_i, and
/// every written value is globally unique (exact read-from resolution).
[[nodiscard]] std::vector<Script> make_random_scripts(
    const graph::Distribution& dist, const WorkloadSpec& spec);

/// Random scripts where each variable has exactly one writer: the
/// lowest-id member of C(x).  Every process still reads any of its
/// variables.  With no write-write races, the final replica contents of a
/// run are a pure function of the workload — what the differential
/// convergence test (P6) compares across fault scenarios.
[[nodiscard]] std::vector<Script> make_single_writer_scripts(
    const graph::Distribution& dist, const WorkloadSpec& spec);

/// Final (value, provenance) copy of one replicated variable.
struct ReplicaEntry {
  VarId x = kNoVar;
  Value value = kBottom;
  WriteId source{};

  friend bool operator==(const ReplicaEntry&, const ReplicaEntry&) = default;
};

/// Result of a full system run.
struct RunResult {
  hist::History history;
  ProcessTraffic total_traffic;
  std::vector<ProcessTraffic> per_process_traffic;
  /// observed_relevant[x] = processes that received metadata about x.
  std::vector<std::set<ProcessId>> observed_relevant;
  std::vector<ProtocolStats> protocol_stats;
  /// Per-process replica contents at quiescence (sorted by VarId).
  std::vector<std::vector<ReplicaEntry>> final_replicas;
  TimePoint finished_at{};
  std::uint64_t events = 0;
};

/// Options for run_workload / run_scenario.
struct RunOptions {
  std::uint64_t sim_seed = 1;
  ChannelOptions channel;
  std::unique_ptr<LatencyModel> latency;  ///< null = constant 1ms
  /// ARQ configuration for scenario runs routed through ReliableTransport
  /// (ignored by run_workload).  The default effectively never gives up:
  /// scenario liveness comes from healing timelines, not retransmit caps.
  ReliableOptions reliable{millis(40), 1'000'000};
};

/// Execute `scripts` against a fresh system of `kind` over `dist` on the
/// deterministic simulator; returns the recorded history and traffic.
[[nodiscard]] RunResult run_workload(ProtocolKind kind,
                                     const graph::Distribution& dist,
                                     const std::vector<Script>& scripts,
                                     RunOptions options = {});

/// run_scenario result: the ordinary run outcome plus the fault ledger.
struct ScenarioRunResult : RunResult {
  /// True when the run was routed through ReliableTransport (any faulty
  /// scenario); false for fault-free timelines on the raw simulator.
  bool used_reliable_transport = false;
  /// ARQ retransmissions across all senders.
  std::uint64_t retransmissions = 0;
  /// Channel drops by cause (loss, partition, downtime, in-flight).
  DropCounters drops;
  /// Crash/re-sync ledger summed over all processes.
  std::uint64_t crashes = 0;
  std::uint64_t resync_messages = 0;  ///< requests sent + responses served
  std::uint64_t resync_bytes = 0;
  std::uint64_t resync_values_applied = 0;
  /// Slowest recover()→re-sync-complete interval of the run.
  Duration max_recovery_latency{};
};

/// Execute `scripts` under a scripted fault timeline.  Every protocol runs
/// every scenario unmodified: when any loss source exists — the timeline's
/// faults or lossy ChannelOptions — the system is routed through
/// ReliableTransport (ARQ restores the reliable FIFO channels the
/// protocols assume — its retransmissions and control bytes are charged to
/// the same NetworkStats ledger), crash events pause the victim's client
/// and drop its traffic, and recovery re-syncs the victim's replicas from
/// peers.  Deterministic per (scenario, seeds).
[[nodiscard]] ScenarioRunResult run_scenario(ProtocolKind kind,
                                             const graph::Distribution& dist,
                                             const std::vector<Script>& scripts,
                                             const Scenario& scenario,
                                             RunOptions options = {});

/// Execute the same shape of run on the std::thread runtime (one OS thread
/// per MCS process, genuine preemptive parallelism).  Script think-times
/// are ignored; executions are non-deterministic by design — the property
/// tests assert that consistency holds regardless of interleaving.
/// `quiesce_timeout` bounds the wait for the system to drain.
[[nodiscard]] RunResult run_workload_threaded(
    ProtocolKind kind, const graph::Distribution& dist,
    const std::vector<Script>& scripts,
    std::chrono::milliseconds quiesce_timeout = std::chrono::milliseconds(
        10000));

}  // namespace pardsm::mcs
