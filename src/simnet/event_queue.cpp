#include "simnet/event_queue.h"

#include <utility>

#include "simnet/check.h"

namespace pardsm {

Event& EventQueue::alloc(TimePoint when, Event::Type type) {
  std::uint32_t slot;
  if (free_.empty()) {
    slot = checked_slot(pool_.size());
    pool_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  Event& e = pool_[slot];
  e.type = type;
  e.when = when;
  e.seq = next_seq_++;
  e.slot = slot;
  heap_.push_back(HeapEntry{when, e.seq, slot});
  sift_up(heap_.size() - 1);
  return e;
}

void EventQueue::schedule(TimePoint when, std::function<void()> fn) {
  Event& e = alloc(when, Event::Type::kClosure);
  e.fire = std::move(fn);
}

void EventQueue::schedule_deliver(TimePoint when, Message msg) {
  Event& e = alloc(when, Event::Type::kDeliver);
  e.msg = std::move(msg);
}

void EventQueue::schedule_timer(TimePoint when, ProcessId who,
                                std::uint64_t tag) {
  Event& e = alloc(when, Event::Type::kTimer);
  e.timer_who = who;
  e.timer_tag = tag;
}

TimePoint EventQueue::next_time() const {
  PARDSM_CHECK(!heap_.empty(), "next_time on empty queue");
  return heap_.front().when;
}

Event EventQueue::pop() {
  Event out = std::move(pop_ref());
  release(pool_[out.slot]);
  return out;
}

Event& EventQueue::pop_ref() {
  PARDSM_CHECK(!heap_.empty(), "pop on empty queue");
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return pool_[top.slot];
}

void EventQueue::release(Event& e) {
  // Drop payload resources now rather than when the slot is reused.
  e.msg.body.reset();
  e.fire = nullptr;
  free_.push_back(e.slot);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  while (true) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t smallest = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[smallest])) smallest = c;
    }
    if (!earlier(heap_[smallest], e)) break;
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = e;
}

}  // namespace pardsm
