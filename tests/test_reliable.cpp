// ARQ reliable-delivery layer: exactly-once FIFO over lossy channels, and
// protocol liveness restored under loss.

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/reliable.h"

namespace pardsm {
namespace {

struct Payload final : MessageBody {
  int n = 0;
};

struct Collector final : Endpoint {
  std::vector<int> got;
  void on_message(const Message& m) override {
    got.push_back(m.as<Payload>()->n);
  }
};

SimOptions lossy(double drop, double dup, std::uint64_t seed) {
  SimOptions o;
  o.seed = seed;
  o.channel.drop_probability = drop;
  o.channel.duplicate_probability = dup;
  o.channel.fifo = false;  // ARQ restores order itself
  o.latency = std::make_unique<UniformLatency>(millis(1), millis(10));
  return o;
}

TEST(Reliable, ExactlyOnceInOrderUnderHeavyLoss) {
  Simulator sim(lossy(0.4, 0.2, 3));
  ReliableTransport rel(sim, {});
  Collector sender_side, receiver;
  const ProcessId s = rel.add_endpoint(&sender_side);
  const ProcessId r = rel.add_endpoint(&receiver);

  sim.schedule_at(kTimeZero, [&] {
    for (int i = 0; i < 100; ++i) {
      auto body = std::make_shared<Payload>();
      body->n = i;
      rel.send(s, r, std::move(body), MessageMeta{"SEQ", 4, 0, {}});
    }
  });
  sim.run();

  ASSERT_EQ(receiver.got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(receiver.got[i], i);
  EXPECT_GT(rel.retransmissions(), 0u);
}

TEST(Reliable, NoLossMeansNoRetransmissions) {
  Simulator sim(lossy(0.0, 0.0, 4));
  ReliableTransport rel(sim, {});
  Collector a, b;
  const ProcessId s = rel.add_endpoint(&a);
  const ProcessId r = rel.add_endpoint(&b);
  sim.schedule_at(kTimeZero, [&] {
    auto body = std::make_shared<Payload>();
    body->n = 7;
    rel.send(s, r, std::move(body), MessageMeta{"ONE", 4, 0, {}});
  });
  sim.run();
  EXPECT_EQ(b.got, (std::vector<int>{7}));
  EXPECT_EQ(rel.retransmissions(), 0u);
}

TEST(Reliable, AppTimersPassThrough) {
  struct Timed final : Endpoint {
    std::vector<TimerTag> tags;
    void on_message(const Message&) override {}
    void on_timer(TimerTag t) override { tags.push_back(t); }
  };
  Simulator sim(lossy(0.0, 0.0, 5));
  ReliableTransport rel(sim, {});
  Timed t;
  const ProcessId p = rel.add_endpoint(&t);
  rel.set_timer(p, millis(2), 42);
  sim.run();
  EXPECT_EQ(t.tags, (std::vector<TimerTag>{42}));
}

// The headline: a PRAM system over a 30%-lossy network, with the ARQ layer
// underneath, completes every script and the history is PRAM-consistent —
// loss costs retransmissions, not safety or liveness.
TEST(Reliable, PramProtocolLiveUnderLoss) {
  const auto dist = graph::topo::random_replication(4, 3, 2, 9);
  Simulator sim(lossy(0.3, 0.1, 9));
  ReliableTransport rel(sim, {});

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs =
      mcs::make_processes(mcs::ProtocolKind::kPramPartial, dist, recorder);
  for (auto& proc : procs) {
    rel.add_endpoint(proc.get());
    proc->attach(rel);
  }

  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.seed = 2;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  std::vector<std::unique_ptr<mcs::ScriptedClient>> clients;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    clients.push_back(
        std::make_unique<mcs::ScriptedClient>(*procs[p], sim, scripts[p]));
    clients.back()->start(kTimeZero);
  }
  sim.run();

  for (const auto& c : clients) EXPECT_TRUE(c->done());
  // Every update eventually arrived: replicas of each variable agree with
  // the last write in some writer-consistent way; the history checks out.
  const auto h = recorder.history();
  EXPECT_TRUE(hist::check_history(h, hist::Criterion::kPram).consistent)
      << h.to_string();
  EXPECT_GT(rel.retransmissions(), 0u);
}

// Causal protocol (vector clocks) over lossy network + ARQ: the causal
// delivery condition sees no gaps because ARQ fills them.
TEST(Reliable, CausalProtocolLiveUnderLoss) {
  const auto dist = graph::topo::star(3);
  Simulator sim(lossy(0.25, 0.0, 11));
  ReliableTransport rel(sim, {});

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs = mcs::make_processes(mcs::ProtocolKind::kCausalPartialNaive,
                                   dist, recorder);
  for (auto& proc : procs) {
    rel.add_endpoint(proc.get());
    proc->attach(rel);
  }
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 4;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  std::vector<std::unique_ptr<mcs::ScriptedClient>> clients;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    clients.push_back(
        std::make_unique<mcs::ScriptedClient>(*procs[p], sim, scripts[p]));
    clients.back()->start(kTimeZero);
  }
  sim.run();

  const auto h = recorder.history();
  EXPECT_TRUE(hist::check_history(h, hist::Criterion::kCausal).consistent);
  // All updates were eventually applied everywhere relevant: each process's
  // buffered queue drained (no stuck messages => applied counts match).
  for (const auto& proc : procs) {
    EXPECT_GE(proc->stats().updates_applied, 0u);
  }
}

}  // namespace
}  // namespace pardsm
