// Freelist allocator for ordered protocol-state containers.
//
// Several protocols keep per-in-flight-op entries in std::map/std::set
// (pending RPCs, ARQ windows, write-order buffers).  The containers are
// semantically load-bearing — iteration order and lookup behaviour are
// pinned by the golden metric tables — so they cannot be swapped for open
// hash maps without changing observable schedules.  What CAN change is
// where their nodes come from: RecyclingAlloc keeps every freed node on a
// per-pool freelist bucketed by size, so the steady-state insert/erase
// cycle of a warmed-up protocol touches the heap never, while the
// container's comparator, ordering and interface stay bit-identical.
//
// Usage: the owning object holds a RecyclingPool member (declared before
// the containers) and constructs each container with an explicit
// allocator:
//
//   RecyclingPool node_pool_;
//   std::map<K, V, std::less<K>,
//            RecyclingAlloc<std::pair<const K, V>>>
//       pending_{RecyclingAlloc<std::pair<const K, V>>(&node_pool_)};
//
// The allocator is stateful (no default constructor — a pool must be
// wired explicitly); two allocators compare equal iff they share a pool.
// Not thread-safe: a pool belongs to one endpoint, like the state it
// feeds.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace pardsm {

/// Size-bucketed freelist of raw chunks.  All node sizes a container
/// family rebinds to land in their own bucket; the bucket vector itself
/// reaches steady capacity after warmup.
class RecyclingPool {
 public:
  RecyclingPool() = default;
  RecyclingPool(const RecyclingPool&) = delete;
  RecyclingPool& operator=(const RecyclingPool&) = delete;

  ~RecyclingPool() {
    for (auto& [size, chunks] : buckets_) {
      for (void* p : chunks) ::operator delete(p);
    }
  }

  [[nodiscard]] void* take(std::size_t bytes) {
    for (auto& [size, chunks] : buckets_) {
      if (size == bytes) {
        if (chunks.empty()) break;
        void* p = chunks.back();
        chunks.pop_back();
        return p;
      }
    }
    return ::operator new(bytes);
  }

  void put(void* p, std::size_t bytes) {
    for (auto& [size, chunks] : buckets_) {
      if (size == bytes) {
        chunks.push_back(p);
        return;
      }
    }
    buckets_.emplace_back(bytes, std::vector<void*>{});
    buckets_.back().second.push_back(p);
  }

 private:
  std::vector<std::pair<std::size_t, std::vector<void*>>> buckets_;
};

template <typename T>
class RecyclingAlloc {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  explicit RecyclingAlloc(RecyclingPool* pool) noexcept : pool_(pool) {}

  template <typename U>
  RecyclingAlloc(const RecyclingAlloc<U>& other) noexcept  // NOLINT
      : pool_(other.pool()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->take(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_->put(p, n * sizeof(T));
  }

  [[nodiscard]] RecyclingPool* pool() const noexcept { return pool_; }

  RecyclingAlloc select_on_container_copy_construction() const noexcept {
    return *this;
  }

  template <typename U>
  friend bool operator==(const RecyclingAlloc& a,
                         const RecyclingAlloc<U>& b) noexcept {
    return a.pool_ == b.pool();
  }

 private:
  RecyclingPool* pool_;
};

}  // namespace pardsm
