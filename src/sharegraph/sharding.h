// Shard assignment for the parallel simulation engine.
//
// The share graph tells us which processes can ever exchange protocol
// traffic: messages only flow inside SG components (a variable's clique is
// a clique of SG, and every protocol's traffic follows cliques).  Mapping
// whole components onto shards therefore makes almost all traffic
// shard-local — the sharded and hierarchical topologies of the paper's
// efficiency argument decompose into many small cells, which is exactly
// the regime where the parallel engine's barriers are cheap.  Connected
// topologies (chains, cliques) have one component; there we fall back to
// round-robin by process id, which keeps shard load even at the price of
// cross-shard messages.
#pragma once

#include <vector>

#include "sharegraph/share_graph.h"

namespace pardsm::graph {

/// Shard per process (values in [0, num_shards)) for running `dist` on
/// the parallel engine: share-graph components are assigned round-robin
/// to shards (by ascending minimum member, so the assignment is
/// deterministic), keeping each cell's traffic on one shard; a single
/// connected component degenerates to `p % num_shards`.
[[nodiscard]] std::vector<int> shard_assignment(const Distribution& dist,
                                                int num_shards);

}  // namespace pardsm::graph
