// Large-n regime tests.
//
// Three concerns, all beyond the paper's 3–10-process figures:
//
//  1. The scale topology generators (sharded / hierarchical /
//     zipf_replication) produce the shapes they promise.
//  2. All nine protocols complete 512-process workloads within a time
//     budget with conserved message/exposure invariants — and on disjoint
//     shards the efficient protocols keep both their metadata and their
//     channel state inside the shards (the O(active pairs) claim).
//  3. The sparse Network (default + PairMap overrides, lazily allocated
//     FIFO clamp) is decision-for-decision identical to the dense n×n
//     tables it replaced: a reference model reimplementing the dense
//     representation with the same RNG stream discipline must agree on
//     every DeliveryPlan and drop counter under a randomized storm of
//     setter/scenario-style mutations.

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "mcs/driver.h"
#include "sharegraph/share_graph.h"
#include "sharegraph/topologies.h"
#include "simnet/network.h"

namespace pardsm {
namespace {

using mcs::ProtocolKind;

// ------------------------------------------------------- scale topologies

TEST(ScaleTopologies, ShardedIsDisjointReplicaGroups) {
  const auto dist = graph::topo::sharded(8, 4, 32);
  EXPECT_EQ(dist.process_count(), 32u);
  EXPECT_EQ(dist.var_count, 32u);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto replicas = dist.replicas_of(static_cast<VarId>(x));
    ASSERT_EQ(replicas.size(), 4u);
    const std::size_t shard = x % 8;
    for (ProcessId p : replicas) {
      EXPECT_EQ(static_cast<std::size_t>(p) / 4, shard)
          << "var " << x << " leaked outside its shard";
    }
  }
  // Disjoint shards ⇒ the share graph splits into exactly `shards`
  // components.
  const graph::ShareGraph sg(dist);
  EXPECT_EQ(sg.components().size(), 8u);
}

TEST(ScaleTopologies, HierarchicalIsATreeOfCells) {
  const auto dist = graph::topo::hierarchical(2, 3);
  EXPECT_EQ(dist.process_count(), 7u);  // 1 + 2 + 4
  EXPECT_EQ(dist.var_count, 3u);        // one cell per internal node
  EXPECT_EQ(dist.replicas_of(0), (std::vector<ProcessId>{0, 1, 2}));
  EXPECT_EQ(dist.replicas_of(1), (std::vector<ProcessId>{1, 3, 4}));
  EXPECT_EQ(dist.replicas_of(2), (std::vector<ProcessId>{2, 5, 6}));
  // One connected system (cells bridge through their parent process).
  EXPECT_EQ(graph::ShareGraph(dist).components().size(), 1u);

  const auto big = graph::topo::hierarchical(4, 5);
  EXPECT_EQ(big.process_count(), 341u);  // 1+4+16+64+256
  EXPECT_EQ(big.var_count, 85u);
  for (std::size_t x = 0; x < big.var_count; ++x) {
    EXPECT_EQ(big.replicas_of(static_cast<VarId>(x)).size(), 5u);
  }
}

TEST(ScaleTopologies, ZipfReplicationIsSkewedAndDeterministic) {
  const auto a = graph::topo::zipf_replication(64, 200, 3, 1.2, 5);
  const auto b = graph::topo::zipf_replication(64, 200, 3, 1.2, 5);
  const auto c = graph::topo::zipf_replication(64, 200, 3, 1.2, 6);
  EXPECT_EQ(a.per_process, b.per_process);
  EXPECT_NE(a.per_process, c.per_process);
  EXPECT_EQ(a.process_count(), 64u);
  EXPECT_EQ(a.var_count, 200u);
  for (std::size_t x = 0; x < a.var_count; ++x) {
    const auto replicas = a.replicas_of(static_cast<VarId>(x));
    EXPECT_EQ(replicas.size(), 3u);  // r distinct processes
    EXPECT_EQ(std::set<ProcessId>(replicas.begin(), replicas.end()).size(),
              3u);
  }
  // Zipf skew: the hottest process joins far more cliques than the tail.
  EXPECT_GT(a.per_process[0].size(), 4 * a.per_process[63].size());
}

// --------------------------------------------------------- large-n smoke

/// Expected intra-clique directed pairs of a distribution: an upper bound
/// on active channel pairs for protocols whose traffic stays in C(x).
std::size_t intra_clique_pairs(const graph::Distribution& dist) {
  std::set<std::pair<ProcessId, ProcessId>> pairs;
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto replicas = dist.replicas_of(static_cast<VarId>(x));
    for (ProcessId i : replicas) {
      for (ProcessId j : replicas) {
        if (i != j) pairs.insert({i, j});
      }
    }
  }
  return pairs.size();
}

class ScaleSmoke : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ScaleSmoke, FiveHundredTwelveProcessesConserveInvariants) {
  const auto kind = GetParam();
  const auto start = std::chrono::steady_clock::now();

  const std::vector<graph::Distribution> dists = {
      graph::topo::sharded(/*shards=*/64, /*replicas_per_var=*/8,
                           /*vars=*/512),
      graph::topo::hierarchical(/*branching=*/2, /*depth=*/9),  // n = 511
  };
  for (const auto& dist : dists) {
    mcs::WorkloadSpec spec;
    spec.ops_per_process = 2;
    spec.read_fraction = 0.5;
    spec.seed = 1234;
    const auto scripts = mcs::make_random_scripts(dist, spec);
    const auto r = mcs::run_workload(kind, dist, scripts, {});

    // Conservation: a lossless run delivers every sent message, and the
    // recorded history holds exactly the scripted operations.
    EXPECT_EQ(r.total_traffic.msgs_sent, r.total_traffic.msgs_received)
        << dist.name;
    EXPECT_EQ(r.history.size(), dist.process_count() * spec.ops_per_process)
        << dist.name;

    // Exposure conservation: observed-relevant sets only name real
    // processes, and every variable's writers/readers saw it.
    ASSERT_EQ(r.observed_relevant.size(), dist.var_count);
    for (const auto& procs : r.observed_relevant) {
      for (ProcessId p : procs) {
        EXPECT_GE(p, 0);
        EXPECT_LT(static_cast<std::size_t>(p), dist.process_count());
      }
    }

    // Channel state is O(active pairs).  The broadcast protocols
    // (causal-full, causal-partial-naive) genuinely activate O(n²) pairs
    // — that is their blow-up, and exactly why they are capped in
    // bench_scale; for everything else active pairs stay far below n²,
    // and for protocols whose traffic stays inside C(x) they are bounded
    // by the distribution's intra-clique pairs.
    const std::size_t n = dist.process_count();
    const bool broadcast = kind == ProtocolKind::kCausalFull ||
                           kind == ProtocolKind::kCausalPartialNaive;
    EXPECT_LE(r.active_channel_pairs, n * (n - 1)) << dist.name;
    if (!broadcast) {
      EXPECT_LT(r.active_channel_pairs, n * n / 4) << dist.name;
    }
    if (!broadcast && kind != ProtocolKind::kSequencerSC &&
        kind != ProtocolKind::kCausalPartialAdHoc) {
      EXPECT_LE(r.active_channel_pairs, intra_clique_pairs(dist))
          << dist.name;
    }
  }

  // Time budget: generous (shared CI boxes are noisy) but finite — a
  // protocol that degenerates to quadratic work at n=512 blows well past
  // it.  Sanitizer builds run the same code ~10× slower (TSan especially),
  // so they get a proportionally wider budget: the quadratic-degeneration
  // tripwire still fires, just at sanitizer scale.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr long kBudgetSeconds = 600;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  constexpr long kBudgetSeconds = 600;
#else
  constexpr long kBudgetSeconds = 60;
#endif
#else
  constexpr long kBudgetSeconds = 60;
#endif
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), kBudgetSeconds)
      << "n=512 smoke exceeded its time budget";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ScaleSmoke,
                         ::testing::ValuesIn(mcs::all_protocols()),
                         [](const auto& info) {
                           std::string name = mcs::to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ------------------------------------- sparse vs dense equivalence storm

/// The dense per-pair representation the sparse Network replaced,
/// reimplemented verbatim (n×n tables, same constructor stream split,
/// same draw order) as a reference model.
class DenseReference {
 public:
  DenseReference(std::size_t n, ChannelOptions options,
                 std::unique_ptr<LatencyModel> latency, Rng rng)
      : n_(n),
        options_(options),
        latency_(std::move(latency)),
        latency_rng_(rng),
        fault_rng_(rng.fork(/*tag=*/0x4641554CULL)),
        last_delivery_(n * n, TimePoint{}),
        severed_(n * n, 0),
        loss_(n * n, options.drop_probability),
        duplicate_(n * n, options.duplicate_probability),
        down_(n, 0) {}

  DeliveryPlan plan_delivery(ProcessId from, ProcessId to,
                             TimePoint send_time) {
    const Duration lat = latency_->sample(from, to, latency_rng_);
    const std::size_t ij = pair(from, to);
    if (severed_[ij] != 0) {
      ++drops_.severed;
      return {};
    }
    if (down_[static_cast<std::size_t>(from)] != 0 ||
        down_[static_cast<std::size_t>(to)] != 0) {
      ++drops_.down;
      return {};
    }
    if (fault_rng_.chance(loss_[ij])) {
      ++drops_.loss;
      return {};
    }
    DeliveryPlan deliveries;
    const auto clamp_push = [&](TimePoint at) {
      if (options_.fifo) {
        TimePoint& last = last_delivery_[ij];
        if (at <= last) at = last + micros(1);
        last = at;
      }
      deliveries.push(at);
    };
    clamp_push(send_time + lat);
    if (fault_rng_.chance(duplicate_[ij])) {
      clamp_push(send_time + latency_->sample(from, to, fault_rng_));
    }
    return deliveries;
  }

  void sever(ProcessId a, ProcessId b) { ++severed_[pair(a, b)]; }
  void heal(ProcessId a, ProcessId b) {
    auto& cuts = severed_[pair(a, b)];
    if (cuts > 0) --cuts;
  }
  void set_loss(ProcessId a, ProcessId b, double p) { loss_[pair(a, b)] = p; }
  void set_loss_all(double p) {
    for (double& v : loss_) v = p;
  }
  void set_duplicate(ProcessId a, ProcessId b, double p) {
    duplicate_[pair(a, b)] = p;
  }
  void set_duplicate_all(double p) {
    for (double& v : duplicate_) v = p;
  }
  void set_down(ProcessId p, bool down) {
    down_[static_cast<std::size_t>(p)] = down ? 1 : 0;
  }
  [[nodiscard]] double loss(ProcessId a, ProcessId b) const {
    return loss_[pair(a, b)];
  }
  [[nodiscard]] double duplicate(ProcessId a, ProcessId b) const {
    return duplicate_[pair(a, b)];
  }
  [[nodiscard]] bool severed(ProcessId a, ProcessId b) const {
    return severed_[pair(a, b)] != 0;
  }
  [[nodiscard]] const DropCounters& drop_counters() const { return drops_; }

 private:
  [[nodiscard]] std::size_t pair(ProcessId from, ProcessId to) const {
    return static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to);
  }

  std::size_t n_;
  ChannelOptions options_;
  std::unique_ptr<LatencyModel> latency_;
  Rng latency_rng_;
  Rng fault_rng_;
  std::vector<TimePoint> last_delivery_;
  std::vector<std::uint32_t> severed_;
  std::vector<double> loss_;
  std::vector<double> duplicate_;
  std::vector<std::uint8_t> down_;
  DropCounters drops_;
};

void equivalence_storm(ChannelOptions options, std::uint64_t net_seed,
                       std::uint64_t op_seed) {
  const std::size_t n = 32;
  Network net(n, options,
              std::make_unique<UniformLatency>(millis(1), millis(10)),
              Rng(net_seed));
  DenseReference ref(n, options,
                     std::make_unique<UniformLatency>(millis(1), millis(10)),
                     Rng(net_seed));

  Rng ops(op_seed);
  const double probs[] = {0.0, 0.05, 0.3, 0.9};
  std::int64_t t = 0;
  for (int step = 0; step < 4000; ++step) {
    const auto a = static_cast<ProcessId>(ops.below(n));
    const auto b = static_cast<ProcessId>(ops.below(n));
    t += static_cast<std::int64_t>(ops.below(50));
    switch (ops.below(12)) {
      case 0:
        net.set_loss(a, b, probs[ops.below(4)]);
        ref.set_loss(a, b, net.loss(a, b));
        break;
      case 1:
        net.set_duplicate(a, b, probs[ops.below(4)]);
        ref.set_duplicate(a, b, net.duplicate(a, b));
        break;
      case 2:
        net.sever(a, b);
        ref.sever(a, b);
        break;
      case 3:
        net.heal(a, b);
        ref.heal(a, b);
        break;
      case 4: {
        const bool down = ops.below(2) == 0;
        net.set_down(a, down);
        ref.set_down(a, down);
        break;
      }
      case 5: {
        const double p = probs[ops.below(4)];
        if (ops.below(2) == 0) {
          net.set_loss_all(p);
          ref.set_loss_all(p);
        } else {
          net.set_duplicate_all(p);
          ref.set_duplicate_all(p);
        }
        break;
      }
      default: {  // the common case: plan a message
        const DeliveryPlan got = net.plan_delivery(a, b, TimePoint{t});
        const DeliveryPlan want = ref.plan_delivery(a, b, TimePoint{t});
        ASSERT_EQ(got.size(), want.size()) << "step " << step;
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i]) << "step " << step;
        }
        break;
      }
    }
    // Table reads agree at every step.
    ASSERT_EQ(net.loss(a, b), ref.loss(a, b));
    ASSERT_EQ(net.duplicate(a, b), ref.duplicate(a, b));
    ASSERT_EQ(net.severed(a, b), ref.severed(a, b));
  }
  EXPECT_EQ(net.drop_counters().loss, ref.drop_counters().loss);
  EXPECT_EQ(net.drop_counters().severed, ref.drop_counters().severed);
  EXPECT_EQ(net.drop_counters().down, ref.drop_counters().down);
  EXPECT_EQ(net.dropped_count(), ref.drop_counters().total());
}

TEST(SparseDenseEquivalence, RandomStormMatchesDenseReference) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ChannelOptions plain;
    equivalence_storm(plain, seed, seed * 101);

    ChannelOptions lossy;
    lossy.drop_probability = 0.1;
    lossy.duplicate_probability = 0.05;
    equivalence_storm(lossy, seed, seed * 101);

    ChannelOptions unordered;
    unordered.fifo = false;
    unordered.duplicate_probability = 0.2;
    equivalence_storm(unordered, seed, seed * 101);
  }
}

}  // namespace
}  // namespace pardsm
