// T2 — Theorem 2 measured: PRAM partial replication is efficient.
//
// Sweep the system size; expected shape: PRAM control bytes per update
// stay constant (one 24-byte header), exposure never leaves C(x), and no
// dependency chain exists along any hoop of the recorded histories.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/analysis.h"
#include "mcs/driver.h"
#include "sharegraph/dependency_chain.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

void print_table(bu::Harness& h) {
  bu::banner("T2: PRAM on rings of growing size (every var has a hoop)");
  bu::row({"n", "ctrl-bytes/msg", "leak>C(x)", "pram-chain?", "efficient?"});
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const auto dist = graph::topo::ring(n);
    WorkloadSpec spec;
    spec.ops_per_process = 6;
    spec.seed = n;
    const auto scripts = make_random_scripts(dist, spec);
    const auto run =
        run_workload(ProtocolKind::kPramPartial, dist, scripts, {});
    // wall_ns times a second, warm run of the identical (deterministic)
    // workload so the row measures the engine, not cold-start noise.
    const std::uint64_t wall_ns = bu::time_ns([&] {
      (void)run_workload(ProtocolKind::kPramPartial, dist, scripts, {});
    });
    const auto report =
        core::analyze_run(dist, run.observed_relevant, run.total_traffic);

    // Dependency-chain scan of the recorded history under the PRAM
    // relation (Theorem 2: none can exist).
    const graph::ShareGraph sg(dist);
    bool chain = false;
    for (std::size_t x = 0; x < dist.var_count && !chain; ++x) {
      chain = graph::find_chain(run.history, sg, static_cast<VarId>(x),
                                graph::ChainRelation::kPram)
                  .found;
    }

    const double per_msg =
        run.total_traffic.msgs_sent == 0
            ? 0.0
            : static_cast<double>(run.total_traffic.control_bytes_sent) /
                  static_cast<double>(run.total_traffic.msgs_sent);
    bu::row({bu::num(static_cast<std::uint64_t>(n)), bu::num(per_msg, 1),
             bu::num(static_cast<std::uint64_t>(
                 report.vars_leaking_past_clique)),
             chain ? "YES(!)" : "no",
             bu::yesno(report.efficient())});
    h.record(
        {.label = "ring-" + std::to_string(n),
         .protocol = to_string(ProtocolKind::kPramPartial),
         .distribution = dist.name,
         .ops = run.history.size(),
         .messages = run.total_traffic.msgs_sent,
         .bytes = run.total_traffic.wire_bytes_sent(),
         .sim_time_ms = static_cast<double>(run.finished_at.us) / 1000.0,
         .wall_ns = wall_ns,
         .extra = {{"ctrl_bytes_per_msg", per_msg},
                   {"leak_past_clique",
                    static_cast<double>(report.vars_leaking_past_clique)},
                   {"pram_chain", chain ? 1.0 : 0.0},
                   {"efficient", report.efficient() ? 1.0 : 0.0}}});
  }
  std::cout << "(expected: ctrl-bytes/msg constant at 24; zero leaks; no "
               "chains — Theorem 2)\n";

  bu::banner("contrast: causal-partial-naive on the same rings");
  bu::row({"n", "ctrl-bytes/msg", "leak>C(x)", "efficient?"});
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const auto dist = graph::topo::ring(n);
    WorkloadSpec spec;
    spec.ops_per_process = 6;
    spec.seed = n;
    const auto scripts = make_random_scripts(dist, spec);
    const auto run =
        run_workload(ProtocolKind::kCausalPartialNaive, dist, scripts, {});
    const std::uint64_t wall_ns = bu::time_ns([&] {
      (void)run_workload(ProtocolKind::kCausalPartialNaive, dist, scripts, {});
    });
    const auto report =
        core::analyze_run(dist, run.observed_relevant, run.total_traffic);
    const double per_msg =
        static_cast<double>(run.total_traffic.control_bytes_sent) /
        static_cast<double>(run.total_traffic.msgs_sent);
    bu::row({bu::num(static_cast<std::uint64_t>(n)), bu::num(per_msg, 1),
             bu::num(static_cast<std::uint64_t>(
                 report.vars_leaking_past_clique)),
             bu::yesno(report.efficient())});
    h.record(
        {.label = "ring-" + std::to_string(n),
         .protocol = to_string(ProtocolKind::kCausalPartialNaive),
         .distribution = dist.name,
         .ops = run.history.size(),
         .messages = run.total_traffic.msgs_sent,
         .bytes = run.total_traffic.wire_bytes_sent(),
         .sim_time_ms = static_cast<double>(run.finished_at.us) / 1000.0,
         .wall_ns = wall_ns,
         .extra = {{"ctrl_bytes_per_msg", per_msg},
                   {"leak_past_clique",
                    static_cast<double>(report.vars_leaking_past_clique)},
                   {"efficient", report.efficient() ? 1.0 : 0.0}}});
  }
  std::cout << "(expected: ctrl-bytes/msg grows ~8n; every variable "
               "leaks)\n";
}

void BM_PramRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dist = graph::topo::ring(n);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  const auto scripts = make_random_scripts(dist, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_workload(ProtocolKind::kPramPartial, dist, scripts, {}));
  }
}
BENCHMARK(BM_PramRun)->Range(4, 64);

void BM_NaiveCausalRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dist = graph::topo::ring(n);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  const auto scripts = make_random_scripts(dist, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(ProtocolKind::kCausalPartialNaive,
                                          dist, scripts, {}));
  }
}
BENCHMARK(BM_NaiveCausalRun)->Range(4, 64);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "theorem2_pram");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
