// The paper's Section 6 case study: least-cost routing via distributed
// Bellman-Ford on PRAM partial replication (Figures 7, 8, 9).
//
//   $ ./examples/routing_bellman_ford

#include <iomanip>
#include <iostream>

#include "apps/bellman_ford.h"
#include "sharegraph/hoops.h"

int main() {
  using namespace pardsm;
  using namespace pardsm::apps;

  const auto g = WeightedGraph::fig8();
  std::cout << "Figure 8 network (paper node i = node i-1 here):\n";
  for (const auto& e : g.edges()) {
    std::cout << "  " << e.from + 1 << " -> " << e.to + 1 << "  w="
              << e.weight << '\n';
  }

  const auto dist = bellman_ford_distribution(g);
  std::cout << "\nSection 6 variable distribution:\n";
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    std::cout << "  X_" << p + 1 << " = { ";
    for (VarId x : dist.per_process[p]) {
      if (x < static_cast<VarId>(g.size())) {
        std::cout << 'x' << x + 1 << ' ';
      } else {
        std::cout << 'k' << x - static_cast<VarId>(g.size()) + 1 << ' ';
      }
    }
    std::cout << "}\n";
  }

  std::cout << "\nrunning Figure 7 on PRAM partial replication...\n";
  const auto result = run_bellman_ford(g);

  std::cout << "\n  node  distance  (reference)\n";
  for (std::size_t i = 0; i < result.distances.size(); ++i) {
    std::cout << "   " << i + 1 << "       " << std::setw(3)
              << result.distances[i] << "     (" << result.reference[i]
              << ")\n";
  }
  std::cout << "\nmatches centralized Bellman-Ford: "
            << (result.matches_reference ? "yes" : "NO") << '\n'
            << "iterations per node (k_i): " << result.rounds[0]
            << " (= N, Figure 7 line 5)\n"
            << "messages: " << result.total_traffic.msgs_sent
            << ", control bytes: "
            << result.total_traffic.control_bytes_sent
            << ", barrier polls: " << result.barrier_polls << '\n';

  // Figure 9 flavour: the per-process write pattern of one round.
  std::cout << "\nper-process operation counts (recorded history):\n";
  const auto& h = result.history;
  for (std::size_t p = 0; p < h.process_count(); ++p) {
    std::size_t reads = 0, writes = 0;
    for (hist::OpIndex op : h.ops_of(static_cast<ProcessId>(p))) {
      if (h.op(op).is_read()) {
        ++reads;
      } else {
        ++writes;
      }
    }
    std::cout << "  p" << p + 1 << ": " << writes << " writes, " << reads
              << " reads\n";
  }
  return result.matches_reference ? 0 : 1;
}
