// Extension protocols: cache consistency and processor consistency
// (PRAM ∧ cache) under partial replication — the repository's answer to
// the paper's open question ("does a criterion stronger than PRAM admit
// efficient partial replication?").

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

using hist::Criterion;

RunResult run(ProtocolKind kind, const graph::Distribution& dist,
              std::uint64_t seed) {
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.read_fraction = 0.5;
  spec.seed = seed;
  const auto scripts = make_random_scripts(dist, spec);
  RunOptions options;
  options.sim_seed = seed;
  options.latency = std::make_unique<UniformLatency>(millis(1), millis(12));
  return run_workload(kind, dist, scripts, std::move(options));
}

TEST(CacheChecker, DivergentWriteOrdersViolateCache) {
  // Two readers observe two concurrent writes to x in opposite orders:
  // PRAM admits it, cache does not.
  hist::History h(4, 1);
  h.push_write(0, 0, 1);
  h.push_write(1, 0, 2);
  h.push_read(2, 0, 1);
  h.push_read(2, 0, 2);
  h.push_read(3, 0, 2);
  h.push_read(3, 0, 1);
  EXPECT_FALSE(hist::check_history(h, Criterion::kCache).consistent);
  EXPECT_TRUE(hist::check_history(h, Criterion::kPram).consistent);
}

TEST(CacheChecker, CrossVariableReorderIsCacheConsistent) {
  // The slow-not-PRAM litmus is fine for cache (no cross-var coupling).
  hist::History h(2, 2);
  h.push_write(0, 0, 1);
  h.push_write(0, 1, 2);
  h.push_read(1, 1, 2);
  h.push_read(1, 0, kBottom);
  EXPECT_TRUE(hist::check_history(h, Criterion::kCache).consistent);
  EXPECT_FALSE(hist::check_history(h, Criterion::kPram).consistent);
}

TEST(CachePartial, HistoriesAreCacheConsistent) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto dist = graph::topo::random_replication(5, 4, 3, seed);
    const auto result = run(ProtocolKind::kCachePartial, dist, seed);
    const auto check =
        hist::check_history(result.history, Criterion::kCache);
    EXPECT_TRUE(check.definitive);
    EXPECT_TRUE(check.consistent)
        << "seed " << seed << "\n" << result.history.to_string();
  }
}

TEST(ProcessorPartial, HistoriesArePramAndCacheConsistent) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto dist = graph::topo::random_replication(5, 4, 3, seed);
    const auto result = run(ProtocolKind::kProcessorPartial, dist, seed);
    for (Criterion c : {Criterion::kPram, Criterion::kCache,
                        Criterion::kSlow}) {
      const auto check = hist::check_history(result.history, c);
      EXPECT_TRUE(check.definitive);
      EXPECT_TRUE(check.consistent)
          << "seed " << seed << " criterion " << to_string(c) << "\n"
          << result.history.to_string();
    }
  }
}

TEST(Extensions, ExposureConfinedToCliques) {
  // The open-question property: BOTH extensions keep every byte of
  // x-metadata inside C(x) — efficient partial replication for a
  // criterion (PRAM ∧ cache) strictly stronger than PRAM.
  for (auto kind :
       {ProtocolKind::kCachePartial, ProtocolKind::kProcessorPartial}) {
    for (const auto& dist :
         {graph::topo::chain_with_hoop(5), graph::topo::ring(6),
          graph::topo::clusters(3, 2, true)}) {
      const auto result = run(kind, dist, 7);
      for (std::size_t x = 0; x < dist.var_count; ++x) {
        const auto clique = dist.replicas_of(static_cast<VarId>(x));
        const std::set<ProcessId> cset(clique.begin(), clique.end());
        for (ProcessId p : result.observed_relevant[x]) {
          EXPECT_TRUE(cset.count(p))
              << to_string(kind) << " leaked x" << x << " to p" << p
              << " on " << dist.name;
        }
      }
    }
  }
}

TEST(Extensions, ProcessorStrictlyStrongerThanPramDeterministic) {
  // Deterministic separation witness: two writers, two readers, a latency
  // matrix that delivers the writes in opposite orders at the readers, and
  // reads timed between the arrivals.  PRAM admits the resulting history;
  // cache consistency rejects it; the processor protocol on the *same*
  // workload produces a history both checkers admit.
  const auto dist = graph::topo::complete(4, 1);
  std::vector<Script> scripts(4);
  scripts[0] = {ScriptOp::write(0, 1)};
  scripts[1] = {ScriptOp::write(0, 2)};
  scripts[2] = {ScriptOp::read(0, millis(10)), ScriptOp::read(0, millis(60))};
  scripts[3] = {ScriptOp::read(0, millis(10)), ScriptOp::read(0, millis(60))};

  const auto latency_matrix = [] {
    const Duration fast = millis(1), slow = millis(50);
    std::vector<std::vector<Duration>> m(4, std::vector<Duration>(4, fast));
    m[0][3] = slow;  // p0's write reaches p3 late
    m[1][2] = slow;  // p1's write reaches p2 late
    return m;
  };

  // PRAM: apply-on-arrival → p2 sees 1 then 2; p3 sees 2 then 1.
  {
    RunOptions options;
    options.latency = std::make_unique<MatrixLatency>(latency_matrix());
    const auto result = run_workload(ProtocolKind::kPramPartial, dist,
                                     scripts, std::move(options));
    EXPECT_TRUE(
        hist::check_history(result.history, Criterion::kPram).consistent);
    EXPECT_FALSE(
        hist::check_history(result.history, Criterion::kCache).consistent)
        << result.history.to_string();
  }
  // Processor consistency: home sequencing forbids the divergence.
  {
    RunOptions options;
    options.latency = std::make_unique<MatrixLatency>(latency_matrix());
    const auto result = run_workload(ProtocolKind::kProcessorPartial, dist,
                                     scripts, std::move(options));
    EXPECT_TRUE(
        hist::check_history(result.history, Criterion::kPram).consistent);
    EXPECT_TRUE(
        hist::check_history(result.history, Criterion::kCache).consistent)
        << result.history.to_string();
  }
}

TEST(Extensions, WritesBlockButReadsAreLocal) {
  const auto dist = graph::topo::complete(3, 2);
  const auto result = run(ProtocolKind::kProcessorPartial, dist, 3);
  for (const auto& op : result.history.ops()) {
    if (op.is_read()) {
      EXPECT_EQ(op.responded, op.invoked);  // wait-free read
    }
  }
  // Some write by a non-home process must have taken network time.
  bool some_slow_write = false;
  for (const auto& op : result.history.ops()) {
    if (op.is_write() && op.responded > op.invoked) some_slow_write = true;
  }
  EXPECT_TRUE(some_slow_write);
}

}  // namespace
}  // namespace pardsm::mcs
