// Relation (bitset digraph) unit tests.

#include <gtest/gtest.h>

#include "history/relation.h"

namespace pardsm::hist {
namespace {

TEST(Relation, AddAndHas) {
  Relation r(5);
  EXPECT_FALSE(r.has(0, 1));
  r.add(0, 1);
  EXPECT_TRUE(r.has(0, 1));
  EXPECT_FALSE(r.has(1, 0));
  EXPECT_EQ(r.edge_count(), 1u);
}

TEST(Relation, WorksBeyond64Elements) {
  const std::size_t n = 130;
  Relation r(n);
  for (std::size_t i = 0; i + 1 < n; ++i) r.add(i, i + 1);
  r.close();
  EXPECT_TRUE(r.has(0, n - 1));
  EXPECT_FALSE(r.has(n - 1, 0));
  EXPECT_EQ(r.edge_count(), n * (n - 1) / 2);
}

TEST(Relation, ClosureChains) {
  Relation r(4);
  r.add(0, 1);
  r.add(1, 2);
  r.add(2, 3);
  EXPECT_FALSE(r.has(0, 3));
  r.close();
  EXPECT_TRUE(r.has(0, 2));
  EXPECT_TRUE(r.has(0, 3));
  EXPECT_TRUE(r.has(1, 3));
  EXPECT_FALSE(r.has(3, 0));
}

TEST(Relation, MergeUnions) {
  Relation a(3), b(3);
  a.add(0, 1);
  b.add(1, 2);
  a.merge(b);
  EXPECT_TRUE(a.has(0, 1));
  EXPECT_TRUE(a.has(1, 2));
}

TEST(Relation, AcyclicityDetection) {
  Relation r(3);
  r.add(0, 1);
  r.add(1, 2);
  EXPECT_TRUE(r.is_acyclic());
  r.add(2, 0);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(Relation, SelfLoopIsACycle) {
  Relation r(2);
  r.add(1, 1);
  EXPECT_FALSE(r.is_acyclic());
}

TEST(Relation, TopologicalOrderRespectsEdges) {
  Relation r(5);
  r.add(3, 1);
  r.add(1, 4);
  r.add(0, 2);
  const auto order = r.topological_order();
  ASSERT_EQ(order.size(), 5u);
  std::vector<std::size_t> pos(5);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[1], pos[4]);
  EXPECT_LT(pos[0], pos[2]);
}

TEST(Relation, RestrictToSubset) {
  Relation r(5);
  r.add(0, 2);
  r.add(2, 4);
  r.add(1, 3);
  const Relation sub = r.restrict_to({0, 2, 4});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_TRUE(sub.has(0, 1));   // 0 -> 2
  EXPECT_TRUE(sub.has(1, 2));   // 2 -> 4
  EXPECT_FALSE(sub.has(0, 2));  // not closed
}

TEST(Relation, SuccessorsAndEdges) {
  Relation r(4);
  r.add(1, 0);
  r.add(1, 3);
  EXPECT_EQ(r.successors(1), (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(r.edges().size(), 2u);
  EXPECT_EQ(r.to_string(), "1->0 1->3");
}

TEST(Relation, EqualityAndClosureCopy) {
  Relation r(3);
  r.add(0, 1);
  r.add(1, 2);
  const Relation closed = r.closure();
  EXPECT_FALSE(r.has(0, 2));
  EXPECT_TRUE(closed.has(0, 2));
  EXPECT_NE(r, closed);
}

}  // namespace
}  // namespace pardsm::hist
