// File-level scan state shared by every rule: the lexed token stream plus
// path metadata (layer, stem) and the parsed `// pardsm-lint:` markers.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace pardsm::lint {

/// One analyzed source file.
struct FileScan {
  std::string path;   ///< path as printed in diagnostics (root-relative)
  std::string layer;  ///< first directory component under the root ("" if none)
  std::string stem;   ///< file name without directories or extension
  std::string base;   ///< file name with extension (e.g. "engine.cpp")
  LexedFile lx;

  /// rule name -> lines on which that rule is suppressed.
  /// `// pardsm-lint: allow(rule)` suppresses its own line when trailing
  /// code, or the next line when the comment stands alone.
  std::map<std::string, std::set<int>> allows;

  /// A `pardsm-lint: overwritten-by-creator` annotation.  Positional form
  /// (no parentheses) covers the member declared on `target_line`; the
  /// named form `overwritten-by-creator(a, b, c)` covers the listed
  /// members of the class whose body spans the annotation line.
  struct OverwriteAnno {
    int target_line = 0;
    std::vector<std::string> names;
  };
  std::vector<OverwriteAnno> overwrites;

  [[nodiscard]] bool allowed(const std::string& rule, int line) const {
    auto it = allows.find(rule);
    return it != allows.end() && it->second.count(line) > 0;
  }
};

/// Build a FileScan from in-memory text.  `rel` is the root-relative path
/// used both for diagnostics and for layer/stem derivation.
FileScan scan_text(std::string rel, std::string_view text);

/// Read `abs_path` from disk and scan it.  Throws std::runtime_error when
/// the file cannot be read.
FileScan scan_file(const std::string& abs_path, std::string rel);

}  // namespace pardsm::lint
