// pardsm-lint lexer: a single-pass C++ tokenizer good enough for rule
// checks — it understands line/block comments, string/char literals
// (including raw strings), preprocessor directives and line numbers, so
// the rules never misfire on a forbidden name that only appears inside a
// comment or a string.
//
// This is deliberately NOT a compiler front end.  The rules it feeds are
// textual/structural (identifier occurrence, include edges, member lists
// of classes the lexer can bracket-match), which keeps the analyzer a
// few hundred lines and free of any LLVM dependency.  docs/LINT.md lists
// the known parsing limitations.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pardsm::lint {

enum class TokKind {
  kIdent,   ///< identifiers and keywords (the rules don't distinguish)
  kNumber,  ///< numeric literal, suffixes and separators included
  kString,  ///< string literal (escaped or raw), prefix included
  kChar,    ///< character literal
  kPunct,   ///< punctuation; `::` is one token, everything else one char
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

struct Comment {
  int line = 0;          ///< 1-based line where the comment starts
  bool standalone = false;  ///< nothing but whitespace precedes it
  std::string text;      ///< comment body without the // or /* */ markers
};

/// A `#include` directive.
struct Include {
  int line = 0;
  bool angled = false;   ///< <...> rather than "..."
  std::string target;    ///< path between the delimiters
};

/// Any other preprocessor directive, kept for completeness/debugging.
struct Directive {
  int line = 0;
  std::string text;      ///< full text after '#', continuations joined
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
  std::vector<Directive> directives;
};

/// Tokenize `text`.  Never throws on malformed input: an unterminated
/// literal or comment simply ends at EOF.
LexedFile lex(std::string_view text);

}  // namespace pardsm::lint
