#include "apps/bellman_ford.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "mcs/factory.h"
#include "simnet/check.h"

namespace pardsm::apps {

graph::Distribution bellman_ford_distribution(const WeightedGraph& g) {
  const std::size_t n = g.size();
  graph::Distribution d;
  d.name = "bellman-ford-n" + std::to_string(n);
  d.var_count = 2 * n;
  d.per_process.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<int> hs;
    hs.insert(static_cast<int>(i));
    for (int p : g.predecessors(static_cast<int>(i))) hs.insert(p);
    for (int h : hs) {
      d.per_process[i].push_back(x_var(h));
    }
    for (int h : hs) {
      d.per_process[i].push_back(k_var(n, h));
    }
    std::sort(d.per_process[i].begin(), d.per_process[i].end());
  }
  return d;
}

namespace {

/// One application process executing Figure 7 as an event-driven state
/// machine over the asynchronous MCS API.
class BfNode {
 public:
  BfNode(int self, const WeightedGraph& g, mcs::McsProcess& mcs,
         Simulator& sim, const BellmanFordOptions& options)
      : self_(self),
        n_(g.size()),
        preds_(g.predecessors(self)),
        mcs_(mcs),
        sim_(sim),
        options_(options) {
    weights_.reserve(preds_.size());
    for (int j : preds_) {
      weights_.push_back(g.weight(j, self));
    }
  }

  /// Lines 1-4 of Figure 7: initialize x_i and k_i, then iterate.
  void start() {
    const Value x0 = (self_ == options_.source) ? 0 : kInfDistance;
    x_ = x0;
    mcs_.write(x_var(self_), x0, [this] {
      mcs_.write(k_var(n_, self_), 0, [this] { barrier(); });
    });
  }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] Value distance() const { return x_; }
  [[nodiscard]] std::int64_t round() const { return k_; }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }

 private:
  /// Line 5: while (k_i < N).
  void iterate() {
    if (k_ >= static_cast<std::int64_t>(n_)) {
      done_ = true;
      return;
    }
    barrier();
  }

  /// Line 6: spin until every predecessor reached our round.
  void barrier() {
    if (preds_.empty()) {
      update();
      return;
    }
    check_pred(0);
  }

  void check_pred(std::size_t idx) {
    if (idx == preds_.size()) {
      update();
      return;
    }
    mcs_.read(k_var(n_, preds_[idx]), [this, idx](Value kh) {
      if (kh == kBottom || kh < k_) {
        ++polls_;
        PARDSM_CHECK(polls_ <= options_.max_polls,
                     "Bellman-Ford barrier did not release — deadlock?");
        sim_.schedule_at(sim_.now() + options_.poll, [this] { barrier(); });
        return;
      }
      check_pred(idx + 1);
    });
  }

  /// Line 7: x_i := min over predecessors of x_j + w(j, i).
  void update() {
    best_ = x_;  // include the own value (w(i,i) = 0 in the paper)
    read_pred(0);
  }

  void read_pred(std::size_t idx) {
    if (idx == preds_.size()) {
      finish_round();
      return;
    }
    mcs_.read(x_var(preds_[idx]), [this, idx](Value xj) {
      if (xj == kBottom) {
        // A reader saw k_j but not the x_j written before it: the memory
        // reordered a single writer's writes across variables.  PRAM
        // forbids this; slow memory does not (the ablation experiment
        // counts these).  Treat as "no information" and continue.
        ++handoff_violations_;
        xj = kInfDistance;
      }
      best_ = std::min(best_, xj + weights_[idx]);
      read_pred(idx + 1);
    });
  }

  /// Lines 7-8: publish the new distance (Figure 7 writes x_i every
  /// round), then advance k_i.
  void finish_round() {
    if (self_ != options_.source) x_ = best_;
    mcs_.write(x_var(self_), x_, [this] {
      ++k_;
      mcs_.write(k_var(n_, self_), k_, [this] { iterate(); });
    });
  }

 public:
  [[nodiscard]] std::uint64_t handoff_violations() const {
    return handoff_violations_;
  }

 private:

  int self_;
  std::size_t n_;
  std::vector<int> preds_;
  std::vector<std::int64_t> weights_;
  mcs::McsProcess& mcs_;
  Simulator& sim_;
  BellmanFordOptions options_;

  Value x_ = kInfDistance;
  Value best_ = kInfDistance;
  std::int64_t k_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t handoff_violations_ = 0;
  bool done_ = false;
};

}  // namespace

BellmanFordResult run_bellman_ford(const WeightedGraph& g,
                                   const BellmanFordOptions& options) {
  const auto dist = bellman_ford_distribution(g);

  SimOptions sim_options;
  sim_options.seed = options.sim_seed;
  sim_options.latency = std::make_unique<UniformLatency>(options.latency_lo,
                                                         options.latency_hi);
  Simulator sim(std::move(sim_options));

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto processes = mcs::make_processes(options.protocol, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = sim.add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(sim);
  }

  std::vector<std::unique_ptr<BfNode>> nodes;
  for (std::size_t i = 0; i < g.size(); ++i) {
    nodes.push_back(std::make_unique<BfNode>(static_cast<int>(i), g,
                                             *processes[i], sim, options));
  }
  for (auto& node : nodes) {
    sim.schedule_at(kTimeZero, [n = node.get()] { n->start(); });
  }

  sim.run();

  BellmanFordResult result;
  result.reference = bellman_ford_reference(g, options.source);
  for (const auto& node : nodes) {
    PARDSM_CHECK(node->done(), "Bellman-Ford node did not terminate");
    result.distances.push_back(node->distance());
    result.rounds.push_back(node->round());
    result.barrier_polls += node->polls();
    result.handoff_violations += node->handoff_violations();
  }
  result.matches_reference = result.distances == result.reference;
  result.total_traffic = sim.stats().total();
  result.finished_at = sim.now();
  result.history = recorder.history();
  return result;
}

std::string format_fig9_table(const BellmanFordResult& result,
                              std::size_t node_count, std::size_t max_steps) {
  std::ostringstream os;
  const auto& h = result.history;
  for (std::size_t p = 0; p < h.process_count(); ++p) {
    os << "p" << p + 1 << ":\n";
    std::size_t step = 0;
    std::ostringstream line;
    for (hist::OpIndex op : h.ops_of(static_cast<ProcessId>(p))) {
      const auto& o = h.op(op);
      line << ' ' << o.to_string();
      // A step ends with the write of k_i (variable id n + p).
      const bool step_end =
          o.is_write() &&
          o.var == k_var(node_count, static_cast<int>(p));
      if (step_end) {
        os << "  step " << step << ":" << line.str() << '\n';
        line.str("");
        ++step;
        if (max_steps != 0 && step >= max_steps) break;
      }
    }
  }
  return os.str();
}

}  // namespace pardsm::apps
