#include "simnet/kind_table.h"

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "simnet/check.h"

namespace pardsm {

namespace {

/// Global intern table.  Names live in a deque so string_views handed out
/// by KindId::name() stay valid forever; the map keys view into the deque.
struct Table {
  std::mutex mu;
  std::deque<std::string> names;
  // Both maps are lookup-only (find/emplace): nothing ever iterates them,
  // so hash order cannot reach message or serialized output.  Kind ids are
  // assigned by `names` insertion order, which is deterministic.
  // pardsm-lint: allow(unordered-iter): lookup-only intern map, never iterated
  std::unordered_map<std::string_view, std::uint16_t> ids;
  // pardsm-lint: allow(unordered-iter): lookup-only ARQ-prefix cache, never iterated
  std::unordered_map<std::uint16_t, std::uint16_t> arq_of;

  Table() {
    names.emplace_back("");  // id 0: the empty kind
    ids.emplace(names.back(), 0);
  }

  std::uint16_t intern_locked(std::string_view name) {
    if (const auto it = ids.find(name); it != ids.end()) return it->second;
    PARDSM_CHECK(names.size() < 0xFFFF, "kind table overflow");
    names.emplace_back(name);
    const auto id = static_cast<std::uint16_t>(names.size() - 1);
    ids.emplace(names.back(), id);
    return id;
  }
};

Table& table() {
  static Table t;
  return t;
}

}  // namespace

KindId::KindId(std::string_view name) {
  auto& t = table();
  std::lock_guard lock(t.mu);
  id_ = t.intern_locked(name);
}

std::string_view KindId::name() const {
  auto& t = table();
  std::lock_guard lock(t.mu);
  PARDSM_CHECK(id_ < t.names.size(), "KindId out of range");
  return t.names[id_];
}

KindId arq_wrapped(KindId base) {
  auto& t = table();
  std::lock_guard lock(t.mu);
  if (const auto it = t.arq_of.find(base.id_); it != t.arq_of.end()) {
    return KindId(it->second, 0);
  }
  PARDSM_CHECK(base.id_ < t.names.size(), "KindId out of range");
  const std::string wrapped = "ARQ:" + t.names[base.id_];
  const std::uint16_t id = t.intern_locked(wrapped);
  t.arq_of.emplace(base.id_, id);
  return KindId(id, 0);
}

std::size_t kind_table_size() {
  auto& t = table();
  std::lock_guard lock(t.mu);
  return t.names.size();
}

}  // namespace pardsm
