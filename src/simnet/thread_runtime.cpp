#include "simnet/thread_runtime.h"

#include "simnet/check.h"

namespace pardsm {

ThreadRuntime::ThreadRuntime(ThreadRuntimeOptions options)
    : options_(options), rng_(options.seed) {}

ThreadRuntime::~ThreadRuntime() {
  if (running_.load()) stop();
}

ProcessId ThreadRuntime::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  PARDSM_CHECK(!running_.load(), "add_endpoint: runtime already started");
  endpoints_.push_back(ep);
  mailboxes_.push_back(std::make_unique<Mailbox>());
  return static_cast<ProcessId>(endpoints_.size() - 1);
}

void ThreadRuntime::start() {
  PARDSM_CHECK(!running_.load(), "start: already running");
  stats_.resize(endpoints_.size());
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < mailboxes_.size(); ++p) {
    mailboxes_[p]->worker = std::thread(
        [this, p] { worker_loop(static_cast<ProcessId>(p)); });
  }
}

bool ThreadRuntime::await_quiescence(std::chrono::milliseconds timeout) {
  std::unique_lock lock(quiesce_mu_);
  return quiesce_cv_.wait_for(lock, timeout,
                              [this] { return pending_.load() == 0; });
}

void ThreadRuntime::stop() {
  if (!running_.exchange(false)) return;
  for (auto& mb : mailboxes_) {
    std::lock_guard lock(mb->mu);
    mb->cv.notify_all();
  }
  for (auto& mb : mailboxes_) {
    if (mb->worker.joinable()) mb->worker.join();
  }
}

void ThreadRuntime::post(ProcessId who, std::function<void()> task) {
  PARDSM_CHECK(who >= 0 && static_cast<std::size_t>(who) < mailboxes_.size(),
               "post: bad process");
  pending_.fetch_add(1);
  auto& mb = *mailboxes_[static_cast<std::size_t>(who)];
  {
    std::lock_guard lock(mb.mu);
    mb.tasks.push_back(std::move(task));
  }
  mb.cv.notify_one();
}

void ThreadRuntime::send(ProcessId from, ProcessId to, BodyRef body,
                         MessageMeta meta) {
  PARDSM_CHECK(to >= 0 && static_cast<std::size_t>(to) < mailboxes_.size(),
               "send: bad destination");
  Message m;
  m.from = from;
  m.to = to;
  m.body = std::move(body);
  m.meta = std::move(meta);
  {
    std::lock_guard lock(msg_id_mu_);
    m.id = next_msg_id_++;
  }
  m.send_time = now();
  stats_.on_send(m);

  int copies = 1;
  {
    std::lock_guard lock(rng_mu_);
    if (rng_.chance(options_.drop_probability)) copies = 0;
    if (copies == 1 && rng_.chance(options_.duplicate_probability)) copies = 2;
  }

  auto& mb = *mailboxes_[static_cast<std::size_t>(to)];
  for (int c = 0; c < copies; ++c) {
    pending_.fetch_add(1);
    {
      std::lock_guard lock(mb.mu);
      mb.messages.push_back(m);
    }
    mb.cv.notify_one();
  }
}

TimePoint ThreadRuntime::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_time_;
  return TimePoint{std::chrono::duration_cast<std::chrono::microseconds>(
                       elapsed)
                       .count()};
}

void ThreadRuntime::set_timer(ProcessId who, Duration delay, TimerTag tag) {
  PARDSM_CHECK(who >= 0 && static_cast<std::size_t>(who) < mailboxes_.size(),
               "set_timer: bad process");
  pending_.fetch_add(1);
  auto& mb = *mailboxes_[static_cast<std::size_t>(who)];
  {
    std::lock_guard lock(mb.mu);
    mb.timers.push(TimerItem{std::chrono::steady_clock::now() +
                                 std::chrono::microseconds(delay.us),
                             tag});
  }
  mb.cv.notify_one();
}

std::size_t ThreadRuntime::process_count() const { return endpoints_.size(); }

void ThreadRuntime::finish_item() {
  if (pending_.fetch_sub(1) == 1) {
    std::lock_guard lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void ThreadRuntime::worker_loop(ProcessId self) {
  auto& mb = *mailboxes_[static_cast<std::size_t>(self)];
  Endpoint* ep = endpoints_[static_cast<std::size_t>(self)];

  std::unique_lock lock(mb.mu);
  while (true) {
    const auto has_work = [&] {
      if (!running_.load()) return true;
      if (!mb.messages.empty() || !mb.tasks.empty()) return true;
      return !mb.timers.empty() &&
             mb.timers.top().deadline <= std::chrono::steady_clock::now();
    };

    // Re-pick the wait flavour on every wakeup: a timer armed after this
    // thread parked in the untimed wait must convert the next wait into a
    // deadline wait, or the deadline passes with nobody left to notify.
    while (!has_work()) {
      if (mb.timers.empty()) {
        mb.cv.wait(lock);
      } else {
        mb.cv.wait_until(lock, mb.timers.top().deadline);
      }
    }

    if (!running_.load()) break;

    if (!mb.tasks.empty()) {
      auto task = std::move(mb.tasks.front());
      mb.tasks.pop_front();
      lock.unlock();
      task();
      finish_item();
      lock.lock();
      continue;
    }

    if (!mb.messages.empty()) {
      Message m = std::move(mb.messages.front());
      mb.messages.pop_front();
      lock.unlock();
      stats_.on_deliver(m);
      ep->on_message(m);
      finish_item();
      lock.lock();
      continue;
    }

    if (!mb.timers.empty() &&
        mb.timers.top().deadline <= std::chrono::steady_clock::now()) {
      const TimerTag tag = mb.timers.top().tag;
      mb.timers.pop();
      lock.unlock();
      ep->on_timer(tag);
      finish_item();
      lock.lock();
      continue;
    }
  }
}

}  // namespace pardsm
