// Order-relation builders (Definitions 5-11) on hand-crafted histories.

#include <gtest/gtest.h>

#include "history/orders.h"

namespace pardsm::hist {
namespace {

/// h0: w(x)1 ; r(x)1 ; w(y)2 ; r(z)3?  — builder helper below.
History two_proc_history() {
  // p0: w0(x)1, w0(y)2 ; p1: r1(x)1, w1(z)3, r1(z)3
  History h(2, 3);
  h.push_write(0, 0, 1);
  h.push_write(0, 1, 2);
  h.push_read(1, 0, 1);
  h.push_write(1, 2, 3);
  h.push_read(1, 2, 3);
  return h;
}

TEST(Orders, ProgramOrderIsPerProcessTotal) {
  const auto h = two_proc_history();
  const auto po = program_order(h);
  EXPECT_TRUE(po.has(0, 1));   // w0(x) before w0(y)
  EXPECT_TRUE(po.has(2, 3));   // r1(x) before w1(z)
  EXPECT_TRUE(po.has(2, 4));
  EXPECT_TRUE(po.has(3, 4));
  EXPECT_FALSE(po.has(0, 2));  // cross-process
  EXPECT_FALSE(po.has(1, 0));  // no reverse
}

TEST(Orders, ReadFromLinksWriterToReader) {
  const auto h = two_proc_history();
  const auto ro = read_from_order(h);
  EXPECT_TRUE(ro.has(0, 2));  // w0(x)1 -> r1(x)1
  EXPECT_TRUE(ro.has(3, 4));  // w1(z)3 -> r1(z)3
  EXPECT_EQ(ro.edge_count(), 2u);
}

TEST(Orders, CausalityIsClosed) {
  const auto h = two_proc_history();
  const auto co = causality_order(h);
  // w0(x)1 -> r1(x)1 -> w1(z)3  implies w0(x)1 -> w1(z)3.
  EXPECT_TRUE(co.has(0, 3));
  EXPECT_TRUE(co.has(0, 4));
}

TEST(Orders, ReadOfBottomHasNoSource) {
  History h(1, 1);
  h.push_read(0, 0, kBottom);
  const auto ro = read_from_order(h);
  EXPECT_EQ(ro.edge_count(), 0u);
}

// -------- Lazy program order, Definition 5 ------------------------------
TEST(Orders, LazyReadsOnDifferentVariablesArePermutable) {
  History h(1, 2);
  h.push_read(0, 0, kBottom);
  h.push_read(0, 1, kBottom);
  const auto li = lazy_program_order(h);
  EXPECT_FALSE(li.has(0, 1));
  EXPECT_FALSE(li.has(1, 0));
}

TEST(Orders, LazyReadsSameVariableStayOrdered) {
  History h(1, 1);
  h.push_read(0, 0, kBottom);
  h.push_read(0, 0, kBottom);
  const auto li = lazy_program_order(h);
  EXPECT_TRUE(li.has(0, 1));
}

TEST(Orders, LazyReadBeforeAnyWriteStaysOrdered) {
  History h(1, 2);
  h.push_read(0, 0, kBottom);
  h.push_write(0, 1, 5);
  const auto li = lazy_program_order(h);
  EXPECT_TRUE(li.has(0, 1));
}

TEST(Orders, LazyWriteThenReadDifferentVarPermutable) {
  History h(1, 2);
  h.push_write(0, 0, 5);
  h.push_read(0, 1, kBottom);
  const auto li = lazy_program_order(h);
  EXPECT_FALSE(li.has(0, 1));
}

TEST(Orders, LazyWriteWritePaperVsLiteral) {
  History h(1, 2);
  h.push_write(0, 0, 5);
  h.push_write(0, 1, 6);
  const auto paper = lazy_program_order(h, LazyMode::kPaperConsistent);
  const auto literal = lazy_program_order(h, LazyMode::kLiteral);
  EXPECT_TRUE(paper.has(0, 1));    // writes stay ordered (figures' reading)
  EXPECT_FALSE(literal.has(0, 1)); // literal Definition 5
}

TEST(Orders, LazyWriteThenSameVarOpOrderedInBothModes) {
  History h(1, 1);
  h.push_write(0, 0, 5);
  h.push_read(0, 0, 5);
  for (auto mode : {LazyMode::kPaperConsistent, LazyMode::kLiteral}) {
    const auto li = lazy_program_order(h, mode);
    EXPECT_TRUE(li.has(0, 1));
  }
}

TEST(Orders, LazyTransitivityThroughMiddleOp) {
  // w(x) ->li r(x) ->li w(y) gives w(x) ->li w(y) even in literal mode.
  History h(1, 2);
  h.push_write(0, 0, 5);
  h.push_read(0, 0, 5);
  h.push_write(0, 1, 6);
  const auto li = lazy_program_order(h, LazyMode::kLiteral);
  EXPECT_TRUE(li.has(0, 2));
}

// -------- Lazy writes-before, Definition 8 -------------------------------
TEST(Orders, LazyWritesBeforeBasic) {
  // p0: w(x)1 ; r(x)1 ; w(y)2.   p1: r(y)2.
  // w(x)1 ->li w(y)2 (through the read), and r1(y)2 reads from w(y)2,
  // hence w(x)1 ->lwb r1(y)2.
  History h(2, 2);
  h.push_write(0, 0, 1);
  h.push_read(0, 0, 1);
  h.push_write(0, 1, 2);
  h.push_read(1, 1, 2);
  const auto lwb = lazy_writes_before(h, LazyMode::kLiteral);
  EXPECT_TRUE(lwb.has(0, 3));
  // The source write itself is NOT lwb-related to its reader (Definition 8
  // requires o1 ->li o', and ->li is irreflexive).
  EXPECT_FALSE(lwb.has(2, 3));
}

TEST(Orders, LazySemiCausalIncludesLwbChains) {
  History h(2, 2);
  h.push_write(0, 0, 1);
  h.push_read(0, 0, 1);
  h.push_write(0, 1, 2);
  h.push_read(1, 1, 2);
  h.push_write(1, 0, 3);
  const auto lsc = lazy_semi_causal_order(h);
  // w0(x)1 ->lwb r1(y)2 ->li w1(x)3.
  EXPECT_TRUE(lsc.has(0, 4));
}

// -------- PRAM and slow ---------------------------------------------------
TEST(Orders, PramIsNotTransitivelyClosed) {
  // p0: w(x)1. p1: r(x)1, w(y)2. p2: r(y)2.
  History h(3, 2);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, 1);
  h.push_write(1, 1, 2);
  h.push_read(2, 1, 2);
  const auto pram = pram_relation(h);
  EXPECT_TRUE(pram.has(0, 1));   // read-from
  EXPECT_TRUE(pram.has(1, 2));   // program order
  EXPECT_TRUE(pram.has(2, 3));   // read-from
  EXPECT_FALSE(pram.has(0, 3));  // no transitivity (Definition 11)
  const auto co = causality_order(h);
  EXPECT_TRUE(co.has(0, 3));     // causality closes the chain
}

TEST(Orders, SlowOrdersOnlySameVariableProgramPairs) {
  History h(1, 2);
  h.push_write(0, 0, 1);
  h.push_write(0, 1, 2);
  h.push_write(0, 0, 3);
  const auto slow = slow_relation(h);
  EXPECT_TRUE(slow.has(0, 2));   // same variable
  EXPECT_FALSE(slow.has(0, 1));  // different variables
  EXPECT_FALSE(slow.has(1, 2));
}

TEST(Orders, ConcurrentHelper) {
  const auto h = two_proc_history();
  const auto co = causality_order(h);
  // w0(y)2 (op 1) and r1(x)1 (op 2): 1 does not reach 2 and vice versa.
  EXPECT_TRUE(concurrent(co, 1, 2));
  EXPECT_FALSE(concurrent(co, 0, 2));
}

}  // namespace
}  // namespace pardsm::hist
