// batching_demo — the two orthogonal savings axes, side by side.
//
// The paper's axis: partial replication confines update traffic to C(x),
// so the causal-partial protocol sends a fraction of causal-full's
// messages (on hoop-free topologies, exposure shrinks to C(x) too).
// The batching axis: a coalescing window piggybacks the updates that
// remain, amortizing the per-message header across a frame.  This demo
// runs both protocols on an open chain (hoop-free: partial replication
// at its best) and prints the message/byte reduction each axis buys —
// and what the two compose to.
//
//   $ ./examples/batching_demo

#include <cstdio>

#include "mcs/driver.h"
#include "sharegraph/topologies.h"

using namespace pardsm;
using namespace pardsm::mcs;

namespace {

struct Cell {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double finish_ms = 0.0;
};

Cell run_cell(ProtocolKind kind, const graph::Distribution& dist,
              const std::vector<Script>& scripts, std::int64_t window_us) {
  EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.reliability = ReliabilityMode::kNever;
  config.batching.window = micros(window_us);
  const auto r = run(std::move(config));
  return {r.total_traffic.msgs_sent, r.total_traffic.wire_bytes_sent(),
          static_cast<double>(r.finished_at.us) / 1000.0};
}

double saved_pct(std::uint64_t from, std::uint64_t to) {
  return from == 0 ? 0.0
                   : 100.0 * (1.0 - static_cast<double>(to) /
                                        static_cast<double>(from));
}

}  // namespace

int main() {
  const auto dist = graph::topo::open_chain(6);
  WorkloadSpec spec;
  spec.ops_per_process = 16;
  spec.read_fraction = 0.5;
  spec.seed = 42;
  spec.think_time = micros(500);
  const auto scripts = make_random_scripts(dist, spec);

  const Cell full = run_cell(ProtocolKind::kCausalFull, dist, scripts, 0);
  const Cell partial =
      run_cell(ProtocolKind::kCausalPartialAdHoc, dist, scripts, 0);
  const Cell batched =
      run_cell(ProtocolKind::kCausalPartialAdHoc, dist, scripts, 5000);

  std::printf("open-chain-6, 16 ops/process, 500us think time\n\n");
  std::printf("%-42s %8s %10s %10s\n", "configuration", "msgs", "bytes",
              "finish-ms");
  std::printf("%-42s %8llu %10llu %10.1f\n", "causal-full (full replication)",
              static_cast<unsigned long long>(full.msgs),
              static_cast<unsigned long long>(full.bytes), full.finish_ms);
  std::printf("%-42s %8llu %10llu %10.1f\n",
              "causal-partial (window 0)",
              static_cast<unsigned long long>(partial.msgs),
              static_cast<unsigned long long>(partial.bytes),
              partial.finish_ms);
  std::printf("%-42s %8llu %10llu %10.1f\n",
              "causal-partial (window 5ms)",
              static_cast<unsigned long long>(batched.msgs),
              static_cast<unsigned long long>(batched.bytes),
              batched.finish_ms);

  std::printf("\npartial vs full (the paper's saving):   %5.1f%% fewer "
              "messages, %5.1f%% fewer bytes\n",
              saved_pct(full.msgs, partial.msgs),
              saved_pct(full.bytes, partial.bytes));
  std::printf("batching on top (5ms window):           %5.1f%% fewer "
              "messages, %5.1f%% fewer bytes\n",
              saved_pct(partial.msgs, batched.msgs),
              saved_pct(partial.bytes, batched.bytes));
  std::printf("combined vs causal-full:                %5.1f%% fewer "
              "messages, %5.1f%% fewer bytes\n",
              saved_pct(full.msgs, batched.msgs),
              saved_pct(full.bytes, batched.bytes));
  std::printf("\n(ops are wait-free on both protocols — the window delays "
              "only background propagation;\n quiescence moves from %.1f to "
              "%.1f ms)\n",
              partial.finish_ms, batched.finish_ms);
  return 0;
}
