// Runtime-independent interface between protocols and the world.
//
// Protocols (src/mcs) are written once against Transport + Endpoint and run
// unchanged under the deterministic discrete-event simulator and under the
// std::thread runtime.  This is the boundary that makes the "multi-node
// emulation" substitution of DESIGN.md §2 possible.
#pragma once

#include <cstdint>

#include "simnet/message.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Opaque timer identity passed back to Endpoint::on_timer.
using TimerTag = std::uint64_t;

/// Something that receives messages and timer callbacks: one per process.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// A message addressed to this endpoint has been delivered.
  virtual void on_message(const Message& m) = 0;

  /// A timer armed via Transport::set_timer has fired.
  virtual void on_timer(TimerTag tag) { (void)tag; }
};

/// Facilities a protocol may use: sending, clock, timers, body pools.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue a message for asynchronous delivery.  Ownership of the body is
  /// shared; the same body object may be multicast to several receivers.
  virtual void send(ProcessId from, ProcessId to, BodyRef body,
                    MessageMeta meta) = 0;

  /// Current time (simulated or wall-derived, depending on runtime).
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Arm a one-shot timer for process `who`, firing after `delay`.
  virtual void set_timer(ProcessId who, Duration delay, TimerTag tag) = 0;

  /// Number of processes in the system.
  [[nodiscard]] virtual std::size_t process_count() const = 0;

  /// Body pools for messages sent by `owner`.  Root runtimes override:
  /// the single-threaded Simulator hands out a serial arena (non-atomic
  /// refcounts, unlocked freelists); threaded roots hand out concurrent
  /// ones.  Decorators forward to the layer below.  The default is a
  /// process-wide concurrent arena, safe on any root.
  [[nodiscard]] virtual BodyArena& arena(ProcessId owner) {
    (void)owner;
    static BodyArena shared{/*concurrent=*/true};
    return shared;
  }
};

/// A Transport that also owns endpoint registration.  Both root runtimes
/// (Simulator, ThreadRuntime) and every stackable decorator
/// (ReliableTransport, BatchingTransport) implement it, so decorators can
/// wrap *any* HostTransport rather than the simulator specifically — that
/// is what lets the transport stack compose in either order:
///
///   app → BatchingTransport → ReliableTransport → Simulator   (default)
///   app → ReliableTransport → BatchingTransport → Simulator
///
/// A decorator's add_endpoint interposes a shim endpoint on the layer
/// below; registration therefore always proceeds top-down and each layer
/// sees the same ProcessId numbering.
class HostTransport : public Transport {
 public:
  /// Register the endpoint for the next free ProcessId (0, 1, 2, ...).
  /// The endpoint must outlive the transport.  Returns the assigned id.
  virtual ProcessId add_endpoint(Endpoint* ep) = 0;
};

}  // namespace pardsm
