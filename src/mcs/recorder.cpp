#include "mcs/recorder.h"

#include "simnet/check.h"

namespace pardsm::mcs {

void HistoryRecorder::use_canonical_order() {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(history_.size() == 0 && pending_.empty(),
               "use_canonical_order: operations already recorded");
  canonical_ = true;
  pending_.resize(process_count_);
}

void HistoryRecorder::use_discard_mode() {
  std::lock_guard lock(mu_);
  PARDSM_CHECK(history_.size() == 0 && discarded_ == 0,
               "use_discard_mode: operations already recorded");
  for (const auto& ops : pending_) {
    PARDSM_CHECK(ops.empty(), "use_discard_mode: operations already recorded");
  }
  discard_ = true;
}

std::uint64_t HistoryRecorder::discarded_ops() const {
  std::lock_guard lock(mu_);
  return discarded_;
}

void HistoryRecorder::record_write(ProcessId p, VarId x, Value v, WriteId id,
                                   TimePoint invoked, TimePoint responded) {
  std::lock_guard lock(mu_);
  if (discard_) {
    ++discarded_;
    return;
  }
  if (canonical_) {
    pending_[static_cast<std::size_t>(p)].push_back(
        {true, x, v, id, invoked, responded});
    return;
  }
  const auto op = history_.push_write(p, x, v, id);
  history_.set_interval(op, invoked, responded);
}

void HistoryRecorder::record_read(ProcessId p, VarId x, Value value,
                                  WriteId source, TimePoint invoked,
                                  TimePoint responded) {
  std::lock_guard lock(mu_);
  if (discard_) {
    ++discarded_;
    return;
  }
  if (canonical_) {
    pending_[static_cast<std::size_t>(p)].push_back(
        {false, x, value, source, invoked, responded});
    return;
  }
  const auto op = history_.push_read(p, x, value, source);
  history_.set_interval(op, invoked, responded);
}

hist::History HistoryRecorder::build_canonical() const {
  // (process, program order): every local history is that process's own
  // deterministic execution, so the rebuilt History is independent of how
  // the processes' operations interleaved in wall time.
  hist::History h(process_count_, var_count_);
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    for (const PendingOp& op : pending_[p]) {
      const auto idx =
          op.is_write
              ? h.push_write(static_cast<ProcessId>(p), op.x, op.value, op.id)
              : h.push_read(static_cast<ProcessId>(p), op.x, op.value, op.id);
      h.set_interval(idx, op.invoked, op.responded);
    }
  }
  return h;
}

hist::History HistoryRecorder::history() const {
  std::lock_guard lock(mu_);
  if (canonical_) return build_canonical();
  return history_;
}

hist::History HistoryRecorder::take_history() {
  std::lock_guard lock(mu_);
  if (canonical_) {
    hist::History h = build_canonical();
    pending_.assign(process_count_, {});
    return h;
  }
  return std::move(history_);
}

std::size_t HistoryRecorder::size() const {
  std::lock_guard lock(mu_);
  if (discard_) return static_cast<std::size_t>(discarded_);
  if (canonical_) {
    std::size_t total = 0;
    for (const auto& ops : pending_) total += ops.size();
    return total;
  }
  return history_.size();
}

}  // namespace pardsm::mcs
