// Traffic accounting.
//
// NetworkStats reduces message traffic to the quantities the paper reasons
// about: per-process message/byte counts split into control vs payload, and
// per-(process, variable) *exposure* — how often a process received
// metadata mentioning a given variable.  The exposure table is exactly the
// empirical version of the paper's "x-relevant" notion (DESIGN.md T1/T2).
//
// Exposure is a dense per-process counter array indexed by VarId.  Rows
// are pre-sized to the run's variable count (set_var_hint — the engine
// knows m), so the per-delivery update is a plain indexed increment with
// no size branch taken; lazy growth survives only as a guarded fallback
// for callers that never declared a variable count.  Pre-sizing also
// makes row shapes — not just values — independent of receipt order,
// which the ragged lazily-grown rows were not.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "simnet/ids.h"
#include "simnet/message.h"

namespace pardsm {

/// Aggregated counters for one process.
struct ProcessTraffic {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t payload_bytes_sent = 0;
  std::uint64_t control_bytes_received = 0;
  std::uint64_t payload_bytes_received = 0;

  [[nodiscard]] std::uint64_t wire_bytes_sent() const {
    return control_bytes_sent + payload_bytes_sent + 16 * msgs_sent;
  }
};

/// Thread-safe traffic accounting shared by both runtimes.
class NetworkStats {
 public:
  explicit NetworkStats(std::size_t n = 0) { resize(n); }

  /// (Re)size for `n` processes, clearing all counters.  Exposure rows are
  /// pre-sized to the current variable-count hint.
  void resize(std::size_t n);

  /// Declare the run's variable count `m`: every exposure row (current and
  /// future) is pre-sized to m entries, keeping the per-delivery update
  /// branch-free and row shapes receipt-order independent.  Idempotent;
  /// a larger hint extends existing rows in place.
  void set_var_hint(std::size_t m);

  /// Record a message leaving `m.from`.
  void on_send(const Message& m);

  /// Record a message arriving at `m.to`; updates variable exposure.
  void on_deliver(const Message& m);

  /// Counters for process `p`.
  [[nodiscard]] ProcessTraffic traffic(ProcessId p) const;

  /// Counters for every process in one pass (single lock).
  [[nodiscard]] std::vector<ProcessTraffic> per_process_snapshot() const;

  /// Sum of counters over all processes.
  [[nodiscard]] ProcessTraffic total() const;

  /// How many received messages mentioned variable `x` at process `p`.
  [[nodiscard]] std::uint64_t exposure(ProcessId p, VarId x) const;

  /// Set of processes with nonzero exposure to `x` — the *observed*
  /// x-relevant set (plus C(x) members that only send).
  [[nodiscard]] std::set<ProcessId> processes_exposed_to(VarId x) const;

  /// processes_exposed_to for every variable in [0, var_count) in one
  /// pass (single lock; what run-result collection wants).
  [[nodiscard]] std::vector<std::set<ProcessId>> exposure_sets(
      std::size_t var_count) const;

  /// Set of variables process `p` has been exposed to.
  [[nodiscard]] std::set<VarId> variables_seen_by(ProcessId p) const;

  /// Total messages delivered across all processes.
  [[nodiscard]] std::uint64_t messages_delivered() const;

  /// Element-wise add another instance's counters into this one.  The
  /// parallel engine keeps one NetworkStats per shard (each process's row
  /// is written only by its owning shard) and folds them into the engine's
  /// shared instance after the run; `other` must cover no more processes
  /// than this instance.
  void merge_from(const NetworkStats& other);

  /// Reset all counters, keeping the size.
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<ProcessTraffic> per_process_;
  /// exposure_[p][x] = number of received messages mentioning x; each row
  /// is dense over VarId, pre-sized to var_hint_ and grown past it only
  /// by the guarded fallback in on_deliver.
  std::vector<std::vector<std::uint64_t>> exposure_;
  std::size_t var_hint_ = 0;
};

}  // namespace pardsm
