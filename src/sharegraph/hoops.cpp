#include "sharegraph/hoops.h"

#include <algorithm>
#include <queue>

#include "simnet/check.h"

namespace pardsm::graph {

namespace {

/// True iff the edge (i, j) carries a label other than x (hoop steps must
/// share a variable different from x).
bool edge_usable(const ShareGraph& sg, ProcessId i, ProcessId j, VarId x) {
  for (VarId v : sg.label(i, j)) {
    if (v != x) return true;
  }
  return false;
}

void dfs_hoops(const ShareGraph& sg, VarId x,
               const std::vector<bool>& in_clique, std::vector<ProcessId>& path,
               std::vector<bool>& visited, HoopEnumeration& out,
               std::size_t limit) {
  if (out.hoops.size() >= limit) {
    out.truncated = true;
    return;
  }
  ++out.dfs_steps;
  const ProcessId v = path.back();
  for (ProcessId w : sg.neighbours(v)) {
    if (out.hoops.size() >= limit) {
      out.truncated = true;
      return;
    }
    if (!edge_usable(sg, v, w, x)) continue;
    if (in_clique[static_cast<std::size_t>(w)]) {
      // Complete a hoop if w is a clique member distinct from the start and
      // the path has at least one intermediate.
      if (w != path.front() && path.size() >= 2) {
        Hoop hoop = path;
        hoop.push_back(w);
        if (hoop.front() <= hoop.back()) {  // canonical direction only
          out.hoops.push_back(std::move(hoop));
        }
      }
      continue;
    }
    if (visited[static_cast<std::size_t>(w)]) continue;
    visited[static_cast<std::size_t>(w)] = true;
    path.push_back(w);
    dfs_hoops(sg, x, in_clique, path, visited, out, limit);
    path.pop_back();
    visited[static_cast<std::size_t>(w)] = false;
  }
}

}  // namespace

HoopEnumeration enumerate_hoops(const ShareGraph& sg, VarId x,
                                std::size_t limit) {
  HoopEnumeration out;
  const std::size_t n = sg.process_count();
  std::vector<bool> in_clique(n, false);
  for (ProcessId p : sg.clique(x)) {
    in_clique[static_cast<std::size_t>(p)] = true;
  }
  for (ProcessId a : sg.clique(x)) {
    std::vector<bool> visited(n, false);
    visited[static_cast<std::size_t>(a)] = true;
    std::vector<ProcessId> path{a};
    dfs_hoops(sg, x, in_clique, path, visited, out, limit);
    if (out.truncated) break;
  }
  // Deterministic order.
  std::sort(out.hoops.begin(), out.hoops.end());
  out.hoops.erase(std::unique(out.hoops.begin(), out.hoops.end()),
                  out.hoops.end());
  return out;
}

namespace {

/// Unit-capacity max-flow check: are there two vertex-disjoint paths
/// (disjoint except at v) from v to two distinct members of C(x), with all
/// intermediate vertices outside C(x) and all edges labelled ≠ x?
///
/// Standard vertex-splitting construction: every non-clique vertex u ≠ v
/// becomes u_in -> u_out with capacity 1; clique vertices connect directly
/// to the sink with capacity 1 (so two paths must end at distinct clique
/// members); v is the source with capacity 2.
bool two_disjoint_paths(const ShareGraph& sg, VarId x, ProcessId v,
                        const std::vector<bool>& in_clique) {
  const std::size_t n = sg.process_count();
  // Node ids: u_in = 2u, u_out = 2u+1, sink = 2n.
  const int sink = static_cast<int>(2 * n);
  struct Edge {
    int to;
    int cap;
    int rev;  // index of reverse edge in adj[to]
  };
  std::vector<std::vector<Edge>> adj(2 * n + 1);
  auto add_edge = [&](int a, int b, int cap) {
    adj[static_cast<std::size_t>(a)].push_back(
        {b, cap, static_cast<int>(adj[static_cast<std::size_t>(b)].size())});
    adj[static_cast<std::size_t>(b)].push_back(
        {a, 0,
         static_cast<int>(adj[static_cast<std::size_t>(a)].size()) - 1});
  };

  for (std::size_t u = 0; u < n; ++u) {
    const auto pu = static_cast<ProcessId>(u);
    if (in_clique[u]) {
      // Clique member: in == out for our purposes; capacity 1 to the sink.
      add_edge(static_cast<int>(2 * u), static_cast<int>(2 * u + 1), 1);
      add_edge(static_cast<int>(2 * u + 1), sink, 1);
    } else {
      const int cap = (pu == v) ? 2 : 1;
      add_edge(static_cast<int>(2 * u), static_cast<int>(2 * u + 1), cap);
    }
    for (ProcessId w : sg.neighbours(pu)) {
      if (!edge_usable(sg, pu, w, x)) continue;
      // Directed u_out -> w_in; the reverse direction is added when w is
      // processed.  Intermediates must be non-clique, but edges into clique
      // members are allowed (they terminate a path).
      if (in_clique[u] && pu != v) continue;  // paths may not pass through
                                              // other clique members
      add_edge(static_cast<int>(2 * u + 1),
               static_cast<int>(2 * static_cast<std::size_t>(w)), 1);
    }
  }

  const int source = static_cast<int>(
      2 * static_cast<std::size_t>(v));  // v_in (capacity 2 through v)
  int flow = 0;
  while (flow < 2) {
    // BFS for an augmenting path.
    std::vector<int> prev_node(2 * n + 1, -1);
    std::vector<int> prev_edge(2 * n + 1, -1);
    std::queue<int> bfs;
    bfs.push(source);
    prev_node[static_cast<std::size_t>(source)] = source;
    while (!bfs.empty() &&
           prev_node[static_cast<std::size_t>(sink)] == -1) {
      const int u = bfs.front();
      bfs.pop();
      const auto& edges = adj[static_cast<std::size_t>(u)];
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].cap <= 0) continue;
        const int to = edges[e].to;
        if (prev_node[static_cast<std::size_t>(to)] != -1) continue;
        prev_node[static_cast<std::size_t>(to)] = u;
        prev_edge[static_cast<std::size_t>(to)] = static_cast<int>(e);
        bfs.push(to);
      }
    }
    if (prev_node[static_cast<std::size_t>(sink)] == -1) break;
    // Augment by 1.
    int u = sink;
    while (u != source) {
      const int pu = prev_node[static_cast<std::size_t>(u)];
      auto& e = adj[static_cast<std::size_t>(pu)]
                   [static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(u)])];
      e.cap -= 1;
      adj[static_cast<std::size_t>(u)][static_cast<std::size_t>(e.rev)].cap +=
          1;
      u = pu;
    }
    ++flow;
  }
  return flow >= 2;
}

}  // namespace

bool hoop_exists(const ShareGraph& sg, VarId x) {
  const std::size_t n = sg.process_count();
  std::vector<bool> in_clique(n, false);
  for (ProcessId p : sg.clique(x)) {
    in_clique[static_cast<std::size_t>(p)] = true;
  }
  // A hoop with one intermediate exists iff some non-clique vertex has two
  // disjoint paths to distinct clique members; checking every non-clique
  // vertex is sufficient (any hoop has at least one intermediate).
  for (std::size_t v = 0; v < n; ++v) {
    if (in_clique[v]) continue;
    if (two_disjoint_paths(sg, x, static_cast<ProcessId>(v), in_clique)) {
      return true;
    }
  }
  return false;
}

std::set<ProcessId> hoop_members(const ShareGraph& sg, VarId x) {
  const std::size_t n = sg.process_count();
  std::vector<bool> in_clique(n, false);
  for (ProcessId p : sg.clique(x)) {
    in_clique[static_cast<std::size_t>(p)] = true;
  }
  std::set<ProcessId> members;
  for (std::size_t v = 0; v < n; ++v) {
    if (in_clique[v]) continue;
    if (two_disjoint_paths(sg, x, static_cast<ProcessId>(v), in_clique)) {
      members.insert(static_cast<ProcessId>(v));
    }
  }
  return members;
}

std::set<ProcessId> x_relevant(const ShareGraph& sg, VarId x) {
  std::set<ProcessId> out = hoop_members(sg, x);
  for (ProcessId p : sg.clique(x)) out.insert(p);
  return out;
}

std::vector<std::set<ProcessId>> all_relevant_sets(const ShareGraph& sg) {
  std::vector<std::set<ProcessId>> out;
  out.reserve(sg.var_count());
  for (std::size_t x = 0; x < sg.var_count(); ++x) {
    out.push_back(x_relevant(sg, static_cast<VarId>(x)));
  }
  return out;
}

RelevanceSummary summarize_relevance(const ShareGraph& sg) {
  RelevanceSummary s;
  for (std::size_t x = 0; x < sg.var_count(); ++x) {
    const auto xv = static_cast<VarId>(x);
    const auto relevant = x_relevant(sg, xv);
    const auto& clique = sg.clique(xv);
    s.total_relevant += relevant.size();
    s.total_replicas += clique.size();
    if (relevant.size() > clique.size()) ++s.vars_with_hoops;
  }
  return s;
}

}  // namespace pardsm::graph
