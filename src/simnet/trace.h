// Event tracing for debugging and figure regeneration.
//
// A Trace is an append-only log of network-level events.  It is disabled by
// default (protocol benchmarks should not pay for it); when enabled it can
// be dumped in a stable, diffable text format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "simnet/ids.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// One trace record.
struct TraceEntry {
  enum class Type { kSend, kDeliver, kDrop, kTimer };
  Type type = Type::kSend;
  TimePoint when{};
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::uint64_t msg_id = 0;
  std::string kind;  ///< MessageMeta::kind or timer tag description
};

/// Thread-safe append-only event log.
class Trace {
 public:
  /// Enable or disable recording (disabled by default).
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Append one entry if enabled.
  void record(TraceEntry e);

  /// Snapshot of all entries so far.
  [[nodiscard]] std::vector<TraceEntry> entries() const;

  /// Number of entries recorded.
  [[nodiscard]] std::size_t size() const;

  /// Human-readable dump, one line per entry.
  void dump(std::ostream& os) const;

  void clear();

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::vector<TraceEntry> entries_;
};

/// Short label for a trace entry type ("SEND", "DELV", "DROP", "TIMR").
[[nodiscard]] const char* to_string(TraceEntry::Type t);

}  // namespace pardsm
