// Dependency chains along hoops (Definition 4, Figure 3) and the per-
// criterion chain behaviour that drives Theorems 1 and 2.

#include <gtest/gtest.h>

#include "history/canned.h"
#include "sharegraph/dependency_chain.h"
#include "sharegraph/topologies.h"

namespace pardsm::graph {
namespace {

using hist::paper::ChainEnd;

TEST(DependencyChain, Fig3CanonicalChainIsFound) {
  for (std::size_t k : {2u, 3u, 4u}) {
    const auto ex = hist::paper::fig3_dependency_chain(k, ChainEnd::kRead);
    Distribution d;
    d.name = ex.name;
    d.var_count = ex.history.var_count();
    d.per_process = ex.distribution;
    const ShareGraph sg(d);

    const auto witness =
        find_chain(ex.history, sg, ex.focus_var, ChainRelation::kCausal);
    ASSERT_TRUE(witness.found) << "k=" << k;
    // The witness starts at w_a(x)v and ends at o_b(x).
    const auto& first = ex.history.op(witness.ops.front());
    const auto& last = ex.history.op(witness.ops.back());
    EXPECT_TRUE(first.is_write());
    EXPECT_EQ(first.var, ex.focus_var);
    EXPECT_EQ(last.var, ex.focus_var);
    // It touches every hoop process.
    EXPECT_EQ(witness.touched(ex.history).size(), k + 1) << "k=" << k;
  }
}

TEST(DependencyChain, Fig3WriteEndChainIsFound) {
  const auto ex = hist::paper::fig3_dependency_chain(3, ChainEnd::kWrite);
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);
  EXPECT_TRUE(
      find_chain(ex.history, sg, ex.focus_var, ChainRelation::kCausal).found);
}

TEST(DependencyChain, PramNeverChainsAlongHoops) {
  // Theorem 2: under the PRAM relation no dependency chain can span a
  // hoop, no matter the history.
  for (std::size_t k : {2u, 3u, 5u}) {
    const auto ex = hist::paper::fig3_dependency_chain(k, ChainEnd::kRead);
    Distribution d{ex.name, ex.history.var_count(), ex.distribution};
    const ShareGraph sg(d);
    EXPECT_FALSE(
        find_chain(ex.history, sg, ex.focus_var, ChainRelation::kPram).found)
        << "k=" << k;
  }
}

TEST(DependencyChain, Fig4NoLazyCausalChainButCausalChain) {
  // The paper: "In this history, no x-dependency chain is created along
  // the x-hoop [p1, p2, p3]" — under the lazy causality order.  Under full
  // causality the chain exists (that is why Fig 4 is not causal).
  const auto ex = hist::paper::fig4_lazy_causal_not_causal();
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);

  EXPECT_FALSE(
      find_chain(ex.history, sg, ex.focus_var, ChainRelation::kLazyCausal)
          .found);
  EXPECT_TRUE(
      find_chain(ex.history, sg, ex.focus_var, ChainRelation::kCausal).found);
}

TEST(DependencyChain, Fig5LazyCausalChainExists) {
  // Fig 5: r3(y)c ->li w3(x)d closes the chain even under lazy causality.
  const auto ex = hist::paper::fig5_not_lazy_causal();
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);
  const auto witness =
      find_chain(ex.history, sg, ex.focus_var, ChainRelation::kLazyCausal);
  ASSERT_TRUE(witness.found);
  // The chain runs along the x-hoop [p0, p1, p2].
  EXPECT_EQ(witness.hoop.front(), 0);
  EXPECT_EQ(witness.hoop.back(), 2);
}

TEST(DependencyChain, Fig6LazySemiCausalChainExists) {
  const auto ex = hist::paper::fig6_not_lazy_semi_causal();
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);
  EXPECT_TRUE(
      find_chain(ex.history, sg, ex.focus_var, ChainRelation::kLazySemiCausal)
          .found);
}

TEST(DependencyChain, Fig6LiteralModeHasNoLscChain) {
  // Ablation: under the literal Definition 5 the p2 write pair is
  // permutable and the lwb chain cannot be assembled.
  const auto ex = hist::paper::fig6_not_lazy_semi_causal();
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);
  EXPECT_FALSE(find_chain(ex.history, sg, ex.focus_var,
                          ChainRelation::kLazySemiCausal,
                          hist::LazyMode::kLiteral)
                   .found);
}

TEST(DependencyChain, NoChainWithoutOperationsOnX) {
  // A hoop exists but nobody writes x: no chain.
  const auto ex = hist::paper::fig3_dependency_chain(3, ChainEnd::kRead);
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);
  hist::History empty(ex.history.process_count(), ex.history.var_count());
  EXPECT_FALSE(find_chain(empty, sg, 0, ChainRelation::kCausal).found);
}

TEST(DependencyChain, ChainRequiresCoverageOfAllHoopProcesses) {
  // Build the fig3 topology (k=3) but a history where the middle process
  // never participates: the dependency w(x) -> r(x) is then direct
  // read-from, and no chain *along the hoop* exists.
  const auto ex = hist::paper::fig3_dependency_chain(3, ChainEnd::kRead);
  Distribution d{ex.name, ex.history.var_count(), ex.distribution};
  const ShareGraph sg(d);

  hist::History h(ex.history.process_count(), ex.history.var_count());
  h.push_write(0, 0, 100);
  h.push_read(3, 0, 100);  // direct read-from, no intermediary pattern
  EXPECT_FALSE(find_chain(h, sg, 0, ChainRelation::kCausal).found);
}

TEST(DependencyChain, GeneratingEdgesPramNotTransitive) {
  EXPECT_FALSE(chain_relation_transitive(ChainRelation::kPram));
  EXPECT_TRUE(chain_relation_transitive(ChainRelation::kCausal));
  EXPECT_TRUE(chain_relation_transitive(ChainRelation::kLazyCausal));
  EXPECT_TRUE(chain_relation_transitive(ChainRelation::kLazySemiCausal));
}

}  // namespace
}  // namespace pardsm::graph
