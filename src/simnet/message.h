// Messages exchanged between MCS processes.
//
// Protocol payloads are polymorphic MessageBody subclasses (no byte-level
// serialization: both runtimes live in one address space).  What the paper
// cares about — how much *control information* travels and which variables
// that information concerns — is declared explicitly in MessageMeta by the
// sending protocol and audited by NetworkStats / the efficiency analyzer.
//
// Both halves of a Message move through the event queue without heap
// allocations: MessageMeta interns its kind tag (2-byte KindId) and keeps
// mentioned variables in a small-buffer container, and the body is a
// pooled intrusively-refcounted BodyRef (simnet/body.h) dispatched by a
// 1-byte type tag instead of dynamic_cast.
#pragma once

#include <cstdint>
#include <type_traits>

#include "simnet/body.h"
#include "simnet/check.h"
#include "simnet/ids.h"
#include "simnet/kind_table.h"
#include "simnet/sim_time.h"
#include "simnet/small_vec.h"

namespace pardsm {

/// Accounting metadata attached to every message by the sending protocol.
struct MessageMeta {
  /// Interned tag for traces, e.g. "UPD", "NOTIFY", "ACK".  Assigning a
  /// string literal interns it; hot paths should assign a cached KindId.
  KindId kind;

  /// Bytes of protocol control information (timestamps, ids, clocks...).
  std::uint64_t control_bytes = 0;

  /// Bytes of application data (the written value itself).
  std::uint64_t payload_bytes = 0;

  /// Variables about which this message carries *metadata*.  A process that
  /// receives a message mentioning x becomes observably x-relevant — the
  /// quantity Theorem 1 and Theorem 2 of the paper characterize.
  SmallVec<VarId, 2> vars_mentioned;

  /// Transport hint, not wire data: a coalescing layer (BatchingTransport)
  /// must flush rather than delay this message — set by protocols for
  /// completion-blocking traffic (RPCs, commits, re-sync).  Never counted
  /// in wire_bytes() and ignored by non-batching transports.
  bool urgent = false;

  /// Total bytes on the wire (header modelled as 16 bytes).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return 16 + control_bytes + payload_bytes;
  }
};

/// A message in flight or being delivered.
struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  BodyRef body;
  MessageMeta meta;

  /// Filled by the runtime.
  std::uint64_t id = 0;
  TimePoint send_time{};
  TimePoint deliver_time{};

  /// Typed access to the body for handlers that KNOW the type (they
  /// dispatched on meta.kind already): a tag compare, not a dynamic_cast.
  /// A mismatch is a protocol bug — debug builds assert instead of
  /// letting a wrong-body read look like a dropped message.
  template <typename T>
  [[nodiscard]] const T* as() const {
    using U = std::remove_cv_t<T>;
    PARDSM_DCHECK(body &&
                      detail::BodyAccess::type_of(*body) == body_type_id<U>(),
                  "Message::as<T>: body type mismatch");
    return static_cast<const T*>(body.get());
  }

  /// Typed access for genuine dispatch chains (shims that inspect traffic
  /// of several kinds): nullptr when the body is not exactly a T.
  template <typename T>
  [[nodiscard]] const T* try_as() const {
    using U = std::remove_cv_t<T>;
    if (!body || detail::BodyAccess::type_of(*body) != body_type_id<U>()) {
      return nullptr;
    }
    return static_cast<const T*>(body.get());
  }
};

}  // namespace pardsm
