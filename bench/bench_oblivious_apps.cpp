// S3 — the §5 "power of PRAM" applications: matrix product, wavefront
// dynamic programming and asynchronous fixed-point iteration, measured.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "apps/async_jacobi.h"
#include "apps/matrix_product.h"
#include "apps/wavefront_lcs.h"

namespace {

using namespace pardsm;
using namespace pardsm::apps;
namespace bu = pardsm::benchutil;

void print_table(bu::Harness& h) {
  bu::banner("S3: oblivious computations on weak memories");
  bu::row({"application", "config", "correct", "msgs", "sim-ms"});

  for (std::size_t n : {4u, 8u}) {
    for (std::size_t p : {2u, 4u}) {
      if (p > n) continue;
      const auto a = random_matrix(n, 9, 1);
      const auto b = random_matrix(n, 9, 2);
      const bu::WallTimer timer;
      const auto r = run_matrix_product(a, b, p);
      const std::uint64_t wall_ns = timer.ns();
      const std::string config = std::to_string(n) + "x" + std::to_string(n) +
                                 "/p" + std::to_string(p);
      bu::row({"matrix-product (PRAM)", config,
               bu::yesno(r.matches_reference),
               bu::num(r.total_traffic.msgs_sent),
               bu::num(static_cast<double>(r.finished_at.us) / 1000.0, 1)});
      h.record(
          {.label = "matrix-product-" + config,
           .protocol = "pram-partial",
           .distribution = "block-rows-p" + std::to_string(p),
           .messages = r.total_traffic.msgs_sent,
           .bytes = r.total_traffic.wire_bytes_sent(),
           .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
           .wall_ns = wall_ns,
           .extra = {{"correct", r.matches_reference ? 1.0 : 0.0}}});
    }
  }

  for (const auto& [s, t] : std::vector<std::pair<std::string, std::string>>{
           {"ABCBDAB", "BDCABA"},
           {"DISTRIBUTEDSHARED", "PARTIALREPLICATION"}}) {
    const bu::WallTimer timer;
    const auto r = run_wavefront_lcs(s, t);
    const std::uint64_t wall_ns = timer.ns();
    const std::string config =
        std::to_string(s.size()) + "x" + std::to_string(t.size());
    bu::row({"wavefront-LCS (PRAM)", config, bu::yesno(r.matches_reference),
             bu::num(r.total_traffic.msgs_sent),
             bu::num(static_cast<double>(r.finished_at.us) / 1000.0, 1)});
    h.record({.label = "wavefront-lcs-" + config,
              .protocol = "pram-partial",
              .distribution = "wavefront",
              .messages = r.total_traffic.msgs_sent,
              .bytes = r.total_traffic.wire_bytes_sent(),
              .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
              .wall_ns = wall_ns,
              .extra = {{"correct", r.matches_reference ? 1.0 : 0.0}}});
  }

  for (std::size_t n : {4u, 8u, 12u}) {
    const auto problem = JacobiProblem::contraction(n, n);
    const bu::WallTimer timer;
    const auto r = run_async_jacobi(problem);
    const std::uint64_t wall_ns = timer.ns();
    bu::row({"async-jacobi (slow mem)", "n=" + std::to_string(n),
             bu::yesno(r.converged), bu::num(r.total_traffic.msgs_sent),
             bu::num(static_cast<double>(r.finished_at.us) / 1000.0, 1)});
    h.record({.label = "async-jacobi-n" + std::to_string(n),
              .protocol = "slow-partial",
              .distribution = "jacobi-contraction",
              .messages = r.total_traffic.msgs_sent,
              .bytes = r.total_traffic.wire_bytes_sent(),
              .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
              .wall_ns = wall_ns,
              .extra = {{"converged", r.converged ? 1.0 : 0.0}}});
  }
  std::cout << "(expected: all correct — matrix product, dynamic "
               "programming and asynchronous iterations are the oblivious "
               "workloads §5 claims PRAM/slow memories support)\n";
}

void BM_MatrixProduct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, 9, 1);
  const auto b = random_matrix(n, 9, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_matrix_product(a, b, 4));
  }
}
BENCHMARK(BM_MatrixProduct)->DenseRange(4, 12, 4);

void BM_WavefrontLcs(benchmark::State& state) {
  const std::string s = "ABCBDABABCBDAB";
  const std::string t = "BDCABABDCABA";
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_wavefront_lcs(s, t));
  }
}
BENCHMARK(BM_WavefrontLcs);

void BM_AsyncJacobi(benchmark::State& state) {
  const auto problem =
      JacobiProblem::contraction(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_async_jacobi(problem));
  }
}
BENCHMARK(BM_AsyncJacobi)->DenseRange(4, 12, 4);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "oblivious_apps");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
