// P6 — differential convergence: after quiescence and ARQ drain, a faulty
// run ends in exactly the replica state of the lossless run of the same
// workload.
//
// The workload is single-writer (each variable is written only by the
// lowest-id member of its clique), so the final content of every replica
// is a pure function of the scripts: the last write of each variable's
// unique writer, delivered in that writer's FIFO order.  Any update a
// fault destroyed and the recovery machinery (ARQ retransmission +
// crash re-sync) failed to repair shows up as a (value, provenance)
// mismatch against the lossless baseline — per protocol, per seed, per
// scenario family.

#include <gtest/gtest.h>

#include "mcs/driver.h"
#include "scenario_families.h"
#include "sharegraph/topologies.h"
#include "simnet/scenario.h"

namespace pardsm::mcs {
namespace {

using golden::FaultFamily;
using golden::family_name;

/// The canonical family timelines with convergence's loss pairing: a high
/// pure-loss rate, milder background loss for the structural families.
Scenario make_scenario(FaultFamily f) {
  return golden::make_fault_scenario(f,
                                     f == FaultFamily::kLoss ? 0.1 : 0.02);
}

class Convergence
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, FaultFamily, int>> {
};

TEST_P(Convergence, FaultyRunEndsInLosslessReplicaState) {
  const auto [kind, family, seed] = GetParam();
  const auto dist = graph::topo::clusters(2, 3, true);  // 6 processes

  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.read_fraction = 0.4;
  spec.seed = static_cast<std::uint64_t>(seed) * 977 + 11;
  spec.think_time = millis(1);  // ops overlap the fault windows
  const auto scripts = make_single_writer_scripts(dist, spec);

  RunOptions baseline_options;
  baseline_options.sim_seed = static_cast<std::uint64_t>(seed);
  const auto baseline =
      run_workload(kind, dist, scripts, std::move(baseline_options));

  RunOptions options;
  options.sim_seed = static_cast<std::uint64_t>(seed);
  const auto faulty = run_scenario(kind, dist, scripts, make_scenario(family),
                                   std::move(options));

  EXPECT_TRUE(faulty.used_reliable_transport);
  ASSERT_EQ(faulty.final_replicas.size(), baseline.final_replicas.size());
  for (std::size_t p = 0; p < baseline.final_replicas.size(); ++p) {
    const auto& want = baseline.final_replicas[p];
    const auto& got = faulty.final_replicas[p];
    ASSERT_EQ(got.size(), want.size()) << "process " << p;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].x, want[i].x) << "process " << p;
      EXPECT_EQ(got[i].value, want[i].value)
          << to_string(kind) << "/" << family_name(family) << " seed "
          << seed << ": process " << p << " x" << want[i].x
          << " diverged (fault not repaired)";
      EXPECT_EQ(got[i].source, want[i].source)
          << to_string(kind) << "/" << family_name(family) << " seed "
          << seed << ": process " << p << " x" << want[i].x
          << " provenance diverged";
    }
  }
}

std::string convergence_name(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, FaultFamily, int>>&
        info) {
  std::string s = to_string(std::get<0>(info.param));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_" + family_name(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, Convergence,
    ::testing::Combine(::testing::ValuesIn(all_protocols()),
                       ::testing::Values(FaultFamily::kLoss,
                                         FaultFamily::kPartition,
                                         FaultFamily::kCrash),
                       ::testing::Values(1, 2, 3)),
    convergence_name);

}  // namespace
}  // namespace pardsm::mcs
