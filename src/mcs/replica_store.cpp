#include "mcs/replica_store.h"

#include "simnet/check.h"

namespace pardsm::mcs {

ReplicaStore::ReplicaStore(const std::vector<VarId>& vars) {
  for (VarId x : vars) data_.emplace(x, Stored{});
}

const Stored& ReplicaStore::get(VarId x) const {
  auto it = data_.find(x);
  PARDSM_CHECK(it != data_.end(),
               "ReplicaStore::get: variable not replicated here");
  return it->second;
}

void ReplicaStore::put(VarId x, Value value, WriteId source) {
  auto it = data_.find(x);
  PARDSM_CHECK(it != data_.end(),
               "ReplicaStore::put: variable not replicated here");
  it->second = Stored{value, source};
  ++version_;
}

std::vector<VarId> ReplicaStore::vars() const {
  std::vector<VarId> out;
  out.reserve(data_.size());
  for (const auto& [x, stored] : data_) out.push_back(x);
  return out;
}

}  // namespace pardsm::mcs
