#include "simnet/network.h"

#include "simnet/check.h"

namespace pardsm {

Network::Network(std::size_t n, ChannelOptions options,
                 std::unique_ptr<LatencyModel> latency, Rng rng)
    : n_(n),
      options_(options),
      latency_(latency ? std::move(latency)
                       : std::make_unique<ConstantLatency>(millis(1))),
      rng_(rng),
      last_delivery_(n * n, TimePoint{}),
      severed_(n * n, 0) {}

DeliveryPlan Network::plan_delivery(ProcessId from, ProcessId to,
                                    TimePoint send_time) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_,
               "plan_delivery: bad sender");
  PARDSM_CHECK(to >= 0 && static_cast<std::size_t>(to) < n_,
               "plan_delivery: bad receiver");

  if (severed(from, to) || rng_.chance(options_.drop_probability)) {
    ++dropped_;
    return {};
  }

  DeliveryPlan deliveries;
  const int copies = rng_.chance(options_.duplicate_probability) ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    TimePoint at = send_time + latency_->sample(from, to, rng_);
    if (options_.fifo) {
      TimePoint& last = last_delivery_[pair(from, to)];
      if (at <= last) at = last + micros(1);
      last = at;
    }
    deliveries.push(at);
  }
  return deliveries;
}

void Network::sever(ProcessId from, ProcessId to) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_ && to >= 0 &&
                   static_cast<std::size_t>(to) < n_,
               "sever: bad process");
  severed_[pair(from, to)] = 1;
}

void Network::heal(ProcessId from, ProcessId to) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_ && to >= 0 &&
                   static_cast<std::size_t>(to) < n_,
               "heal: bad process");
  severed_[pair(from, to)] = 0;
}

bool Network::severed(ProcessId from, ProcessId to) const {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_ && to >= 0 &&
                   static_cast<std::size_t>(to) < n_,
               "severed: bad process");
  return severed_[pair(from, to)] != 0;
}

}  // namespace pardsm
