#include "mcs/replica_store.h"

#include <algorithm>

#include "simnet/check.h"

namespace pardsm::mcs {

ReplicaStore::ReplicaStore(const std::vector<VarId>& vars) : vars_(vars) {
  std::sort(vars_.begin(), vars_.end());
  vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
  VarId max_var = -1;
  for (VarId x : vars_) {
    PARDSM_CHECK(x >= 0, "ReplicaStore: negative variable id");
    max_var = std::max(max_var, x);
  }
  slot_of_.assign(static_cast<std::size_t>(max_var + 1), -1);
  data_.resize(vars_.size());
  for (std::size_t slot = 0; slot < vars_.size(); ++slot) {
    slot_of_[static_cast<std::size_t>(vars_[slot])] =
        static_cast<std::int32_t>(slot);
  }
}

const Stored& ReplicaStore::get(VarId x) const {
  const std::int32_t slot = slot_of(x);
  PARDSM_CHECK(slot >= 0, "ReplicaStore::get: variable not replicated here");
  return data_[static_cast<std::size_t>(slot)];
}

void ReplicaStore::put(VarId x, Value value, WriteId source) {
  const std::int32_t slot = slot_of(x);
  PARDSM_CHECK(slot >= 0, "ReplicaStore::put: variable not replicated here");
  data_[static_cast<std::size_t>(slot)] = Stored{value, source};
  ++version_;
}

}  // namespace pardsm::mcs
