// Atomic (linearizable) memory via per-variable home nodes.
//
// The strongest criterion the paper lists [12].  Each variable has a home
// — the lowest-id member of C(x) — holding the authoritative copy.  Both
// reads and writes are RPCs to the home, so every operation takes effect
// at a single point between invocation and response: linearizability by
// construction (validated by the Wing-Gong style checker in
// history/linearizability.h).
//
// The protocol shows the *other* price of strong criteria under partial
// replication: metadata stays inside C(x), but reads lose the wait-free
// local-access property the paper's §3.3 demands of scalable DSM — every
// read pays a network round trip (bench_latency quantifies this against
// the wait-free protocols).  Non-home replicas receive asynchronous
// refresh updates (warm standbys) but never serve reads.
#pragma once

#include <map>

#include "mcs/protocol.h"
#include "mcs/write_id_dedup.h"
#include "simnet/recycling_alloc.h"

namespace pardsm::mcs {

struct AtomicReadRequest;
struct AtomicReadReply;
struct AtomicWriteRequest;
struct AtomicWriteAck;
struct AtomicRefresh;

/// One process of the home-based atomic protocol.
class AtomicHomeProcess final : public McsProcess {
 public:
  AtomicHomeProcess(ProcessId self, const graph::Distribution& dist,
                    HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override { return "atomic-home"; }
  [[nodiscard]] bool wait_free() const override { return false; }

  /// The home of variable x under this distribution.
  [[nodiscard]] ProcessId home_of(VarId x) const;

 protected:
  /// Standby copies of x are refreshed only by x's home, so a re-synced
  /// copy served by the home rides the same FIFO channel as any backlog
  /// and can safely be adopted (when this process *is* the home its copy
  /// is authoritative; peers can never be ahead).
  [[nodiscard]] bool resync_adoptable(VarId x, ProcessId responder,
                                      const WriteId&) const override {
    return responder == home_of(x);
  }

 private:
  struct PendingRead {
    ReadCallback done;
    TimePoint invoked{};
  };
  struct PendingWrite {
    VarId x = kNoVar;
    Value v = kBottom;
    WriteId id{};
    WriteCallback done;
    TimePoint invoked{};
  };

  /// Pool handles cached at attach() so each RPC leg is a freelist pop.
  BodyPool<AtomicReadRequest>* read_req_pool_ = nullptr;
  BodyPool<AtomicReadReply>* read_reply_pool_ = nullptr;
  BodyPool<AtomicWriteRequest>* write_req_pool_ = nullptr;
  BodyPool<AtomicWriteAck>* write_ack_pool_ = nullptr;
  BodyPool<AtomicRefresh>* refresh_pool_ = nullptr;
  std::int64_t next_write_seq_ = 0;
  std::uint64_t next_rpc_ = 1;
  /// Node freelist for the per-in-flight-RPC maps below (declared first:
  /// containers must die before their pool).
  RecyclingPool node_pool_;
  std::map<std::uint64_t, PendingRead, std::less<std::uint64_t>,
           RecyclingAlloc<std::pair<const std::uint64_t, PendingRead>>>
      pending_reads_{
          RecyclingAlloc<std::pair<const std::uint64_t, PendingRead>>(
              &node_pool_)};
  std::map<std::uint64_t, PendingWrite, std::less<std::uint64_t>,
           RecyclingAlloc<std::pair<const std::uint64_t, PendingWrite>>>
      pending_writes_{
          RecyclingAlloc<std::pair<const std::uint64_t, PendingWrite>>(
              &node_pool_)};
  /// Home-side duplicate suppression: writes already applied here
  /// (watermark + frontier — a std::set would grow one node per write).
  WriteIdDedup applied_ids_;
};

}  // namespace pardsm::mcs
