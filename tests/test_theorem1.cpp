// Theorems 1 and 2, measured: which processes *observably* handle
// information about each variable under each protocol.
//
// The paper's x-relevant notion is empirically the set of processes that
// receive messages whose metadata mentions x (NetworkStats exposure).
// Predictions:
//   causal-full           : every process, for every written variable
//   causal-partial-naive  : every process, for every written variable
//   causal-partial-adhoc  : exactly within R(x) = C(x) ∪ hoop members
//   pram-partial / slow   : within C(x) only            (Theorem 2)
//   sequencer-sc          : C(x) plus the sequencer     (centralisation)
//   atomic-home           : within C(x) only, but reads are not wait-free

#include <gtest/gtest.h>

#include "mcs/driver.h"
#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

using graph::Distribution;

/// Scripts where every process writes each of its variables once then
/// reads them once — guarantees every variable is exercised.
std::vector<Script> exhaustive_scripts(const Distribution& dist) {
  std::vector<Script> scripts(dist.process_count());
  Value v = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    for (VarId x : dist.per_process[p]) {
      scripts[p].push_back(ScriptOp::write(x, v++));
    }
    for (VarId x : dist.per_process[p]) {
      scripts[p].push_back(ScriptOp::read(x));
    }
  }
  return scripts;
}

RunResult run(ProtocolKind kind, const Distribution& dist) {
  RunOptions options;
  options.sim_seed = 7;
  options.latency = std::make_unique<UniformLatency>(millis(1), millis(10));
  return run_workload(kind, dist, exhaustive_scripts(dist),
                      std::move(options));
}

std::vector<Distribution> corpus() {
  return {
      graph::topo::chain_with_hoop(5),
      graph::topo::star(4),
      graph::topo::ring(5),
      graph::topo::clusters(3, 2, /*cyclic=*/true),
      graph::topo::random_replication(6, 5, 2, 31),
  };
}

TEST(Theorem2, PramExposureConfinedToClique) {
  for (const auto& dist : corpus()) {
    const auto result = run(ProtocolKind::kPramPartial, dist);
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      const auto clique = dist.replicas_of(static_cast<VarId>(x));
      const std::set<ProcessId> cset(clique.begin(), clique.end());
      for (ProcessId p : result.observed_relevant[x]) {
        EXPECT_TRUE(cset.count(p))
            << dist.name << ": PRAM leaked x" << x << " metadata to p" << p;
      }
    }
  }
}

TEST(Theorem2, SlowExposureConfinedToClique) {
  for (const auto& dist : corpus()) {
    const auto result = run(ProtocolKind::kSlowPartial, dist);
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      const auto clique = dist.replicas_of(static_cast<VarId>(x));
      const std::set<ProcessId> cset(clique.begin(), clique.end());
      for (ProcessId p : result.observed_relevant[x]) {
        EXPECT_TRUE(cset.count(p)) << dist.name << " x" << x << " p" << p;
      }
    }
  }
}

TEST(Theorem1, NaiveCausalExposesEveryoneToEverything) {
  const auto dist = graph::topo::chain_with_hoop(5);
  const auto result = run(ProtocolKind::kCausalPartialNaive, dist);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    // Every process except (possibly) the writer itself receives metadata;
    // together with C(x) membership the exposure set is all processes.
    std::set<ProcessId> exposed = result.observed_relevant[x];
    for (ProcessId p : dist.replicas_of(static_cast<VarId>(x))) {
      exposed.insert(p);
    }
    EXPECT_EQ(exposed.size(), dist.process_count())
        << dist.name << " x" << x;
  }
}

TEST(Theorem1, FullReplicationExposesEveryoneToEverything) {
  const auto dist = graph::topo::star(4);
  const auto result = run(ProtocolKind::kCausalFull, dist);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    std::set<ProcessId> exposed = result.observed_relevant[x];
    for (ProcessId p : dist.replicas_of(static_cast<VarId>(x))) {
      exposed.insert(p);
    }
    EXPECT_EQ(exposed.size(), dist.process_count());
  }
}

TEST(Theorem1, AdHocExposureMatchesRelevantSets) {
  for (const auto& dist : corpus()) {
    const graph::ShareGraph sg(dist);
    const auto result = run(ProtocolKind::kCausalPartialAdHoc, dist);
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      const auto xv = static_cast<VarId>(x);
      const auto relevant = graph::x_relevant(sg, xv);
      // Exposure must stay inside R(x) (Theorem 1 upper bound) ...
      for (ProcessId p : result.observed_relevant[x]) {
        EXPECT_TRUE(relevant.count(p))
            << dist.name << ": adhoc leaked x" << x << " to p" << p;
      }
      // ... and since every process wrote every variable it holds, every
      // non-writer member of R(x) was in fact told about x.
      for (ProcessId p : relevant) {
        const auto clique = dist.replicas_of(xv);
        const bool is_sole_writer = clique.size() == 1 && clique[0] == p;
        if (!is_sole_writer) {
          EXPECT_TRUE(result.observed_relevant[x].count(p) ||
                      std::find(clique.begin(), clique.end(), p) ==
                          clique.end())
              << dist.name << ": R(x" << x << ") member p" << p
              << " never heard about x";
        }
      }
    }
  }
}

TEST(Theorem1, AdHocStrictlyCheaperThanNaiveWhenHoopsAreRare) {
  // Open-star spokes have no hoops except through the leaf-leaf variable;
  // the ad-hoc protocol should send strictly fewer messages & bytes.
  const auto dist = graph::topo::star(6);
  const auto naive = run(ProtocolKind::kCausalPartialNaive, dist);
  const auto adhoc = run(ProtocolKind::kCausalPartialAdHoc, dist);
  EXPECT_LT(adhoc.total_traffic.msgs_sent, naive.total_traffic.msgs_sent);
  EXPECT_LT(adhoc.total_traffic.control_bytes_sent,
            naive.total_traffic.control_bytes_sent);
}

TEST(Theorem1, SequencerIsUniversallyRelevant) {
  const auto dist = graph::topo::clusters(3, 2, /*cyclic=*/false);
  const auto result = run(ProtocolKind::kSequencerSC, dist);
  // Every variable written by a non-sequencer process exposes the
  // sequencer (process 0).
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto writers = dist.replicas_of(static_cast<VarId>(x));
    const bool some_nonzero_writer =
        std::any_of(writers.begin(), writers.end(),
                    [](ProcessId p) { return p != 0; });
    if (some_nonzero_writer) {
      EXPECT_TRUE(result.observed_relevant[x].count(0))
          << "sequencer not exposed to x" << x;
    }
  }
}

TEST(Theorem2, PramControlBytesPerUpdateAreConstant) {
  // PRAM control bytes per update must not grow with the system size.
  std::vector<double> per_update;
  for (std::size_t n : {4u, 8u, 16u}) {
    const auto dist = graph::topo::ring(n);
    const auto result = run(ProtocolKind::kPramPartial, dist);
    per_update.push_back(
        static_cast<double>(result.total_traffic.control_bytes_sent) /
        static_cast<double>(result.total_traffic.msgs_sent));
  }
  EXPECT_DOUBLE_EQ(per_update[0], per_update[1]);
  EXPECT_DOUBLE_EQ(per_update[1], per_update[2]);
}

TEST(Theorem1, CausalControlBytesGrowWithSystemSize) {
  // Vector clocks scale with n: control bytes per message strictly grow.
  std::vector<double> per_msg;
  for (std::size_t n : {4u, 8u, 16u}) {
    const auto dist = graph::topo::ring(n);
    const auto result = run(ProtocolKind::kCausalPartialNaive, dist);
    per_msg.push_back(
        static_cast<double>(result.total_traffic.control_bytes_sent) /
        static_cast<double>(result.total_traffic.msgs_sent));
  }
  EXPECT_LT(per_msg[0], per_msg[1]);
  EXPECT_LT(per_msg[1], per_msg[2]);
}

}  // namespace
}  // namespace pardsm::mcs
