// pardsm public API: one object that wires a distribution, a consistency
// protocol and a simulated network into a runnable DSM.
//
// Quickstart (examples/quickstart.cpp):
//
//   pardsm::SystemConfig config;
//   config.protocol = pardsm::mcs::ProtocolKind::kPramPartial;
//   config.distribution = pardsm::graph::topo::chain_with_hoop(4);
//   pardsm::System dsm(std::move(config));
//   dsm.write(0, 0, 42, [] {});
//   dsm.run();
//   dsm.read_now(3, 0);           // wait-free local read
//   auto h = dsm.history();       // exact recorded history
//
// The System owns a deterministic Simulator; for std::thread execution use
// mcs::run_workload_threaded (the protocols are runtime-agnostic).
#pragma once

#include <functional>
#include <memory>

#include "mcs/driver.h"
#include "sharegraph/share_graph.h"
#include "simnet/simulator.h"

namespace pardsm {

/// Configuration of a System.
struct SystemConfig {
  mcs::ProtocolKind protocol = mcs::ProtocolKind::kPramPartial;
  graph::Distribution distribution;
  std::uint64_t seed = 1;
  ChannelOptions channel;
  /// Uniform message latency bounds.
  Duration latency_lo = millis(1);
  Duration latency_hi = millis(1);
};

/// A complete DSM instance on the deterministic simulator.
class System {
 public:
  explicit System(SystemConfig config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // -- application-facing operations --------------------------------------
  /// Asynchronous read of x at process p (callback style; wait-free
  /// protocols complete before returning).
  void read(ProcessId p, VarId x, mcs::ReadCallback done);

  /// Asynchronous write.
  void write(ProcessId p, VarId x, Value v, mcs::WriteCallback done);

  /// Convenience: wait-free read completed inline.  Only valid for
  /// wait-free protocols (checked).
  [[nodiscard]] Value read_now(ProcessId p, VarId x);

  // -- scheduling / execution ---------------------------------------------
  /// Schedule a closure at an absolute simulated time.
  void at(TimePoint when, std::function<void()> fn);

  /// Schedule a closure `d` after the current simulated time.
  void after(Duration d, std::function<void()> fn);

  /// Run to quiescence.
  void run();

  /// Run until `deadline`; true if quiescent earlier.
  bool run_until(TimePoint deadline);

  [[nodiscard]] TimePoint now() const;

  // -- results --------------------------------------------------------------
  /// Recorded operation history (exact read-from provenance).
  [[nodiscard]] hist::History history() const;

  /// Network statistics (traffic, per-variable exposure).
  [[nodiscard]] const NetworkStats& stats() const;

  /// Per-variable observed metadata exposure (the empirical x-relevance).
  [[nodiscard]] std::vector<std::set<ProcessId>> observed_relevance() const;

  [[nodiscard]] mcs::McsProcess& process(ProcessId p);
  [[nodiscard]] const graph::Distribution& distribution() const;
  [[nodiscard]] std::size_t process_count() const;
  [[nodiscard]] Simulator& simulator() { return *sim_; }

 private:
  SystemConfig config_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<mcs::HistoryRecorder> recorder_;
  std::vector<std::unique_ptr<mcs::McsProcess>> processes_;
};

/// Library version string.
[[nodiscard]] const char* version();

}  // namespace pardsm
