#include "mcs/protocol.h"

#include <map>

#include "simnet/wire.h"

namespace pardsm::mcs {

namespace {

/// Re-sync handshake bodies.  The recovering process asks each chosen peer
/// for the current copies of the variables it replicates; the peer answers
/// with (x, value, provenance) triples.  Both travel as ordinary messages,
/// so NetworkStats charges their bytes like any other control traffic.
struct ResyncRequest final : MessageBody {
  std::uint32_t epoch = 0;  ///< recovery round (stale responses are ignored)
  std::vector<VarId> vars;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kResyncRequest;
  }
  void wire_encode(WireWriter& w) const override {
    w.u32(epoch);
    w.u32(static_cast<std::uint32_t>(vars.size()));
    for (VarId x : vars) w.i32(x);
  }
};

struct ResyncEntry {
  VarId x = kNoVar;
  Value value = kBottom;
  WriteId source{};
};

struct ResyncResponse final : MessageBody {
  std::uint32_t epoch = 0;
  std::vector<ResyncEntry> entries;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kResyncResponse;
  }
  void wire_encode(WireWriter& w) const override {
    w.u32(epoch);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const ResyncEntry& e : entries) {
      w.i32(e.x);
      w.i64(e.value);
      wire::put_write_id(w, e.source);
    }
  }
};

const wire::BodyRegistrar resync_req_codec(
    wire::kResyncRequest, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<ResyncRequest>();
      b->epoch = r.u32();
      b->vars.resize(r.u32());
      for (auto& x : b->vars) x = r.i32();
      return BodyRef::adopt(b);
    });
const wire::BodyRegistrar resync_resp_codec(
    wire::kResyncResponse, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<ResyncResponse>();
      b->epoch = r.u32();
      b->entries.resize(r.u32());
      for (auto& e : b->entries) {
        e.x = r.i32();
        e.value = r.i64();
        e.source = wire::get_write_id(r);
      }
      return BodyRef::adopt(b);
    });

/// Message kinds, interned once (the base intercepts them by KindId before
/// protocol dispatch, so regular traffic pays one 2-byte compare, not a
/// dynamic_cast).
const KindId kResyncReqKind("RSYNC_REQ");
const KindId kResyncRespKind("RSYNC_RESP");

/// The default expansion: one point-to-point send per destination, in
/// plan order, sharing the body and copying the meta — bit-identical to
/// the per-destination send loops the protocols used to hand-write.
class FanoutMulticast final : public MulticastService {
 public:
  void submit(Transport& transport, ProcessId from,
              SendPlan&& plan) override {
    const std::size_t n = plan.to.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (i + 1 == n) {
        transport.send(from, plan.to[i], std::move(plan.body),
                       std::move(plan.meta));
      } else {
        transport.send(from, plan.to[i], plan.body, plan.meta);
      }
    }
  }
};

}  // namespace

MulticastService& MulticastService::fanout() {
  static FanoutMulticast instance;
  return instance;
}

void McsProcess::on_message(const Message& m) {
  if (crashed_) {
    // Belt and braces: the runtime already suppresses deliveries to down
    // processes; anything that still arrives here is lost with the crash.
    ++rstats_.deliveries_dropped_while_down;
    return;
  }
  if (m.meta.kind == kResyncReqKind) {
    serve_resync_request(m);
    return;
  }
  if (m.meta.kind == kResyncRespKind) {
    absorb_resync_response(m);
    return;
  }
  handle_message(m);
}

void McsProcess::on_timer(TimerTag tag) {
  if (crashed_) {
    // A fail-paused process must neither act on timers nor lose them (a
    // swallowed flush timer would strand buffered updates forever): park
    // the tag and replay it once on recovery.
    ++rstats_.timers_deferred;
    deferred_timers_.push_back(tag);
    return;
  }
  handle_timer(tag);
}

void McsProcess::crash() {
  PARDSM_CHECK(!crashed_, "crash: process already down");
  crashed_ = true;
  ++rstats_.crashes;
  // A crash mid-re-sync supersedes that round: its responses are stale.
  ++resync_epoch_;
  pending_resyncs_ = 0;
  on_crash();
}

void McsProcess::recover() {
  PARDSM_CHECK(crashed_, "recover: process is not down");
  crashed_ = false;
  on_recover();
  // Replay timers that fired during the downtime, in fire order, as fresh
  // zero-delay timers (they run after this event, through the runtime).
  for (TimerTag tag : deferred_timers_) {
    transport().set_timer(self_, Duration{}, tag);
  }
  deferred_timers_.clear();
  start_resync();
}

ProcessId McsProcess::resync_source(VarId x) const {
  for (ProcessId q : replicas_of(x)) {
    if (q != self_) return q;  // sorted: the lowest-id other member
  }
  return kNoProcess;
}

void McsProcess::start_resync() {
  recovery_started_ = now();
  last_recovery_latency_ = {};
  ++resync_epoch_;

  // One request per peer, covering every held variable that peer serves.
  std::map<ProcessId, std::vector<VarId>> by_peer;
  for (VarId x : store_.vars()) {
    const ProcessId q = resync_source(x);
    if (q != kNoProcess && q != self_) by_peer[q].push_back(x);
  }
  pending_resyncs_ = static_cast<std::uint32_t>(by_peer.size());
  for (auto& [peer, vars] : by_peer) {
    auto* body = arena().create<ResyncRequest>();
    body->epoch = resync_epoch_;
    body->vars = std::move(vars);

    MessageMeta meta;
    meta.kind = kResyncReqKind;
    meta.control_bytes = 8 + 8 * body->vars.size();
    for (VarId x : body->vars) meta.vars_mentioned.push_back(x);

    rstats_.resync_bytes += meta.wire_bytes();
    ++rstats_.resync_requests_sent;
    // Urgent: recovery latency must not wait out a coalescing window.
    emit_to(peer, BodyRef::adopt(body), std::move(meta), /*urgent=*/true);
  }
}

void McsProcess::serve_resync_request(const Message& m) {
  const auto* req = m.as<ResyncRequest>();
  PARDSM_CHECK(req != nullptr, "re-sync request with foreign body");
  auto* body = arena().create<ResyncResponse>();
  body->epoch = req->epoch;

  MessageMeta meta;
  meta.kind = kResyncRespKind;
  for (VarId x : req->vars) {
    if (!store_.holds(x)) continue;
    const Stored& s = store_.get(x);
    body->entries.push_back({x, s.value, s.source});
    meta.vars_mentioned.push_back(x);
  }
  meta.control_bytes = 8 + 24 * body->entries.size();  // epoch + (x, WriteId)
  meta.payload_bytes = 8 * body->entries.size();

  ++rstats_.resync_responses_served;
  emit_to(m.from, BodyRef::adopt(body), std::move(meta), /*urgent=*/true);
}

void McsProcess::absorb_resync_response(const Message& m) {
  const auto* resp = m.as<ResyncResponse>();
  PARDSM_CHECK(resp != nullptr, "re-sync response with foreign body");
  if (resp->epoch != resync_epoch_ || pending_resyncs_ == 0) return;

  rstats_.resync_bytes += m.meta.wire_bytes();
  for (const ResyncEntry& e : resp->entries) {
    apply_resync_entry(e.x, e.value, e.source, m.from);
  }
  if (--pending_resyncs_ == 0) {
    last_recovery_latency_ = now() - recovery_started_;
    max_recovery_latency_ =
        std::max(max_recovery_latency_, last_recovery_latency_);
  }
}

void McsProcess::apply_resync_entry(VarId x, Value value,
                                    const WriteId& source,
                                    ProcessId responder) {
  if (!store_.holds(x)) return;
  if (!resync_adoptable(x, responder, source)) return;
  const Stored& local = store_.get(x);
  // Never-regress rule: adopt the peer's copy only when it provably moves
  // this replica forward — filling an untouched slot, or advancing along
  // one writer's own sequence.  Copies that cannot be so ordered are left
  // to the ARQ layer's guaranteed (re)delivery: adopting them here could
  // roll back past observations, which no consistency criterion forgives.
  const bool fills_bottom = !local.source.valid() && source.valid();
  const bool advances_writer = source.valid() &&
                               source.writer == local.source.writer &&
                               source.seq > local.source.seq;
  if (fills_bottom || advances_writer) {
    store_.put(x, value, source);
    ++rstats_.resync_values_applied;
  }
}

const char* to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kAtomicHome:
      return "atomic-home";
    case ProtocolKind::kSequencerSC:
      return "sequencer-sc";
    case ProtocolKind::kCausalFull:
      return "causal-full";
    case ProtocolKind::kCausalPartialNaive:
      return "causal-partial-naive";
    case ProtocolKind::kCausalPartialAdHoc:
      return "causal-partial-adhoc";
    case ProtocolKind::kPramPartial:
      return "pram-partial";
    case ProtocolKind::kSlowPartial:
      return "slow-partial";
    case ProtocolKind::kCachePartial:
      return "cache-partial";
    case ProtocolKind::kProcessorPartial:
      return "processor-partial";
  }
  return "?";
}

const std::vector<ProtocolKind>& all_protocols() {
  static const std::vector<ProtocolKind> kAll = {
      ProtocolKind::kAtomicHome,         ProtocolKind::kSequencerSC,
      ProtocolKind::kCausalFull,         ProtocolKind::kCausalPartialNaive,
      ProtocolKind::kCausalPartialAdHoc, ProtocolKind::kPramPartial,
      ProtocolKind::kSlowPartial,        ProtocolKind::kCachePartial,
      ProtocolKind::kProcessorPartial,
  };
  return kAll;
}

GuaranteeLevel guarantee_of(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kAtomicHome:
      return GuaranteeLevel::kAtomic;
    case ProtocolKind::kSequencerSC:
      return GuaranteeLevel::kSequential;
    case ProtocolKind::kCausalFull:
    case ProtocolKind::kCausalPartialNaive:
    case ProtocolKind::kCausalPartialAdHoc:
      return GuaranteeLevel::kCausal;
    case ProtocolKind::kPramPartial:
      return GuaranteeLevel::kPram;
    case ProtocolKind::kSlowPartial:
      return GuaranteeLevel::kSlow;
    case ProtocolKind::kCachePartial:
      return GuaranteeLevel::kCache;
    case ProtocolKind::kProcessorPartial:
      return GuaranteeLevel::kProcessor;
  }
  return GuaranteeLevel::kSlow;
}

}  // namespace pardsm::mcs
