#include "sharegraph/share_graph.h"

#include <algorithm>
#include <sstream>

#include "simnet/check.h"

namespace pardsm::graph {

bool Distribution::holds(ProcessId p, VarId x) const {
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < per_process.size(),
               "Distribution::holds: bad process");
  const auto& xs = per_process[static_cast<std::size_t>(p)];
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

std::vector<ProcessId> Distribution::replicas_of(VarId x) const {
  std::vector<ProcessId> out;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    if (holds(static_cast<ProcessId>(p), x)) {
      out.push_back(static_cast<ProcessId>(p));
    }
  }
  return out;
}

double Distribution::average_replication() const {
  if (var_count == 0) return 0.0;
  std::size_t total = 0;
  for (const auto& xs : per_process) total += xs.size();
  return static_cast<double>(total) / static_cast<double>(var_count);
}

namespace {

/// Two-pointer intersection summary over sorted var lists: count capped
/// at 2 plus the first shared variable.
ShareGraph::EdgeSummary summarize_shared(const std::vector<VarId>& a,
                                         const std::vector<VarId>& b) {
  ShareGraph::EdgeSummary s;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      if (s.shared_count == 0) s.only_shared = *ia;
      if (++s.shared_count == 2) break;  // "≥ 2" — nothing more to learn
      ++ia;
      ++ib;
    }
  }
  return s;
}

}  // namespace

ShareGraph::ShareGraph(Distribution dist) : dist_(std::move(dist)) {
  const std::size_t n = dist_.process_count();
  var_sets_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    for (VarId x : dist_.per_process[p]) {
      PARDSM_CHECK(x >= 0 && static_cast<std::size_t>(x) < dist_.var_count,
                   "ShareGraph: variable id out of range");
      var_sets_[p].push_back(x);
    }
    std::sort(var_sets_[p].begin(), var_sets_[p].end());
    var_sets_[p].erase(std::unique(var_sets_[p].begin(), var_sets_[p].end()),
                       var_sets_[p].end());
  }
  cliques_.resize(dist_.var_count);
  for (std::size_t x = 0; x < dist_.var_count; ++x) {
    cliques_[x] = dist_.replicas_of(static_cast<VarId>(x));
  }
  adjacency_.resize(n);
  summaries_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const EdgeSummary s = summarize_shared(var_sets_[i], var_sets_[j]);
      if (s.shared_count != 0) {
        // j > i, so both per-process lists stay sorted by construction.
        adjacency_[i].push_back(static_cast<ProcessId>(j));
        summaries_[i].push_back(s);
        adjacency_[j].push_back(static_cast<ProcessId>(i));
        summaries_[j].push_back(s);
      }
    }
  }
}

bool ShareGraph::has_edge(ProcessId i, ProcessId j) const {
  if (i == j) return false;
  const auto& adj = neighbours(i);
  return std::binary_search(adj.begin(), adj.end(), j);
}

std::vector<VarId> ShareGraph::label(ProcessId i, ProcessId j) const {
  PARDSM_CHECK(i >= 0 && static_cast<std::size_t>(i) < var_sets_.size() &&
                   j >= 0 && static_cast<std::size_t>(j) < var_sets_.size(),
               "label: bad process");
  std::vector<VarId> out;
  std::set_intersection(var_sets_[static_cast<std::size_t>(i)].begin(),
                        var_sets_[static_cast<std::size_t>(i)].end(),
                        var_sets_[static_cast<std::size_t>(j)].begin(),
                        var_sets_[static_cast<std::size_t>(j)].end(),
                        std::back_inserter(out));
  return out;
}

const std::vector<ProcessId>& ShareGraph::neighbours(ProcessId i) const {
  PARDSM_CHECK(i >= 0 && static_cast<std::size_t>(i) < adjacency_.size(),
               "neighbours: bad process");
  return adjacency_[static_cast<std::size_t>(i)];
}

const std::vector<ShareGraph::EdgeSummary>& ShareGraph::edge_summaries(
    ProcessId i) const {
  PARDSM_CHECK(i >= 0 && static_cast<std::size_t>(i) < summaries_.size(),
               "edge_summaries: bad process");
  return summaries_[static_cast<std::size_t>(i)];
}

const std::vector<ProcessId>& ShareGraph::clique(VarId x) const {
  PARDSM_CHECK(x >= 0 && static_cast<std::size_t>(x) < cliques_.size(),
               "clique: bad variable");
  return cliques_[static_cast<std::size_t>(x)];
}

std::size_t ShareGraph::edge_count() const {
  std::size_t twice = 0;
  for (const auto& adj : adjacency_) twice += adj.size();
  return twice / 2;
}

std::vector<std::vector<ProcessId>> ShareGraph::components() const {
  const std::size_t n = process_count();
  std::vector<int> comp(n, -1);
  int next = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    // BFS.
    std::vector<std::size_t> frontier{s};
    comp[s] = next;
    while (!frontier.empty()) {
      const std::size_t v = frontier.back();
      frontier.pop_back();
      for (ProcessId w : adjacency_[v]) {
        if (comp[static_cast<std::size_t>(w)] == -1) {
          comp[static_cast<std::size_t>(w)] = next;
          frontier.push_back(static_cast<std::size_t>(w));
        }
      }
    }
    ++next;
  }
  std::vector<std::vector<ProcessId>> out(static_cast<std::size_t>(next));
  for (std::size_t v = 0; v < n; ++v) {
    out[static_cast<std::size_t>(comp[v])].push_back(
        static_cast<ProcessId>(v));
  }
  return out;
}

std::string ShareGraph::to_dot() const {
  std::ostringstream os;
  os << "graph SG {\n";
  for (std::size_t p = 0; p < process_count(); ++p) {
    os << "  p" << p << ";\n";
  }
  for (std::size_t i = 0; i < process_count(); ++i) {
    for (ProcessId j : adjacency_[i]) {
      if (static_cast<std::size_t>(j) <= i) continue;
      os << "  p" << i << " -- p" << j << " [label=\"";
      bool first = true;
      for (VarId x : label(static_cast<ProcessId>(i), j)) {
        if (!first) os << ',';
        first = false;
        os << 'x' << x;
      }
      os << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace pardsm::graph
