#include "simnet/socket_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "simnet/check.h"
#include "simnet/rng.h"
#include "simnet/wire.h"

namespace pardsm {

namespace {

/// Frame types on the wire: [u32 length][u8 type][payload...].
enum FrameType : std::uint8_t {
  kFrameHello = 1,      ///< i32 from, u64 incarnation
  kFrameMsg = 2,        ///< i32 from, i32 to, u64 id, meta, body
  kFrameHeartbeat = 3,  ///< i32 from
  kFrameControl = 4,    ///< i32 from, i32 to, u32 code, u64 arg
};

/// Chaos / jitter stream tags (counter_rng).
constexpr std::uint64_t kChaosStreamTag = 0xC4A05;
constexpr std::uint64_t kDialJitterTag = 0xD1A1;

/// Upper bound on one frame — a corrupt length prefix must not drive a
/// multi-gigabyte allocation.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Prefix `payload` with its little-endian u32 length.
std::vector<std::uint8_t> length_prefixed(std::vector<std::uint8_t> payload) {
  PARDSM_CHECK(payload.size() <= kMaxFrameBytes, "socket: frame too large");
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Parse "host:port" into a sockaddr_in.  Returns false on malformed input.
bool parse_addr(const std::string& host_port, sockaddr_in* out) {
  const auto colon = host_port.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = host_port.substr(0, colon);
  const int port = std::atoi(host_port.c_str() + colon + 1);
  if (port < 0 || port > 65535) return false;
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

/// Read exactly `size` bytes; false on EOF/error.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketTransport::SocketTransport(SocketOptions options)
    : options_(std::move(options)), start_time_(std::chrono::steady_clock::now()) {
  PARDSM_CHECK(options_.total_processes > 0, "sockets: need total_processes");
  PARDSM_CHECK(options_.total_processes <= 1024,
               "sockets: at most 1024 processes");
  PARDSM_CHECK(options_.heartbeat_timeout.us > options_.heartbeat_period.us,
               "sockets: heartbeat_timeout must exceed heartbeat_period");
  const std::size_t n = options_.total_processes;
  if (options_.local_ids.empty()) {
    for (std::size_t p = 0; p < n; ++p) {
      options_.local_ids.push_back(static_cast<ProcessId>(p));
    }
  }
  options_.addrs.resize(n);
  rates_ = std::vector<PairRates>(n * n);
  severed_ = std::make_unique<std::atomic<bool>[]>(n * n);
  down_ = std::make_unique<std::atomic<bool>[]>(n);
  for (std::size_t i = 0; i < n * n; ++i) severed_[i].store(false);
  for (std::size_t i = 0; i < n; ++i) down_[i].store(false);
  peers_.resize(n);
  stats_.resize(n);
}

SocketTransport::~SocketTransport() {
  if (running_.load()) stop();
}

bool SocketTransport::is_local(ProcessId p) const {
  return local_index_.count(p) > 0;
}

std::size_t SocketTransport::local_index(ProcessId p) const {
  auto it = local_index_.find(p);
  PARDSM_CHECK(it != local_index_.end(), "sockets: not a local process");
  return it->second;
}

ProcessId SocketTransport::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  PARDSM_CHECK(!running_.load(), "add_endpoint: already started");
  PARDSM_CHECK(endpoints_.size() < options_.local_ids.size(),
               "add_endpoint: more endpoints than local_ids");
  const ProcessId assigned = options_.local_ids[endpoints_.size()];
  endpoints_.push_back(ep);
  mailboxes_.push_back(std::make_unique<Mailbox>());
  local_ids_.push_back(assigned);
  local_index_[assigned] = endpoints_.size() - 1;
  return assigned;
}

void SocketTransport::set_peer_addr(ProcessId p, std::string host_port) {
  PARDSM_CHECK(!running_.load(), "set_peer_addr: already started");
  PARDSM_CHECK(p >= 0 &&
                   static_cast<std::size_t>(p) < options_.total_processes,
               "set_peer_addr: bad process");
  options_.addrs[static_cast<std::size_t>(p)] = std::move(host_port);
}

void SocketTransport::start() {
  PARDSM_CHECK(!running_.exchange(true), "start: already running");
  PARDSM_CHECK(endpoints_.size() == options_.local_ids.size(),
               "start: not all local endpoints registered");

  // Listener: inherited fd (bootstrap respawn path) or bind our own.
  if (options_.listen_fd >= 0) {
    own_listen_fd_ = options_.listen_fd;
  } else {
    own_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    PARDSM_CHECK(own_listen_fd_ >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(own_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    if (options_.listen_addr.empty()) {
      addr.sin_family = AF_INET;
      addr.sin_port = 0;
      inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    } else {
      PARDSM_CHECK(parse_addr(options_.listen_addr, &addr),
                   "sockets: bad listen_addr");
    }
    PARDSM_CHECK(::bind(own_listen_fd_,
                        reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind() failed");
    PARDSM_CHECK(::listen(own_listen_fd_, 128) == 0, "listen() failed");
  }
  {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    PARDSM_CHECK(::getsockname(own_listen_fd_,
                               reinterpret_cast<sockaddr*>(&bound),
                               &len) == 0,
                 "getsockname() failed");
    listen_port_ = ntohs(bound.sin_port);
  }

  start_time_ = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(peers_mu_);
    for (auto& p : peers_) {
      p.last_rx = start_time_;
      p.up = true;
    }
  }

  // One outbound channel per (local sender, any receiver).
  for (ProcessId from : local_ids_) {
    const auto n = static_cast<ProcessId>(options_.total_processes);
    for (ProcessId to = 0; to < n; ++to) {
      if (to == from) continue;
      auto ch = std::make_unique<OutChannel>();
      ch->from = from;
      ch->to = to;
      channel_by_pair_[pair_index(from, to)] = ch.get();
      channels_.push_back(std::move(ch));
    }
  }

  for (std::size_t i = 0; i < mailboxes_.size(); ++i) {
    mailboxes_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
  for (auto& ch : channels_) {
    OutChannel* raw = ch.get();
    raw->writer = std::thread([this, raw] { writer_loop(*raw); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  detector_ = std::thread([this] { detector_loop(); });
}

void SocketTransport::stop() {
  if (!running_.exchange(false)) return;

  // Break the acceptor.
  if (own_listen_fd_ >= 0) {
    ::shutdown(own_listen_fd_, SHUT_RDWR);
    ::close(own_listen_fd_);
  }
  // Break blocked readers.
  {
    std::lock_guard lock(readers_mu_);
    for (int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Wake writers and workers.
  for (auto& ch : channels_) {
    std::lock_guard lock(ch->mu);
    ch->cv.notify_all();
  }
  for (auto& mb : mailboxes_) {
    std::lock_guard lock(mb->mu);
    mb->cv.notify_all();
  }

  if (acceptor_.joinable()) acceptor_.join();
  if (detector_.joinable()) detector_.join();
  for (auto& ch : channels_) {
    if (ch->writer.joinable()) ch->writer.join();
  }
  {
    std::lock_guard lock(readers_mu_);
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    for (int fd : reader_fds_) ::close(fd);
    readers_.clear();
    reader_fds_.clear();
  }
  for (auto& mb : mailboxes_) {
    if (mb->worker.joinable()) mb->worker.join();
  }
  own_listen_fd_ = -1;
}

bool SocketTransport::await_quiescence(std::chrono::milliseconds timeout) {
  std::unique_lock lock(quiesce_mu_);
  return quiesce_cv_.wait_for(lock, timeout,
                              [this] { return pending_.load() == 0; });
}

bool SocketTransport::drain(std::chrono::milliseconds idle,
                            std::chrono::milliseconds timeout) {
  const auto deadline = steady_now() + timeout;
  std::uint64_t last = activity_.load();
  auto last_change = steady_now();
  while (steady_now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t cur = activity_.load();
    const auto t = steady_now();
    if (cur != last) {
      last = cur;
      last_change = t;
      continue;
    }
    if (t - last_change < idle) continue;
    // The idle window also requires empty mailboxes and channel queues.
    bool busy = false;
    for (auto& mb : mailboxes_) {
      std::lock_guard lock(mb->mu);
      if (!mb->messages.empty() || !mb->tasks.empty()) busy = true;
    }
    for (auto& ch : channels_) {
      std::lock_guard lock(ch->mu);
      if (!ch->queue.empty()) busy = true;
    }
    if (!busy) return true;
  }
  return false;
}

void SocketTransport::post(ProcessId who, std::function<void()> task) {
  const std::size_t idx = local_index(who);
  pending_.fetch_add(1);
  auto& mb = *mailboxes_[idx];
  {
    std::lock_guard lock(mb.mu);
    mb.tasks.push_back(std::move(task));
  }
  mb.cv.notify_one();
}

void SocketTransport::send(ProcessId from, ProcessId to, BodyRef body,
                           MessageMeta meta) {
  PARDSM_CHECK(to >= 0 &&
                   static_cast<std::size_t>(to) < options_.total_processes,
               "send: bad destination");
  PARDSM_CHECK(is_local(from), "send: sender not hosted here");
  note_activity();

  Message m;
  m.from = from;
  m.to = to;
  m.body = std::move(body);
  m.meta = std::move(meta);
  m.id = next_msg_id_.fetch_add(1);
  m.send_time = now();
  stats_.on_send(m);

  // Scenario faults: severed pair / down process drop at the sender.
  if (severed_[pair_index(from, to)].load(std::memory_order_relaxed)) {
    std::lock_guard lock(counters_mu_);
    ++drops_.severed;
    return;
  }
  if (down_[static_cast<std::size_t>(from)].load(std::memory_order_relaxed) ||
      down_[static_cast<std::size_t>(to)].load(std::memory_order_relaxed)) {
    std::lock_guard lock(counters_mu_);
    ++drops_.down;
    return;
  }

  if (to == from) {
    // Self-delivery: straight to our own mailbox (no socket, no chaos).
    pending_.fetch_add(1);
    m.deliver_time = m.send_time;
    enqueue_local(to, std::move(m));
    return;
  }

  OutChannel* ch = channel_by_pair_.at(pair_index(from, to));

  // Chaos + scenario-rate decisions, drawn from a counter-based stream so
  // they depend on (seed, pair, frame index) only.  All sends on a given
  // pair originate on the sender's mailbox thread, so the per-channel
  // counter needs no lock.
  int copies = 1;
  Duration delay{};
  bool disconnect = false;
  const PairRates& rates = rates_[pair_index(from, to)];
  const double loss_rate = std::min(
      1.0, options_.chaos.drop_probability +
               rates.loss.load(std::memory_order_relaxed));
  const double dup_rate = std::min(
      1.0, options_.chaos.duplicate_probability +
               rates.dup.load(std::memory_order_relaxed));
  if (options_.chaos.any() || loss_rate > 0.0 || dup_rate > 0.0) {
    Rng rng = counter_rng(options_.chaos.seed,
                          static_cast<std::uint64_t>(from),
                          static_cast<std::uint64_t>(to), ch->chaos_counter++,
                          kChaosStreamTag);
    if (rng.chance(loss_rate)) copies = 0;
    if (copies == 1 && rng.chance(dup_rate)) copies = 2;
    if (options_.chaos.delay_max.us > 0) {
      const std::int64_t span =
          options_.chaos.delay_max.us - options_.chaos.delay_min.us;
      delay = Duration{options_.chaos.delay_min.us +
                       (span > 0 ? static_cast<std::int64_t>(
                                       rng.below(
                                           static_cast<std::uint64_t>(span) +
                                           1))
                                 : 0)};
    }
    disconnect = rng.chance(options_.chaos.disconnect_probability);
  }
  if (copies == 0) {
    std::lock_guard lock(counters_mu_);
    ++drops_.loss;
    ++counters_.chaos_drops;
    return;
  }

  // Serialize once: [type][from][to][id][meta][body].
  WireWriter w;
  w.reserve(64);
  w.u8(kFrameMsg);
  w.i32(from);
  w.i32(to);
  w.u64(m.id);
  wire::encode_meta(w, m.meta);
  wire::encode_body(w, *m.body);
  std::vector<std::uint8_t> frame = length_prefixed(w.take());

  const bool local_dest = is_local(to);
  const auto earliest = steady_now() + std::chrono::microseconds(delay.us);
  {
    std::lock_guard lock(counters_mu_);
    if (copies == 2) ++counters_.chaos_duplicates;
    if (delay.us > 0) ++counters_.chaos_delays;
    if (disconnect) ++counters_.chaos_disconnects;
  }
  for (int c = 0; c < copies; ++c) {
    QueuedFrame qf;
    qf.bytes = (c + 1 < copies) ? frame : std::move(frame);
    qf.earliest = earliest;
    // Local destinations are counted until the delivery handler returns;
    // remote ones until the bytes are on the wire.
    qf.counts_pending = !local_dest;
    qf.chaos_disconnect = disconnect && c + 1 == copies;
    pending_.fetch_add(1);
    enqueue_frame(*ch, std::move(qf));
  }
}

void SocketTransport::enqueue_frame(OutChannel& ch, QueuedFrame frame) {
  {
    std::lock_guard lock(ch.mu);
    ch.queue.push_back(std::move(frame));
  }
  ch.cv.notify_one();
}

void SocketTransport::enqueue_local(ProcessId to, Message m) {
  auto& mb = *mailboxes_[local_index(to)];
  {
    std::lock_guard lock(mb.mu);
    mb.messages.push_back(std::move(m));
  }
  mb.cv.notify_one();
}

TimePoint SocketTransport::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_time_;
  return TimePoint{
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()};
}

void SocketTransport::set_timer(ProcessId who, Duration delay, TimerTag tag) {
  auto& mb = *mailboxes_[local_index(who)];
  pending_.fetch_add(1);
  {
    std::lock_guard lock(mb.mu);
    mb.timers.push(TimerItem{steady_now() +
                                 std::chrono::microseconds(delay.us),
                             tag});
  }
  mb.cv.notify_one();
}

std::size_t SocketTransport::process_count() const {
  return options_.total_processes;
}

void SocketTransport::set_severed(ProcessId a, ProcessId b, bool severed) {
  severed_[pair_index(a, b)].store(severed, std::memory_order_relaxed);
}

void SocketTransport::set_down(ProcessId p, bool down) {
  down_[static_cast<std::size_t>(p)].store(down, std::memory_order_relaxed);
}

void SocketTransport::set_loss_rate(ProcessId a, ProcessId b, double rate) {
  rates_[pair_index(a, b)].loss.store(rate, std::memory_order_relaxed);
}

void SocketTransport::set_duplicate_rate(ProcessId a, ProcessId b,
                                         double rate) {
  rates_[pair_index(a, b)].dup.store(rate, std::memory_order_relaxed);
}

void SocketTransport::set_peer_callback(PeerCallback cb) {
  std::lock_guard lock(cb_mu_);
  peer_cb_ = std::move(cb);
}

bool SocketTransport::peer_up(ProcessId p) const {
  std::lock_guard lock(peers_mu_);
  return peers_[static_cast<std::size_t>(p)].up;
}

std::uint64_t SocketTransport::peer_incarnation(ProcessId p) const {
  std::lock_guard lock(peers_mu_);
  return peers_[static_cast<std::size_t>(p)].incarnation;
}

void SocketTransport::set_control_callback(ControlCallback cb) {
  std::lock_guard lock(cb_mu_);
  control_cb_ = std::move(cb);
}

void SocketTransport::send_control(ProcessId to, std::uint32_t code,
                                   std::uint64_t arg) {
  PARDSM_CHECK(!local_ids_.empty(), "send_control: no local process");
  const ProcessId from = local_ids_.front();
  if (to == from || is_local(to)) {
    // Local control short-circuits (the bootstrap barrier also runs
    // all-local in tests).
    ControlCallback cb;
    {
      std::lock_guard lock(cb_mu_);
      cb = control_cb_;
    }
    if (cb) cb(from, code, arg);
    return;
  }
  WireWriter w;
  w.reserve(32);
  w.u8(kFrameControl);
  w.i32(from);
  w.i32(to);
  w.u32(code);
  w.u64(arg);
  QueuedFrame qf;
  qf.bytes = length_prefixed(w.take());
  qf.earliest = steady_now();
  qf.counts_pending = false;
  OutChannel* ch = channel_by_pair_.at(pair_index(from, to));
  enqueue_frame(*ch, std::move(qf));
}

std::uint16_t SocketTransport::port() const { return listen_port_; }

DropCounters SocketTransport::drops() const {
  std::lock_guard lock(counters_mu_);
  return drops_;
}

SocketCounters SocketTransport::counters() const {
  std::lock_guard lock(counters_mu_);
  return counters_;
}

// -- writer side -------------------------------------------------------------

bool SocketTransport::write_all(int fd, const std::uint8_t* data,
                                std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool SocketTransport::ensure_connected(OutChannel& ch) {
  while (running_.load()) {
    if (ch.fd >= 0) return true;
    {
      std::lock_guard lock(counters_mu_);
      ++counters_.dials;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    bool ok = fd >= 0;
    if (ok) {
      sockaddr_in addr{};
      const std::string& target =
          options_.addrs[static_cast<std::size_t>(ch.to)];
      if (target.empty()) {
        // All-local shape: everyone lives behind our own listener.
        addr.sin_family = AF_INET;
        addr.sin_port = htons(listen_port_);
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      } else {
        ok = parse_addr(target, &addr);
      }
      ok = ok && ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    }
    if (ok) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Announce ourselves before any data frame.
      WireWriter w;
      w.reserve(16);
      w.u8(kFrameHello);
      w.i32(ch.from);
      w.u64(options_.incarnation);
      const auto hello = length_prefixed(w.take());
      ok = write_all(fd, hello.data(), hello.size());
    }
    if (ok) {
      if (ch.was_connected) {
        std::lock_guard lock(counters_mu_);
        ++counters_.reconnects;
      }
      ch.was_connected = true;
      ch.dial_attempts = 0;
      ch.fd = fd;
      return true;
    }
    if (fd >= 0) ::close(fd);

    // Capped exponential backoff with deterministic jitter before the next
    // attempt.  The jitter draw is keyed on (seed, pair, attempt index),
    // not on wall time, so a run's dial schedule is reproducible.
    const std::uint64_t attempt = ch.dial_attempts++;
    double backoff_us =
        static_cast<double>(options_.dial_backoff_base.us);
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(attempt, 32); ++i) {
      backoff_us *= std::max(options_.dial_backoff_factor, 1.0);
      if (backoff_us >=
          static_cast<double>(options_.dial_backoff_max.us)) {
        break;
      }
    }
    backoff_us = std::min(backoff_us,
                          static_cast<double>(options_.dial_backoff_max.us));
    if (options_.dial_jitter > 0.0) {
      Rng rng = counter_rng(options_.backoff_seed,
                            static_cast<std::uint64_t>(ch.from),
                            static_cast<std::uint64_t>(ch.to),
                            ch.jitter_counter++, kDialJitterTag);
      backoff_us *= 1.0 + options_.dial_jitter * (2.0 * rng.uniform01() - 1.0);
    }
    std::unique_lock lock(ch.mu);
    ch.cv.wait_for(lock,
                   std::chrono::microseconds(
                       std::max<std::int64_t>(
                           static_cast<std::int64_t>(backoff_us), 100)),
                   [this] { return !running_.load(); });
  }
  return false;
}

void SocketTransport::writer_loop(OutChannel& ch) {
  const auto heartbeat =
      std::chrono::microseconds(options_.heartbeat_period.us);
  // Force an immediate first heartbeat: it dials the connection eagerly.
  auto last_write = steady_now() - heartbeat;

  while (running_.load()) {
    bool frame_ready = false;
    {
      std::unique_lock lock(ch.mu);
      const auto wake = [&] {
        if (!running_.load()) return true;
        if (!ch.queue.empty() && ch.queue.front().earliest <= steady_now()) {
          return true;
        }
        return steady_now() - last_write >= heartbeat;
      };
      while (!wake()) {
        auto deadline = last_write + heartbeat;
        if (!ch.queue.empty() && ch.queue.front().earliest < deadline) {
          deadline = ch.queue.front().earliest;
        }
        ch.cv.wait_until(lock, deadline);
      }
      if (!running_.load()) break;
      frame_ready =
          !ch.queue.empty() && ch.queue.front().earliest <= steady_now();
    }

    if (!ensure_connected(ch)) break;

    if (frame_ready) {
      QueuedFrame qf;
      {
        std::lock_guard lock(ch.mu);
        if (ch.queue.empty()) continue;
        qf = std::move(ch.queue.front());
        ch.queue.pop_front();
      }
      // Count the frame before writing it: once the bytes hit the wire
      // the receiver side may observe (and even quiesce on) the delivery
      // before this thread runs again, and counters must already agree.
      {
        std::lock_guard lock(counters_mu_);
        ++counters_.frames_sent;
        counters_.bytes_sent += qf.bytes.size();
      }
      if (!write_all(ch.fd, qf.bytes.data(), qf.bytes.size())) {
        // Broken connection: retain the frame at the front, un-count it
        // (it will be re-counted when the rewrite succeeds), reconnect.
        {
          std::lock_guard lock(counters_mu_);
          --counters_.frames_sent;
          counters_.bytes_sent -= qf.bytes.size();
        }
        ::close(ch.fd);
        ch.fd = -1;
        std::lock_guard lock(ch.mu);
        ch.queue.push_front(std::move(qf));
        continue;
      }
      last_write = steady_now();
      if (qf.counts_pending) finish_item();
      if (qf.chaos_disconnect) {
        // Injected mid-stream disconnect: the frame itself was written.
        ::close(ch.fd);
        ch.fd = -1;
      }
      continue;
    }

    // Idle: keep the channel warm (and the peer's failure detector fed).
    WireWriter w;
    w.reserve(8);
    w.u8(kFrameHeartbeat);
    w.i32(ch.from);
    const auto beat = length_prefixed(w.take());
    if (write_all(ch.fd, beat.data(), beat.size())) {
      last_write = steady_now();
      std::lock_guard lock(counters_mu_);
      ++counters_.heartbeats_sent;
      counters_.bytes_sent += beat.size();
    } else {
      ::close(ch.fd);
      ch.fd = -1;
    }
  }
  if (ch.fd >= 0) {
    ::close(ch.fd);
    ch.fd = -1;
  }
}

// -- reader side -------------------------------------------------------------

void SocketTransport::acceptor_loop() {
  while (running_.load()) {
    const int fd = ::accept(own_listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(readers_mu_);
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    reader_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void SocketTransport::reader_loop(int fd) {
  std::vector<std::uint8_t> payload;
  while (running_.load()) {
    std::uint8_t len_bytes[4];
    if (!read_all(fd, len_bytes, 4)) return;
    const std::uint32_t len =
        static_cast<std::uint32_t>(len_bytes[0]) |
        (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
        (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
        (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (len > kMaxFrameBytes) return;  // corrupt stream: drop connection
    payload.resize(len);
    if (!read_all(fd, payload.data(), len)) return;
    {
      std::lock_guard lock(counters_mu_);
      counters_.bytes_received += 4 + len;
    }
    try {
      handle_frame(payload);
    } catch (const std::exception&) {
      // Undecodable frame (truncated, unknown tag, foreign destination):
      // drop the connection rather than the whole process — the sender
      // will reconnect and the ARQ/RSYNC layers repair the stream.
      return;
    }
  }
}

void SocketTransport::handle_frame(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  const std::uint8_t type = r.u8();
  switch (type) {
    case kFrameHello: {
      const ProcessId from = r.i32();
      const std::uint64_t inc = r.u64();
      note_rx(from, inc, /*is_hello=*/true);
      return;
    }
    case kFrameHeartbeat: {
      const ProcessId from = r.i32();
      {
        std::lock_guard lock(counters_mu_);
        ++counters_.heartbeats_received;
      }
      note_rx(from, 0, /*is_hello=*/false);
      return;
    }
    case kFrameMsg: {
      Message m;
      m.from = r.i32();
      m.to = r.i32();
      m.id = r.u64();
      m.meta = wire::decode_meta(r);
      m.body = wire::decode_body(r, arena_);
      PARDSM_CHECK(is_local(m.to), "sockets: frame for a foreign process");
      note_rx(m.from, 0, /*is_hello=*/false);
      note_activity();
      {
        std::lock_guard lock(counters_mu_);
        ++counters_.frames_received;
      }
      m.send_time = now();  // wall receive time; latency is not modelled
      m.deliver_time = m.send_time;
      // A frame from a remote OS process was never counted by our send();
      // one from a local sender (loopback) was.
      if (!is_local(m.from)) pending_.fetch_add(1);
      enqueue_local(m.to, std::move(m));
      return;
    }
    case kFrameControl: {
      const ProcessId from = r.i32();
      const ProcessId to = r.i32();
      const std::uint32_t code = r.u32();
      const std::uint64_t arg = r.u64();
      PARDSM_CHECK(is_local(to), "sockets: control for a foreign process");
      note_rx(from, 0, /*is_hello=*/false);
      note_activity();
      ControlCallback cb;
      {
        std::lock_guard lock(cb_mu_);
        cb = control_cb_;
      }
      if (cb) cb(from, code, arg);
      return;
    }
    default:
      PARDSM_CHECK(false, "sockets: unknown frame type");
  }
}

void SocketTransport::note_rx(ProcessId from, std::uint64_t incarnation,
                              bool is_hello) {
  if (from < 0 ||
      static_cast<std::size_t>(from) >= options_.total_processes) {
    return;
  }
  bool came_up = false;
  std::uint64_t inc = 0;
  {
    std::lock_guard lock(peers_mu_);
    PeerState& p = peers_[static_cast<std::size_t>(from)];
    p.last_rx = steady_now();
    if (is_hello && incarnation > p.incarnation) p.incarnation = incarnation;
    if (!p.up) {
      p.up = true;
      came_up = true;
    }
    inc = p.incarnation;
  }
  if (came_up) {
    {
      std::lock_guard lock(counters_mu_);
      ++counters_.peer_up_events;
    }
    PeerCallback cb;
    {
      std::lock_guard lock(cb_mu_);
      cb = peer_cb_;
    }
    if (cb) cb(from, true, inc);
  }
}

void SocketTransport::detector_loop() {
  const auto timeout =
      std::chrono::microseconds(options_.heartbeat_timeout.us);
  const auto tick = std::chrono::microseconds(
      std::max<std::int64_t>(options_.heartbeat_period.us / 2, 1000));
  while (running_.load()) {
    std::this_thread::sleep_for(tick);
    if (!running_.load()) return;
    const auto t = steady_now();
    for (std::size_t p = 0; p < options_.total_processes; ++p) {
      if (is_local(static_cast<ProcessId>(p))) continue;
      bool went_down = false;
      std::uint64_t inc = 0;
      {
        std::lock_guard lock(peers_mu_);
        PeerState& ps = peers_[p];
        if (ps.up && t - ps.last_rx > timeout) {
          ps.up = false;
          went_down = true;
          inc = ps.incarnation;
        }
      }
      if (went_down) {
        {
          std::lock_guard lock(counters_mu_);
          ++counters_.peer_down_events;
        }
        PeerCallback cb;
        {
          std::lock_guard lock(cb_mu_);
          cb = peer_cb_;
        }
        if (cb) cb(static_cast<ProcessId>(p), false, inc);
      }
    }
  }
}

// -- mailbox workers ---------------------------------------------------------

void SocketTransport::finish_item() {
  if (pending_.fetch_sub(1) == 1) {
    std::lock_guard lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void SocketTransport::worker_loop(std::size_t local_idx) {
  auto& mb = *mailboxes_[local_idx];
  Endpoint* ep = endpoints_[local_idx];

  std::unique_lock lock(mb.mu);
  while (true) {
    const auto has_work = [&] {
      if (!running_.load()) return true;
      if (!mb.messages.empty() || !mb.tasks.empty()) return true;
      return !mb.timers.empty() &&
             mb.timers.top().deadline <= std::chrono::steady_clock::now();
    };

    while (!has_work()) {
      if (mb.timers.empty()) {
        mb.cv.wait(lock);
      } else {
        mb.cv.wait_until(lock, mb.timers.top().deadline);
      }
    }

    if (!running_.load()) break;

    if (!mb.tasks.empty()) {
      auto task = std::move(mb.tasks.front());
      mb.tasks.pop_front();
      lock.unlock();
      task();
      note_activity();
      finish_item();
      lock.lock();
      continue;
    }

    if (!mb.messages.empty()) {
      Message m = std::move(mb.messages.front());
      mb.messages.pop_front();
      lock.unlock();
      if (down_[static_cast<std::size_t>(m.to)].load(
              std::memory_order_relaxed)) {
        // Fail-pause window (scenario set_down): suppress the delivery
        // *below* the decorator shims, like the simulator's network does.
        // The ARQ layer never sees (or acks) the message, so it repairs
        // it after recovery — an op in flight at crash completes late
        // instead of losing its response above the reliable layer.
        std::lock_guard counters_lock(counters_mu_);
        ++drops_.down;
      } else {
        stats_.on_deliver(m);
        ep->on_message(m);
      }
      note_activity();
      finish_item();
      lock.lock();
      continue;
    }

    if (!mb.timers.empty() &&
        mb.timers.top().deadline <= std::chrono::steady_clock::now()) {
      const TimerTag tag = mb.timers.top().tag;
      mb.timers.pop();
      lock.unlock();
      ep->on_timer(tag);
      note_activity();
      finish_item();
      lock.lock();
      continue;
    }
  }
}

}  // namespace pardsm
