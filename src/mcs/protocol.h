// Protocol framework: the MCS process abstraction.
//
// An McsProcess pairs with one application process: the application calls
// read()/write() (asynchronous, callback-based — wait-free protocols
// complete them synchronously before returning), the MCS process exchanges
// messages with its peers through the Transport to keep replicas
// consistent, and every completed operation is recorded for post-hoc
// checking.
//
// The asynchronous operation API is what lets the same protocol code run
// under the single-threaded discrete-event simulator (where a blocking
// call would deadlock the event loop) and under the thread runtime.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mcs/recorder.h"
#include "mcs/replica_store.h"
#include "sharegraph/share_graph.h"
#include "simnet/check.h"
#include "simnet/stats.h"
#include "simnet/transport.h"

namespace pardsm::mcs {

/// Completion callback of a read (receives the value returned).
using ReadCallback = std::function<void(Value)>;

/// Completion callback of a write.
using WriteCallback = std::function<void()>;

/// Protocol-internal counters (beyond NetworkStats).
struct ProtocolStats {
  std::uint64_t local_reads = 0;    ///< reads served from the local replica
  std::uint64_t remote_reads = 0;   ///< reads that required a round trip
  std::uint64_t writes = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_buffered = 0;  ///< delayed for causal readiness
  std::uint64_t max_buffer_depth = 0;
};

/// Base class of every memory-consistency protocol instance (one per
/// process).
class McsProcess : public Endpoint {
 public:
  /// `dist` and `recorder` must outlive the process; `transport` is wired
  /// afterwards via attach() because process ids are assigned by the
  /// runtime at registration time.
  McsProcess(ProcessId self, const graph::Distribution& dist,
             HistoryRecorder& recorder)
      : self_(self),
        dist_(dist),
        recorder_(recorder),
        store_(dist.per_process.at(static_cast<std::size_t>(self))) {}

  /// Wire the transport (after runtime registration).
  void attach(Transport& transport) { transport_ = &transport; }

  /// Asynchronous read of x; `done` receives the value.  Calling read on a
  /// variable outside X_i is a programming error (partial replication
  /// means the application only accesses its own variables).
  virtual void read(VarId x, ReadCallback done) = 0;

  /// Asynchronous write of v to x.
  virtual void write(VarId x, Value v, WriteCallback done) = 0;

  /// Human-readable protocol name.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True if this protocol serves reads and writes without waiting for the
  /// network (the paper's wait-free local-access property, §3.3).
  [[nodiscard]] virtual bool wait_free() const = 0;

  [[nodiscard]] ProcessId id() const { return self_; }
  [[nodiscard]] const ProtocolStats& stats() const { return pstats_; }
  [[nodiscard]] const ReplicaStore& store() const { return store_; }
  [[nodiscard]] bool replicates(VarId x) const { return store_.holds(x); }

 protected:
  [[nodiscard]] Transport& transport() {
    PARDSM_CHECK(transport_ != nullptr, "McsProcess used before attach()");
    return *transport_;
  }
  [[nodiscard]] TimePoint now() const {
    return transport_ ? transport_->now() : TimePoint{};
  }
  [[nodiscard]] const graph::Distribution& distribution() const {
    return dist_;
  }
  [[nodiscard]] HistoryRecorder& recorder() { return recorder_; }
  [[nodiscard]] ReplicaStore& mutable_store() { return store_; }
  [[nodiscard]] ProtocolStats& mutable_stats() { return pstats_; }

  /// Serve a read from the local replica, recording it.  Shared by all
  /// wait-free protocols.
  void local_read(VarId x, const ReadCallback& done) {
    PARDSM_CHECK(store_.holds(x),
                 "application read of a variable outside X_i");
    const Stored& s = store_.get(x);
    ++pstats_.local_reads;
    const TimePoint t = now();
    recorder_.record_read(self_, x, s.value, s.source, t, t);
    done(s.value);
  }

 private:
  ProcessId self_;
  const graph::Distribution& dist_;
  HistoryRecorder& recorder_;
  ReplicaStore store_;
  ProtocolStats pstats_;
  Transport* transport_ = nullptr;
};

/// The protocols implemented in this repository.  The last two are the
/// repository's extensions toward the paper's open question (conclusion):
/// criteria other than / stronger than PRAM that still admit efficient
/// partial replication.
enum class ProtocolKind {
  kAtomicHome,          ///< linearizable, home-based RPC
  kSequencerSC,         ///< sequentially consistent, sequencer total order
  kCausalFull,          ///< causal, full replication, vector clocks [3]
  kCausalPartialNaive,  ///< causal, partial replicas, global notifications
  kCausalPartialAdHoc,  ///< causal, partial replicas, hoop-routed metadata
  kPramPartial,         ///< PRAM, partial replicas (the paper's efficient case)
  kSlowPartial,         ///< slow memory, partial replicas
  kCachePartial,        ///< cache consistency, per-variable home sequencing
  kProcessorPartial,    ///< PRAM ∧ cache (processor consistency)
};

[[nodiscard]] const char* to_string(ProtocolKind k);

/// All protocol kinds, strongest criterion first.
[[nodiscard]] const std::vector<ProtocolKind>& all_protocols();

/// The weakest criterion each protocol is required to satisfy (used by
/// property tests: recorded histories must pass this checker and all
/// weaker ones).
enum class GuaranteeLevel {
  kAtomic,
  kSequential,
  kCausal,
  kProcessor,  ///< PRAM ∧ cache
  kPram,
  kCache,      ///< per-variable sequential consistency (incomparable to PRAM)
  kSlow,
};
[[nodiscard]] GuaranteeLevel guarantee_of(ProtocolKind k);

}  // namespace pardsm::mcs
