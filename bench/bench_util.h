// Shared helpers for the reproduction benches.
//
// Every bench binary prints the rows/series of the paper artifact it
// regenerates (EXPERIMENTS.md records them), then runs its
// google-benchmark timings.
#pragma once

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pardsm::benchutil {

/// Section banner.
inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Fixed-width row printer: first column 28 chars, rest 14.
inline void row(const std::vector<std::string>& cells) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << std::left << std::setw(i == 0 ? 28 : 14) << cells[i];
  }
  std::cout << os.str() << '\n';
}

/// Format helpers.
inline std::string num(std::uint64_t v) { return std::to_string(v); }
inline std::string num(double v, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}
inline std::string yesno(bool b) { return b ? "yes" : "NO"; }

/// Wall-clock of a closure in milliseconds.
template <typename F>
double time_ms(F&& fn) {
  const auto begin = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace pardsm::benchutil
