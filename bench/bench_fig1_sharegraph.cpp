// E1 — Figure 1: share graph construction.
//
// Prints the Figure 1 share graph (cliques, edges, labels) exactly as the
// paper describes it, then times share-graph construction across topology
// sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sharegraph/share_graph.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::graph;

void print_fig1(benchutil::Harness& h) {
  benchutil::banner("Figure 1: share graph of X_i={x1,x2}, X_j={x1}, X_k={x2}");
  const ShareGraph sg(topo::fig1());
  std::cout << sg.to_dot();
  benchutil::row({"clique", "members"});
  for (VarId x = 0; x < 2; ++x) {
    std::string members;
    for (ProcessId p : sg.clique(x)) members += "p" + std::to_string(p) + " ";
    benchutil::row({"C(x" + std::to_string(x + 1) + ")", members});
  }
  std::cout << "edges: " << sg.edge_count()
            << " (paper: (i,j) labelled x1; (i,k) labelled x2)\n";
  h.record({.label = "fig1",
            .distribution = "fig1",
            .extra = {{"edges", static_cast<double>(sg.edge_count())},
                      {"processes", static_cast<double>(sg.process_count())}}});

  // Construction cost across topology families (the same shapes the
  // google-benchmark section times, recorded once for the JSON trail).
  for (std::size_t n : {32u, 128u, 256u}) {
    const auto dist = topo::random_replication(n, 2 * n, 4, 7);
    double ms = 0;
    std::size_t edges = 0;
    ms = benchutil::time_ms([&] {
      const ShareGraph g(dist);
      edges = g.edge_count();
    });
    h.record({.label = "construct-random-" + std::to_string(n),
              .distribution = dist.name,
              .wall_ns = static_cast<std::uint64_t>(ms * 1e6),
              .extra = {{"edges", static_cast<double>(edges)},
                        {"wall_ms", ms}}});
  }
}

void BM_ShareGraphConstructRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dist = topo::random_replication(n, 2 * n, 4, 7);
  for (auto _ : state) {
    ShareGraph sg(dist);
    benchmark::DoNotOptimize(sg.edge_count());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShareGraphConstructRandom)->Range(8, 256)->Complexity();

void BM_ShareGraphConstructGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dist = topo::grid(n, n);
  for (auto _ : state) {
    ShareGraph sg(dist);
    benchmark::DoNotOptimize(sg.edge_count());
  }
}
BENCHMARK(BM_ShareGraphConstructGrid)->Range(2, 16);

void BM_CliqueQuery(benchmark::State& state) {
  const ShareGraph sg(topo::random_replication(128, 256, 4, 7));
  VarId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sg.clique(x));
    x = static_cast<VarId>((x + 1) % 256);
  }
}
BENCHMARK(BM_CliqueQuery);

void BM_LabelQuery(benchmark::State& state) {
  const ShareGraph sg(topo::random_replication(64, 128, 4, 7));
  ProcessId i = 0, j = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sg.label(i, j));
    i = static_cast<ProcessId>((i + 1) % 64);
    j = static_cast<ProcessId>((j + 3) % 64);
  }
}
BENCHMARK(BM_LabelQuery);

}  // namespace

int main(int argc, char** argv) {
  benchutil::Harness h(&argc, argv, "fig1_sharegraph");
  print_fig1(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
