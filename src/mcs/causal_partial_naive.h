// Causal consistency with partial replication — distribution-oblivious.
//
// Sound for *any* variable distribution, at the cost Theorem 1 proves
// unavoidable in that setting: every process must be told about every
// write.  Value payloads go only to C(x); all other processes receive a
// value-less NOTIFY carrying the same causal metadata, so the vector-clock
// delivery condition still sees every write.
//
// This is the honest implementation of the paper's observation that, when
// the distribution is not known a priori, "each process in the system has
// to transmit control information regarding all the shared data,
// contradicting scalability".
#pragma once

#include <deque>

#include "mcs/protocol.h"
#include "mcs/vector_clock.h"

namespace pardsm::mcs {

struct PartialCausalMsg;

/// One process of the naive partial-replication causal protocol.
class CausalPartialNaiveProcess final : public McsProcess {
 public:
  CausalPartialNaiveProcess(ProcessId self, const graph::Distribution& dist,
                            HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override {
    return "causal-partial-naive";
  }
  [[nodiscard]] bool wait_free() const override { return true; }

  [[nodiscard]] const VectorClock& clock() const { return vc_; }

 private:
  void try_deliver();

  /// Pool handle cached at attach() so each write is a freelist pop.
  BodyPool<PartialCausalMsg>* msg_pool_ = nullptr;
  VectorClock vc_;
  std::int64_t next_write_seq_ = 0;
  std::deque<Message> buffer_;
};

}  // namespace pardsm::mcs
