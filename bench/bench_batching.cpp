// S3 — protocol × replication × batching: what a coalescing window buys.
//
// The paper's efficiency results are statements about control-message and
// byte counts; batching/piggybacking is the classic orthogonal axis that
// amortizes exactly the per-message overhead those counts price.  This
// sweep runs every protocol on the three golden topologies with the
// batching layer at window {0, 1ms, 5ms} and reports, per cell, the
// message/byte reduction against the window-0 run of the identical
// workload plus the completion-latency price paid for it.  Expected
// shape:
//
//   chatty multicast protocols   : causal-full/naive/adhoc, pram, slow —
//     every write fans update frames out; successive writes inside a
//     window coalesce per destination, so messages drop steeply (well
//     past 20% at 5ms) at zero completion-latency cost (their ops are
//     wait-free: they complete locally).
//   RPC protocols                : atomic-home, sequencer, cache,
//     processor — requests/replies/commits are completion-blocking and
//     therefore urgent (never delayed); only background refresh traffic
//     batches, so the reduction is smaller and latency stays flat.
//   quiescence time              : grows by O(window) — the last updates
//     wait out their flush timer; the bench reports the delta.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

constexpr std::int64_t kWindowsUs[] = {0, 1000, 5000};

std::vector<Script> batching_scripts(const graph::Distribution& dist) {
  WorkloadSpec spec;
  spec.ops_per_process = 16;
  spec.read_fraction = 0.5;
  spec.seed = 42;
  spec.think_time = micros(500);  // writes spread across the windows
  return make_random_scripts(dist, spec);
}

ScenarioRunResult run_cell(ProtocolKind kind,
                           const graph::Distribution& dist,
                           const std::vector<Script>& scripts,
                           std::int64_t window_us) {
  EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.reliability = ReliabilityMode::kNever;
  config.batching.window = micros(window_us);
  return run(std::move(config));
}

/// Mean application-operation completion latency (ms) of a run.
double mean_op_latency_ms(const hist::History& h) {
  if (h.size() == 0) return 0.0;
  std::int64_t sum_us = 0;
  for (const auto& op : h.ops()) sum_us += (op.responded - op.invoked).us;
  return static_cast<double>(sum_us) / static_cast<double>(h.size()) / 1000.0;
}

struct NamedDist {
  const char* name;
  graph::Distribution dist;
};

std::vector<NamedDist> distributions() {
  std::vector<NamedDist> out;
  out.push_back({"ring-6", graph::topo::ring(6)});
  out.push_back({"open-chain-5", graph::topo::open_chain(5)});
  out.push_back({"rand-8p12v-r3",  // <= 13 chars: fits the table column
                 graph::topo::random_replication(8, 12, 3, 7)});
  return out;
}

void sweep(bu::Harness& h) {
  bu::banner("S3 batching sweep (16 ops/proc, 500us think, windows 0/1/5ms)");
  bu::row({"protocol", "distribution", "window", "msgs", "msg-red%",
           "bytes", "byte-red%", "finish-ms", "op-lat-ms"});

  for (const auto& [dist_name, dist] : distributions()) {
    const auto scripts = batching_scripts(dist);
    for (auto kind : all_protocols()) {
      double base_msgs = 0;
      double base_bytes = 0;
      double base_latency = 0;
      for (const std::int64_t window_us : kWindowsUs) {
        const auto r = run_cell(kind, dist, scripts, window_us);
        // wall_ns times a second, warm run of the identical deterministic
        // cell so the row measures the engine, not cold-start noise.
        const std::uint64_t wall_ns =
            bu::time_ns([&] { (void)run_cell(kind, dist, scripts,
                                             window_us); });

        const auto msgs = static_cast<double>(r.total_traffic.msgs_sent);
        const auto bytes =
            static_cast<double>(r.total_traffic.wire_bytes_sent());
        const double op_latency = mean_op_latency_ms(r.history);
        if (window_us == 0) {
          base_msgs = msgs;
          base_bytes = bytes;
          base_latency = op_latency;
        }
        const double msg_red =
            base_msgs > 0 ? 100.0 * (1.0 - msgs / base_msgs) : 0.0;
        const double byte_red =
            base_bytes > 0 ? 100.0 * (1.0 - bytes / base_bytes) : 0.0;

        std::string label = "w";
        label += bu::num(static_cast<std::uint64_t>(window_us / 1000));
        label += "ms";
        bu::row({to_string(kind), dist_name, label,
                 bu::num(r.total_traffic.msgs_sent), bu::num(msg_red, 1),
                 bu::num(r.total_traffic.wire_bytes_sent()),
                 bu::num(byte_red, 1),
                 bu::num(static_cast<double>(r.finished_at.us) / 1000.0, 1),
                 bu::num(op_latency, 2)});
        h.record(
            {.label = label,
             .protocol = to_string(kind),
             .distribution = dist_name,
             .ops = r.history.size(),
             .messages = r.total_traffic.msgs_sent,
             .bytes = r.total_traffic.wire_bytes_sent(),
             .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
             .wall_ns = wall_ns,
             .extra = {
                 {"window_ms", static_cast<double>(window_us) / 1000.0},
                 {"msg_reduction_pct", msg_red},
                 {"byte_reduction_pct", byte_red},
                 {"mean_op_latency_ms", op_latency},
                 {"op_latency_delta_ms", op_latency - base_latency},
                 {"batch_frames",
                  static_cast<double>(r.batching.frames_sent)},
                 {"batched_messages",
                  static_cast<double>(r.batching.messages_batched)},
             }});
      }
    }
  }
  std::cout << "(reductions vs the window-0 run of the identical workload; "
               "urgent RPC/commit traffic is never delayed, so op latency "
               "moves only where protocols are not wait-free)\n";
}

void BM_BatchedRun(benchmark::State& state, std::int64_t window_us) {
  const auto dist = graph::topo::ring(6);
  const auto scripts = batching_scripts(dist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cell(ProtocolKind::kCausalPartialAdHoc, dist,
                                      scripts, window_us));
  }
}
BENCHMARK_CAPTURE(BM_BatchedRun, window0, 0);
BENCHMARK_CAPTURE(BM_BatchedRun, window5ms, 5000);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "batching");
  sweep(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
