// pardsm_node — multi-process deployment bootstrap for the sockets root.
//
// Two roles in one binary:
//
//   pardsm_node --spawn [flags]
//     The orchestrating parent.  Builds a distribution and a
//     single-writer-per-variable workload, binds one loopback listening
//     socket per node (ports chosen by the kernel), writes one NodeSpec
//     file per node and fork/execs the children with their listening
//     sockets inherited.  Optionally SIGKILLs one node mid-run and
//     respawns it with a bumped incarnation on the *same* inherited
//     socket — the kernel backlog holds the peers' reconnect attempts
//     across the kill, so a rejoin needs no re-coordination.  Afterwards
//     it aggregates the children's result files, checks message/byte
//     conservation (lossless runs) and compares every node's final
//     replica state against a lossless sequential reference run of the
//     same workload on the simulator.  Exit 0 iff everything converged.
//
//   pardsm_node --node <spec> <result>
//     One node.  Parses the spec, instantiates its McsProcess above a
//     SocketTransport (local_ids = {node}), runs its script with
//     wall-clock think-time pacing, and participates in the DONE/FINISH
//     control-frame barrier: every node reports DONE to node 0 when its
//     script (and, after a respawn, its re-sync) completed; node 0
//     broadcasts FINISH when all n are done; everyone then drains and
//     writes its result file.  A respawned node announces itself with a
//     bumped incarnation, which clears its stale DONE at node 0 and
//     routes it through crash()/recover() + RSYNC before it re-runs its
//     script.
//
// See docs/DEPLOYMENT.md for a walkthrough.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mcs/engine.h"
#include "mcs/factory.h"
#include "mcs/node_config.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

// Barrier control frames (SocketTransport's out-of-band plane).
constexpr std::uint32_t kCtrlDone = 1;    ///< arg = sender's incarnation
constexpr std::uint32_t kCtrlFinish = 2;  ///< node 0 -> everyone

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  PARDSM_CHECK(in.good(), "pardsm_node: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  PARDSM_CHECK(out.good(), "pardsm_node: cannot write " + path);
  out << text;
  PARDSM_CHECK(out.good(), "pardsm_node: short write to " + path);
}

/// Run one closure on the mailbox thread owning `who` and wait for it.
void on_mailbox(SocketTransport& st, ProcessId who,
                const std::function<void()>& fn) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  st.post(who, [&] {
    fn();
    std::lock_guard<std::mutex> lk(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return done; });
}

// ---------------------------------------------------------------------------
// --node: one deployment participant.
// ---------------------------------------------------------------------------

/// Paced script runner: issues each operation on the owner mailbox after
/// sleeping its think-time delay on this (the main) thread, and waits for
/// the completion before moving on.  Wall-clock pacing is what stretches
/// a workload across a kill window.
void run_script(SocketTransport& st, McsProcess& proc, const Script& script) {
  std::mutex mu;
  std::condition_variable cv;
  bool op_done = false;
  for (const ScriptOp& op : script) {
    if (op.delay.us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(op.delay.us));
    }
    op_done = false;
    st.post(proc.id(), [&] {
      const auto complete = [&] {
        std::lock_guard<std::mutex> lk(mu);
        op_done = true;
        cv.notify_all();
      };
      if (op.kind == ScriptOp::Kind::kRead) {
        proc.read(op.var, [complete](Value) { complete(); });
      } else {
        proc.write(op.var, op.value, complete);
      }
    });
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return op_done; });
  }
}

int run_node(const std::string& spec_path, const std::string& result_path) {
  const NodeSpec spec = parse_node_spec(read_file(spec_path));
  const std::size_t n = spec.distribution.process_count();
  const auto me_id = spec.node;

  SocketTransport st(spec.sockets);
  HistoryRecorder recorder(n, spec.distribution.var_count);
  auto processes = make_processes(spec.protocol, spec.distribution, recorder);
  McsProcess& me = *processes[static_cast<std::size_t>(me_id)];
  const ProcessId assigned = st.add_endpoint(&me);
  PARDSM_CHECK(assigned == me_id, "pardsm_node: endpoint id mismatch");
  me.attach(st);

  // DONE/FINISH barrier state (node 0 coordinates; everyone waits).
  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  std::vector<bool> done(n, false);
  std::vector<std::uint64_t> inc_seen(n, 0);
  bool finish = false;
  st.set_control_callback(
      [&](ProcessId from, std::uint32_t code, std::uint64_t) {
        std::lock_guard<std::mutex> lk(barrier_mu);
        if (code == kCtrlDone) {
          done[static_cast<std::size_t>(from)] = true;
        } else if (code == kCtrlFinish) {
          finish = true;
        }
        barrier_cv.notify_all();
      });
  // A bumped incarnation is a respawned peer: its previous DONE (if any)
  // is stale — it must re-sync and re-run before the run can finish.
  st.set_peer_callback([&](ProcessId peer, bool up, std::uint64_t inc) {
    std::lock_guard<std::mutex> lk(barrier_mu);
    if (up && inc > inc_seen[static_cast<std::size_t>(peer)]) {
      if (inc_seen[static_cast<std::size_t>(peer)] > 0) {
        done[static_cast<std::size_t>(peer)] = false;
      }
      inc_seen[static_cast<std::size_t>(peer)] = inc;
    }
    barrier_cv.notify_all();
  });

  st.start();

  // A respawned node rejoins through the crash/recovery machinery: its
  // fresh replicas are re-synced from the share-graph neighbours before
  // the script re-runs (kill tests give the victim an idempotent script).
  if (spec.incarnation > 1) {
    on_mailbox(st, me_id, [&] {
      me.crash();
      me.recover();
    });
    bool resyncing = true;
    while (resyncing) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      on_mailbox(st, me_id, [&] { resyncing = me.resync_in_progress(); });
    }
  }

  run_script(st, me, spec.scripts[static_cast<std::size_t>(me_id)]);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(spec.drain_timeout_ms);
  if (me_id == 0) {
    {
      std::lock_guard<std::mutex> lk(barrier_mu);
      done[0] = true;
    }
    std::unique_lock<std::mutex> lk(barrier_mu);
    const bool all = barrier_cv.wait_until(lk, deadline, [&] {
      for (bool d : done) {
        if (!d) return false;
      }
      return true;
    });
    lk.unlock();
    if (!all) {
      std::cerr << "pardsm_node: node 0 timed out waiting for DONE\n";
    }
    for (std::size_t p = 1; p < n; ++p) {
      st.send_control(static_cast<ProcessId>(p), kCtrlFinish, 0);
    }
  } else {
    st.send_control(0, kCtrlDone, spec.incarnation);
    std::unique_lock<std::mutex> lk(barrier_mu);
    if (!barrier_cv.wait_until(lk, deadline, [&] { return finish; })) {
      std::cerr << "pardsm_node: node " << me_id
                << " timed out waiting for FINISH\n";
    }
  }

  // Settle: the barrier says every script completed, drain() says the
  // resulting traffic stopped moving.
  st.drain(std::chrono::milliseconds(spec.drain_idle_ms),
           std::chrono::milliseconds(spec.drain_timeout_ms));

  // Snapshot on the owner mailbox — replica state is owner-thread-only.
  std::vector<ReplicaEntry> replicas;
  RecoveryStats rstats;
  on_mailbox(st, me_id, [&] {
    for (VarId x : me.store().vars()) {
      const Stored& s = me.store().get(x);
      replicas.push_back({x, s.value, s.source});
    }
    rstats = me.recovery_stats();
  });

  const ProcessTraffic traffic = st.stats().total();
  const SocketCounters wire = st.counters();
  std::ostringstream out;
  out << "pardsm-node-result-v1\n";
  out << "node " << me_id << "\n";
  out << "incarnation " << spec.incarnation << "\n";
  out << "sent " << traffic.msgs_sent << " "
      << traffic.control_bytes_sent + traffic.payload_bytes_sent << "\n";
  out << "received " << traffic.msgs_received << " "
      << traffic.control_bytes_received + traffic.payload_bytes_received
      << "\n";
  out << "frames " << wire.frames_sent << " " << wire.frames_received << "\n";
  out << "heartbeats " << wire.heartbeats_sent << " "
      << wire.heartbeats_received << "\n";
  out << "dials " << wire.dials << "\n";
  out << "reconnects " << wire.reconnects << "\n";
  out << "peer_down " << wire.peer_down_events << "\n";
  out << "peer_up " << wire.peer_up_events << "\n";
  out << "resync_applied " << rstats.resync_values_applied << "\n";
  for (const ReplicaEntry& r : replicas) {
    out << "replica " << r.x << " " << r.value << " " << r.source.writer
        << " " << r.source.seq << "\n";
  }
  out << "end\n";
  write_file(result_path, out.str());

  st.stop();
  return 0;
}

// ---------------------------------------------------------------------------
// --spawn: the orchestrating parent.
// ---------------------------------------------------------------------------

struct SpawnOptions {
  std::string protocol = "pram-partial";
  std::size_t nodes = 3;
  std::size_t writes = 6;
  std::int64_t delay_us = 2000;
  ProcessId kill = kNoProcess;
  std::uint32_t kill_after_ms = 150;
  std::uint32_t respawn_after_ms = 400;
  double chaos_disconnect = 0.0;
  std::string dir = "/tmp";
  bool verbose = false;
};

/// One aggregated child result (parsed back from its result file).
struct NodeResult {
  std::uint64_t msgs_sent = 0, bytes_sent = 0;
  std::uint64_t msgs_received = 0, bytes_received = 0;
  std::uint64_t reconnects = 0, peer_down = 0, peer_up = 0;
  std::uint64_t resync_applied = 0;
  std::vector<ReplicaEntry> replicas;
};

NodeResult parse_result(const std::string& text) {
  NodeResult r;
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);
  PARDSM_CHECK(line == "pardsm-node-result-v1",
               "pardsm_node: bad result magic: " + line);
  while (std::getline(lines, line)) {
    std::istringstream in(line);
    std::string key;
    in >> key;
    if (key == "end") return r;
    if (key == "sent") {
      in >> r.msgs_sent >> r.bytes_sent;
    } else if (key == "received") {
      in >> r.msgs_received >> r.bytes_received;
    } else if (key == "reconnects") {
      in >> r.reconnects;
    } else if (key == "peer_down") {
      in >> r.peer_down;
    } else if (key == "peer_up") {
      in >> r.peer_up;
    } else if (key == "resync_applied") {
      in >> r.resync_applied;
    } else if (key == "replica") {
      ReplicaEntry e;
      in >> e.x >> e.value >> e.source.writer >> e.source.seq;
      r.replicas.push_back(e);
    }  // other keys are informational
    PARDSM_CHECK(!in.fail(), "pardsm_node: malformed result line: " + line);
  }
  PARDSM_CHECK(false, "pardsm_node: result file missing end line");
  return r;
}

/// Bind a loopback listener on a kernel-chosen port.  The fd is inherited
/// across fork/exec (no CLOEXEC) so children — and respawned children —
/// accept on the parent's binding.
int bind_listener(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PARDSM_CHECK(fd >= 0, "pardsm_node: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  PARDSM_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
                   0,
               "pardsm_node: bind() failed");
  PARDSM_CHECK(::listen(fd, 128) == 0, "pardsm_node: listen() failed");
  socklen_t len = sizeof(addr);
  PARDSM_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "pardsm_node: getsockname() failed");
  port_out = ntohs(addr.sin_port);
  return fd;
}

pid_t spawn_child(const std::string& exe, const std::string& spec_path,
                  const std::string& result_path) {
  const pid_t pid = ::fork();
  PARDSM_CHECK(pid >= 0, "pardsm_node: fork() failed");
  if (pid == 0) {
    ::execl(exe.c_str(), exe.c_str(), "--node", spec_path.c_str(),
            result_path.c_str(), static_cast<char*>(nullptr));
    std::perror("pardsm_node: execl");
    ::_exit(127);
  }
  return pid;
}

int run_spawn(const std::string& exe, const SpawnOptions& opt) {
  PARDSM_CHECK(opt.nodes >= 2 && opt.nodes <= 64,
               "pardsm_node: --nodes out of range");
  PARDSM_CHECK(opt.kill == kNoProcess ||
                   (opt.kill > 0 &&
                    static_cast<std::size_t>(opt.kill) < opt.nodes),
               "pardsm_node: --kill must name a non-coordinator node");
  const std::size_t n = opt.nodes;
  const ProtocolKind protocol = parse_protocol(opt.protocol);

  // Workload: full replication, one variable per process, single writer
  // per variable (so the final replica state is order-independent and
  // comparable against the sequential reference), then one cross-read.
  // The kill victim runs a long idempotent read loop instead — it can be
  // killed at any point and re-run from the top after its re-sync.
  graph::Distribution dist = graph::topo::complete(n, n);
  std::vector<Script> scripts(n);
  for (std::size_t p = 0; p < n; ++p) {
    const auto pid = static_cast<ProcessId>(p);
    if (pid == opt.kill) {
      for (std::size_t k = 0; k < 40; ++k) {
        scripts[p].push_back(ScriptOp::read(
            static_cast<VarId>(k % n), Duration{opt.delay_us * 10}));
      }
      continue;
    }
    for (std::size_t k = 0; k < opt.writes; ++k) {
      scripts[p].push_back(
          ScriptOp::write(static_cast<VarId>(p),
                          static_cast<Value>(1000 * p + k),
                          Duration{opt.delay_us}));
    }
    scripts[p].push_back(
        ScriptOp::read(static_cast<VarId>((p + 1) % n), Duration{opt.delay_us}));
  }

  // Listeners first: every child knows every peer's real port up front.
  std::vector<int> listen_fds(n);
  std::vector<std::string> addrs(n);
  for (std::size_t p = 0; p < n; ++p) {
    std::uint16_t port = 0;
    listen_fds[p] = bind_listener(port);
    addrs[p] = "127.0.0.1:" + std::to_string(port);
  }

  const std::string base =
      opt.dir + "/pardsm_node_" + std::to_string(::getpid());
  const auto spec_path = [&](std::size_t p) {
    return base + "_n" + std::to_string(p) + ".spec";
  };
  const auto result_path = [&](std::size_t p) {
    return base + "_n" + std::to_string(p) + ".result";
  };

  const auto make_spec = [&](std::size_t p, std::uint64_t incarnation) {
    NodeSpec spec;
    spec.protocol = protocol;
    spec.distribution = dist;
    spec.scripts = scripts;
    spec.addrs = addrs;
    spec.node = static_cast<ProcessId>(p);
    spec.incarnation = incarnation;
    spec.listen_fd = listen_fds[p];
    spec.sockets.chaos.disconnect_probability = opt.chaos_disconnect;
    return spec;
  };

  std::vector<pid_t> pids(n);
  for (std::size_t p = 0; p < n; ++p) {
    write_file(spec_path(p), serialize_node_spec(make_spec(p, 1)));
    ::unlink(result_path(p).c_str());
    pids[p] = spawn_child(exe, spec_path(p), result_path(p));
  }

  // The robustness drill: SIGKILL the victim mid-run, wait, respawn it
  // with a bumped incarnation on the same inherited listening socket.
  if (opt.kill != kNoProcess) {
    const auto v = static_cast<std::size_t>(opt.kill);
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.kill_after_ms));
    ::kill(pids[v], SIGKILL);
    int status = 0;
    ::waitpid(pids[v], &status, 0);
    if (opt.verbose) std::cerr << "pardsm_node: killed node " << v << "\n";
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt.respawn_after_ms));
    write_file(spec_path(v), serialize_node_spec(make_spec(v, 2)));
    pids[v] = spawn_child(exe, spec_path(v), result_path(v));
    if (opt.verbose) std::cerr << "pardsm_node: respawned node " << v << "\n";
  }

  bool ok = true;
  for (std::size_t p = 0; p < n; ++p) {
    int status = 0;
    ::waitpid(pids[p], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "pardsm_node: node " << p << " exited abnormally\n";
      ok = false;
    }
  }
  for (std::size_t p = 0; p < n; ++p) ::close(listen_fds[p]);
  if (!ok) return 1;

  // Lossless sequential reference: same protocol, same workload, on the
  // deterministic simulator.  Single-writer variables make the final
  // replica state a pure function of the workload, so the sockets run
  // must land on exactly this state.
  EngineConfig ref;
  ref.protocol = protocol;
  ref.distribution = &dist;
  ref.scripts = &scripts;
  const ScenarioRunResult reference = run(std::move(ref));

  std::uint64_t sent = 0, received = 0, reconnects = 0;
  std::uint64_t peer_down = 0, peer_up = 0, resync_applied = 0;
  for (std::size_t p = 0; p < n; ++p) {
    const NodeResult r = parse_result(read_file(result_path(p)));
    sent += r.msgs_sent;
    received += r.msgs_received;
    reconnects += r.reconnects;
    peer_down += r.peer_down;
    peer_up += r.peer_up;
    resync_applied += r.resync_applied;
    if (r.replicas != reference.final_replicas[p]) {
      std::cerr << "pardsm_node: node " << p
                << " final replicas diverge from the reference run\n";
      ok = false;
    }
  }

  const bool lossless = opt.kill == kNoProcess && opt.chaos_disconnect == 0.0;
  if (lossless && sent != received) {
    std::cerr << "pardsm_node: conservation violated: sent " << sent
              << " != received " << received << "\n";
    ok = false;
  }
  if (opt.kill != kNoProcess) {
    if (peer_down == 0 || peer_up == 0) {
      std::cerr << "pardsm_node: kill drill saw no failure-detector "
                   "transitions\n";
      ok = false;
    }
    if (resync_applied == 0) {
      std::cerr << "pardsm_node: kill drill applied no re-sync values\n";
      ok = false;
    }
  }

  std::cout << "pardsm_node: " << (ok ? "OK" : "FAIL") << " protocol="
            << opt.protocol << " nodes=" << n << " sent=" << sent
            << " received=" << received << " reconnects=" << reconnects
            << " peer_down=" << peer_down << " peer_up=" << peer_up
            << " resync_applied=" << resync_applied << "\n";
  return ok ? 0 : 1;
}

int usage() {
  std::cerr
      << "usage:\n"
      << "  pardsm_node --node <spec-file> <result-file>\n"
      << "  pardsm_node --spawn [--protocol NAME] [--nodes N] [--writes K]\n"
      << "              [--delay-us D] [--kill ID] [--kill-after-ms MS]\n"
      << "              [--respawn-after-ms MS] [--chaos-disconnect P]\n"
      << "              [--dir PATH] [--verbose]\n";
  return 2;
}

int run_main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode == "--node") {
    if (argc != 4) return usage();
    return run_node(argv[2], argv[3]);
  }
  if (mode != "--spawn") return usage();
  SpawnOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      PARDSM_CHECK(i + 1 < argc, "pardsm_node: " + flag + " needs a value");
      return argv[++i];
    };
    if (flag == "--protocol") {
      opt.protocol = value();
    } else if (flag == "--nodes") {
      opt.nodes = std::stoul(value());
    } else if (flag == "--writes") {
      opt.writes = std::stoul(value());
    } else if (flag == "--delay-us") {
      opt.delay_us = std::stol(value());
    } else if (flag == "--kill") {
      opt.kill = static_cast<ProcessId>(std::stol(value()));
    } else if (flag == "--kill-after-ms") {
      opt.kill_after_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--respawn-after-ms") {
      opt.respawn_after_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--chaos-disconnect") {
      opt.chaos_disconnect = std::stod(value());
    } else if (flag == "--dir") {
      opt.dir = value();
    } else if (flag == "--verbose") {
      opt.verbose = true;
    } else {
      return usage();
    }
  }
  return run_spawn(argv[0], opt);
}

}  // namespace
}  // namespace pardsm::mcs

int main(int argc, char** argv) {
  try {
    return pardsm::mcs::run_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "pardsm_node: " << e.what() << "\n";
    return 1;
  }
}
