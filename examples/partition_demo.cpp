// partition_demo — two causal protocols through a partition/heal timeline.
//
// Runs the same workload twice on a two-cluster topology: once with
// causal-partial-adhoc (hoop-routed metadata, partial replicas) and once
// with causal-full (vector clocks to everyone, full replicas).  A 5ms
// network partition splits the clusters mid-run; the ARQ layer repairs
// the backlog after the heal.  The printed ledger shows what the paper's
// efficiency argument looks like once recovery traffic is charged:
// the chatty protocol pays for the partition in proportion to its
// message complexity.
//
//   $ ./examples/partition_demo

#include <cstdio>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/scenario.h"

using namespace pardsm;

namespace {

struct Ledger {
  const char* protocol;
  mcs::ScenarioRunResult faulty;
  std::uint64_t lossless_bytes = 0;
  bool consistent = false;
};

Ledger run_one(mcs::ProtocolKind kind, const graph::Distribution& dist,
               const std::vector<mcs::Script>& scripts,
               const Scenario& scenario) {
  const auto lossless = mcs::run_workload(kind, dist, scripts, {});

  mcs::RunOptions options;
  options.sim_seed = 7;
  Ledger out{mcs::to_string(kind),
             mcs::run_scenario(kind, dist, scripts, scenario,
                               std::move(options)),
             lossless.total_traffic.wire_bytes_sent(), false};
  out.consistent =
      hist::check_history(out.faulty.history, hist::Criterion::kCausal)
          .consistent;
  return out;
}

}  // namespace

int main() {
  // Two clusters of three, bridged by shared variables: the partition
  // severs exactly the links the bridge variables depend on.
  const auto dist = graph::topo::clusters(2, 3, true);

  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.read_fraction = 0.4;
  spec.seed = 42;
  spec.think_time = millis(1);
  const auto scripts = mcs::make_random_scripts(dist, spec);

  Scenario scenario("cluster-split");
  scenario.set_loss(0.01);
  scenario.partition({{0, 1, 2}, {3, 4, 5}}, after(millis(2)),
                     after(millis(7)));

  std::printf("workload: 6 processes, 8 ops each, 1%% loss, clusters split "
              "2..7ms\n\n");
  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "protocol", "msgs",
              "bytes", "retrans", "dropped", "finish-ms", "overhead");

  for (auto kind : {mcs::ProtocolKind::kCausalPartialAdHoc,
                    mcs::ProtocolKind::kCausalFull}) {
    const Ledger l = run_one(kind, dist, scripts, scenario);
    std::printf(
        "%-22s %10llu %10llu %10llu %10llu %10.1f %9.2fx\n", l.protocol,
        static_cast<unsigned long long>(l.faulty.total_traffic.msgs_sent),
        static_cast<unsigned long long>(
            l.faulty.total_traffic.wire_bytes_sent()),
        static_cast<unsigned long long>(l.faulty.retransmissions),
        static_cast<unsigned long long>(l.faulty.drops.total()),
        static_cast<double>(l.faulty.finished_at.us) / 1000.0,
        static_cast<double>(l.faulty.total_traffic.wire_bytes_sent()) /
            static_cast<double>(l.lossless_bytes));
    std::printf("%-22s   causal-consistent: %s\n", "",
                l.consistent ? "yes" : "NO");
  }

  std::printf(
      "\noverhead = wire bytes vs the lossless ARQ-free run of the same "
      "scripts.\nBoth histories stay causally consistent: the partition "
      "costs recovery\ntraffic and latency, never safety.\n");
  return 0;
}
