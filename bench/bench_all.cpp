// bench_all — run every bench binary and merge their JSON results.
//
//   $ ./bench/bench_all [--quick] [--out BENCH_ALL.json]
//
// Each bench_* binary understands --quick (skip google-benchmark timings,
// print the paper artifact and record counters only) and
// --json=<path> (where to write its BENCH_<name>.json).  bench_all invokes
// the siblings living next to its own binary, then splices the per-bench
// JSON files into one results document, so the perf trajectory of the
// repo is a single machine-readable artifact per run.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

constexpr std::array kBenches = {
    "bench_fig1_sharegraph",    "bench_fig2_hoops",
    "bench_fig3_depchain",      "bench_fig456_checkers",
    "bench_fig789_bellman_ford", "bench_theorem1_relevance",
    "bench_theorem2_pram",      "bench_control_overhead",
    "bench_latency",            "bench_checkers_scaling",
    "bench_oblivious_apps",     "bench_open_question",
};

std::string self_dir() {
  std::array<char, 4096> buf{};
  const auto n = ::readlink("/proc/self/exe", buf.data(), buf.size() - 1);
  std::string path = n > 0 ? std::string(buf.data(), static_cast<std::size_t>(n)) : ".";
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_ALL.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::cerr << "usage: bench_all [--quick] [--out BENCH_ALL.json]\n";
      return 2;
    }
  }

  const std::string dir = self_dir();
  std::vector<std::string> merged;
  int failures = 0;

  for (const char* name : kBenches) {
    const std::string json = "BENCH_" + std::string(name).substr(6) + ".json";
    std::string cmd = dir + "/" + name + " --json=" + json;
    if (quick) cmd += " --quick";
    std::cout << "[bench_all] " << name << (quick ? " (quick)" : "") << "\n";
    std::cout.flush();
    const int status = std::system(cmd.c_str());
    const std::string body = read_file(json);
    if (status != 0 || body.empty()) {
      std::cerr << "[bench_all] FAILED: " << name;
      if (WIFSIGNALED(status)) {
        std::cerr << " (signal " << WTERMSIG(status) << ")";
      } else {
        std::cerr << " (exit " << WEXITSTATUS(status) << ")";
      }
      std::cerr << '\n';
      ++failures;
      continue;
    }
    merged.push_back(body);
  }

  std::ofstream os(out);
  os << "{\n  \"schema\": \"pardsm-bench-v1\",\n  \"quick\": "
     << (quick ? "true" : "false") << ",\n  \"benches\": [\n";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    os << merged[i];
    if (i + 1 < merged.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  os.close();

  std::cout << "[bench_all] wrote " << out << " (" << merged.size() << "/"
            << kBenches.size() << " benches)\n";
  return failures == 0 ? 0 : 1;
}
