#include "simnet/network.h"

#include "simnet/check.h"

namespace pardsm {

Network::Network(std::size_t n, ChannelOptions options,
                 std::unique_ptr<LatencyModel> latency, Rng rng)
    : n_(n),
      options_(options),
      latency_(latency ? std::move(latency)
                       : std::make_unique<ConstantLatency>(millis(1))),
      // Copy first so the latency stream equals the pre-split stream of a
      // fault-free run; fork after (forking advances `rng`, not the copy).
      latency_rng_(rng),
      fault_rng_(rng.fork(/*tag=*/0x4641554CULL)),  // "FAUL"
      default_loss_(options.drop_probability),
      default_duplicate_(options.duplicate_probability),
      down_(n, 0) {
  refresh_fault_flag();
}

void Network::check_pair(ProcessId from, ProcessId to, const char* what) const {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_ && to >= 0 &&
                   static_cast<std::size_t>(to) < n_,
               what);
}

DeliveryPlan Network::plan_delivery(ProcessId from, ProcessId to,
                                    TimePoint send_time) {
  check_pair(from, to, "plan_delivery: bad process");

  // The latency draw happens unconditionally, before any fault decision:
  // this pins the latency stream position per send, so fault activity
  // (on this pair or any other) never changes what a surviving message's
  // latency would have been.
  const Duration lat = latency_->sample(from, to, latency_rng_);

  const std::size_t ij = pair(from, to);
  // Fault checks are gated on the config flag: a fault-free network skips
  // three table lookups per message, and since chance(0.0) consumes no
  // draw, the fault stream position is identical either way.
  if (has_faults_) {
    if (const std::uint32_t* cuts = severed_.find(ij);
        cuts != nullptr && *cuts != 0) {
      ++drops_.severed;
      return {};
    }
    if (down_[static_cast<std::size_t>(from)] != 0 ||
        down_[static_cast<std::size_t>(to)] != 0) {
      ++drops_.down;
      return {};
    }
    if (fault_rng_.chance(effective_loss(from, to, send_time))) {
      ++drops_.loss;
      return {};
    }
  }

  DeliveryPlan deliveries;
  const auto clamp_push = [&](TimePoint at) {
    if (options_.fifo) {
      // First surviving message of the pair materializes its clamp slot
      // (the reference is used before any further insertion can rehash).
      TimePoint& last = last_delivery_.get_or_insert(ij, TimePoint{});
      if (at <= last) at = last + micros(1);
      last = at;
    }
    deliveries.push(at);
  };
  clamp_push(send_time + lat);
  if (has_faults_ &&
      fault_rng_.chance(effective_duplicate(from, to, send_time))) {
    // The duplicate's latency comes from the fault stream too: the extra
    // copy must not displace anyone else's draw on the latency stream.
    clamp_push(send_time + latency_->sample(from, to, fault_rng_));
  }
  return deliveries;
}

void Network::sever(ProcessId from, ProcessId to) {
  check_pair(from, to, "sever: bad process");
  ++severed_.get_or_insert(pair(from, to), 0);
  refresh_fault_flag();
}

void Network::heal(ProcessId from, ProcessId to) {
  check_pair(from, to, "heal: bad process");
  std::uint32_t* cuts = severed_.find(pair(from, to));
  if (cuts != nullptr && *cuts > 0) --*cuts;
}

bool Network::severed(ProcessId from, ProcessId to) const {
  check_pair(from, to, "severed: bad process");
  const std::uint32_t* cuts = severed_.find(pair(from, to));
  return cuts != nullptr && *cuts != 0;
}

void Network::set_loss(ProcessId from, ProcessId to, double probability) {
  check_pair(from, to, "set_loss: bad process");
  loss_.get_or_insert(pair(from, to), 0.0) = probability;
  refresh_fault_flag();
}

void Network::set_loss_all(double probability) {
  // What overwriting every cell of the dense table did: the new rate
  // answers for every pair, including previously overridden ones.
  default_loss_ = probability;
  loss_.clear();
  refresh_fault_flag();
}

double Network::loss(ProcessId from, ProcessId to) const {
  check_pair(from, to, "loss: bad process");
  const double* p = loss_.find(pair(from, to));
  return p != nullptr ? *p : default_loss_;
}

void Network::set_duplicate(ProcessId from, ProcessId to, double probability) {
  check_pair(from, to, "set_duplicate: bad process");
  duplicate_.get_or_insert(pair(from, to), 0.0) = probability;
  refresh_fault_flag();
}

void Network::set_duplicate_all(double probability) {
  default_duplicate_ = probability;
  duplicate_.clear();
  refresh_fault_flag();
}

double Network::duplicate(ProcessId from, ProcessId to) const {
  check_pair(from, to, "duplicate: bad process");
  const double* p = duplicate_.find(pair(from, to));
  return p != nullptr ? *p : default_duplicate_;
}

double Network::effective_loss(ProcessId from, ProcessId to,
                               TimePoint now) const {
  check_pair(from, to, "effective_loss: bad process");
  if (override_) {
    const double p = override_->loss(from, to, now);
    if (p >= 0.0) return p;
  }
  const double* p = loss_.find(pair(from, to));
  return p != nullptr ? *p : default_loss_;
}

double Network::effective_duplicate(ProcessId from, ProcessId to,
                                    TimePoint now) const {
  check_pair(from, to, "effective_duplicate: bad process");
  if (override_) {
    const double p = override_->duplicate(from, to, now);
    if (p >= 0.0) return p;
  }
  const double* p = duplicate_.find(pair(from, to));
  return p != nullptr ? *p : default_duplicate_;
}

void Network::set_down(ProcessId p, bool down) {
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < n_,
               "set_down: bad process");
  auto& slot = down_[static_cast<std::size_t>(p)];
  const std::uint8_t next = down ? 1 : 0;
  if (slot != next) {
    if (down) {
      ++down_count_;
    } else {
      --down_count_;
    }
    slot = next;
    refresh_fault_flag();
  }
}

bool Network::is_down(ProcessId p) const {
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < n_,
               "is_down: bad process");
  return down_[static_cast<std::size_t>(p)] != 0;
}

}  // namespace pardsm
