// Binary relations over operation indices, bitset-backed.
//
// All order relations of the paper (7->i, ->li, 7->ro, 7->co, 7->lco,
// ->lwb, 7->lsc, 7->pram, slow) are represented as a Relation: a dense
// boolean adjacency matrix with fast transitive closure (bit-parallel
// Floyd–Warshall row OR-ing), acyclicity testing and subset restriction.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pardsm::hist {

/// Dense n×n boolean matrix with 64-way bit-parallel rows.
class Relation {
 public:
  explicit Relation(std::size_t n = 0);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Add the pair (a, b): a precedes b.
  void add(std::size_t a, std::size_t b);

  /// True if (a, b) is in the relation.
  [[nodiscard]] bool has(std::size_t a, std::size_t b) const;

  /// In-place union with another relation of the same size.
  void merge(const Relation& other);

  /// Replace this relation with its transitive closure.
  void close();

  /// Transitive closure as a copy.
  [[nodiscard]] Relation closure() const;

  /// True if no cycle exists (treating the relation as a digraph).
  /// A reflexive pair (a, a) counts as a cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Number of pairs in the relation.
  [[nodiscard]] std::size_t edge_count() const;

  /// All pairs (a, b), ascending.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> edges() const;

  /// Restriction to `subset` (indices into this relation).  The result has
  /// size subset.size(); result(i, j) == has(subset[i], subset[j]).
  [[nodiscard]] Relation restrict_to(
      const std::vector<std::int32_t>& subset) const;

  /// One topological order of the digraph, if acyclic.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// Successors of `a` (all b with has(a,b)).
  [[nodiscard]] std::vector<std::size_t> successors(std::size_t a) const;

  /// Debug rendering: "a->b" pairs, space-separated.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Relation&, const Relation&) = default;

 private:
  [[nodiscard]] std::size_t words_per_row() const { return (n_ + 63) / 64; }
  std::size_t n_ = 0;
  std::vector<std::uint64_t> bits_;  ///< row-major, words_per_row per row
};

}  // namespace pardsm::hist
