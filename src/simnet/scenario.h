// Scripted fault scenarios: deterministic timelines of partitions, crashes
// and channel-quality changes.
//
// A Scenario is a value: a list of timed fault events built fluently —
//
//   Scenario s("lossy-partition");
//   s.set_loss(0.01)                                  // from t=0, forever
//    .partition({{0, 1, 2}, {3, 4, 5}}, after(millis(2)), after(millis(6)))
//    .crash(1, after(millis(3)), after(millis(5)));
//
// apply() installs the probability windows as the Network's plan-time
// rate source and turns the structural events (partitions, crashes) into
// scheduled closures mutating the run's Network (severed pairs, down
// flags), so the same Scenario replays bit-identically for a given
// simulator seed — fault *timing* is scripted, fault *draws* (which
// message is lost) come from the network's dedicated fault RNG stream.
// Crash and recovery additionally call back into the driver (hooks) so
// the MCS layer can drop in-flight state and re-sync replicas; the simnet
// layer itself knows nothing about protocols.  Both the rate source and
// the scheduled closures reference the Scenario, which must therefore
// outlive the run.
//
// Probability windows are *state*, not deltas, and they are resolved at
// message-planning time through a Network::RateOverride: a message sent
// at t faces "the most recently opened window covering the pair at t,
// else the ChannelOptions base".  Nested, crossed and same-instant
// windows therefore all compose without ordering surprises, and a window
// that outlasts the traffic never delays quiescence (no simulator events
// exist for window boundaries).  Partitions are counted cuts: overlapping
// partitions keep a pair severed until every cut covering it heals.
// Crash windows of one process must not overlap (enforced at build time).
//
// Liveness contract: every partition must heal and every crash must
// recover (enforced at build time).  Messages lost to faults are repaired
// by the ARQ layer when the run is routed through ReliableTransport —
// mcs::run_scenario does that automatically whenever faulty() is true —
// so a run always quiesces with every channel drained.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

#include "simnet/ids.h"
#include "simnet/sim_time.h"

namespace pardsm {

class Network;
class ParallelSimulator;
class Simulator;

/// Timeline helper: the absolute simulated time `d` after the epoch.
/// Scenario call sites read `s.crash(1, after(millis(3)), after(millis(5)))`.
constexpr TimePoint after(Duration d) { return kTimeZero + d; }

/// Driver callbacks for crash events (invoked inside the event loop, at
/// the event's simulated time).
struct ScenarioHooks {
  std::function<void(ProcessId, TimePoint)> on_crash;
  std::function<void(ProcessId, TimePoint)> on_recover;
};

/// One primitive timeline entry (the builders below expand high-level
/// calls into these).
struct FaultEvent {
  enum class Type : std::uint8_t {
    kSever,    ///< cut every cross-group directed pair
    kHeal,     ///< restore every cross-group directed pair
    kCrash,    ///< mark process `a` down; invoke on_crash
    kRecover,  ///< mark process `a` up; invoke on_recover
  };

  Type type = Type::kSever;
  TimePoint at{};
  /// The victim for kCrash/kRecover (unused otherwise).
  ProcessId a = kNoProcess;
  /// Partition groups for kSever/kHeal (see Scenario::partition: a process
  /// not listed in any group forms its own singleton group).
  std::vector<std::vector<ProcessId>> groups;
};

/// One probability window: `prob` on pair (a, b) — or every pair when
/// a == kNoProcess — while open <= t < close.
struct ProbWindow {
  ProcessId a = kNoProcess;
  ProcessId b = kNoProcess;
  double prob = 0.0;
  TimePoint open{};
  TimePoint close = kTimeForever;
};

/// A deterministic, scriptable timeline of faults.
class Scenario {
 public:
  explicit Scenario(std::string name = "scenario") : name_(std::move(name)) {}

  // -- builders (all return *this for chaining) ----------------------------

  /// Loss probability on every directed pair, from `from` until `until`
  /// (exclusive).  Windows compose by plan-time resolution: a message
  /// sent at t faces the most recently opened window covering its pair
  /// at t (builder order breaks ties), else the run's ChannelOptions
  /// value.  kTimeForever = hold to the end of the run.
  Scenario& set_loss(double probability, TimePoint from = kTimeZero,
                     TimePoint until = kTimeForever);

  /// Loss probability on one directed pair.
  Scenario& set_loss(ProcessId from_p, ProcessId to_p, double probability,
                     TimePoint from = kTimeZero,
                     TimePoint until = kTimeForever);

  /// Duplication probability on every directed pair (same window
  /// semantics as set_loss).
  Scenario& duplicate(double probability, TimePoint from = kTimeZero,
                      TimePoint until = kTimeForever);

  /// Duplication probability on one directed pair.
  Scenario& duplicate(ProcessId from_p, ProcessId to_p, double probability,
                      TimePoint from = kTimeZero,
                      TimePoint until = kTimeForever);

  /// Cut the network into `groups` at `at`: every directed pair whose
  /// endpoints are in different groups (a process not listed in any group
  /// forms its own singleton) is severed; at `heal_at` exactly those pairs
  /// are healed.  heal_at must be a real time (liveness).
  Scenario& partition(std::vector<std::vector<ProcessId>> groups,
                      TimePoint at, TimePoint heal_at);

  /// Crash process `p` at `at`: deliveries to and sends from p drop until
  /// `recover_at`, when the driver hook re-syncs its replicas.  recover_at
  /// must be a real time (liveness), and one process's crash windows must
  /// not overlap (enforced here).
  Scenario& crash(ProcessId p, TimePoint at, TimePoint recover_at);

  /// Route the run through ReliableTransport even if the timeline itself
  /// cannot lose traffic — prices the ARQ framing (frames + acks) in an
  /// otherwise fault-free run, e.g. the loss-0 baseline cells of a sweep.
  Scenario& force_reliable() {
    faulty_ = true;
    return *this;
  }

  // -- introspection --------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const {
    return events_.empty() && loss_windows_.empty() && dup_windows_.empty();
  }

  /// True if the timeline can lose or reorder traffic (loss, duplication,
  /// partitions, crashes): the run must then go through ReliableTransport
  /// for the protocols' reliable-FIFO liveness assumption to hold.
  [[nodiscard]] bool faulty() const { return faulty_; }

  /// True if the timeline contains crash events (drivers wire crash hooks
  /// and expect re-sync traffic).
  [[nodiscard]] bool has_crashes() const { return crashes_ > 0; }
  [[nodiscard]] std::size_t crash_count() const { return crashes_; }

  /// Largest process id mentioned anywhere (validation against the run's
  /// actual process count).
  [[nodiscard]] ProcessId max_process() const { return max_process_; }

  // -- execution ------------------------------------------------------------

  /// Schedule the whole timeline on `sim`.  Events at t <= now are applied
  /// immediately (before any same-time traffic); later events become
  /// simulator closures referencing this Scenario (which must outlive the
  /// run).  All endpoints must already be registered — this freezes
  /// registration via Simulator::ensure_network().
  void apply(Simulator& sim, ScenarioHooks hooks = {}) const;

  /// Parallel-engine variant: probability windows install on the fault
  /// network exactly as above, and every structural event becomes a
  /// *stop-the-world* global event — it mutates fault state (and runs the
  /// crash/recovery hooks) on the coordinator with all workers parked,
  /// which is the only time that state may change.
  void apply(ParallelSimulator& sim, ScenarioHooks hooks = {}) const;

  // -- sockets-root replay ---------------------------------------------------
  // The sockets engine cannot install a RateOverride (there is no Network);
  // it instead samples the windows and walks the event list itself, mapping
  // simulated microseconds onto wall time.

  /// The loss rate the timeline imposes on (from, to) at simulated time
  /// `now`, or -1 when no window covers the pair (use the base rate).
  [[nodiscard]] double loss_rate(ProcessId from, ProcessId to,
                                 TimePoint now) const {
    return window_rate(loss_windows_, from, to, now);
  }
  /// Same for duplication windows.
  [[nodiscard]] double duplicate_rate(ProcessId from, ProcessId to,
                                      TimePoint now) const {
    return window_rate(dup_windows_, from, to, now);
  }
  /// Edge times of every probability window (rate-change instants a
  /// wall-clock replay must visit), plus the structural event times.
  [[nodiscard]] std::vector<TimePoint> window_edges() const;
  /// The structural timeline in execution order (by time, closing edges
  /// before opening edges, builder order as the tie break).
  [[nodiscard]] std::vector<const FaultEvent*> execution_order() const {
    return ordered_events();
  }

 private:
  /// RateOverride over the window lists (defined in scenario.cpp).
  class Rates;

  Scenario& add(FaultEvent e);
  Scenario& add_window(std::vector<ProbWindow>& windows, ProcessId a,
                       ProcessId b, double probability, TimePoint from,
                       TimePoint until, const char* what);
  void fire(const FaultEvent& e, Network& net,
            const ScenarioHooks& hooks) const;
  /// The timeline in execution order: by time, closing edges before
  /// opening edges at equal times, builder order as the tie break.
  [[nodiscard]] std::vector<const FaultEvent*> ordered_events() const;
  /// The rate the most recently opened active window imposes on (from,
  /// to) at `now`, or -1 when no window covers it.
  [[nodiscard]] static double window_rate(
      const std::vector<ProbWindow>& windows, ProcessId from, ProcessId to,
      TimePoint now);

  std::string name_;
  std::vector<FaultEvent> events_;
  std::vector<ProbWindow> loss_windows_;
  std::vector<ProbWindow> dup_windows_;
  /// Crash windows per process (overlap rejection), as (at, recover_at).
  std::vector<std::tuple<ProcessId, TimePoint, TimePoint>> crash_windows_;
  bool faulty_ = false;
  std::size_t crashes_ = 0;
  ProcessId max_process_ = kNoProcess;
};

}  // namespace pardsm
