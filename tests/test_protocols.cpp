// Protocol correctness: every protocol's recorded histories must satisfy
// its advertised criterion — checked with the *exact* serialization-search
// checkers — plus every weaker criterion in the lattice, across a corpus
// of topologies, workloads and seeds.  This is the repository's main
// correctness gate (DESIGN.md §7.3).

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "history/linearizability.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

using graph::Distribution;
using hist::CheckOptions;
using hist::Criterion;

/// Criteria a protocol's history must satisfy.
std::vector<Criterion> required_criteria(ProtocolKind kind) {
  switch (guarantee_of(kind)) {
    case GuaranteeLevel::kAtomic:
    case GuaranteeLevel::kSequential:
      return {Criterion::kSequential,     Criterion::kCausal,
              Criterion::kLazyCausal,     Criterion::kLazySemiCausal,
              Criterion::kPram,           Criterion::kSlow,
              Criterion::kCache};
    case GuaranteeLevel::kCausal:
      return {Criterion::kCausal, Criterion::kLazyCausal,
              Criterion::kLazySemiCausal, Criterion::kPram, Criterion::kSlow};
    case GuaranteeLevel::kProcessor:
      return {Criterion::kPram, Criterion::kCache, Criterion::kSlow};
    case GuaranteeLevel::kPram:
      return {Criterion::kPram, Criterion::kSlow};
    case GuaranteeLevel::kCache:
      return {Criterion::kCache, Criterion::kSlow};
    case GuaranteeLevel::kSlow:
      return {Criterion::kSlow};
  }
  return {};
}

void expect_history_ok(const hist::History& h, ProtocolKind kind,
                       const std::string& label) {
  for (Criterion c : required_criteria(kind)) {
    const auto result = hist::check_history(h, c);
    EXPECT_TRUE(result.definitive)
        << label << ": " << to_string(c) << " check hit its budget";
    EXPECT_TRUE(result.consistent)
        << label << ": history violates " << to_string(c) << "\n"
        << h.to_string();
    if (!result.consistent) break;
  }
}

struct Case {
  ProtocolKind kind;
  Distribution dist;
  std::uint64_t seed;
};

std::vector<Distribution> topology_corpus() {
  return {
      graph::topo::complete(3, 2),
      graph::topo::chain_with_hoop(4),
      graph::topo::star(3),
      graph::topo::random_replication(5, 4, 2, 11),
      graph::topo::clusters(2, 2, /*cyclic=*/false),
  };
}

class ProtocolConsistency
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, int>> {};

TEST_P(ProtocolConsistency, RandomWorkloadSatisfiesCriterion) {
  const auto [kind, seed] = GetParam();
  for (const Distribution& dist : topology_corpus()) {
    WorkloadSpec spec;
    spec.ops_per_process = 5;
    spec.read_fraction = 0.5;
    spec.seed = static_cast<std::uint64_t>(seed) * 977 + 13;
    const auto scripts = make_random_scripts(dist, spec);

    RunOptions options;
    options.sim_seed = static_cast<std::uint64_t>(seed);
    options.latency = std::make_unique<UniformLatency>(millis(1), millis(20));
    const auto result = run_workload(kind, dist, scripts, std::move(options));

    expect_history_ok(result.history, kind,
                      std::string(to_string(kind)) + " on " + dist.name +
                          " seed " + std::to_string(seed));
  }
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolConsistency,
    ::testing::Combine(::testing::ValuesIn(all_protocols()),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return sanitize(to_string(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// Reordering channels: causal protocols must still be correct when the
// network is not FIFO (their vector clocks restore causal order).  PRAM
// and slow rely on FIFO and are excluded by design.
class CausalNonFifo : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CausalNonFifo, SurvivesReorderingNetwork) {
  const ProtocolKind kind = GetParam();
  const auto dist = graph::topo::random_replication(4, 3, 2, 5);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 77;
  const auto scripts = make_random_scripts(dist, spec);

  RunOptions options;
  options.sim_seed = 9;
  options.channel.fifo = false;
  options.latency = std::make_unique<UniformLatency>(millis(1), millis(50));
  const auto result = run_workload(kind, dist, scripts, std::move(options));
  expect_history_ok(result.history, kind, "non-fifo");
}

INSTANTIATE_TEST_SUITE_P(Causal, CausalNonFifo,
                         ::testing::Values(ProtocolKind::kCausalFull,
                                           ProtocolKind::kCausalPartialNaive),
                         [](const auto& info) {
                           return sanitize(to_string(info.param));
                         });

// Atomic protocol: real-time linearizability of the recorded history.
TEST(AtomicHome, HistoriesAreLinearizable) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto dist = graph::topo::random_replication(4, 3, 2, seed);
    WorkloadSpec spec;
    spec.ops_per_process = 8;
    spec.read_fraction = 0.6;
    spec.seed = seed;
    const auto scripts = make_random_scripts(dist, spec);

    RunOptions options;
    options.sim_seed = seed;
    options.latency = std::make_unique<UniformLatency>(millis(1), millis(9));
    const auto result = run_workload(ProtocolKind::kAtomicHome, dist, scripts,
                                     std::move(options));
    const auto lin = hist::check_linearizable(result.history);
    EXPECT_TRUE(lin.definitive);
    EXPECT_TRUE(lin.linearizable) << result.history.to_string();
  }
}

// Determinism: identical seeds produce identical histories and traffic.
TEST(Driver, SimulatorRunsAreDeterministic) {
  const auto dist = graph::topo::chain_with_hoop(5);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 3;
  const auto scripts = make_random_scripts(dist, spec);

  const auto run = [&] {
    RunOptions options;
    options.sim_seed = 42;
    options.latency = std::make_unique<UniformLatency>(millis(1), millis(30));
    return run_workload(ProtocolKind::kCausalPartialNaive, dist, scripts,
                        std::move(options));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.history.to_string(), b.history.to_string());
  EXPECT_EQ(a.total_traffic.msgs_sent, b.total_traffic.msgs_sent);
  EXPECT_EQ(a.total_traffic.control_bytes_sent,
            b.total_traffic.control_bytes_sent);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.events, b.events);
}

// Reads-return-writes sanity: every non-⊥ read returns a value actually
// written by somebody, with exact provenance.
TEST(Driver, ReadProvenanceResolves) {
  const auto dist = graph::topo::random_replication(5, 4, 3, 8);
  WorkloadSpec spec;
  spec.ops_per_process = 10;
  spec.seed = 21;
  const auto scripts = make_random_scripts(dist, spec);
  const auto result =
      run_workload(ProtocolKind::kPramPartial, dist, scripts, {});
  EXPECT_TRUE(result.history.read_from_resolvable());
}

// Wait-free protocols answer reads and writes instantly (zero simulated
// latency between invocation and completion) — the §3.3 property.
TEST(Protocols, WaitFreedomFlag) {
  HistoryRecorder rec(3, 2);
  const auto dist = graph::topo::complete(3, 2);
  for (ProtocolKind kind : all_protocols()) {
    auto procs = make_processes(kind, dist, rec);
    const bool expected = kind != ProtocolKind::kAtomicHome &&
                          kind != ProtocolKind::kSequencerSC &&
                          kind != ProtocolKind::kCachePartial &&
                          kind != ProtocolKind::kProcessorPartial;
    EXPECT_EQ(procs[0]->wait_free(), expected) << to_string(kind);
  }
}

}  // namespace
}  // namespace pardsm::mcs
