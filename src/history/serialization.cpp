#include "history/serialization.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "simnet/check.h"

namespace pardsm::hist {

namespace {

/// Dynamic bitmask over local op indices (histories can exceed 64 ops).
class Mask {
 public:
  explicit Mask(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i / 64] |= (1ULL << (i % 64)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  /// True if all bits of `other` are set in *this.
  [[nodiscard]] bool contains(const Mask& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((other.words_[w] & ~words_[w]) != 0) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> words_;
};

struct StateKey {
  std::vector<std::uint64_t> packed;  // mask words + last-write vector
  friend bool operator==(const StateKey&, const StateKey&) = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    std::uint64_t acc = 0x9E3779B97F4A7C15ULL;
    for (std::uint64_t w : k.packed) {
      acc ^= w + 0x9E3779B97F4A7C15ULL + (acc << 6) + (acc >> 2);
    }
    return static_cast<std::size_t>(acc);
  }
};

/// Search context: everything indexed by *local* op index (position in the
/// subset).
struct Search {
  const History& h;
  std::vector<OpIndex> subset;           // local -> global
  std::vector<std::int32_t> local_var;   // local -> compact var index
  std::vector<std::int32_t> read_src;    // local -> local source write or -1
  std::vector<bool> is_bottom_read;      // local -> reads ⊥?
  std::vector<Mask> preds;               // local -> predecessor mask
  std::size_t k = 0;                     // subset size
  std::size_t nvars = 0;                 // compact var count
  std::uint64_t max_states = 0;
  std::uint64_t states = 0;
  // Membership-only memo of failed search states; never iterated, so hash
  // order cannot influence the verdict or the (deterministic) found order.
  // pardsm-lint: allow(unordered-iter): membership-only memo set, never iterated
  std::unordered_set<StateKey, StateKeyHash> failed;

  std::vector<std::int32_t> placed_order;  // local indices, search stack
  Mask placed;
  std::vector<std::int32_t> last_write;    // compact var -> local op or -1
  std::vector<std::int32_t> placed_count_pred;  // #placed preds per op

  explicit Search(const History& hist) : h(hist), placed(1) {}

  [[nodiscard]] StateKey key() const {
    StateKey k2;
    k2.packed = placed.words();
    for (std::int32_t lw : last_write) {
      k2.packed.push_back(static_cast<std::uint64_t>(lw + 1));
    }
    return k2;
  }

  /// Is placing local op `v` next legal w.r.t. read semantics?
  [[nodiscard]] bool read_legal(std::size_t v) const {
    const Operation& op = h.op(subset[v]);
    if (!op.is_read()) return true;
    const std::int32_t lw = last_write[static_cast<std::size_t>(local_var[v])];
    if (is_bottom_read[v]) return lw == -1;
    return lw == read_src[v];
  }

  bool dfs() {
    if (placed_order.size() == k) return true;
    if (++states > max_states) return false;  // caller inspects budget
    const StateKey memo_key = key();
    if (failed.contains(memo_key)) return false;

    for (std::size_t v = 0; v < k; ++v) {
      if (placed.test(v)) continue;
      if (placed_count_pred[v] != 0) continue;  // unplaced predecessors
      if (!read_legal(v)) continue;

      // Place v.
      placed.set(v);
      placed_order.push_back(static_cast<std::int32_t>(v));
      const Operation& op = h.op(subset[v]);
      const auto cv = static_cast<std::size_t>(local_var[v]);
      const std::int32_t saved_lw = last_write[cv];
      if (op.is_write()) last_write[cv] = static_cast<std::int32_t>(v);
      std::vector<std::size_t> decremented;
      for (std::size_t b = 0; b < k; ++b) {
        if (preds_has(b, v)) {
          --placed_count_pred[b];
          decremented.push_back(b);
        }
      }

      if (dfs()) return true;
      if (states > max_states) return false;

      // Undo.
      for (std::size_t b : decremented) ++placed_count_pred[b];
      last_write[cv] = saved_lw;
      placed_order.pop_back();
      rebuild_placed_mask();
    }

    failed.insert(memo_key);
    return false;
  }

  // -- helpers over the predecessor masks ---------------------------------
  [[nodiscard]] bool preds_has(std::size_t b, std::size_t a) const {
    return preds[b].test(a);
  }
  void rebuild_placed_mask() {
    // Mask has no clear(); rebuild via placed_order (cheap at our sizes).
    Mask fresh(k);
    for (std::int32_t u : placed_order) {
      fresh.set(static_cast<std::size_t>(u));
    }
    placed = fresh;
  }
};

}  // namespace

SerializationResult find_serialization(const History& h,
                                       const std::vector<OpIndex>& subset,
                                       const Relation& constraint,
                                       const SearchOptions& options) {
  SerializationResult result;
  const std::size_t k = subset.size();
  if (k == 0) {
    result.verdict = SearchVerdict::kSerializable;
    return result;
  }

  // Map global -> local.
  std::map<OpIndex, std::int32_t> to_local;
  for (std::size_t i = 0; i < k; ++i) {
    to_local[subset[i]] = static_cast<std::int32_t>(i);
  }

  // Compact variable ids.
  std::map<VarId, std::int32_t> var_compact;
  for (OpIndex g : subset) {
    var_compact.emplace(h.op(g).var,
                        static_cast<std::int32_t>(var_compact.size()));
  }

  // Read sources (local).  A read whose source write is outside the subset
  // can never be legal (its value's writer is not in S).
  const auto global_src = h.resolve_read_from();
  std::vector<std::int32_t> read_src(k, -1);
  std::vector<bool> bottom_read(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    const Operation& op = h.op(subset[i]);
    if (!op.is_read()) continue;
    const OpIndex s = global_src[static_cast<std::size_t>(subset[i])];
    if (s == kNoOp) {
      bottom_read[i] = true;
      continue;
    }
    auto it = to_local.find(s);
    if (it == to_local.end()) {
      result.verdict = SearchVerdict::kNotSerializable;
      result.refuted_by_propagation = true;
      return result;
    }
    read_src[i] = it->second;
  }

  // Local constraint, transitively closed.
  Relation local = constraint.restrict_to(subset).closure();

  // Forced-edge propagation to fixpoint.
  //   For read r from w on x, other write w' on x:
  //     w  -> w'  forces  r  -> w'
  //     w' -> r   forces  w' -> w
  //   For a ⊥-read r on x: every write w' on x is forced after r.
  std::vector<std::vector<std::size_t>> writes_per_var(var_compact.size());
  for (std::size_t i = 0; i < k; ++i) {
    const Operation& op = h.op(subset[i]);
    if (op.is_write()) {
      writes_per_var[static_cast<std::size_t>(var_compact[op.var])].push_back(
          i);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < k; ++r) {
      const Operation& op = h.op(subset[r]);
      if (!op.is_read()) continue;
      const auto cv = static_cast<std::size_t>(var_compact[op.var]);
      if (bottom_read[r]) {
        for (std::size_t w2 : writes_per_var[cv]) {
          if (!local.has(r, w2)) {
            local.add(r, w2);
            changed = true;
          }
        }
        continue;
      }
      const auto w = static_cast<std::size_t>(read_src[r]);
      for (std::size_t w2 : writes_per_var[cv]) {
        if (w2 == w) continue;
        if (local.has(w, w2) && !local.has(r, w2)) {
          local.add(r, w2);
          changed = true;
        }
        if (local.has(w2, r) && !local.has(w2, w)) {
          local.add(w2, w);
          changed = true;
        }
      }
    }
    if (changed) local.close();
  }
  if (!local.is_acyclic()) {
    result.verdict = SearchVerdict::kNotSerializable;
    result.refuted_by_propagation = true;
    return result;
  }

  // Backtracking search.
  Search search(h);
  search.subset = subset;
  search.k = k;
  search.nvars = var_compact.size();
  search.max_states = options.max_states;
  search.local_var.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    search.local_var[i] = var_compact[h.op(subset[i]).var];
  }
  search.read_src = read_src;
  search.is_bottom_read = bottom_read;
  search.preds.assign(k, Mask(k));
  search.placed_count_pred.assign(k, 0);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      if (a != b && local.has(a, b)) {
        search.preds[b].set(a);
        ++search.placed_count_pred[b];
      }
    }
  }
  search.placed = Mask(k);
  search.last_write.assign(var_compact.size(), -1);

  const bool found = search.dfs();
  result.states_explored = search.states;
  if (found) {
    result.verdict = SearchVerdict::kSerializable;
    result.order.reserve(k);
    for (std::int32_t v : search.placed_order) {
      result.order.push_back(subset[static_cast<std::size_t>(v)]);
    }
  } else if (search.states > options.max_states) {
    result.verdict = SearchVerdict::kUnknown;
  } else {
    result.verdict = SearchVerdict::kNotSerializable;
  }
  return result;
}

bool is_legal_serialization(const History& h,
                            const std::vector<OpIndex>& subset,
                            const std::vector<OpIndex>& order,
                            const Relation& constraint) {
  if (order.size() != subset.size()) return false;
  {
    auto a = subset;
    auto b = order;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  // Precedence respected (constraint over global indices).
  std::map<OpIndex, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (OpIndex a : order) {
    for (OpIndex b : order) {
      if (a != b &&
          constraint.has(static_cast<std::size_t>(a),
                         static_cast<std::size_t>(b)) &&
          pos[a] >= pos[b]) {
        return false;
      }
    }
  }
  // Read legality.
  const auto src = h.resolve_read_from();
  std::map<VarId, OpIndex> last_write;
  for (OpIndex g : order) {
    const Operation& op = h.op(g);
    if (op.is_write()) {
      last_write[op.var] = g;
      continue;
    }
    const OpIndex expect = src[static_cast<std::size_t>(g)];
    auto it = last_write.find(op.var);
    const OpIndex got = (it == last_write.end()) ? kNoOp : it->second;
    if (got != expect) return false;
  }
  return true;
}

}  // namespace pardsm::hist
