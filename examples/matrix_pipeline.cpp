// Oblivious computations on weak memories (§5): a distributed matrix
// product and a wavefront LCS, both on PRAM partial replication, plus the
// asynchronous Jacobi iteration on slow memory.
//
//   $ ./examples/matrix_pipeline

#include <iostream>

#include "apps/async_jacobi.h"
#include "apps/matrix_product.h"
#include "apps/wavefront_lcs.h"

int main() {
  using namespace pardsm;
  using namespace pardsm::apps;

  // --- matrix product -----------------------------------------------------
  const auto a = random_matrix(8, 9, 1);
  const auto b = random_matrix(8, 9, 2);
  const auto mp = run_matrix_product(a, b, /*processes=*/4);
  std::cout << "matrix product 8x8 on 4 processes (PRAM partial): "
            << (mp.matches_reference ? "correct" : "WRONG") << "; "
            << mp.total_traffic.msgs_sent << " msgs, "
            << mp.total_traffic.payload_bytes_sent << " payload bytes\n";

  // --- wavefront LCS --------------------------------------------------------
  const auto lcs = run_wavefront_lcs("DISTRIBUTEDSHAREDMEMORY",
                                     "PARTIALREPLICATION");
  std::cout << "wavefront LCS on a hoop-free chain: length=" << lcs.length
            << " (" << (lcs.matches_reference ? "correct" : "WRONG")
            << "), share graph hoop-free: "
            << (lcs.hoop_free ? "yes" : "no") << '\n';

  // --- asynchronous Jacobi ---------------------------------------------------
  const auto problem = JacobiProblem::contraction(8, 3);
  const auto jr = run_async_jacobi(problem);
  std::cout << "async Jacobi fixed point on slow memory: "
            << (jr.converged ? "converged" : "DIVERGED")
            << " (max fixed-point error " << jr.max_abs_error << ")\n";

  return (mp.matches_reference && lcs.matches_reference && jr.converged)
             ? 0
             : 1;
}
