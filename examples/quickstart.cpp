// Quickstart: build a partially replicated DSM, write and read, inspect
// the recorded history and its consistency classification.
//
//   $ ./examples/quickstart

#include <iostream>

#include "core/analysis.h"
#include "core/dsm.h"
#include "history/checkers.h"
#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"

int main() {
  using namespace pardsm;

  std::cout << version() << "\n\n";

  // Four processes in a chain; variable x0 is shared by the two ends, so
  // the chain is an x0-hoop (the paper's Figure 2 shape).
  SystemConfig config;
  config.protocol = mcs::ProtocolKind::kPramPartial;
  config.distribution = graph::topo::chain_with_hoop(4);
  config.latency_lo = millis(1);
  config.latency_hi = millis(5);

  std::cout << "share graph (" << config.distribution.name << "):\n"
            << graph::ShareGraph(config.distribution).to_dot() << '\n';

  System dsm(std::move(config));

  // Process 0 writes x0; process 3 (the other end of the hoop) reads it
  // once the update propagated.  Reads and writes are wait-free.
  dsm.at(kTimeZero, [&] {
    dsm.write(0, 0, 1727, [] { std::cout << "p0: wrote x0 = 1727\n"; });
  });
  dsm.after(millis(50), [&] {
    dsm.read(3, 0, [](Value v) {
      std::cout << "p3: read x0 = " << v << " (wait-free local read)\n";
    });
  });
  dsm.run();

  // The recorded history, with exact read-from provenance.
  const auto history = dsm.history();
  std::cout << "\nrecorded history:\n" << history.to_string();

  // Which criteria admit it?
  std::cout << "classification: "
            << hist::classify(history).to_string() << "\n\n";

  // Efficiency: did any process outside C(x) handle x-metadata?
  const auto report = core::analyze_run(
      dsm.distribution(), dsm.observed_relevance(), dsm.stats().total());
  std::cout << report.to_table()
            << "PRAM partial replication efficient: "
            << (report.efficient() ? "yes" : "no") << '\n';
  return 0;
}
