// Weighted directed graphs for the routing case study (Section 6).
//
// A packet-switching network is a directed graph; routing = single-source
// shortest paths.  This header provides the graph type, the paper's
// Figure 8 example, random connected networks for sweeps, and the
// centralized Bellman-Ford reference that distributed runs are verified
// against.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/ids.h"

namespace pardsm::apps {

/// Distance value for "unreachable" (safe against overflow when added to
/// edge weights).
inline constexpr std::int64_t kInfDistance = 1LL << 40;

/// A weighted directed edge.
struct Edge {
  int from = 0;
  int to = 0;
  std::int64_t weight = 0;
};

/// Directed graph with non-negative weights, nodes 0..n-1.
class WeightedGraph {
 public:
  explicit WeightedGraph(std::size_t n) : n_(n) {}

  void add_edge(int from, int to, std::int64_t weight);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Predecessors of node i: all j with an edge j -> i (the paper's
  /// Γ⁻¹(i)), sorted.
  [[nodiscard]] std::vector<int> predecessors(int i) const;

  /// Weight of edge j -> i; kInfDistance when absent; 0 when j == i.
  [[nodiscard]] std::int64_t weight(int from, int to) const;

  /// The paper's Figure 8 network: 5 nodes (1..5 in the paper, 0..4
  /// here), 8 edges whose weights carry the figure's label multiset
  /// {4,1,1,2,8,2,3,3}.  Predecessor sets match the variable distribution
  /// printed in Section 6: Γ⁻¹(2)={1,3}, Γ⁻¹(3)={1,2}, Γ⁻¹(4)={2,3},
  /// Γ⁻¹(5)={3,4}.
  [[nodiscard]] static WeightedGraph fig8();

  /// Random connected network: nodes 1..n-1 each get an incoming edge from
  /// a lower-numbered node (source 0 reaches everyone), plus `extra`
  /// additional random edges; weights uniform in [1, max_weight].
  [[nodiscard]] static WeightedGraph random_network(std::size_t n,
                                                    std::size_t extra,
                                                    std::int64_t max_weight,
                                                    std::uint64_t seed);

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

/// Centralized Bellman-Ford: distances from `source` (kInfDistance if
/// unreachable).  The correctness oracle for the distributed runs.
[[nodiscard]] std::vector<std::int64_t> bellman_ford_reference(
    const WeightedGraph& g, int source);

}  // namespace pardsm::apps
