#include "mcs/engine.h"

#include <algorithm>
#include <thread>

#include "sharegraph/sharding.h"
#include "simnet/parallel_sim.h"
#include "simnet/rng.h"
#include "simnet/thread_runtime.h"

namespace pardsm::mcs {

ScriptedClient::ScriptedClient(McsProcess& process, Simulator& sim,
                               Script script)
    : process_(process), sim_(sim), script_(std::move(script)) {}

void ScriptedClient::start(TimePoint start) {
  if (script_.empty()) return;
  sim_.schedule_at(start + script_.front().delay, [this] { issue(); });
}

void ScriptedClient::resume(TimePoint at) {
  if (!stalled_) return;
  PARDSM_CHECK(!process_.crashed(), "resume while the process is still down");
  stalled_ = false;
  sim_.schedule_at(at, [this] { issue(); });
}

void ScriptedClient::issue() {
  PARDSM_CHECK(next_ < script_.size(), "issue past end of script");
  if (process_.crashed()) {
    // The application fails with its process: hold this operation (and the
    // client's place in the script) until the recovery hook resumes us.
    stalled_ = true;
    return;
  }
  const ScriptOp& op = script_[next_];
  ++next_;

  const auto continue_after = [this] {
    if (next_ >= script_.size()) return;
    const Duration delay = script_[next_].delay;
    if (delay.us == 0) {
      // Schedule at the current instant to keep the event loop in control
      // (still after any messages the completed op just enqueued at t).
      sim_.schedule_at(sim_.now(), [this] { issue(); });
    } else {
      sim_.schedule_at(sim_.now() + delay, [this] { issue(); });
    }
  };

  if (op.kind == ScriptOp::Kind::kRead) {
    process_.read(op.var, [this, continue_after](Value v) {
      reads_.push_back(v);
      continue_after();
    });
  } else {
    process_.write(op.var, op.value, continue_after);
  }
}

WorkloadClient::WorkloadClient(McsProcess& process, Simulator& sim,
                               const workload::Generator& gen)
    : process_(process), sim_(sim), gen_(gen) {}

void WorkloadClient::start(TimePoint start) {
  start_ = start;
  if (gen_.open_loop()) {
    sim_.schedule_at(gen_.arrival(start_, 0), [this] { arrive(); });
  } else {
    arrivals_ = gen_.ops_per_process();
    sim_.schedule_at(start_, [this] { pump(); });
  }
}

void WorkloadClient::resume(TimePoint at) {
  if (!stalled_) return;
  PARDSM_CHECK(!process_.crashed(), "resume while the process is still down");
  stalled_ = false;
  sim_.schedule_at(at, [this] { pump(); });
}

void WorkloadClient::arrive() {
  ++arrivals_;
  if (arrivals_ < gen_.ops_per_process()) {
    // Arrivals chain one event at a time, so the queue holds O(1) client
    // events no matter how many ops the stream has left.
    sim_.schedule_at(gen_.arrival(start_, arrivals_), [this] { arrive(); });
  }
  pump();
}

void WorkloadClient::pump() {
  if (outstanding_ || issued_ >= arrivals_) return;
  if (process_.crashed()) {
    // The open-loop world keeps arriving; *issuing* waits for recovery,
    // and the queued ops' latencies keep their scheduled arrival clocks.
    stalled_ = true;
    return;
  }
  const std::uint64_t k = issued_++;
  outstanding_ = true;
  // Latency clock: open loop from the scheduled arrival (queueing behind
  // a slow or down system is charged to the op — no coordinated
  // omission); closed loop from the issue instant.
  const TimePoint t0 =
      gen_.open_loop() ? gen_.arrival(start_, k) : sim_.now();
  const workload::OpSpec op = gen_.op(process_.id(), k);
  if (op.is_read) {
    process_.read(op.var, [this, t0](Value v) {
      reads_digest_ = mix_word(reads_digest_, static_cast<std::uint64_t>(v));
      complete(t0);
    });
  } else {
    process_.write(op.var, op.value, [this, t0] { complete(t0); });
  }
}

void WorkloadClient::complete(TimePoint t0) {
  const Duration d = sim_.now() - t0;
  latency_.record(d.us > 0 ? static_cast<std::uint64_t>(d.us) : 0);
  ++completed_;
  outstanding_ = false;
  if (issued_ < arrivals_) {
    // Re-enter via the queue so the event loop stays in control (same
    // discipline as ScriptedClient's continue_after).
    sim_.schedule_at(sim_.now(), [this] { pump(); });
  }
}

namespace {

/// Per-process replica contents at quiescence (P6 compares them across
/// fault scenarios).
std::vector<std::vector<ReplicaEntry>> snapshot_replicas(
    const std::vector<std::unique_ptr<McsProcess>>& processes) {
  std::vector<std::vector<ReplicaEntry>> out;
  out.reserve(processes.size());
  for (const auto& proc : processes) {
    std::vector<ReplicaEntry> mine;
    for (VarId x : proc->store().vars()) {
      const Stored& s = proc->store().get(x);
      mine.push_back({x, s.value, s.source});
    }
    out.push_back(std::move(mine));
  }
  return out;
}

/// The runtime-independent share of result collection: history, traffic,
/// exposure, protocol stats and final replicas.
void collect_common(HistoryRecorder& recorder, NetworkStats& stats,
                    const std::vector<std::unique_ptr<McsProcess>>& processes,
                    std::size_t var_count, RunResult& result) {
  result.history = recorder.take_history();
  result.total_traffic = stats.total();
  result.per_process_traffic = stats.per_process_snapshot();
  for (const auto& proc : processes) {
    result.protocol_stats.push_back(proc->stats());
  }
  result.observed_relevant = stats.exposure_sets(var_count);
  result.final_replicas = snapshot_replicas(processes);
}

/// Whether this config routes through the ARQ layer.
bool needs_reliable(const EngineConfig& config) {
  switch (config.reliability) {
    case ReliabilityMode::kNever:
      return false;
    case ReliabilityMode::kAlways:
      return true;
    case ReliabilityMode::kAuto:
      break;
  }
  // Socket chaos that can *lose* frames (drops, duplicates) needs ARQ just
  // like a lossy simulated channel; delays and disconnects do not — queued
  // frames survive a reconnect and arrive in order after the HELLO.
  const bool lossy_chaos =
      config.runtime == EngineRuntime::kSockets &&
      (config.sockets.chaos.drop_probability > 0.0 ||
       config.sockets.chaos.duplicate_probability > 0.0);
  return (config.scenario != nullptr && config.scenario->faulty()) ||
         config.channel.drop_probability > 0.0 ||
         config.channel.duplicate_probability > 0.0 || lossy_chaos;
}

/// Fold the ARQ layer's dead-channel ledger into the result and enforce
/// the client-completion contract: with every channel alive an unfinished
/// client is a hard error, but once the ARQ layer gave a channel up
/// (OnExhausted::kDeadChannel) some scripts legitimately cannot complete
/// — the run reports them instead of throwing.
void finish_clients(ScenarioRunResult& result, const ReliableTransport* rel,
                    std::size_t unfinished) {
  if (rel != nullptr) {
    result.dead_channels = rel->dead_channels();
    result.drops.dead_channel = rel->dead_channel_drops();
  }
  result.unfinished_clients = unfinished;
  PARDSM_CHECK(unfinished == 0 || !result.dead_channels.empty(),
               "run quiesced before a client finished its script — stuck "
               "protocol, unhealed fault or lost completion");
}

/// Fold every workload client's ledger into the result: histograms merge
/// element-wise (associative and commutative, so per-shard order cannot
/// matter), and the shortfall against the generator's schedule becomes
/// the censored mass — an op that arrived but never completed is
/// accounted above every latency bucket, never dropped and never a ~0
/// sample.
template <typename Client>
void collect_workload(const workload::Generator& gen,
                      const std::vector<std::unique_ptr<Client>>& clients,
                      ScenarioRunResult& result) {
  for (const auto& client : clients) {
    result.op_latency.merge_from(client->latency());
    result.ops_issued += client->issued();
    result.ops_completed += client->completed();
  }
  const std::uint64_t target =
      gen.ops_per_process() * static_cast<std::uint64_t>(clients.size());
  PARDSM_CHECK(result.ops_completed <= target,
               "workload completed more ops than were generated");
  result.ops_censored = target - result.ops_completed;
  result.op_latency.add_censored(result.ops_censored);
}

/// Self-driving client for the thread runtime: each completion issues the
/// next operation, always on the owning process's thread.
class ThreadedClient {
 public:
  ThreadedClient(McsProcess& process, Script script)
      : process_(process), script_(std::move(script)) {}

  /// Runs on the owner thread (via ThreadRuntime::post) and re-enters from
  /// completion callbacks, which also fire on the owner thread.
  void issue() {
    if (next_ >= script_.size()) {
      done_ = true;
      return;
    }
    const ScriptOp& op = script_[next_];
    ++next_;
    if (op.kind == ScriptOp::Kind::kRead) {
      process_.read(op.var, [this](Value v) {
        reads_.push_back(v);
        issue();
      });
    } else {
      process_.write(op.var, op.value, [this] { issue(); });
    }
  }

  [[nodiscard]] bool done() const { return done_ || script_.empty(); }

 private:
  McsProcess& process_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool done_ = false;
};

/// WorkloadClient's twin for the thread runtime: closed loop only (run()
/// rejects open-loop specs off the simulated clock), each completion
/// issuing the next generated op on the owning thread.  Latency is the
/// root transport's wall-microsecond clock.
class ThreadedWorkloadClient {
 public:
  ThreadedWorkloadClient(McsProcess& process, const workload::Generator& gen)
      : process_(process), gen_(gen) {}

  void issue() {
    if (next_ >= gen_.ops_per_process()) return;
    const std::uint64_t k = next_++;
    const TimePoint t0 = process_.now();
    const workload::OpSpec op = gen_.op(process_.id(), k);
    if (op.is_read) {
      process_.read(op.var, [this, t0](Value v) {
        reads_digest_ =
            mix_word(reads_digest_, static_cast<std::uint64_t>(v));
        finish(t0);
      });
    } else {
      process_.write(op.var, op.value, [this, t0] { finish(t0); });
    }
  }

  [[nodiscard]] bool done() const {
    return completed_ == gen_.ops_per_process();
  }
  [[nodiscard]] std::uint64_t issued() const { return next_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

 private:
  void finish(TimePoint t0) {
    const Duration d = process_.now() - t0;
    latency_.record(d.us > 0 ? static_cast<std::uint64_t>(d.us) : 0);
    ++completed_;
    issue();
  }

  McsProcess& process_;
  const workload::Generator& gen_;
  std::uint64_t next_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t reads_digest_ = 0;
  LatencyHistogram latency_;
};

ScenarioRunResult run_on_threads(const EngineConfig& config) {
  const graph::Distribution& dist = *config.distribution;
  const std::vector<Script>* scripts = config.scripts;
  PARDSM_CHECK(config.scenario == nullptr,
               "fault timelines require the simulator runtime");
  PARDSM_CHECK(!needs_reliable(config),
               "the ARQ layer requires the simulator runtime");
  // Loud rejection rather than a silently-lossless run: the thread
  // runtime takes no channel options or latency model from the engine.
  PARDSM_CHECK(config.channel.drop_probability == 0.0 &&
                   config.channel.duplicate_probability == 0.0,
               "lossy channels require the simulator runtime");
  PARDSM_CHECK(config.latency == nullptr,
               "latency models require the simulator runtime");

  ThreadRuntime rt;
  // The runtime only ever learns n; the distribution's variable count
  // pre-sizes the exposure rows (branch-free deliver accounting).
  rt.stats().set_var_hint(dist.var_count);
  // Batching is preemption-safe (per-sender state only ever touched on the
  // owning thread), so the coalescing layer stacks here too.
  std::optional<BatchingTransport> batch;
  HostTransport* top = &rt;
  if (config.force_batching_layer || config.batching.window.us > 0) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }

  std::optional<workload::Generator> gen;
  if (config.workload != nullptr) gen.emplace(dist, *config.workload);

  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  if (!config.record_history) recorder.use_discard_mode();
  auto processes = make_processes(config.protocol, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = top->add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(*top);
    if (config.multicast != nullptr) proc->use_multicast(*config.multicast);
  }

  std::vector<std::unique_ptr<ThreadedClient>> clients;
  std::vector<std::unique_ptr<ThreadedWorkloadClient>> wclients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (gen) {
      wclients.push_back(
          std::make_unique<ThreadedWorkloadClient>(*processes[p], *gen));
    } else {
      clients.push_back(
          std::make_unique<ThreadedClient>(*processes[p], (*scripts)[p]));
    }
  }

  rt.start();
  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (gen) {
      rt.post(static_cast<ProcessId>(p),
              [client = wclients[p].get()] { client->issue(); });
    } else {
      rt.post(static_cast<ProcessId>(p),
              [client = clients[p].get()] { client->issue(); });
    }
  }
  const bool quiet = rt.await_quiescence(config.quiesce_timeout);
  PARDSM_CHECK(quiet, "thread runtime failed to quiesce — protocol stuck?");
  rt.stop();

  for (const auto& client : clients) {
    PARDSM_CHECK(client->done(), "threaded client did not finish its script");
  }
  for (const auto& client : wclients) {
    PARDSM_CHECK(client->done(),
                 "threaded client did not finish its workload");
  }

  ScenarioRunResult result;
  collect_common(recorder, rt.stats(), processes, dist.var_count, result);
  if (gen) collect_workload(*gen, wclients, result);
  if (batch) result.batching = batch->stats();
  return result;
}

/// ThreadedClient's twin for the sockets root, with ScriptedClient's
/// crash-awareness: issue() and every completion run on the owning
/// process's mailbox thread (so does crash()/recover(), posted there by
/// the timeline), which keeps the stall/resume handshake race-free
/// without locks.  Think-time delays are ignored, as under kThreads.
class SocketClient {
 public:
  SocketClient(McsProcess& process, Script script)
      : process_(process), script_(std::move(script)) {}

  void issue() {
    if (next_ >= script_.size()) {
      done_ = true;
      return;
    }
    if (process_.crashed()) {
      // Hold this operation and our place in the script until the
      // recovery hook posts resume() to this same mailbox.
      stalled_ = true;
      return;
    }
    const ScriptOp& op = script_[next_];
    ++next_;
    if (op.kind == ScriptOp::Kind::kRead) {
      process_.read(op.var, [this](Value v) {
        reads_.push_back(v);
        issue();
      });
    } else {
      process_.write(op.var, op.value, [this] { issue(); });
    }
  }

  void resume() {
    if (!stalled_) return;
    stalled_ = false;
    issue();  // next_ never advanced past the stalled operation
  }

  [[nodiscard]] bool done() const { return done_ || script_.empty(); }

 private:
  McsProcess& process_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool done_ = false;
  bool stalled_ = false;
};

/// WorkloadClient's twin for the sockets root: closed loop with
/// SocketClient's crash-awareness — everything runs on the owning
/// mailbox thread, a crashed issue attempt stalls until the recovery
/// hook posts resume().  Latency is the socket root's wall-µs clock.
class SocketWorkloadClient {
 public:
  SocketWorkloadClient(McsProcess& process, const workload::Generator& gen)
      : process_(process), gen_(gen) {}

  void issue() {
    if (next_ >= gen_.ops_per_process()) return;
    if (process_.crashed()) {
      stalled_ = true;
      return;
    }
    const std::uint64_t k = next_++;
    const TimePoint t0 = process_.now();
    const workload::OpSpec op = gen_.op(process_.id(), k);
    if (op.is_read) {
      process_.read(op.var, [this, t0](Value v) {
        reads_digest_ =
            mix_word(reads_digest_, static_cast<std::uint64_t>(v));
        finish(t0);
      });
    } else {
      process_.write(op.var, op.value, [this, t0] { finish(t0); });
    }
  }

  void resume() {
    if (!stalled_) return;
    stalled_ = false;
    issue();
  }

  [[nodiscard]] bool done() const {
    return completed_ == gen_.ops_per_process();
  }
  [[nodiscard]] std::uint64_t issued() const { return next_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

 private:
  void finish(TimePoint t0) {
    const Duration d = process_.now() - t0;
    latency_.record(d.us > 0 ? static_cast<std::uint64_t>(d.us) : 0);
    ++completed_;
    issue();
  }

  McsProcess& process_;
  const workload::Generator& gen_;
  std::uint64_t next_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t reads_digest_ = 0;
  bool stalled_ = false;
  LatencyHistogram latency_;
};

ScenarioRunResult run_on_sockets(const EngineConfig& config) {
  const graph::Distribution& dist = *config.distribution;
  const std::vector<Script>* scripts = config.scripts;
  const std::size_t n = dist.process_count();
  const bool reliable = needs_reliable(config);
  const bool batching =
      config.force_batching_layer || config.batching.window.us > 0;

  PARDSM_CHECK(config.latency == nullptr,
               "latency models require the simulator runtime");
  PARDSM_CHECK(config.channel.drop_probability == 0.0 &&
                   config.channel.duplicate_probability == 0.0,
               "channel loss on the sockets runtime is modelled by "
               "SocketOptions.chaos, not ChannelOptions");
  PARDSM_CHECK(config.sockets.local_ids.empty(),
               "EngineRuntime::kSockets runs all-local — multi-process "
               "deployments are driven by pardsm_node");
  PARDSM_CHECK(config.scenario == nullptr ||
                   config.scenario->max_process() == kNoProcess ||
                   static_cast<std::size_t>(config.scenario->max_process()) < n,
               "scenario mentions a process outside the system");

  SocketOptions socket_options = config.sockets;
  socket_options.total_processes = n;
  SocketTransport st(std::move(socket_options));
  st.stats().set_var_hint(dist.var_count);

  // The same decorator stack as every other root: the shims' per-process
  // state only ever runs on the owning mailbox thread.
  std::optional<BatchingTransport> batch;
  std::optional<ReliableTransport> rel;
  HostTransport* top = &st;
  if (batching && config.batch_placement == BatchPlacement::kBelowReliable) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }
  if (reliable) {
    rel.emplace(*top, config.reliable);
    top = &*rel;
  }
  if (batching && config.batch_placement == BatchPlacement::kAboveReliable) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }

  std::optional<workload::Generator> gen;
  if (config.workload != nullptr) gen.emplace(dist, *config.workload);

  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  if (!config.record_history) recorder.use_discard_mode();
  auto processes = make_processes(config.protocol, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = top->add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(*top);
    if (config.multicast != nullptr) proc->use_multicast(*config.multicast);
  }

  std::vector<std::unique_ptr<SocketClient>> clients;
  std::vector<std::unique_ptr<SocketWorkloadClient>> wclients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (gen) {
      wclients.push_back(
          std::make_unique<SocketWorkloadClient>(*processes[p], *gen));
    } else {
      clients.push_back(
          std::make_unique<SocketClient>(*processes[p], (*scripts)[p]));
    }
  }

  // -- scenario replay on the wall clock ------------------------------------
  // There is no Network to install a RateOverride on, so the timeline is
  // walked explicitly: 1 simulated µs = 1 wall µs from the epoch.  At each
  // window edge every pair's loss/duplication rate is re-sampled into the
  // socket layer's atomic per-pair rates (draws come from the same
  // deterministic chaos streams); structural events map onto
  // set_severed()/set_down() plus crash()/recover() posted to the owner
  // mailbox.  Partitions are counted cuts, exactly as in Network.
  std::vector<int> cut_count(n * n, 0);
  const auto apply_instant = [&](TimePoint t) {
    if (config.scenario == nullptr) return;
    for (const FaultEvent* ep : config.scenario->execution_order()) {
      const FaultEvent& e = *ep;
      if (e.at != t) continue;
      switch (e.type) {
        case FaultEvent::Type::kSever:
        case FaultEvent::Type::kHeal: {
          // Group id per process: listed processes get their group's
          // index, everyone else a unique singleton id.
          std::vector<std::size_t> gid(n);
          std::size_t next = e.groups.size();
          for (std::size_t p = 0; p < n; ++p) gid[p] = next++;
          for (std::size_t g = 0; g < e.groups.size(); ++g) {
            for (ProcessId p : e.groups[g]) {
              gid[static_cast<std::size_t>(p)] = g;
            }
          }
          const int delta = e.type == FaultEvent::Type::kSever ? 1 : -1;
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              if (i == j || gid[i] == gid[j]) continue;
              int& cuts = cut_count[i * n + j];
              cuts += delta;
              st.set_severed(static_cast<ProcessId>(i),
                             static_cast<ProcessId>(j), cuts > 0);
            }
          }
          break;
        }
        case FaultEvent::Type::kCrash:
          st.set_down(e.a, true);
          st.post(e.a, [proc = processes[static_cast<std::size_t>(e.a)].get()] {
            proc->crash();
          });
          break;
        case FaultEvent::Type::kRecover:
          st.set_down(e.a, false);
          st.post(e.a, [&, p = static_cast<std::size_t>(e.a)] {
            processes[p]->recover();
            if (!wclients.empty()) {
              wclients[p]->resume();
            } else {
              clients[p]->resume();
            }
          });
          break;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto a = static_cast<ProcessId>(i);
        const auto b = static_cast<ProcessId>(j);
        st.set_loss_rate(a, b,
                         std::max(0.0, config.scenario->loss_rate(a, b, t)));
        st.set_duplicate_rate(
            a, b, std::max(0.0, config.scenario->duplicate_rate(a, b, t)));
      }
    }
  };

  std::vector<TimePoint> edges;
  if (config.scenario != nullptr) edges = config.scenario->window_edges();

  st.start();
  // Edges at t <= 0 take effect before the first message, exactly like
  // Scenario::apply(): a timeline that starts lossy is lossy from op one.
  apply_instant(kTimeZero);
  std::thread timeline([&] {
    const auto epoch = std::chrono::steady_clock::now();
    for (TimePoint t : edges) {
      if (t <= kTimeZero) continue;
      std::this_thread::sleep_until(epoch + std::chrono::microseconds(t.us));
      apply_instant(t);
    }
  });

  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (gen) {
      st.post(static_cast<ProcessId>(p),
              [client = wclients[p].get()] { client->issue(); });
    } else {
      st.post(static_cast<ProcessId>(p),
              [client = clients[p].get()] { client->issue(); });
    }
  }

  // The timeline must run to completion before quiescence means anything:
  // a crashed process's client is stalled (zero pending work) until the
  // recovery event resumes it.
  timeline.join();
  const bool quiet = st.await_quiescence(config.quiesce_timeout);
  PARDSM_CHECK(quiet, "sockets runtime failed to quiesce — protocol stuck?");

  std::size_t unfinished = 0;
  for (const auto& client : clients) {
    if (!client->done()) ++unfinished;
  }
  for (const auto& client : wclients) {
    if (!client->done()) ++unfinished;
  }

  ScenarioRunResult result;
  collect_common(recorder, st.stats(), processes, dist.var_count, result);
  if (gen) collect_workload(*gen, wclients, result);
  result.finished_at = st.now();
  result.used_reliable_transport = reliable;
  result.retransmissions = rel ? rel->retransmissions() : 0;
  result.drops = st.drops();
  finish_clients(result, rel ? &*rel : nullptr, unfinished);
  result.socket_counters = st.counters();
  if (batch) result.batching = batch->stats();
  for (const auto& proc : processes) {
    const RecoveryStats& r = proc->recovery_stats();
    result.crashes += r.crashes;
    result.resync_messages +=
        r.resync_requests_sent + r.resync_responses_served;
    result.resync_bytes += r.resync_bytes;
    result.resync_values_applied += r.resync_values_applied;
    result.max_recovery_latency =
        std::max(result.max_recovery_latency, proc->max_recovery_latency());
  }
  st.stop();
  return result;
}

/// ScriptedClient's twin for the parallel engine: identical issue/stall
/// semantics, but every closure is scheduled with its owning process so
/// the engine can route it to the right shard and give it a canonical
/// ordering slot.
class ParallelScriptedClient {
 public:
  ParallelScriptedClient(McsProcess& process, ParallelSimulator& sim,
                         Script script)
      : process_(process), sim_(sim), script_(std::move(script)) {}

  void start(TimePoint start) {
    if (script_.empty()) return;
    sim_.schedule_at(start + script_.front().delay, process_.id(),
                     [this] { issue(); });
  }

  void resume(TimePoint at) {
    if (!stalled_) return;
    PARDSM_CHECK(!process_.crashed(),
                 "resume while the process is still down");
    stalled_ = false;
    sim_.schedule_at(at, process_.id(), [this] { issue(); });
  }

  [[nodiscard]] bool done() const { return next_ >= script_.size(); }

 private:
  void issue() {
    PARDSM_CHECK(next_ < script_.size(), "issue past end of script");
    if (process_.crashed()) {
      stalled_ = true;
      return;
    }
    const ScriptOp& op = script_[next_];
    ++next_;

    const auto continue_after = [this] {
      if (next_ >= script_.size()) return;
      const Duration delay = script_[next_].delay;
      sim_.schedule_at(sim_.now() + delay, process_.id(),
                       [this] { issue(); });
    };

    if (op.kind == ScriptOp::Kind::kRead) {
      process_.read(op.var, [this, continue_after](Value v) {
        reads_.push_back(v);
        continue_after();
      });
    } else {
      process_.write(op.var, op.value, continue_after);
    }
  }

  McsProcess& process_;
  ParallelSimulator& sim_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool stalled_ = false;
};

/// WorkloadClient's twin for the parallel engine: identical open/closed
/// loop and stall semantics, every closure scheduled with its owning
/// process so it lands on the right shard with a canonical ordering
/// slot.  The per-client histogram is only ever touched on the owner's
/// shard; the engine merges them after the run (order-independent).
class ParallelWorkloadClient {
 public:
  ParallelWorkloadClient(McsProcess& process, ParallelSimulator& sim,
                         const workload::Generator& gen)
      : process_(process), sim_(sim), gen_(gen) {}

  void start(TimePoint start) {
    start_ = start;
    if (gen_.open_loop()) {
      sim_.schedule_at(gen_.arrival(start_, 0), process_.id(),
                       [this] { arrive(); });
    } else {
      arrivals_ = gen_.ops_per_process();
      sim_.schedule_at(start_, process_.id(), [this] { pump(); });
    }
  }

  void resume(TimePoint at) {
    if (!stalled_) return;
    PARDSM_CHECK(!process_.crashed(),
                 "resume while the process is still down");
    stalled_ = false;
    sim_.schedule_at(at, process_.id(), [this] { pump(); });
  }

  [[nodiscard]] bool done() const {
    return completed_ == gen_.ops_per_process();
  }
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t reads_digest() const { return reads_digest_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

 private:
  void arrive() {
    ++arrivals_;
    if (arrivals_ < gen_.ops_per_process()) {
      sim_.schedule_at(gen_.arrival(start_, arrivals_), process_.id(),
                       [this] { arrive(); });
    }
    pump();
  }

  void pump() {
    if (outstanding_ || issued_ >= arrivals_) return;
    if (process_.crashed()) {
      stalled_ = true;
      return;
    }
    const std::uint64_t k = issued_++;
    outstanding_ = true;
    const TimePoint t0 =
        gen_.open_loop() ? gen_.arrival(start_, k) : sim_.now();
    const workload::OpSpec op = gen_.op(process_.id(), k);
    if (op.is_read) {
      process_.read(op.var, [this, t0](Value v) {
        reads_digest_ =
            mix_word(reads_digest_, static_cast<std::uint64_t>(v));
        complete(t0);
      });
    } else {
      process_.write(op.var, op.value, [this, t0] { complete(t0); });
    }
  }

  void complete(TimePoint t0) {
    const Duration d = sim_.now() - t0;
    latency_.record(d.us > 0 ? static_cast<std::uint64_t>(d.us) : 0);
    ++completed_;
    outstanding_ = false;
    if (issued_ < arrivals_) {
      sim_.schedule_at(sim_.now(), process_.id(), [this] { pump(); });
    }
  }

  McsProcess& process_;
  ParallelSimulator& sim_;
  const workload::Generator& gen_;
  TimePoint start_{};
  std::uint64_t arrivals_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t reads_digest_ = 0;
  bool outstanding_ = false;
  bool stalled_ = false;
  LatencyHistogram latency_;
};

ScenarioRunResult run_on_parallel(EngineConfig& config) {
  const graph::Distribution& dist = *config.distribution;
  const std::vector<Script>* scripts = config.scripts;
  const bool reliable = needs_reliable(config);
  const bool batching =
      config.force_batching_layer || config.batching.window.us > 0;

  ParallelSimOptions sim_options;
  sim_options.seed = config.sim_seed;
  sim_options.channel = config.channel;
  sim_options.latency = std::move(config.latency);
  sim_options.num_threads = config.parallel.num_threads;
  sim_options.quantum = config.parallel.quantum;
  sim_options.shard_of = graph::shard_assignment(
      dist, static_cast<int>(config.parallel.num_threads));
  ParallelSimulator sim(std::move(sim_options));
  sim.set_var_hint(dist.var_count);

  // The same transport stack as the sequential path: the decorators'
  // per-process shims only ever run on their owner's shard, which is what
  // makes them preemption- and shard-safe without modification.
  std::optional<BatchingTransport> batch;
  std::optional<ReliableTransport> rel;
  HostTransport* top = &sim;
  if (batching && config.batch_placement == BatchPlacement::kBelowReliable) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }
  if (reliable) {
    rel.emplace(*top, config.reliable);
    top = &*rel;
  }
  if (batching && config.batch_placement == BatchPlacement::kAboveReliable) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }

  std::optional<workload::Generator> gen;
  if (config.workload != nullptr) gen.emplace(dist, *config.workload);

  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  // History global order is insertion order; parallel execution makes
  // arrival interleaving thread-dependent, so rebuild it canonically.
  recorder.use_canonical_order();
  if (!config.record_history) recorder.use_discard_mode();
  auto processes = make_processes(config.protocol, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = top->add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(*top);
    if (config.multicast != nullptr) proc->use_multicast(*config.multicast);
  }

  std::vector<std::unique_ptr<ParallelScriptedClient>> clients;
  std::vector<std::unique_ptr<ParallelWorkloadClient>> wclients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (gen) {
      wclients.push_back(std::make_unique<ParallelWorkloadClient>(
          *processes[p], sim, *gen));
    } else {
      clients.push_back(std::make_unique<ParallelScriptedClient>(
          *processes[p], sim, (*scripts)[p]));
    }
  }

  sim.freeze();
  if (config.scenario != nullptr) {
    ScenarioHooks hooks;
    hooks.on_crash = [&processes](ProcessId p, TimePoint) {
      processes[static_cast<std::size_t>(p)]->crash();
    };
    hooks.on_recover = [&processes, &clients, &wclients](ProcessId p,
                                                         TimePoint at) {
      processes[static_cast<std::size_t>(p)]->recover();
      if (!wclients.empty()) {
        wclients[static_cast<std::size_t>(p)]->resume(at);
      } else {
        clients[static_cast<std::size_t>(p)]->resume(at);
      }
    };
    config.scenario->apply(sim, hooks);
  }

  for (auto& client : clients) client->start(kTimeZero);
  for (auto& client : wclients) client->start(kTimeZero);
  sim.run();

  std::size_t unfinished = 0;
  for (const auto& client : clients) {
    if (!client->done()) ++unfinished;
  }
  for (const auto& client : wclients) {
    if (!client->done()) ++unfinished;
  }

  ScenarioRunResult result;
  collect_common(recorder, sim.stats(), processes, dist.var_count, result);
  if (gen) collect_workload(*gen, wclients, result);
  result.finished_at = sim.now();
  result.events = sim.events_fired();

  result.used_reliable_transport = reliable;
  result.retransmissions = rel ? rel->retransmissions() : 0;
  result.drops = sim.drop_counters();
  finish_clients(result, rel ? &*rel : nullptr, unfinished);
  result.active_channel_pairs = sim.fifo_pairs();
  result.channel_state_bytes = sim.state_bytes();
  if (batch) result.batching = batch->stats();
  for (const auto& proc : processes) {
    const RecoveryStats& r = proc->recovery_stats();
    result.crashes += r.crashes;
    result.resync_messages +=
        r.resync_requests_sent + r.resync_responses_served;
    result.resync_bytes += r.resync_bytes;
    result.resync_values_applied += r.resync_values_applied;
    result.max_recovery_latency =
        std::max(result.max_recovery_latency, proc->max_recovery_latency());
  }
  return result;
}

ScenarioRunResult run_on_simulator(EngineConfig& config) {
  const graph::Distribution& dist = *config.distribution;
  const std::vector<Script>* scripts = config.scripts;
  const bool reliable = needs_reliable(config);
  const bool batching =
      config.force_batching_layer || config.batching.window.us > 0;

  SimOptions sim_options;
  sim_options.seed = config.sim_seed;
  sim_options.channel = config.channel;
  sim_options.latency = std::move(config.latency);
  Simulator sim(std::move(sim_options));
  // Declare m before the network materializes: ensure_network's resize
  // then pre-sizes every exposure row (branch-free deliver accounting).
  sim.stats().set_var_hint(dist.var_count);

  // Assemble the transport stack bottom-up.  Faulty runs go through the
  // ARQ layer: the protocols assume reliable FIFO channels for liveness,
  // and recovery traffic must be charged to the same ledger as everything
  // else.  The batching layer coalesces either above it (frames ride
  // single DATA frames) or below it (DATA/ACK frames coalesce).
  std::optional<BatchingTransport> batch;
  std::optional<ReliableTransport> rel;
  HostTransport* top = &sim;
  if (batching && config.batch_placement == BatchPlacement::kBelowReliable) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }
  if (reliable) {
    rel.emplace(*top, config.reliable);
    top = &*rel;
  }
  if (batching && config.batch_placement == BatchPlacement::kAboveReliable) {
    batch.emplace(*top, config.batching);
    top = &*batch;
  }

  std::optional<workload::Generator> gen;
  if (config.workload != nullptr) gen.emplace(dist, *config.workload);

  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  if (!config.record_history) recorder.use_discard_mode();
  auto processes = make_processes(config.protocol, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = top->add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(*top);
    if (config.multicast != nullptr) proc->use_multicast(*config.multicast);
  }

  std::vector<std::unique_ptr<ScriptedClient>> clients;
  std::vector<std::unique_ptr<WorkloadClient>> wclients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    if (gen) {
      wclients.push_back(
          std::make_unique<WorkloadClient>(*processes[p], sim, *gen));
    } else {
      clients.push_back(std::make_unique<ScriptedClient>(*processes[p], sim,
                                                         (*scripts)[p]));
    }
  }

  // Apply the timeline before any client op is scheduled: events at t<=0
  // take effect immediately, so a scenario that starts lossy is lossy for
  // the very first message.
  sim.ensure_network();
  if (config.scenario != nullptr) {
    ScenarioHooks hooks;
    hooks.on_crash = [&processes](ProcessId p, TimePoint) {
      processes[static_cast<std::size_t>(p)]->crash();
    };
    hooks.on_recover = [&processes, &clients, &wclients](ProcessId p,
                                                         TimePoint at) {
      processes[static_cast<std::size_t>(p)]->recover();
      if (!wclients.empty()) {
        wclients[static_cast<std::size_t>(p)]->resume(at);
      } else {
        clients[static_cast<std::size_t>(p)]->resume(at);
      }
    };
    config.scenario->apply(sim, hooks);
  }

  for (auto& client : clients) client->start(kTimeZero);
  for (auto& client : wclients) client->start(kTimeZero);
  sim.run();

  std::size_t unfinished = 0;
  for (const auto& client : clients) {
    if (!client->done()) ++unfinished;
  }
  for (const auto& client : wclients) {
    if (!client->done()) ++unfinished;
  }

  ScenarioRunResult result;
  collect_common(recorder, sim.stats(), processes, dist.var_count, result);
  if (gen) collect_workload(*gen, wclients, result);
  result.finished_at = sim.now();
  result.events = sim.events_fired();

  result.used_reliable_transport = reliable;
  result.retransmissions = rel ? rel->retransmissions() : 0;
  result.drops = sim.network().drop_counters();
  finish_clients(result, rel ? &*rel : nullptr, unfinished);
  result.active_channel_pairs = sim.network().fifo_pairs();
  result.channel_state_bytes = sim.network().state_bytes();
  if (batch) result.batching = batch->stats();
  for (const auto& proc : processes) {
    const RecoveryStats& r = proc->recovery_stats();
    result.crashes += r.crashes;
    result.resync_messages +=
        r.resync_requests_sent + r.resync_responses_served;
    result.resync_bytes += r.resync_bytes;
    result.resync_values_applied += r.resync_values_applied;
    result.max_recovery_latency =
        std::max(result.max_recovery_latency, proc->max_recovery_latency());
  }
  return result;
}

}  // namespace

ScenarioRunResult run(EngineConfig config) {
  PARDSM_CHECK(config.distribution != nullptr, "run: distribution required");
  PARDSM_CHECK((config.scripts != nullptr) != (config.workload != nullptr),
               "run: exactly one of scripts / workload required");
  if (config.scripts != nullptr) {
    PARDSM_CHECK(
        config.scripts->size() == config.distribution->process_count(),
        "one script per process required");
  }
  if (config.workload != nullptr && config.workload->arrival_rate > 0.0) {
    // Open-loop arrival control is a simulated-time construct; on the
    // wall-clock runtimes the client loop is closed by design, so an
    // open-loop spec there would silently measure something else.
    PARDSM_CHECK(config.runtime == EngineRuntime::kSimulator ||
                     config.runtime == EngineRuntime::kParallelSim,
                 "open-loop arrival rates require a simulator runtime");
  }
  if (config.runtime == EngineRuntime::kThreads) {
    return run_on_threads(config);
  }
  if (config.runtime == EngineRuntime::kParallelSim) {
    return run_on_parallel(config);
  }
  if (config.runtime == EngineRuntime::kSockets) {
    return run_on_sockets(config);
  }
  return run_on_simulator(config);
}

}  // namespace pardsm::mcs
