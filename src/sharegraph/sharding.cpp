#include "sharegraph/sharding.h"

#include "simnet/check.h"

namespace pardsm::graph {

std::vector<int> shard_assignment(const Distribution& dist, int num_shards) {
  PARDSM_CHECK(num_shards >= 1, "shard_assignment: need at least one shard");
  const std::size_t n = dist.process_count();
  std::vector<int> shard(n, 0);
  if (num_shards == 1) return shard;

  const ShareGraph sg(dist);
  const auto components = sg.components();
  if (components.size() <= 1) {
    // One connected component: no cell structure to exploit; spread the
    // processes evenly instead.
    for (std::size_t p = 0; p < n; ++p) {
      shard[p] = static_cast<int>(p) % num_shards;
    }
    return shard;
  }
  // components() is deterministic (sorted by minimum member), so this
  // round-robin is too.  Every process of a cell lands on one shard,
  // making the cell's entire protocol traffic shard-local.
  for (std::size_t c = 0; c < components.size(); ++c) {
    const int s = static_cast<int>(c % static_cast<std::size_t>(num_shards));
    for (ProcessId p : components[c]) {
      shard[static_cast<std::size_t>(p)] = s;
    }
  }
  return shard;
}

}  // namespace pardsm::graph
