// S4 — exact consistency checking cost vs history size.
//
// The serialization search is the tool that validates every protocol in
// this repository; this bench characterizes how far it scales and how
// much the forced-edge propagation prunes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::hist;
namespace bu = pardsm::benchutil;

History recorded_history(std::size_t ops_per_process, std::uint64_t seed) {
  const auto dist = graph::topo::random_replication(4, 3, 2, seed);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = ops_per_process;
  spec.read_fraction = 0.5;
  spec.seed = seed;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  return mcs::run_workload(mcs::ProtocolKind::kCausalPartialNaive, dist,
                           scripts, {})
      .history;
}

void print_table(bu::Harness& harness) {
  bu::banner("S4: exact checker cost vs history size (causal criterion)");
  bu::row({"ops/proc", "|O_H|", "verdict", "check-ms"});
  for (std::size_t ops : {4u, 8u, 12u, 16u, 20u}) {
    const auto h = recorded_history(ops, 3);
    CheckResult result;
    const double ms =
        bu::time_ms([&] { result = check_history(h, Criterion::kCausal); });
    bu::row({bu::num(static_cast<std::uint64_t>(ops)),
             bu::num(static_cast<std::uint64_t>(h.size())),
             result.consistent ? "consistent" : "violated",
             bu::num(ms, 2)});
    harness.record(
        {.label = "causal-ops" + std::to_string(ops),
         .protocol = "causal-partial-naive",
         .distribution = "random-r2-4p3v",
         .ops = h.size(),
         .wall_ns = static_cast<std::uint64_t>(ms * 1e6),
         .extra = {{"check_ms", ms},
                   {"consistent", result.consistent ? 1.0 : 0.0}}});
  }
  std::cout << "(forced-edge propagation keeps protocol-generated histories "
               "near-linear; adversarial instances can still explode — the "
               "checker then reports unknown rather than guessing)\n";
}

void BM_CheckCriterion(benchmark::State& state, Criterion c) {
  const auto h = recorded_history(8, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_history(h, c));
  }
}
BENCHMARK_CAPTURE(BM_CheckCriterion, causal, Criterion::kCausal);
BENCHMARK_CAPTURE(BM_CheckCriterion, lazy_causal, Criterion::kLazyCausal);
BENCHMARK_CAPTURE(BM_CheckCriterion, lazy_semi, Criterion::kLazySemiCausal);
BENCHMARK_CAPTURE(BM_CheckCriterion, pram, Criterion::kPram);
BENCHMARK_CAPTURE(BM_CheckCriterion, slow, Criterion::kSlow);
BENCHMARK_CAPTURE(BM_CheckCriterion, sequential, Criterion::kSequential);

void BM_CheckVsOps(benchmark::State& state) {
  const auto h = recorded_history(static_cast<std::size_t>(state.range(0)),
                                  7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_history(h, Criterion::kPram));
  }
  state.SetComplexityN(static_cast<std::int64_t>(h.size()));
}
BENCHMARK(BM_CheckVsOps)->DenseRange(4, 20, 4)->Complexity();

void BM_OrderConstruction(benchmark::State& state) {
  const auto h = recorded_history(16, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(causality_order(h));
    benchmark::DoNotOptimize(lazy_semi_causal_order(h));
  }
}
BENCHMARK(BM_OrderConstruction);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "checkers_scaling");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
