// Consistency explorer: classify the paper's example histories (Figures
// 3-6) under every criterion, show their share graphs, hoops and
// dependency chains — a guided tour of the paper's formal machinery.
//
//   $ ./examples/consistency_explorer

#include <iostream>

#include "history/canned.h"
#include "history/checkers.h"
#include "sharegraph/dependency_chain.h"
#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"

int main() {
  using namespace pardsm;
  using namespace pardsm::hist;
  using namespace pardsm::graph;

  for (const auto& ex : paper::all_examples()) {
    std::cout << "== " << ex.name << " ==\n" << ex.history.to_string();

    std::cout << "classification: " << classify(ex.history).to_string()
              << '\n';

    Distribution d{ex.name, ex.history.var_count(), ex.distribution};
    const ShareGraph sg(d);
    const auto hoops = enumerate_hoops(sg, ex.focus_var);
    std::cout << "x-hoops for x" << ex.focus_var << ": "
              << hoops.hoops.size() << '\n';
    for (const auto& hoop : hoops.hoops) {
      std::cout << "  hoop: [";
      for (std::size_t i = 0; i < hoop.size(); ++i) {
        std::cout << (i ? " " : "") << 'p' << hoop[i];
      }
      std::cout << "]\n";
    }

    const auto chain =
        find_chain(ex.history, sg, ex.focus_var, ChainRelation::kCausal);
    if (chain.found) {
      std::cout << "causal dependency chain: ";
      for (hist::OpIndex op : chain.ops) {
        std::cout << ex.history.op(op).to_string() << ' ';
      }
      std::cout << '\n';
    } else {
      std::cout << "no causal dependency chain along any hoop\n";
    }
    std::cout << '\n';
  }

  // The Theorem 1 relevance sets of the Figure 1 share graph.
  const ShareGraph fig1(topo::fig1());
  std::cout << "== Figure 1 ==\n" << fig1.to_dot();
  for (VarId x = 0; x < 2; ++x) {
    std::cout << "x" << x + 1 << "-relevant: { ";
    for (ProcessId p : x_relevant(fig1, x)) std::cout << 'p' << p << ' ';
    std::cout << "}\n";
  }
  return 0;
}
