// The paper's Figures 3-6, classified by the exact checkers.
//
// These tests pin the headline qualitative results of Sections 4 and 5:
// the example histories must be admitted / rejected by exactly the
// criteria the paper states.

#include <gtest/gtest.h>

#include "history/canned.h"
#include "history/checkers.h"
#include "history/orders.h"

namespace pardsm::hist {
namespace {

bool admitted(const History& h, Criterion c,
              LazyMode mode = LazyMode::kPaperConsistent) {
  CheckOptions opts;
  opts.lazy_mode = mode;
  const auto r = check_history(h, c, opts);
  EXPECT_TRUE(r.definitive) << "budget exhausted for " << to_string(c);
  return r.consistent;
}

// ---------------------------------------------------------------- Figure 4
TEST(PaperHistories, Fig4IsLazyCausalButNotCausal) {
  const auto ex = paper::fig4_lazy_causal_not_causal();
  EXPECT_FALSE(admitted(ex.history, Criterion::kCausal));
  EXPECT_TRUE(admitted(ex.history, Criterion::kLazyCausal));
}

TEST(PaperHistories, Fig4WeakerCriteriaAdmit) {
  const auto ex = paper::fig4_lazy_causal_not_causal();
  EXPECT_TRUE(admitted(ex.history, Criterion::kLazySemiCausal));
  EXPECT_TRUE(admitted(ex.history, Criterion::kPram));
  EXPECT_TRUE(admitted(ex.history, Criterion::kSlow));
}

TEST(PaperHistories, Fig4IsNotSequential) {
  const auto ex = paper::fig4_lazy_causal_not_causal();
  EXPECT_FALSE(admitted(ex.history, Criterion::kSequential));
}

// The key step of the paper's Fig 4 discussion: w1(x)a 7->lco r3(y)c holds,
// yet r3(y)c and r3(x)⊥ are concurrent w.r.t. 7->lco, breaking the chain.
TEST(PaperHistories, Fig4LcoChainBreaksAtFinalRead) {
  const auto ex = paper::fig4_lazy_causal_not_causal();
  const auto& h = ex.history;
  const Relation lco = lazy_causality_order(h);
  // Op indices: 0:w0(x)a 1:r0(x)a 2:w0(y)b 3:r1(y)b 4:w1(y)c 5:r2(y)c
  // 6:r2(x)⊥.
  EXPECT_TRUE(lco.has(0, 5));             // w1(x)a 7->lco r3(y)c
  EXPECT_TRUE(concurrent(lco, 5, 6));     // r3(y)c ||_lco r3(x)⊥
  EXPECT_FALSE(lco.has(0, 6));            // w1(x)a not 7->lco r3(x)⊥

  // Under full causality the chain closes (program order is total).
  const Relation co = causality_order(h);
  EXPECT_TRUE(co.has(0, 6));
}

// ---------------------------------------------------------------- Figure 5
TEST(PaperHistories, Fig5IsNotLazyCausal) {
  const auto ex = paper::fig5_not_lazy_causal();
  EXPECT_FALSE(admitted(ex.history, Criterion::kLazyCausal));
  EXPECT_FALSE(admitted(ex.history, Criterion::kCausal));
}

TEST(PaperHistories, Fig5IsLazySemiCausalAndPram) {
  const auto ex = paper::fig5_not_lazy_causal();
  EXPECT_TRUE(admitted(ex.history, Criterion::kLazySemiCausal));
  EXPECT_TRUE(admitted(ex.history, Criterion::kPram));
  EXPECT_TRUE(admitted(ex.history, Criterion::kSlow));
}

// The dependency the paper derives: r3(y)c ->li w3(x)d, hence
// w1(x)a 7->lco w3(x)d.
TEST(PaperHistories, Fig5LcoChainReachesTheWrite) {
  const auto ex = paper::fig5_not_lazy_causal();
  const auto& h = ex.history;
  const Relation lco = lazy_causality_order(h);
  // Ops: 0:w0(x)a 1:r0(x)a 2:w0(y)b 3:r1(y)b 4:w1(y)c 5:r2(y)c 6:w2(x)d
  // 7:r3(x)d 8:r3(x)a
  EXPECT_TRUE(lco.has(5, 6));  // r3(y)c ->li w3(x)d (read before write)
  EXPECT_TRUE(lco.has(0, 6));  // w1(x)a 7->lco w3(x)d
}

// ---------------------------------------------------------------- Figure 6
TEST(PaperHistories, Fig6IsNotLazySemiCausal) {
  const auto ex = paper::fig6_not_lazy_semi_causal();
  EXPECT_FALSE(admitted(ex.history, Criterion::kLazySemiCausal));
  EXPECT_FALSE(admitted(ex.history, Criterion::kLazyCausal));
  EXPECT_FALSE(admitted(ex.history, Criterion::kCausal));
}

TEST(PaperHistories, Fig6IsPramConsistent) {
  const auto ex = paper::fig6_not_lazy_semi_causal();
  EXPECT_TRUE(admitted(ex.history, Criterion::kPram));
  EXPECT_TRUE(admitted(ex.history, Criterion::kSlow));
}

// The lwb chain of the paper: w1(x)a ->lwb r2(y)b and w2(y)e ->lwb r3(z)c,
// which with ->li steps yields w1(x)a 7->lsc w3(x)d.
TEST(PaperHistories, Fig6LwbChain) {
  const auto ex = paper::fig6_not_lazy_semi_causal();
  const auto& h = ex.history;
  // Ops: 0:w0(x)a 1:r0(x)a 2:w0(y)b 3:r1(y)b 4:w1(y)e 5:w1(z)c 6:r2(z)c
  // 7:w2(x)d 8:r3(x)d 9:r3(x)a
  const Relation lwb = lazy_writes_before(h);
  EXPECT_TRUE(lwb.has(0, 3));  // w1(x)a ->lwb r2(y)b  (via w1(y)b)
  EXPECT_TRUE(lwb.has(4, 6));  // w2(y)e ->lwb r3(z)c  (via w2(z)c)

  const Relation lsc = lazy_semi_causal_order(h);
  EXPECT_TRUE(lsc.has(0, 7));  // w1(x)a 7->lsc w3(x)d
}

// Ablation: under the *literal* reading of Definition 5 (no write→write
// ordering across variables) the Figure 6 lwb chain cannot be derived at
// p2 (w2(y)e and w2(z)c become permutable), so the history is admitted.
// This documents why the kPaperConsistent reading is the default.
TEST(PaperHistories, Fig6LiteralDef5AdmitsTheHistory) {
  const auto ex = paper::fig6_not_lazy_semi_causal();
  const Relation lwb = lazy_writes_before(ex.history, LazyMode::kLiteral);
  EXPECT_FALSE(lwb.has(4, 6));
  EXPECT_TRUE(admitted(ex.history, Criterion::kLazySemiCausal,
                       LazyMode::kLiteral));
}

// ---------------------------------------------------------------- Figure 3
TEST(PaperHistories, Fig3ChainHistoryIsCausal) {
  for (std::size_t k : {2u, 3u, 5u}) {
    const auto ex = paper::fig3_dependency_chain(k, paper::ChainEnd::kRead);
    EXPECT_TRUE(admitted(ex.history, Criterion::kCausal)) << ex.name;
  }
}

TEST(PaperHistories, Fig3WriteEndIsCausal) {
  const auto ex = paper::fig3_dependency_chain(3, paper::ChainEnd::kWrite);
  EXPECT_TRUE(admitted(ex.history, Criterion::kCausal));
}

// The necessity argument of Theorem 1: if the final read ignores the
// chain-initial write (returns ⊥), causal consistency is violated...
TEST(PaperHistories, Fig3StaleReadViolatesCausal) {
  const auto ex = paper::fig3_dependency_chain(3, paper::ChainEnd::kStaleRead);
  EXPECT_FALSE(admitted(ex.history, Criterion::kCausal));
}

// ...but PRAM admits the stale read: the chain crosses a hoop, and PRAM
// (Theorem 2) never propagates dependencies along hoops.
TEST(PaperHistories, Fig3StaleReadIsPramConsistent) {
  const auto ex = paper::fig3_dependency_chain(3, paper::ChainEnd::kStaleRead);
  EXPECT_TRUE(admitted(ex.history, Criterion::kPram));
}

// ------------------------------------------------------- cross-cutting
// Every example's read-from must resolve exactly (unique values).
TEST(PaperHistories, AllExamplesResolve) {
  for (const auto& ex : paper::all_examples()) {
    EXPECT_TRUE(ex.history.read_from_resolvable()) << ex.name;
    EXPECT_GT(ex.history.size(), 0u) << ex.name;
    EXPECT_EQ(ex.distribution.size(), ex.history.process_count()) << ex.name;
  }
}

// The criterion lattice must hold on every example: if a stronger
// criterion admits a history, every weaker one does too.
TEST(PaperHistories, LatticeHoldsOnExamples) {
  for (const auto& ex : paper::all_examples()) {
    std::vector<std::pair<Criterion, bool>> verdicts;
    for (Criterion c : all_criteria()) {
      verdicts.emplace_back(c, admitted(ex.history, c));
    }
    for (const auto& [stronger, ok_s] : verdicts) {
      if (!ok_s) continue;
      for (const auto& [weaker, ok_w] : verdicts) {
        if (implies(stronger, weaker)) {
          EXPECT_TRUE(ok_w) << ex.name << ": " << to_string(stronger)
                            << " admitted but " << to_string(weaker)
                            << " did not";
        }
      }
    }
  }
}

}  // namespace
}  // namespace pardsm::hist
