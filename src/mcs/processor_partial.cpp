#include "mcs/processor_partial.h"

#include "mcs/cache_messages.h"

namespace pardsm::mcs {

ProcessorPartialProcess::ProcessorPartialProcess(
    ProcessId self, const graph::Distribution& dist,
    HistoryRecorder& recorder)
    : CachePartialProcess(self, dist, recorder) {}

detail::PriorCounts ProcessorPartialProcess::prior_counts_for(VarId x) {
  detail::PriorCounts priors;
  // replicas_of(x) is sorted ascending, so the flat vector stays in the
  // ProcessId order the wire format pins.
  for (ProcessId q : replicas_of(x)) {
    auto& sent = sent_to_[q];
    priors.push_back({q, sent});
    ++sent;
  }
  return priors;
}

bool ProcessorPartialProcess::commit_ready(const Message& m) {
  const auto* c = m.as<detail::CacheCommit>();
  PARDSM_CHECK(c != nullptr, "processor: unexpected commit body");
  const std::int64_t* need = detail::find_prior(c->prior_counts, id());
  if (need == nullptr) return true;  // no constraint for us
  return applied_from_[c->id.writer] >= *need;
}

void ProcessorPartialProcess::on_applied(ProcessId writer) {
  ++applied_from_[writer];
}

}  // namespace pardsm::mcs
