// History recording.
//
// Protocols report every application-level operation here; the recorder
// assembles a hist::History with exact read-from provenance and real-time
// intervals, which the test suite feeds to the exact consistency checkers.
// Thread-safe (the thread runtime records from many threads).
//
// Two assembly modes:
//
//   * Direct (default): operations are pushed into the History as they
//     arrive, so the History's global order is arrival order.  This is
//     what the sequential simulator has always produced and what the
//     golden histories pin.
//   * Canonical: operations are buffered per process and the History is
//     rebuilt at take_history() in (process, program-order) — a pure
//     function of each process's own execution, independent of how
//     processes interleave.  The parallel engine uses this so the same
//     run yields a byte-identical History at any thread count.
#pragma once

#include <mutex>
#include <vector>

#include "history/history.h"
#include "simnet/sim_time.h"

namespace pardsm::mcs {

/// Thread-safe builder of a hist::History from live protocol runs.
class HistoryRecorder {
 public:
  HistoryRecorder(std::size_t process_count, std::size_t var_count)
      : history_(process_count, var_count),
        process_count_(process_count),
        var_count_(var_count) {}

  /// Switch to canonical assembly (see file comment).  Must be called
  /// before any operation is recorded.
  void use_canonical_order();

  /// Count-only mode: record_* keep per-op counters but store nothing, so
  /// memory stays O(1) no matter how many operations stream through —
  /// what lets a generated-workload run push millions of ops with peak
  /// RSS independent of the op count.  take_history()/history() return an
  /// empty (correctly-shaped) History.  Must be called before any
  /// operation is recorded; overrides canonical buffering.
  void use_discard_mode();

  /// Operations seen while in discard mode (0 otherwise).
  [[nodiscard]] std::uint64_t discarded_ops() const;

  /// Record a completed write (its WriteId must be the one the protocol
  /// attached to the stored value).
  void record_write(ProcessId p, VarId x, Value v, WriteId id,
                    TimePoint invoked, TimePoint responded);

  /// Record a completed read returning `got` (value + provenance).
  void record_read(ProcessId p, VarId x, Value value, WriteId source,
                   TimePoint invoked, TimePoint responded);

  /// Snapshot of the history so far (copy; safe after the run finished).
  [[nodiscard]] hist::History history() const;

  /// Move the history out (no copy).  The recorder is empty afterwards —
  /// only for drivers that are done with it.  Canonical mode builds the
  /// History here, in (process, program order).
  [[nodiscard]] hist::History take_history();

  /// Number of recorded operations.
  [[nodiscard]] std::size_t size() const;

 private:
  /// One buffered operation of canonical mode.
  struct PendingOp {
    bool is_write = false;
    VarId x = kNoVar;
    Value value = kBottom;
    WriteId id{};  ///< the write's own id, or a read's source
    TimePoint invoked{};
    TimePoint responded{};
  };

  [[nodiscard]] hist::History build_canonical() const;

  mutable std::mutex mu_;
  hist::History history_;
  std::size_t process_count_;
  std::size_t var_count_;
  bool canonical_ = false;
  bool discard_ = false;
  std::uint64_t discarded_ = 0;  ///< ops seen in discard mode
  /// Canonical mode only: per-process program-order operation buffers.
  std::vector<std::vector<PendingOp>> pending_;
};

}  // namespace pardsm::mcs
