// S2 — the price of faults: recovery overhead across loss rates, fault
// schedules and all nine protocols.
//
// The paper's efficiency results assume reliable FIFO channels.  This
// bench charges recovery traffic to the same ledger: every (protocol,
// schedule, loss-rate) cell runs the identical workload through
// run_scenario — ARQ framing, retransmissions, partition backlogs and
// crash re-syncs included — and reports the overhead relative to the
// lossless run of the same scripts.  Expected shape:
//
//   loss 0          : ARQ framing only (acks + 16B/frame) — the fixed
//                     price of not trusting the channel
//   loss 0.01/0.1   : retransmission cost grows with both the loss rate
//                     and the protocol's message count, so chatty
//                     protocols (causal-full/naive) pay the most wire
//                     bytes while wait-free protocols hide the latency
//   partition/crash : bounded backlog + re-sync cost, dominated by the
//                     retransmit timer, not by protocol complexity

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/scenario.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

constexpr double kLossRates[] = {0.0, 0.01, 0.1};

enum class Schedule { kSteady, kPartition, kCrash };

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kSteady:
      return "steady";
    case Schedule::kPartition:
      return "partition";
    case Schedule::kCrash:
      return "crash";
  }
  return "?";
}

Scenario make_scenario(Schedule schedule, double loss) {
  Scenario s(std::string(schedule_name(schedule)) + "-loss" +
             bu::num(loss, 2));
  // Every cell of the sweep runs over the ARQ layer — including
  // steady/loss-0, whose overhead vs the raw lossless run is then exactly
  // the ARQ framing price (frames + acks).
  s.force_reliable();
  if (loss > 0.0) s.set_loss(loss);
  switch (schedule) {
    case Schedule::kSteady:
      break;
    case Schedule::kPartition:
      s.partition({{0, 1, 2}, {3, 4, 5}}, after(millis(2)),
                  after(millis(7)));
      break;
    case Schedule::kCrash:
      s.crash(1, after(millis(2)), after(millis(6)));
      break;
  }
  return s;
}

std::vector<Script> scenario_scripts(const graph::Distribution& dist) {
  WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.read_fraction = 0.5;
  spec.seed = 42;
  spec.think_time = millis(1);  // operations overlap the fault windows
  return make_random_scripts(dist, spec);
}

void sweep(bu::Harness& h) {
  const auto dist = graph::topo::ring(6);
  const auto scripts = scenario_scripts(dist);

  bu::banner("S2 fault-recovery overhead (ring-6, 8 ops/proc)");
  bu::row({"protocol", "schedule", "loss", "msgs", "bytes", "retrans",
           "resyncB", "recov-ms", "overhead"});

  for (auto kind : all_protocols()) {
    // The lossless, ARQ-free run of the same scripts: the denominator of
    // every overhead ratio in this protocol's rows.
    const auto lossless = run_workload(kind, dist, scripts, {});
    const auto lossless_bytes =
        static_cast<double>(lossless.total_traffic.wire_bytes_sent());

    for (auto schedule :
         {Schedule::kSteady, Schedule::kPartition, Schedule::kCrash}) {
      for (double loss : kLossRates) {
        const auto scenario = make_scenario(schedule, loss);
        const auto run = [&] {
          RunOptions options;
          options.sim_seed = 7;
          return run_scenario(kind, dist, scripts, scenario,
                              std::move(options));
        };
        const auto r = run();
        // wall_ns times a second, warm run of the identical deterministic
        // scenario so the row measures the engine, not cold-start noise.
        const std::uint64_t wall_ns = bu::time_ns([&] { (void)run(); });

        const double overhead =
            lossless_bytes > 0.0
                ? static_cast<double>(r.total_traffic.wire_bytes_sent()) /
                      lossless_bytes
                : 0.0;
        const double recovery_ms =
            static_cast<double>(r.max_recovery_latency.us) / 1000.0;

        bu::row({to_string(kind), schedule_name(schedule), bu::num(loss, 2),
                 bu::num(r.total_traffic.msgs_sent),
                 bu::num(r.total_traffic.wire_bytes_sent()),
                 bu::num(r.retransmissions), bu::num(r.resync_bytes),
                 bu::num(recovery_ms, 2), bu::num(overhead, 2)});
        h.record(
            {.label = std::string(schedule_name(schedule)) + "-loss" +
                      bu::num(loss, 2),
             .protocol = to_string(kind),
             .distribution = "ring-6",
             .ops = r.history.size(),
             .messages = r.total_traffic.msgs_sent,
             .bytes = r.total_traffic.wire_bytes_sent(),
             .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
             .wall_ns = wall_ns,
             .extra = {
                 {"loss", loss},
                 {"retransmissions", static_cast<double>(r.retransmissions)},
                 {"dropped", static_cast<double>(r.drops.total())},
                 {"resync_bytes", static_cast<double>(r.resync_bytes)},
                 {"resync_messages",
                  static_cast<double>(r.resync_messages)},
                 {"recovery_latency_ms", recovery_ms},
                 {"overhead_vs_lossless", overhead},
             }});
      }
    }
  }
  std::cout << "(overhead = wire bytes vs the lossless ARQ-free run of the "
               "same scripts; loss 0 rows price the ARQ framing itself)\n";
}

void BM_Scenario(benchmark::State& state, Schedule schedule, double loss) {
  const auto dist = graph::topo::ring(6);
  const auto scripts = scenario_scripts(dist);
  const auto scenario = make_scenario(schedule, loss);
  for (auto _ : state) {
    RunOptions options;
    options.sim_seed = 7;
    benchmark::DoNotOptimize(run_scenario(ProtocolKind::kPramPartial, dist,
                                          scripts, scenario,
                                          std::move(options)));
  }
}
BENCHMARK_CAPTURE(BM_Scenario, steady_loss10, Schedule::kSteady, 0.1);
BENCHMARK_CAPTURE(BM_Scenario, partition_loss1, Schedule::kPartition, 0.01);
BENCHMARK_CAPTURE(BM_Scenario, crash_loss1, Schedule::kCrash, 0.01);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "scenarios");
  sweep(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
