#include "simnet/latency.h"

#include <cmath>

#include "simnet/check.h"

namespace pardsm {

UniformLatency::UniformLatency(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
  PARDSM_CHECK(lo.us >= 0 && lo <= hi, "UniformLatency requires 0 <= lo <= hi");
}

Duration UniformLatency::sample(ProcessId, ProcessId, Rng& rng) {
  return Duration{rng.range(lo_.us, hi_.us)};
}

ExponentialTailLatency::ExponentialTailLatency(Duration base,
                                               Duration mean_tail,
                                               Duration cap)
    : base_(base), mean_(mean_tail), cap_(cap) {
  PARDSM_CHECK(base.us >= 0 && mean_tail.us > 0 && cap.us >= 0,
               "ExponentialTailLatency parameter sanity");
}

Duration ExponentialTailLatency::sample(ProcessId, ProcessId, Rng& rng) {
  // Inverse-CDF sampling; clamp u away from 0 to avoid log(0).
  const double u = std::max(rng.uniform01(), 1e-12);
  auto tail = static_cast<std::int64_t>(
      -std::log(u) * static_cast<double>(mean_.us));
  if (tail > cap_.us) tail = cap_.us;
  return base_ + Duration{tail};
}

MatrixLatency::MatrixLatency(std::vector<std::vector<Duration>> matrix)
    : matrix_(std::move(matrix)) {
  bool first = true;
  for (const auto& row : matrix_) {
    PARDSM_CHECK(row.size() == matrix_.size(), "MatrixLatency must be square");
    for (const Duration d : row) {
      if (first || d < min_) min_ = d;
      first = false;
    }
  }
}

Duration MatrixLatency::sample(ProcessId from, ProcessId to, Rng&) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < matrix_.size(),
               "MatrixLatency: from out of range");
  PARDSM_CHECK(to >= 0 && static_cast<std::size_t>(to) < matrix_.size(),
               "MatrixLatency: to out of range");
  return matrix_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

}  // namespace pardsm
