#include "history/orders.h"

namespace pardsm::hist {

Relation program_order(const History& h) {
  Relation r(h.size());
  for (std::size_t p = 0; p < h.process_count(); ++p) {
    const auto& seq = h.ops_of(static_cast<ProcessId>(p));
    for (std::size_t a = 0; a < seq.size(); ++a) {
      for (std::size_t b = a + 1; b < seq.size(); ++b) {
        r.add(static_cast<std::size_t>(seq[a]),
              static_cast<std::size_t>(seq[b]));
      }
    }
  }
  return r;
}

Relation read_from_order(const History& h) {
  Relation r(h.size());
  const auto source = h.resolve_read_from();
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (source[i] != kNoOp) {
      r.add(static_cast<std::size_t>(source[i]), i);
    }
  }
  return r;
}

Relation causality_order(const History& h) {
  Relation r = program_order(h);
  r.merge(read_from_order(h));
  r.close();
  return r;
}

namespace {

/// Base (non-closed) lazy program order edges per Definition 5.
Relation lazy_program_base(const History& h, LazyMode mode) {
  Relation r(h.size());
  for (std::size_t p = 0; p < h.process_count(); ++p) {
    const auto& seq = h.ops_of(static_cast<ProcessId>(p));
    for (std::size_t a = 0; a < seq.size(); ++a) {
      const Operation& o1 = h.op(seq[a]);
      for (std::size_t b = a + 1; b < seq.size(); ++b) {
        const Operation& o2 = h.op(seq[b]);
        bool ordered = false;
        if (o1.is_read()) {
          // read ->li read on the same variable; read ->li any write.
          ordered = (o2.is_read() && o1.var == o2.var) || o2.is_write();
        } else {
          // write ->li any operation on the same variable.
          ordered = (o1.var == o2.var);
          // Paper-consistent reading: a write also precedes later writes on
          // any variable (used by the paper's Figure 4/6 analyses).
          if (mode == LazyMode::kPaperConsistent && o2.is_write()) {
            ordered = true;
          }
        }
        if (ordered) {
          r.add(static_cast<std::size_t>(seq[a]),
                static_cast<std::size_t>(seq[b]));
        }
      }
    }
  }
  return r;
}

}  // namespace

Relation lazy_program_order(const History& h, LazyMode mode) {
  Relation r = lazy_program_base(h, mode);
  r.close();
  return r;
}

Relation lazy_causality_order(const History& h, LazyMode mode) {
  Relation r = lazy_program_base(h, mode);
  r.merge(read_from_order(h));
  r.close();
  return r;
}

Relation lazy_writes_before(const History& h, LazyMode mode) {
  Relation li = lazy_program_order(h, mode);
  const auto source = h.resolve_read_from();

  Relation r(h.size());
  // For each read o2 = r_j(y)u with source o' = w_i(y)u, every write o1 by
  // the same process i with o1 ->li o' is lazy-writes-before o2.
  for (std::size_t o2 = 0; o2 < h.size(); ++o2) {
    if (!h.op(static_cast<OpIndex>(o2)).is_read()) continue;
    const OpIndex src = source[o2];
    if (src == kNoOp) continue;
    const Operation& sw = h.op(src);
    for (OpIndex o1 : h.ops_of(sw.proc)) {
      const Operation& cand = h.op(o1);
      if (!cand.is_write()) continue;
      if (li.has(static_cast<std::size_t>(o1),
                 static_cast<std::size_t>(src))) {
        r.add(static_cast<std::size_t>(o1), o2);
      }
    }
  }
  return r;
}

Relation lazy_semi_causal_order(const History& h, LazyMode mode) {
  Relation r = lazy_program_base(h, mode);
  r.merge(lazy_writes_before(h, mode));
  r.close();
  return r;
}

Relation pram_relation(const History& h) {
  Relation r = program_order(h);
  r.merge(read_from_order(h));
  return r;  // intentionally not closed (Definition 11 lacks transitivity)
}

Relation slow_relation(const History& h) {
  Relation r(h.size());
  for (std::size_t p = 0; p < h.process_count(); ++p) {
    const auto& seq = h.ops_of(static_cast<ProcessId>(p));
    for (std::size_t a = 0; a < seq.size(); ++a) {
      for (std::size_t b = a + 1; b < seq.size(); ++b) {
        if (h.op(seq[a]).var == h.op(seq[b]).var) {
          r.add(static_cast<std::size_t>(seq[a]),
                static_cast<std::size_t>(seq[b]));
        }
      }
    }
  }
  r.merge(read_from_order(h));
  return r;
}

bool concurrent(const Relation& r, OpIndex a, OpIndex b) {
  return !r.has(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) &&
         !r.has(static_cast<std::size_t>(b), static_cast<std::size_t>(a));
}

}  // namespace pardsm::hist
