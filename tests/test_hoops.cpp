// Hoops (Definition 3), hoop existence / enumeration, and the Theorem 1
// x-relevant characterization.

#include <gtest/gtest.h>

#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"

namespace pardsm::graph {
namespace {

TEST(Hoops, Fig1HasNoHoops) {
  const ShareGraph sg(topo::fig1());
  EXPECT_FALSE(hoop_exists(sg, 0));
  EXPECT_FALSE(hoop_exists(sg, 1));
  EXPECT_TRUE(enumerate_hoops(sg, 0).hoops.empty());
  EXPECT_TRUE(hoop_members(sg, 0).empty());
}

TEST(Hoops, ChainIsOneHoop) {
  const std::size_t n = 6;
  const ShareGraph sg(topo::chain_with_hoop(n));
  ASSERT_TRUE(hoop_exists(sg, 0));
  const auto e = enumerate_hoops(sg, 0);
  ASSERT_EQ(e.hoops.size(), 1u);
  // The unique x-hoop is the whole chain [0, 1, ..., n-1].
  Hoop expected;
  for (std::size_t i = 0; i < n; ++i) {
    expected.push_back(static_cast<ProcessId>(i));
  }
  EXPECT_EQ(e.hoops.front(), expected);
  // Every interior process is a hoop member.
  const auto members = hoop_members(sg, 0);
  EXPECT_EQ(members.size(), n - 2);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    EXPECT_TRUE(members.count(static_cast<ProcessId>(i))) << i;
  }
}

TEST(Hoops, ChainRelevantSetIsEveryone) {
  const ShareGraph sg(topo::chain_with_hoop(5));
  const auto rel = x_relevant(sg, 0);
  EXPECT_EQ(rel.size(), 5u);  // C(x) = {0,4} plus the interior
}

TEST(Hoops, OpenChainHasNoHoopsAtAll) {
  // In the open chain, C(l_i) = {i, i+1}; removing them disconnects the
  // two sides, so no alternative path exists.
  const ShareGraph sg(topo::open_chain(6));
  for (VarId link = 0; link < 5; ++link) {
    EXPECT_FALSE(hoop_exists(sg, link)) << "link " << link;
    EXPECT_TRUE(hoop_members(sg, link).empty());
  }
}

TEST(Hoops, ClosedChainLinkVariablesHoopAroundTheCycle) {
  // The closing variable x turns the chain into a cycle: every link
  // variable now has a hoop through the far side.
  const ShareGraph sg(topo::chain_with_hoop(6));
  for (VarId link = 1; link < 6; ++link) {
    EXPECT_TRUE(hoop_exists(sg, link)) << "link " << link;
    EXPECT_EQ(hoop_members(sg, link).size(), 4u) << "link " << link;
  }
}

TEST(Hoops, RingEveryVariableHasAHoop) {
  const std::size_t n = 7;
  const ShareGraph sg(topo::ring(n));
  for (VarId x = 0; x < static_cast<VarId>(n); ++x) {
    EXPECT_TRUE(hoop_exists(sg, x)) << "x" << x;
    // The hoop is the rest of the ring: all n-2 other processes.
    EXPECT_EQ(hoop_members(sg, x).size(), n - 2) << "x" << x;
    EXPECT_EQ(x_relevant(sg, x).size(), n) << "x" << x;
  }
}

TEST(Hoops, StarLeafVariableHoopThroughHub) {
  const ShareGraph sg(topo::star(4));
  // The leaf-leaf variable is the last id; C = {p1, p2}; hoop through hub.
  const auto x = static_cast<VarId>(sg.var_count() - 1);
  ASSERT_TRUE(hoop_exists(sg, x));
  const auto members = hoop_members(sg, x);
  EXPECT_EQ(members, (std::set<ProcessId>{0}));  // only the hub
  const auto e = enumerate_hoops(sg, x);
  ASSERT_EQ(e.hoops.size(), 1u);
  EXPECT_EQ(e.hoops.front(), (Hoop{1, 0, 2}));
}

TEST(Hoops, HubSpokeVariablesHaveNoHoops) {
  const ShareGraph sg(topo::star(4));
  // Spoke variable s_3 (hub-leaf3): C = {0, 3}.  Any alternative path from
  // p3 leads only through the hub — but the hub is in C, so no hoop.
  EXPECT_FALSE(hoop_exists(sg, 2));
  EXPECT_TRUE(hoop_members(sg, 2).empty());
}

TEST(Hoops, CompleteReplicationHasNoHoops) {
  const ShareGraph sg(topo::complete(6, 4));
  for (VarId x = 0; x < 4; ++x) {
    EXPECT_FALSE(hoop_exists(sg, x));
    EXPECT_EQ(x_relevant(sg, x).size(), 6u);  // C(x) is everyone already
  }
}

TEST(Hoops, CyclicClustersBridgeVariablesHaveHoops) {
  const ShareGraph sg(topo::clusters(3, 3, /*cyclic=*/true));
  const auto summary = summarize_relevance(sg);
  EXPECT_GT(summary.vars_with_hoops, 0u);
  EXPECT_GT(summary.overhead_ratio(), 1.0);
}

TEST(Hoops, AcyclicClustersBridgesHaveNoHoops) {
  const ShareGraph sg(topo::clusters(3, 3, /*cyclic=*/false));
  // Bridge variables: ids 3, 4.  Cutting C(bridge) separates the clusters.
  EXPECT_FALSE(hoop_exists(sg, 3));
  EXPECT_FALSE(hoop_exists(sg, 4));
}

TEST(Hoops, EnumerationAgreesWithFlowMembership) {
  // Property: union of intermediate vertices over all enumerated hoops ==
  // hoop_members (on graphs small enough to enumerate exhaustively).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ShareGraph sg(topo::random_replication(8, 6, 2, seed));
    for (VarId x = 0; x < 6; ++x) {
      const auto e = enumerate_hoops(sg, x, /*limit=*/1u << 18);
      ASSERT_FALSE(e.truncated);
      std::set<ProcessId> from_enum;
      for (const auto& hoop : e.hoops) {
        for (std::size_t i = 1; i + 1 < hoop.size(); ++i) {
          from_enum.insert(hoop[i]);
        }
      }
      EXPECT_EQ(from_enum, hoop_members(sg, x))
          << "seed " << seed << " x" << x;
      EXPECT_EQ(!e.hoops.empty(), hoop_exists(sg, x))
          << "seed " << seed << " x" << x;
    }
  }
}

TEST(Hoops, HoopEndpointsAreCliqueMembersAndInteriorIsNot) {
  const ShareGraph sg(topo::random_replication(9, 7, 3, 11));
  for (VarId x = 0; x < 7; ++x) {
    const auto& clique = sg.clique(x);
    const std::set<ProcessId> cset(clique.begin(), clique.end());
    for (const auto& hoop : enumerate_hoops(sg, x, 1u << 16).hoops) {
      ASSERT_GE(hoop.size(), 3u);
      EXPECT_TRUE(cset.count(hoop.front()));
      EXPECT_TRUE(cset.count(hoop.back()));
      EXPECT_NE(hoop.front(), hoop.back());
      for (std::size_t i = 1; i + 1 < hoop.size(); ++i) {
        EXPECT_FALSE(cset.count(hoop[i]));
      }
      // Consecutive pairs share a variable other than x.
      for (std::size_t i = 0; i + 1 < hoop.size(); ++i) {
        const auto label = sg.label(hoop[i], hoop[i + 1]);
        EXPECT_TRUE(std::any_of(label.begin(), label.end(),
                                [&](VarId v) { return v != x; }));
      }
    }
  }
}

TEST(Hoops, EnumerationTruncates) {
  // A dense random graph has combinatorially many hoops; the limit must
  // engage rather than hang.
  const ShareGraph sg(topo::random_replication(12, 24, 3, 5));
  const auto e = enumerate_hoops(sg, 0, /*limit=*/16);
  EXPECT_TRUE(e.truncated);
  EXPECT_LE(e.hoops.size(), 16u);
}

TEST(Hoops, RelevanceSummaryCountsPramObligations) {
  // Closed chain of 5 processes: the share graph is a 5-cycle, every
  // variable (x and the 4 links) has a hoop around the far side, so every
  // process is relevant to every variable under causal consistency.
  const ShareGraph sg(topo::chain_with_hoop(5));
  const auto s = summarize_relevance(sg);
  // PRAM obligations: Σ|C(x)| = 2 per variable × 5 variables.
  EXPECT_EQ(s.total_replicas, 10u);
  // Causal obligations: all 5 processes for each of the 5 variables.
  EXPECT_EQ(s.total_relevant, 25u);
  EXPECT_EQ(s.vars_with_hoops, 5u);
  EXPECT_DOUBLE_EQ(s.overhead_ratio(), 2.5);

  // Open chain: no hoops anywhere — causal needs nothing beyond C(x).
  const ShareGraph open(topo::open_chain(5));
  const auto so = summarize_relevance(open);
  EXPECT_EQ(so.total_relevant, so.total_replicas);
  EXPECT_EQ(so.vars_with_hoops, 0u);
  EXPECT_DOUBLE_EQ(so.overhead_ratio(), 1.0);
}

}  // namespace
}  // namespace pardsm::graph
