// Checker cross-validation on randomly generated (often inconsistent)
// histories.
//
// Unlike the protocol suites — whose histories are consistent by
// construction — this suite feeds the checkers arbitrary histories and
// validates the checkers against each other:
//   L1  lattice coherence: if a weaker criterion rejects, every stronger
//       one rejects (contrapositive of implies());
//   L2  witness validity: every "consistent" verdict's serializations are
//       legal under is_legal_serialization;
//   L3  all verdicts are definitive at these sizes (no budget blowups).

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "history/serialization.h"
#include "simnet/rng.h"

namespace pardsm::hist {
namespace {

/// Random history: writes use unique values; reads return a previously
/// written value on the same variable (or ⊥), *not* necessarily a
/// consistent one — reads may pick stale or "future-local" values, which
/// is exactly what stresses the checkers.
History random_history(std::size_t procs, std::size_t vars,
                       std::size_t ops_per_proc, Rng& rng) {
  History h(procs, vars);
  Value next_value = 1;
  std::vector<std::pair<VarId, Value>> written;  // any (var, value) so far
  // Interleave rounds so cross-process read-from is common.
  for (std::size_t round = 0; round < ops_per_proc; ++round) {
    for (std::size_t p = 0; p < procs; ++p) {
      const auto x = static_cast<VarId>(rng.below(vars));
      if (rng.chance(0.5)) {
        h.push_write(static_cast<ProcessId>(p), x, next_value);
        written.emplace_back(x, next_value);
        ++next_value;
      } else {
        // Read: pick some write on x, or ⊥.
        std::vector<Value> candidates;
        for (const auto& [wx, wv] : written) {
          if (wx == x) candidates.push_back(wv);
        }
        if (candidates.empty() || rng.chance(0.2)) {
          h.push_read(static_cast<ProcessId>(p), x, kBottom);
        } else {
          h.push_read(static_cast<ProcessId>(p), x,
                      candidates[static_cast<std::size_t>(
                          rng.below(candidates.size()))]);
        }
      }
    }
  }
  return h;
}

class CheckerLattice : public ::testing::TestWithParam<int> {};

TEST_P(CheckerLattice, CoherentVerdictsOnRandomHistories) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  for (int iteration = 0; iteration < 25; ++iteration) {
    const auto h = random_history(3, 2, 4, rng);

    std::map<Criterion, CheckResult> results;
    for (Criterion c : all_criteria()) {
      results[c] = check_history(h, c);
      // L3: decidable at this size.
      EXPECT_TRUE(results[c].definitive) << to_string(c);
    }

    // L1: lattice coherence.
    for (Criterion strong : all_criteria()) {
      for (Criterion weak : all_criteria()) {
        if (!implies(strong, weak)) continue;
        if (results[strong].consistent) {
          EXPECT_TRUE(results[weak].consistent)
              << to_string(strong) << " admitted but " << to_string(weak)
              << " rejected:\n"
              << h.to_string();
        }
      }
    }

    // L2: witness validity for per-process criteria.  Validation uses the
    // criterion relation *as defined* (raw, not closed over all ops): for
    // PRAM/slow, Definition 12 has no transitivity, so only the relation's
    // own pairs constrain the serialization; for causal the relation is
    // already the full closure.
    for (Criterion c :
         {Criterion::kCausal, Criterion::kPram, Criterion::kSlow}) {
      const auto& r = results[c];
      if (!r.consistent) continue;
      const Relation rel =
          criterion_relation(h, c, LazyMode::kPaperConsistent);
      for (const auto& pv : r.per_process) {
        if (pv.witness.empty()) continue;
        const auto subset = h.projection_i_plus_w(pv.proc);
        EXPECT_TRUE(is_legal_serialization(h, subset, pv.witness, rel))
            << to_string(c) << " produced an illegal witness for p"
            << pv.proc;
      }
    }

    // L2 for the global criterion.
    if (results[Criterion::kSequential].consistent) {
      std::vector<OpIndex> everything;
      for (std::size_t i = 0; i < h.size(); ++i) {
        everything.push_back(static_cast<OpIndex>(i));
      }
      EXPECT_TRUE(is_legal_serialization(
          h, everything,
          results[Criterion::kSequential].per_process.front().witness,
          program_order(h)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerLattice,
                         ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Sanity: the generator does produce both consistent and inconsistent
// histories (otherwise the suite tests nothing).
TEST(CheckerLattice, GeneratorCoversBothOutcomes) {
  Rng rng(99);
  int consistent = 0, inconsistent = 0;
  for (int i = 0; i < 40; ++i) {
    const auto h = random_history(3, 2, 4, rng);
    if (check_history(h, Criterion::kSlow).consistent) {
      ++consistent;
    } else {
      ++inconsistent;
    }
  }
  EXPECT_GT(consistent, 0);
  EXPECT_GT(inconsistent, 0);
}

}  // namespace
}  // namespace pardsm::hist
