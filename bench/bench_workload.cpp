// W1 — open-loop load at millions of ops: the streaming workload sweep.
//
// Every other bench replays a materialized Script; this one streams a
// YCSB-style generated workload (src/workload/) through the engine and
// prices what the paper's protocols *feel like under load*: per-op
// latency percentiles (p50/p99/p999) captured allocation-free into a
// fixed-bucket log histogram, at op counts no Script could hold.
//
// Three sections, all on random_replication(8, 32, r=3):
//
//   mix      closed-loop, uniform keys: protocols × read fraction
//            {95%, 50%} — how much a write-heavy mix costs each
//            consistency criterion.
//   skew     closed-loop, read-95: protocols × key popularity
//            {uniform, zipf θ=0.99, zipf θ=0.60} — whether a hot key
//            set concentrates traffic on its replica set (it should:
//            the paper's efficiency claim is per-variable).
//   arrival  OPEN loop on the simulator: ops arrive at a fixed rate per
//            process regardless of completion, ≤1 outstanding, latency
//            measured from scheduled arrival (no coordinated omission).
//            Rates straddle atomic-home's ~500 ops/s/proc capacity
//            (1 ms hops ⇒ 2 ms RPC), so the sweep shows both a stable
//            queue and the honest open-loop overload tail.  pram stays
//            flat at every rate — wait-free local issue is the point.
//
// Plus one row on the sharded parallel root (2 workers) pinning that
// per-shard histograms merge to the same percentiles.
//
// Row columns: ops = completed ops, censored_ops = issued-but-never-
// completed (0 on every lossless row here), p50/p99/p999 in µs.
// Non-quick rows stream 1,000,000 ops each (8 procs × 125k); --quick
// drops to 4k ops/row for CI.  History recording is OFF (recorder
// discard mode): peak RSS is independent of the op count —
// tests/test_workload.cpp asserts that, this bench just relies on it.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "bench_util.h"
#include "mcs/engine.h"
#include "sharegraph/topologies.h"
#include "workload/generator.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

constexpr std::size_t kProcs = 8;
constexpr std::size_t kVars = 32;
constexpr std::size_t kReplication = 3;
constexpr std::uint64_t kTopoSeed = 7;

/// Protocols priced in the mix/skew sections: the paper's efficient
/// partial-replication family plus the strong (expensive) baseline.
constexpr std::array kMixProtocols = {
    ProtocolKind::kPramPartial,
    ProtocolKind::kCachePartial,
    ProtocolKind::kCausalPartialAdHoc,
    ProtocolKind::kAtomicHome,
};

struct Cell {
  std::string label;
  workload::Spec spec;
  EngineRuntime runtime = EngineRuntime::kSimulator;
  unsigned threads = 0;  ///< parallel root only
};

std::string dist_name() {
  return "random-r" + std::to_string(kReplication) + "-" +
         std::to_string(kProcs) + "p" + std::to_string(kVars) + "v";
}

/// Run one cell and record its row.  Latency percentiles come straight
/// out of the run's merged histogram; a censored quantile (possible only
/// on faulty timelines, never here) reports as 0 with the mass visible
/// in censored_ops.
void run_cell(bu::Harness& h, ProtocolKind kind,
              const graph::Distribution& dist, const Cell& cell) {
  EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.workload = &cell.spec;
  config.record_history = false;
  config.runtime = cell.runtime;
  if (cell.threads != 0) config.parallel.num_threads = cell.threads;

  ScenarioRunResult run;
  const std::uint64_t allocs_before = bu::allocs_so_far();
  const std::uint64_t wall_ns = bu::time_ns([&] { run = mcs::run(std::move(config)); });
  const std::uint64_t allocs = bu::allocs_so_far() - allocs_before;

  const auto pct = [&](double q) {
    const auto ans = run.op_latency.quantile(q);
    return ans.censored ? 0.0 : ans.us;
  };
  const double p50 = pct(0.50), p99 = pct(0.99), p999 = pct(0.999);

  bu::row({cell.label, to_string(kind), bu::num(run.ops_completed),
           bu::num(p50, 0), bu::num(p99, 0), bu::num(p999, 0),
           bu::num(run.ops_censored)});
  h.record({.label = cell.label,
            .protocol = to_string(kind),
            .distribution = dist_name(),
            .ops = run.ops_completed,
            .messages = run.total_traffic.msgs_sent,
            .bytes = run.total_traffic.wire_bytes_sent(),
            .sim_time_ms = static_cast<double>(run.finished_at.us) / 1000.0,
            .wall_ns = wall_ns,
            .max_rss_kb = bu::max_rss_kb(),
            .p50_us = p50,
            .p99_us = p99,
            .p999_us = p999,
            .censored_ops = run.ops_censored,
            .extra = {{"ops_issued", static_cast<double>(run.ops_issued)},
                      // Whole-run heap allocations per completed op (the
                      // run includes system construction, so warm
                      // steady-state is strictly better than this).
                      {"allocs_per_op",
                       run.ops_completed == 0
                           ? 0.0
                           : static_cast<double>(allocs) /
                                 static_cast<double>(run.ops_completed)}}});
}

void header() {
  bu::row({"cell", "protocol", "ops", "p50us", "p99us", "p999us",
           "censored"});
}

void sweep(bu::Harness& h) {
  const auto dist =
      graph::topo::random_replication(kProcs, kVars, kReplication, kTopoSeed);
  // 8 × 125k = exactly 1M streamed ops per non-quick row.
  const std::uint64_t ops = h.quick() ? 500 : 125'000;

  bu::banner("workload mix — closed loop, uniform keys (" +
             std::to_string(ops * kProcs) + " ops/row)");
  header();
  for (const double read_fraction : {0.95, 0.50}) {
    Cell cell;
    cell.label = "mix-read" + std::to_string(static_cast<int>(
                                  read_fraction * 100));
    cell.spec.ops_per_process = ops;
    cell.spec.read_fraction = read_fraction;
    cell.spec.seed = 11;
    for (const ProtocolKind kind : kMixProtocols) {
      run_cell(h, kind, dist, cell);
    }
  }

  bu::banner("workload skew — closed loop, read-95 key popularity");
  header();
  struct Skew {
    const char* tag;
    workload::KeyDist keys;
    double theta;
  };
  for (const Skew& skew : {Skew{"zipf99", workload::KeyDist::kZipf, 0.99},
                           Skew{"zipf60", workload::KeyDist::kZipf, 0.60}}) {
    Cell cell;
    cell.label = std::string("skew-") + skew.tag;
    cell.spec.ops_per_process = ops;
    cell.spec.keys = skew.keys;
    cell.spec.zipf_theta = skew.theta;
    cell.spec.seed = 11;
    for (const ProtocolKind kind : kMixProtocols) {
      run_cell(h, kind, dist, cell);
    }
  }

  bu::banner(
      "workload arrival — OPEN loop (latency from scheduled arrival; "
      "atomic-home capacity ~500 ops/s/proc)");
  header();
  // Rates per process: comfortably under, at, and far over the strong
  // protocol's service capacity.  Open loop needs the virtual-time roots.
  for (const double rate : {200.0, 450.0, 2000.0}) {
    Cell cell;
    cell.label = "open-" + std::to_string(static_cast<int>(rate)) + "ps";
    cell.spec.ops_per_process = ops;
    cell.spec.arrival_rate = rate;
    cell.spec.seed = 11;
    for (const ProtocolKind kind :
         {ProtocolKind::kPramPartial, ProtocolKind::kAtomicHome}) {
      run_cell(h, kind, dist, cell);
    }
  }

  bu::banner("workload parallel root — per-shard histograms merged");
  header();
  {
    Cell cell;
    cell.label = "parallel-2t";
    cell.spec.ops_per_process = ops;
    cell.spec.keys = workload::KeyDist::kZipf;
    cell.spec.seed = 11;
    cell.runtime = EngineRuntime::kParallelSim;
    cell.threads = 2;
    run_cell(h, ProtocolKind::kPramPartial, dist, cell);
  }
}

/// google-benchmark timing of the hot path: one closed-loop streamed row,
/// wall time per op.
void BM_StreamedWorkload(benchmark::State& state, ProtocolKind kind) {
  const auto dist =
      graph::topo::random_replication(kProcs, kVars, kReplication, kTopoSeed);
  workload::Spec spec;
  spec.ops_per_process = static_cast<std::uint64_t>(state.range(0));
  spec.seed = 11;
  for (auto _ : state) {
    EngineConfig config;
    config.protocol = kind;
    config.distribution = &dist;
    config.workload = &spec;
    config.record_history = false;
    benchmark::DoNotOptimize(run(std::move(config)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spec.ops_per_process * kProcs));
}
BENCHMARK_CAPTURE(BM_StreamedWorkload, pram, ProtocolKind::kPramPartial)
    ->Arg(1000)
    ->Arg(10000);
BENCHMARK_CAPTURE(BM_StreamedWorkload, atomic_home, ProtocolKind::kAtomicHome)
    ->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "workload");
  sweep(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
