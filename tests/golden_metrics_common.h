// Shared runner for the golden-metrics determinism gate.
//
// Runs one (protocol, topology) workload on the deterministic simulator —
// the exact wiring of mcs::run_workload — and reduces the run to a small
// tuple of counters plus an FNV-1a fingerprint of the full per-(process,
// variable) exposure matrix.  test_golden_metrics.cpp asserts these tuples
// against values captured before the allocation-free hot-path refactor;
// golden_metrics_gen.cpp reprints the table when a protocol legitimately
// changes its message complexity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/scenario.h"

namespace pardsm::golden {

/// The reduced, byte-exact signature of one simulated workload.
struct Metrics {
  std::uint64_t messages = 0;      ///< total msgs_sent
  std::uint64_t bytes = 0;         ///< total wire bytes sent
  std::uint64_t exposure_sum = 0;  ///< Σ exposure(p, x)
  std::uint64_t exposure_hash = 0; ///< FNV-1a over all (p, x, count) > 0
  std::uint64_t events = 0;        ///< simulator events fired
  std::int64_t finished_us = 0;    ///< simulated quiescence time
};

inline void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
}

/// Deterministic workload: ops_per_process=8, read_fraction=0.5, seed=42,
/// lossless FIFO channel, constant 1ms latency.
inline Metrics measure(mcs::ProtocolKind kind,
                       const graph::Distribution& dist) {
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.read_fraction = 0.5;
  spec.seed = 42;
  const auto scripts = mcs::make_random_scripts(dist, spec);

  Simulator sim;
  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto processes = mcs::make_processes(kind, dist, recorder);
  for (auto& proc : processes) {
    sim.add_endpoint(proc.get());
    proc->attach(sim);
  }
  std::vector<std::unique_ptr<mcs::ScriptedClient>> clients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    clients.push_back(std::make_unique<mcs::ScriptedClient>(
        *processes[p], sim, scripts[p]));
    clients.back()->start(kTimeZero);
  }
  sim.run();

  Metrics out;
  const auto total = sim.stats().total();
  out.messages = total.msgs_sent;
  out.bytes = total.wire_bytes_sent();
  out.exposure_hash = 1469598103934665603ULL;  // FNV offset basis
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      const std::uint64_t count =
          sim.stats().exposure(static_cast<ProcessId>(p),
                               static_cast<VarId>(x));
      if (count == 0) continue;
      out.exposure_sum += count;
      fnv1a(out.exposure_hash, p);
      fnv1a(out.exposure_hash, x);
      fnv1a(out.exposure_hash, count);
    }
  }
  out.events = sim.events_fired();
  out.finished_us = sim.now().us;
  return out;
}

/// The topology corpus of the gate: hoop-rich ring, hoop-free chain, and
/// a random r-replication (the shapes the benches sweep).
struct NamedDist {
  const char* name;
  graph::Distribution dist;
};

inline std::vector<NamedDist> golden_topologies() {
  std::vector<NamedDist> out;
  out.push_back({"ring-6", graph::topo::ring(6)});
  out.push_back({"open-chain-5", graph::topo::open_chain(5)});
  out.push_back({"random-8p12v-r3",
                 graph::topo::random_replication(8, 12, 3, 7)});
  return out;
}

/// The reduced signature of one canonical *faulty* run: the scenario gate
/// pins loss-recovery and partition behaviour per protocol the same way
/// the lossless gate pins message complexity.
struct ScenarioMetrics {
  std::uint64_t messages = 0;         ///< total msgs_sent (incl. ARQ+re-sync)
  std::uint64_t bytes = 0;            ///< total wire bytes sent
  std::uint64_t retransmissions = 0;  ///< ARQ retransmits
  std::uint64_t dropped = 0;          ///< channel drops, all causes
  std::int64_t finished_us = 0;       ///< simulated quiescence time
};

/// Canonical lossy+partition scenario on ring-6: 1% loss throughout, the
/// ring split 3|3 from 2ms to 6ms.  Workload: ops_per_process=8,
/// read_fraction=0.5, seed=42, 1ms think time (so operations overlap the
/// partition window), sim seed 7.
inline ScenarioMetrics measure_scenario(mcs::ProtocolKind kind) {
  const auto dist = graph::topo::ring(6);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.read_fraction = 0.5;
  spec.seed = 42;
  spec.think_time = millis(1);
  const auto scripts = mcs::make_random_scripts(dist, spec);

  Scenario scenario("golden-lossy-partition");
  scenario.set_loss(0.01);
  scenario.partition({{0, 1, 2}, {3, 4, 5}}, after(millis(2)),
                     after(millis(6)));

  mcs::RunOptions options;
  options.sim_seed = 7;
  const auto r =
      mcs::run_scenario(kind, dist, scripts, scenario, std::move(options));

  ScenarioMetrics out;
  out.messages = r.total_traffic.msgs_sent;
  out.bytes = r.total_traffic.wire_bytes_sent();
  out.retransmissions = r.retransmissions;
  out.dropped = r.drops.total();
  out.finished_us = r.finished_at.us;
  return out;
}

}  // namespace pardsm::golden
