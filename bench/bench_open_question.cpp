// OQ — the paper's open question, measured.
//
// Conclusion of the paper: "the existence of a consistency criterion
// stronger than PRAM, and allowing efficient partial replication
// implementation, remains open."
//
// This bench demonstrates the repository's engineering answer: processor
// consistency (PRAM ∧ cache) is implementable with every message confined
// to C(x).  The price is moved from control-information spread to write
// latency (one home round trip), which Theorem 1 does not forbid — its
// impossibility argument needs causal transitivity through hoops, which
// PRAM ∧ cache does not require.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/analysis.h"
#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

RunResult run(ProtocolKind kind, const graph::Distribution& dist) {
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.read_fraction = 0.5;
  spec.seed = 5;
  const auto scripts = make_random_scripts(dist, spec);
  RunOptions options;
  options.latency = std::make_unique<UniformLatency>(millis(2), millis(10));
  return run_workload(kind, dist, scripts, std::move(options));
}

void print_table(bu::Harness& h) {
  bu::banner("OQ: criteria vs efficiency vs latency (ring-8, hoop-rich)");
  bu::row({"protocol", "PRAM ok", "cache ok", "leak>C(x)", "wr-lat-ms",
           "ctrl-B/msg"});
  const auto dist = graph::topo::ring(8);
  for (auto kind :
       {ProtocolKind::kPramPartial, ProtocolKind::kCachePartial,
        ProtocolKind::kProcessorPartial, ProtocolKind::kCausalPartialNaive,
        ProtocolKind::kSequencerSC}) {
    const bu::WallTimer timer;
    const auto r = run(kind, dist);
    const std::uint64_t wall_ns = timer.ns();
    const auto report =
        core::analyze_run(dist, r.observed_relevant, r.total_traffic);
    const bool pram_ok =
        hist::check_history(r.history, hist::Criterion::kPram).consistent;
    const bool cache_ok =
        hist::check_history(r.history, hist::Criterion::kCache).consistent;
    double wr_total = 0;
    std::uint64_t writes = 0;
    for (const auto& op : r.history.ops()) {
      if (op.is_write()) {
        wr_total += static_cast<double>((op.responded - op.invoked).us);
        ++writes;
      }
    }
    const double wr_lat_ms =
        writes ? wr_total / 1000.0 / static_cast<double>(writes) : 0.0;
    bu::row({to_string(kind), bu::yesno(pram_ok), bu::yesno(cache_ok),
             bu::num(static_cast<std::uint64_t>(
                 report.vars_leaking_past_clique)),
             bu::num(wr_lat_ms, 2),
             bu::num(static_cast<double>(
                         r.total_traffic.control_bytes_sent) /
                         static_cast<double>(r.total_traffic.msgs_sent),
                     1)});
    h.record(
        {.label = "ring-8",
         .protocol = to_string(kind),
         .distribution = dist.name,
         .ops = r.history.size(),
         .messages = r.total_traffic.msgs_sent,
         .bytes = r.total_traffic.wire_bytes_sent(),
         .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
         .wall_ns = wall_ns,
         .extra = {{"pram_ok", pram_ok ? 1.0 : 0.0},
                   {"cache_ok", cache_ok ? 1.0 : 0.0},
                   {"leak_past_clique",
                    static_cast<double>(report.vars_leaking_past_clique)},
                   {"write_latency_ms", wr_lat_ms}}});
  }
  std::cout
      << "(expected: processor-partial passes BOTH checkers with zero "
         "leaks — a criterion\n strictly stronger than PRAM, efficiently "
         "partially replicated; it pays with\n write latency, unlike "
         "wait-free PRAM; causal still leaks; sequencer centralises)\n";
}

void BM_Run(benchmark::State& state, ProtocolKind kind) {
  const auto dist = graph::topo::ring(8);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  const auto scripts = make_random_scripts(dist, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(kind, dist, scripts, {}));
  }
}
BENCHMARK_CAPTURE(BM_Run, pram, ProtocolKind::kPramPartial);
BENCHMARK_CAPTURE(BM_Run, cache, ProtocolKind::kCachePartial);
BENCHMARK_CAPTURE(BM_Run, processor, ProtocolKind::kProcessorPartial);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "open_question");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
