#include "history/canned.h"

#include "simnet/check.h"

namespace pardsm::hist::paper {

namespace {
constexpr Value kA = 1, kB = 2, kC = 3, kD = 4, kE = 5;
}

Example fig3_dependency_chain(std::size_t k, ChainEnd end) {
  PARDSM_CHECK(k >= 2, "a hoop has at least one intermediate process");
  const std::size_t n = k + 1;   // processes p_0 .. p_k
  const std::size_t m = k + 1;   // x plus x_1..x_k
  Example ex;
  ex.name = "fig3-chain-k" + std::to_string(k);
  ex.focus_var = 0;

  History h(n, m);
  // p_0: w(x)v ; w(x_1)v_1
  const Value v = 100;
  h.push_write(0, /*x=*/0, v);
  h.push_write(0, /*x_1=*/1, 101);
  // p_h (1 <= h <= k-1): r(x_h)v_h ; w(x_{h+1})v_{h+1}
  for (std::size_t p = 1; p <= k - 1; ++p) {
    h.push_read(static_cast<ProcessId>(p), static_cast<VarId>(p),
                static_cast<Value>(100 + p));
    h.push_write(static_cast<ProcessId>(p), static_cast<VarId>(p + 1),
                 static_cast<Value>(100 + p + 1));
  }
  // p_k: r(x_k)v_k ; o_b(x)
  h.push_read(static_cast<ProcessId>(k), static_cast<VarId>(k),
              static_cast<Value>(100 + k));
  switch (end) {
    case ChainEnd::kRead:
      h.push_read(static_cast<ProcessId>(k), 0, v);
      break;
    case ChainEnd::kWrite:
      h.push_write(static_cast<ProcessId>(k), 0, v + 1);
      break;
    case ChainEnd::kStaleRead:
      h.push_read(static_cast<ProcessId>(k), 0, kBottom);
      break;
  }
  ex.history = std::move(h);

  // Distribution: X_0 = {x, x_1}; X_h = {x_h, x_{h+1}}; X_k = {x_k, x}.
  ex.distribution.resize(n);
  ex.distribution[0] = {0, 1};
  for (std::size_t p = 1; p <= k - 1; ++p) {
    ex.distribution[p] = {static_cast<VarId>(p), static_cast<VarId>(p + 1)};
  }
  ex.distribution[k] = {static_cast<VarId>(k), 0};
  return ex;
}

Example fig4_lazy_causal_not_causal() {
  Example ex;
  ex.name = "fig4";
  ex.focus_var = 0;  // x
  constexpr VarId x = 0, y = 1;

  History h(3, 2);
  // p0: w(x)a ; r(x)a ; w(y)b   (r1(x)a drawn on p1's line in the figure;
  // placing it between the writes matches the paper's serialization S1 =
  // w1(x)a; r1(x)a; w1(y)b; w2(y)c verbatim).
  h.push_write(0, x, kA);
  h.push_read(0, x, kA);
  h.push_write(0, y, kB);
  // p1: r(y)b ; w(y)c
  h.push_read(1, y, kB);
  h.push_write(1, y, kC);
  // p2: r(y)c ; r(x)⊥
  h.push_read(2, y, kC);
  h.push_read(2, x, kBottom);
  ex.history = std::move(h);

  ex.distribution = {{x, y}, {y}, {x, y}};
  return ex;
}

Example fig5_not_lazy_causal() {
  Example ex;
  ex.name = "fig5";
  ex.focus_var = 0;  // x
  constexpr VarId x = 0, y = 1;

  History h(4, 2);
  // p0: w(x)a ; r(x)a ; w(y)b
  h.push_write(0, x, kA);
  h.push_read(0, x, kA);
  h.push_write(0, y, kB);
  // p1: r(y)b ; w(y)c
  h.push_read(1, y, kB);
  h.push_write(1, y, kC);
  // p2: r(y)c ; w(x)d
  h.push_read(2, y, kC);
  h.push_write(2, x, kD);
  // p3: r(x)d ; r(x)a
  h.push_read(3, x, kD);
  h.push_read(3, x, kA);
  ex.history = std::move(h);

  ex.distribution = {{x, y}, {y}, {x, y}, {x}};
  return ex;
}

Example fig6_not_lazy_semi_causal() {
  Example ex;
  ex.name = "fig6";
  ex.focus_var = 0;  // x
  constexpr VarId x = 0, y = 1, z = 2;

  History h(4, 3);
  // p0: w(x)a ; r(x)a ; w(y)b
  h.push_write(0, x, kA);
  h.push_read(0, x, kA);
  h.push_write(0, y, kB);
  // p1: r(y)b ; w(y)e ; w(z)c
  h.push_read(1, y, kB);
  h.push_write(1, y, kE);
  h.push_write(1, z, kC);
  // p2: r(z)c ; w(x)d
  h.push_read(2, z, kC);
  h.push_write(2, x, kD);
  // p3: r(x)d ; r(x)a
  h.push_read(3, x, kD);
  h.push_read(3, x, kA);
  ex.history = std::move(h);

  ex.distribution = {{x, y}, {y, z}, {x, z}, {x}};
  return ex;
}

std::vector<Example> all_examples() {
  std::vector<Example> out;
  out.push_back(fig3_dependency_chain(2));
  out.push_back(fig4_lazy_causal_not_causal());
  out.push_back(fig5_not_lazy_causal());
  out.push_back(fig6_not_lazy_semi_causal());
  return out;
}

}  // namespace pardsm::hist::paper
