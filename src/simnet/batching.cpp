#include "simnet/batching.h"

#include "simnet/check.h"

namespace pardsm {

namespace {

/// Timer tags: the batching layer owns bit 62 (bit 63 belongs to the ARQ
/// layer), so application — and ARQ, when batching sits below it — tags
/// pass through unchanged.
constexpr TimerTag kBatchTimerBit = 1ULL << 62;

/// Frame kind, interned once.
const KindId kBatchKind("BATCH");

const wire::BodyRegistrar batch_codec(
    wire::kBatchFrame, [](WireReader& r, BodyArena& arena) -> BodyRef {
      BatchFrame* f = arena.create<BatchFrame>();
      f->items.resize(r.u32());
      for (auto& item : f->items) {
        item.enqueued = wire::get_time(r);
        item.meta = wire::decode_meta(r);
        item.body = wire::decode_body(r, arena);
      }
      return BodyRef::adopt(f);
    });

}  // namespace

/// Per-process shim: holds the sender-side coalescing queues and unpacks
/// incoming frames for the real application endpoint.
class BatchingTransport::Shim final : public Endpoint {
 public:
  Shim(BatchingTransport& owner, Endpoint* app, ProcessId self)
      : owner_(owner),
        app_(app),
        self_(self),
        frame_pool_(&owner.lower_.arena(self).pool<BatchFrame>()) {}

  // ---- sending side -------------------------------------------------------
  void send_app(ProcessId to, BodyRef body, MessageMeta meta) {
    const bool urgent = meta.urgent;
    auto& queue = pending_[to];
    queue.push_back(
        {std::move(body), std::move(meta), owner_.lower_.now()});
    if (urgent) {
      // Flush the whole destination queue, this message last: per-pair
      // FIFO survives and the urgent payload leaves at once.
      ++stats_.urgent_flushes;
      flush_to(to);
      return;
    }
    if (queue.size() >= owner_.options_.max_batch) {
      flush_to(to);
      return;
    }
    arm_timer();
  }

  void flush_to(ProcessId to) { flush(to, pending_[to]); }

  void flush(ProcessId to, std::vector<BatchFrame::Item>& queue) {
    if (queue.empty()) return;
    if (queue.size() == 1) {
      // Identical bytes to the unbatched send, just later.
      BatchFrame::Item item = std::move(queue.front());
      queue.clear();
      ++stats_.singleton_flushes;
      owner_.lower_.send(self_, to, std::move(item.body),
                         std::move(item.meta));
      return;
    }
    BatchFrame* frame = frame_pool_->create();
    MessageMeta meta;
    meta.kind = kBatchKind;
    for (const BatchFrame::Item& item : queue) {
      meta.control_bytes += item.meta.control_bytes + kPerItemFramingBytes;
      meta.payload_bytes += item.meta.payload_bytes;
      for (VarId x : item.meta.vars_mentioned) meta.vars_mentioned.push_back(x);
      meta.urgent = meta.urgent || item.meta.urgent;
    }
    ++stats_.frames_sent;
    stats_.messages_batched += queue.size();
    // Swap rather than move: the frame takes the queue's members and the
    // queue inherits the recycled frame's (empty) buffer, so both vectors
    // keep their capacity across flush cycles.
    frame->items.swap(queue);
    owner_.lower_.send(self_, to, BodyRef::adopt(frame), std::move(meta));
  }

  void flush_all() {
    for (auto& [to, queue] : pending_) flush(to, queue);
  }

  // ---- receiving side -----------------------------------------------------
  void on_message(const Message& m) override {
    const auto* frame = m.try_as<BatchFrame>();
    if (frame == nullptr) {
      app_->on_message(m);
      return;
    }
    for (const BatchFrame::Item& item : frame->items) {
      Message app_msg;
      app_msg.from = m.from;
      app_msg.to = self_;
      app_msg.body = item.body;
      app_msg.meta = item.meta;
      app_msg.id = m.id;
      app_msg.send_time = item.enqueued;
      app_msg.deliver_time = m.deliver_time;
      app_->on_message(app_msg);
    }
  }

  void on_timer(TimerTag tag) override {
    if ((tag & kBatchTimerBit) == 0) {
      app_->on_timer(tag);
      return;
    }
    timer_armed_ = false;
    flush_all();
  }

  void arm_timer() {
    if (timer_armed_) return;
    timer_armed_ = true;
    owner_.lower_.set_timer(self_, owner_.options_.window, kBatchTimerBit);
  }

  [[nodiscard]] const BatchingStats& stats() const { return stats_; }

 private:
  BatchingTransport& owner_;
  Endpoint* app_;
  ProcessId self_;
  BodyPool<BatchFrame>* frame_pool_;
  /// Per-destination coalescing queues (ordered map: flush_all walks
  /// destinations in ascending id, deterministically).
  std::map<ProcessId, std::vector<BatchFrame::Item>> pending_;
  BatchingStats stats_;
  bool timer_armed_ = false;
};

BatchingTransport::BatchingTransport(HostTransport& lower,
                                     BatchingOptions options)
    : lower_(lower), options_(options) {
  PARDSM_CHECK(options_.window.us >= 0, "batching window must be >= 0");
  PARDSM_CHECK(options_.max_batch >= 2, "max_batch below 2 cannot batch");
}

BatchingTransport::~BatchingTransport() = default;

ProcessId BatchingTransport::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  auto shim = std::make_unique<Shim>(*this, ep,
                                     static_cast<ProcessId>(shims_.size()));
  const ProcessId assigned = lower_.add_endpoint(shim.get());
  PARDSM_CHECK(assigned == static_cast<ProcessId>(shims_.size()),
               "interleaved registration with the layer below");
  shims_.push_back(std::move(shim));
  return assigned;
}

void BatchingTransport::send(ProcessId from, ProcessId to, BodyRef body,
                             MessageMeta meta) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < shims_.size(),
               "send: bad sender");
  if (options_.window.us == 0) {
    // Exact pass-through: no queue, no timer, no stats — bit-identical to
    // the stack without this layer.
    lower_.send(from, to, std::move(body), std::move(meta));
    return;
  }
  shims_[static_cast<std::size_t>(from)]->send_app(to, std::move(body),
                                                   std::move(meta));
}

void BatchingTransport::set_timer(ProcessId who, Duration delay,
                                  TimerTag tag) {
  PARDSM_CHECK((tag & kBatchTimerBit) == 0,
               "timer tags from above must not use bit 62 (batching layer)");
  lower_.set_timer(who, delay, tag);
}

std::size_t BatchingTransport::process_count() const { return shims_.size(); }

BatchingStats BatchingTransport::stats() const {
  BatchingStats sum;
  for (const auto& shim : shims_) {
    const BatchingStats& s = shim->stats();
    sum.frames_sent += s.frames_sent;
    sum.messages_batched += s.messages_batched;
    sum.singleton_flushes += s.singleton_flushes;
    sum.urgent_flushes += s.urgent_flushes;
  }
  return sum;
}

}  // namespace pardsm
