// Consistency-criterion checkers on classic litmus histories.

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "history/linearizability.h"

namespace pardsm::hist {
namespace {

bool ok(const History& h, Criterion c) {
  const auto r = check_history(h, c);
  EXPECT_TRUE(r.definitive) << to_string(c);
  return r.consistent;
}

// Classic "causal but not sequential": two concurrent writes observed in
// opposite orders by two readers.
History causal_not_sequential() {
  History h(4, 2);
  h.push_write(0, 0, 1);  // w0(x)1
  h.push_write(1, 1, 2);  // w1(y)2
  // p2 sees x then not-yet y; p3 sees y then not-yet x.
  h.push_read(2, 0, 1);
  h.push_read(2, 1, kBottom);
  h.push_read(3, 1, 2);
  h.push_read(3, 0, kBottom);
  return h;
}

TEST(Checkers, CausalButNotSequential) {
  const auto h = causal_not_sequential();
  EXPECT_FALSE(ok(h, Criterion::kSequential));
  EXPECT_TRUE(ok(h, Criterion::kCausal));
  EXPECT_TRUE(ok(h, Criterion::kPram));
}

// Classic "PRAM but not causal": p1 reads p0's write then writes; p2 sees
// p1's write but an older value of p0's variable.
History pram_not_causal() {
  History h(3, 2);
  h.push_write(0, 0, 1);  // w0(x)1
  h.push_read(1, 0, 1);   // r1(x)1
  h.push_write(1, 1, 2);  // w1(y)2   (causally after w0(x)1)
  h.push_read(2, 1, 2);   // r2(y)2
  h.push_read(2, 0, kBottom);  // r2(x)⊥  — violates causality
  return h;
}

TEST(Checkers, PramButNotCausal) {
  const auto h = pram_not_causal();
  EXPECT_FALSE(ok(h, Criterion::kCausal));
  EXPECT_TRUE(ok(h, Criterion::kPram));
  EXPECT_TRUE(ok(h, Criterion::kSlow));
}

// "Slow but not PRAM": a single writer's writes to two variables observed
// out of order.
History slow_not_pram() {
  History h(2, 2);
  h.push_write(0, 0, 1);  // w0(x)1
  h.push_write(0, 1, 2);  // w0(y)2 (program order after)
  h.push_read(1, 1, 2);   // r1(y)2
  h.push_read(1, 0, kBottom);  // r1(x)⊥ — y arrived before x
  return h;
}

TEST(Checkers, SlowButNotPram) {
  const auto h = slow_not_pram();
  EXPECT_FALSE(ok(h, Criterion::kPram));
  EXPECT_TRUE(ok(h, Criterion::kSlow));
}

// Not even slow: same writer, same variable, observed out of order.
History not_even_slow() {
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_write(0, 0, 2);
  h.push_read(1, 0, 2);
  h.push_read(1, 0, 1);  // older value after newer one
  return h;
}

TEST(Checkers, SameVariableReorderViolatesSlow) {
  const auto h = not_even_slow();
  EXPECT_FALSE(ok(h, Criterion::kSlow));
  EXPECT_FALSE(ok(h, Criterion::kPram));
}

TEST(Checkers, SequentialHistoryPassesEverything) {
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, 1);
  h.push_write(1, 0, 2);
  h.push_read(0, 0, 2);
  for (Criterion c : all_criteria()) {
    EXPECT_TRUE(ok(h, c)) << to_string(c);
  }
}

TEST(Checkers, EmptyHistoryIsEverythingConsistent) {
  History h(2, 1);
  for (Criterion c : all_criteria()) {
    EXPECT_TRUE(ok(h, c)) << to_string(c);
  }
}

TEST(Checkers, ValueNeverWrittenFailsEverything) {
  History h(1, 1);
  h.push_read(0, 0, 42);  // nobody wrote 42
  for (Criterion c : all_criteria()) {
    EXPECT_FALSE(ok(h, c)) << to_string(c);
  }
}

TEST(Checkers, FirstViolationIdentifiesProcess) {
  const auto h = pram_not_causal();
  const auto r = check_history(h, Criterion::kCausal);
  EXPECT_EQ(r.first_violation(), 2);
}

TEST(Checkers, ClassifyProducesLatticeConsistentRow) {
  const auto cls = classify(causal_not_sequential());
  // sequential=no causal=yes ... slow=yes
  ASSERT_EQ(cls.admitted.size(), all_criteria().size());
  EXPECT_FALSE(cls.admitted[0].second);  // sequential
  EXPECT_TRUE(cls.admitted[1].second);   // causal
  EXPECT_TRUE(cls.admitted[5].second);   // slow
  EXPECT_NE(cls.to_string().find("causal=yes"), std::string::npos);
}

TEST(Checkers, ImpliesLattice) {
  using C = Criterion;
  EXPECT_TRUE(implies(C::kSequential, C::kCausal));
  EXPECT_TRUE(implies(C::kSequential, C::kSlow));
  EXPECT_TRUE(implies(C::kCausal, C::kPram));
  EXPECT_TRUE(implies(C::kCausal, C::kLazySemiCausal));
  EXPECT_TRUE(implies(C::kPram, C::kSlow));
  EXPECT_FALSE(implies(C::kPram, C::kCausal));
  EXPECT_FALSE(implies(C::kLazySemiCausal, C::kPram));
  EXPECT_FALSE(implies(C::kSlow, C::kPram));
  for (C c : all_criteria()) EXPECT_TRUE(implies(c, c));
}

// ------------------------------------------------------ linearizability
TEST(Linearizability, SequentialIntervalsLinearizable) {
  History h(2, 1);
  const auto w = h.push_write(0, 0, 1);
  h.set_interval(w, TimePoint{10}, TimePoint{20});
  const auto r = h.push_read(1, 0, 1);
  h.set_interval(r, TimePoint{30}, TimePoint{40});
  const auto lin = check_linearizable(h);
  EXPECT_TRUE(lin.linearizable);
}

TEST(Linearizability, StaleReadAfterWriteCompletesIsRejected) {
  History h(2, 1);
  const auto w = h.push_write(0, 0, 1);
  h.set_interval(w, TimePoint{10}, TimePoint{20});
  const auto r = h.push_read(1, 0, kBottom);  // reads ⊥ after w finished
  h.set_interval(r, TimePoint{30}, TimePoint{40});
  const auto lin = check_linearizable(h);
  EXPECT_FALSE(lin.linearizable);
}

TEST(Linearizability, OverlappingOpsMayOrderEitherWay) {
  History h(2, 1);
  const auto w = h.push_write(0, 0, 1);
  h.set_interval(w, TimePoint{10}, TimePoint{40});
  const auto r = h.push_read(1, 0, kBottom);  // overlaps the write
  h.set_interval(r, TimePoint{20}, TimePoint{30});
  EXPECT_TRUE(check_linearizable(h).linearizable);
}

TEST(Linearizability, PerVariableLocality) {
  // Variable x is fine; variable y violates: overall must fail.
  History h(2, 2);
  const auto wx = h.push_write(0, 0, 1);
  h.set_interval(wx, TimePoint{10}, TimePoint{20});
  const auto wy = h.push_write(0, 1, 2);
  h.set_interval(wy, TimePoint{30}, TimePoint{40});
  const auto ry = h.push_read(1, 1, kBottom);
  h.set_interval(ry, TimePoint{50}, TimePoint{60});
  EXPECT_FALSE(check_linearizable(h).linearizable);
}

}  // namespace
}  // namespace pardsm::hist
