#!/usr/bin/env bash
# Tier-1 verify + quick bench sweep.  This is what CI runs and what a
# contributor should run before pushing:
#
#   ./ci.sh              # build + ctest + bench_all --quick
#   BUILD_DIR=out ./ci.sh
set -euo pipefail

cd "$(dirname "$0")"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== test =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "== bench (quick) =="
(cd "$BUILD_DIR" && ./bench/bench_all --quick --out BENCH_ALL.json)
python3 - "$BUILD_DIR/BENCH_ALL.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = sum(len(b["results"]) for b in doc["benches"])
assert doc["schema"] == "pardsm-bench-v2" and doc["benches"], doc.keys()
timed = [r for b in doc["benches"] for r in b["results"] if r.get("wall_ns", 0) > 0]
total_ms = sum(r["wall_ns"] for r in timed) / 1e6
print(f"BENCH_ALL.json ok: {len(doc['benches'])} benches, {rows} result rows, "
      f"{len(timed)} timed rows ({total_ms:.1f} ms wall)")
EOF

echo "== done =="
