// Cache consistency (Goodman) with partial replication — extension №1
// toward the paper's open question.
//
// The conclusion of the paper asks whether a criterion *stronger than
// PRAM* admits efficient partial replication.  As a stepping stone, cache
// consistency — per-variable sequential consistency, incomparable to PRAM
// (it totally orders each variable's writes but ignores cross-variable
// program order) — is efficiently implementable: each variable elects a
// home inside C(x) that sequences its writes; commits multicast within
// C(x) only; no process outside C(x) ever hears about x.
//
// Writes block until the writer receives its own commit (so a process's
// later reads of the variable see its own write — required by
// per-variable SC); reads are wait-free local reads.
//
// The class is deliberately subclassable: ProcessorPartialProcess layers
// cross-variable per-writer ordering on top (see processor_partial.h).
#pragma once

#include <deque>
#include <map>

#include "mcs/cache_messages.h"
#include "mcs/protocol.h"
#include "simnet/recycling_alloc.h"

namespace pardsm::mcs {

/// One process of the per-variable-sequencer cache-consistency protocol.
class CachePartialProcess : public McsProcess {
 public:
  CachePartialProcess(ProcessId self, const graph::Distribution& dist,
                      HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override { return "cache-partial"; }
  [[nodiscard]] bool wait_free() const override { return false; }

  /// Home of variable x: the lowest-id member of C(x).
  [[nodiscard]] ProcessId home_of(VarId x) const;

 protected:
  /// Commits for x reach this process only from x's home, so a re-synced
  /// copy served by the home rides the same FIFO channel as any backlog
  /// and can safely be adopted.  (The PC subclass re-vetoes: its
  /// prior-count buffering is a delivery gate adoption must not jump.)
  [[nodiscard]] bool resync_adoptable(VarId x, ProcessId responder,
                                      const WriteId&) const override {
    return responder == home_of(x);
  }

  struct PendingWrite {
    VarId x = kNoVar;
    Value v = kBottom;
    WriteId id{};
    WriteCallback done;
    TimePoint invoked{};
  };

  /// Metadata the processor-consistency subclass attaches to a write: per
  /// prospective receiver, the count of this writer's prior writes the
  /// receiver replicates.  Plain cache consistency returns {}.
  [[nodiscard]] virtual detail::PriorCounts prior_counts_for(VarId x);

  /// Hook: may this commit be applied now?  (PC buffers out-of-order
  /// cross-variable commits; plain cache never buffers.)
  [[nodiscard]] virtual bool commit_ready(const Message& m);

  /// Hook: a commit by `writer` has just been applied here.
  virtual void on_applied(ProcessId writer);

  /// Deliver a commit: apply immediately or buffer until ready.
  void handle_commit(const Message& m);

  /// Apply one commit (store update + completion of own writes).
  void apply_commit(const Message& m);

  /// Home side: assign the next per-variable sequence number & multicast.
  void sequence(VarId x, Value v, WriteId id, ProcessId requester,
                TimePoint invoked, std::int64_t writer_seq,
                const detail::PriorCounts& prior_counts);

  /// Pool handles cached at attach() so each request/commit is a freelist
  /// pop (shared with the processor-consistency subclass).
  BodyPool<detail::CacheWriteReq>* request_pool_ = nullptr;
  BodyPool<detail::CacheCommit>* commit_pool_ = nullptr;
  std::int64_t next_write_seq_ = 0;
  std::map<VarId, std::int64_t> var_seq_;  ///< home-side per-var counters
  /// Node freelist for the per-in-flight-write map below (declared first:
  /// the container must die before its pool).
  RecyclingPool node_pool_;
  std::map<WriteId, PendingWrite, std::less<WriteId>,
           RecyclingAlloc<std::pair<const WriteId, PendingWrite>>>
      waiting_{RecyclingAlloc<std::pair<const WriteId, PendingWrite>>(
          &node_pool_)};
  std::deque<Message> buffer_;  ///< commits awaiting commit_ready (PC)
  /// Duplicate suppression: highest var_seq applied per variable.
  std::map<VarId, std::int64_t> applied_var_seq_;
};

}  // namespace pardsm::mcs
