// Allocation-free deduplication of WriteIds.
//
// Two protocols must ignore re-delivered writes (the ARQ shim may
// duplicate): the sequencer dedups write *requests*, atomic-home dedups
// writes at the home.  A std::set<WriteId> does the job but grows one
// node per write forever — the one container a freelist cannot save,
// because nothing is ever erased.
//
// WriteId.seq is writer-local and dense (0, 1, 2, ... in issue order), so
// the set of seen ids per writer is a prefix plus a small frontier of
// reordered arrivals.  WriteIdDedup stores exactly that: a per-writer
// watermark (all seqs <= watermark seen) plus a sorted overflow vector of
// seqs above it.  Advancing the watermark absorbs contiguous overflow
// entries, so under FIFO delivery the overflow stays empty and under
// reordering it stays the size of the reorder window.  Equivalent to the
// full set for any arrival order; O(1) amortized; steady-state
// allocation-free (the overflow vector keeps its capacity).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simnet/ids.h"

namespace pardsm {

class WriteIdDedup {
 public:
  /// Record `id` as seen.  Returns true when it was NOT seen before
  /// (mirrors std::set::insert(...).second).
  bool insert(const WriteId& id) {
    Lane& lane = lane_of(id.writer);
    if (id.seq <= lane.watermark) return false;
    if (id.seq == lane.watermark + 1) {
      ++lane.watermark;
      // Absorb overflow entries that the new watermark now covers.
      std::size_t absorbed = 0;
      while (absorbed < lane.overflow.size() &&
             lane.overflow[absorbed] == lane.watermark + 1) {
        ++lane.watermark;
        ++absorbed;
      }
      if (absorbed > 0) {
        lane.overflow.erase(lane.overflow.begin(),
                            lane.overflow.begin() +
                                static_cast<std::ptrdiff_t>(absorbed));
      }
      return true;
    }
    const auto it =
        std::lower_bound(lane.overflow.begin(), lane.overflow.end(), id.seq);
    if (it != lane.overflow.end() && *it == id.seq) return false;
    lane.overflow.insert(it, id.seq);
    return true;
  }

  [[nodiscard]] bool contains(const WriteId& id) const {
    if (id.writer < 0 ||
        static_cast<std::size_t>(id.writer) >= lanes_.size()) {
      return false;
    }
    const Lane& lane = lanes_[static_cast<std::size_t>(id.writer)];
    if (id.seq <= lane.watermark) return true;
    return std::binary_search(lane.overflow.begin(), lane.overflow.end(),
                              id.seq);
  }

 private:
  struct Lane {
    std::int64_t watermark = -1;         ///< all seqs <= this are seen
    std::vector<std::int64_t> overflow;  ///< sorted seqs > watermark
  };

  Lane& lane_of(ProcessId writer) {
    const auto idx = static_cast<std::size_t>(writer);
    if (idx >= lanes_.size()) lanes_.resize(idx + 1);
    return lanes_[idx];
  }

  std::vector<Lane> lanes_;  ///< indexed by writer (bounded by n)
};

}  // namespace pardsm
