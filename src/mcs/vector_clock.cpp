#include "mcs/vector_clock.h"

#include <algorithm>

#include "simnet/check.h"

namespace pardsm::mcs {

void VectorClock::merge(const VectorClock& other) {
  PARDSM_CHECK(other.size() == size(), "VectorClock::merge size mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i] = std::max(entries_[i], other.entries_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  PARDSM_CHECK(other.size() == size(), "VectorClock::leq size mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] > other.entries_[i]) return false;
  }
  return true;
}

bool VectorClock::ready_from(const VectorClock& msg, ProcessId sender) const {
  PARDSM_CHECK(msg.size() == size(), "VectorClock::ready_from size mismatch");
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const auto pk = static_cast<ProcessId>(k);
    if (pk == sender) {
      if (msg.at(pk) != at(pk) + 1) return false;
    } else if (msg.at(pk) > at(pk)) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::to_string() const {
  // One reserved buffer, appended in place: this renders on every traced
  // message of the causal protocols, so no stringstream churn.
  std::string out;
  out.reserve(2 + entries_.size() * 12);
  out += '[';
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(entries_[i]);
  }
  out += ']';
  return out;
}

}  // namespace pardsm::mcs
