// pardsm_lint fixture: the wall-clock roots allowlist.  This file's
// layer/stem pair (simnet/thread_runtime) is a real-time transport root,
// so R1 must stay quiet even though it reads the host clock.
#include <chrono>

namespace fixture {

long wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
