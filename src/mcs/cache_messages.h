// Wire messages shared by the cache- and processor-consistency protocols.
#pragma once

#include "simnet/message.h"
#include "simnet/small_vec.h"
#include "simnet/wire.h"

namespace pardsm::mcs::detail {

/// One (receiver, count) entry of a processor-consistency prior-count
/// vector.  Kept sorted by ascending ProcessId — the same order the old
/// std::map representation serialized in, so the wire bytes are unchanged.
struct PriorCount {
  ProcessId q = kNoProcess;
  std::int64_t count = 0;
};

/// Flat sorted prior-count vector.  C(x) has ≤ 8 members in every golden
/// configuration, so the steady-state path never leaves inline storage
/// (the map it replaces paid one node allocation per entry per write).
using PriorCounts = SmallVec<PriorCount, 8>;

inline void put_prior_counts(WireWriter& w, const PriorCounts& m) {
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [q, c] : m) {
    w.i32(q);
    w.i64(c);
  }
}
inline void get_prior_counts(WireReader& r, PriorCounts& m) {
  m.clear();
  const std::size_t n = r.u32();
  for (std::size_t i = 0; i < n; ++i) {
    PriorCount pc;
    pc.q = r.i32();
    pc.count = r.i64();
    m.push_back(pc);
  }
}

/// Lookup by receiver id; nullptr when the vector carries no entry for q.
[[nodiscard]] inline const std::int64_t* find_prior(const PriorCounts& m,
                                                    ProcessId q) {
  for (const auto& pc : m) {
    if (pc.q == q) return &pc.count;
  }
  return nullptr;
}

/// Writer -> home: please sequence this write.
struct CacheWriteReq final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  TimePoint invoked{};
  std::int64_t writer_seq = 0;
  /// Per receiver q ∈ C(x): number of the writer's prior writes on
  /// variables q replicates (processor consistency only; empty for cache).
  PriorCounts prior_counts;

  /// Pool recycling: scalar fields are overwritten on reuse (send path and
  /// wire decoder both assign every one); the vector clears but keeps its
  /// (inline) capacity.
  // pardsm-lint: overwritten-by-creator(x, v, id, invoked, writer_seq)
  void reset() { prior_counts.clear(); }

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kCacheWriteReq;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    wire::put_time(w, invoked);
    w.i64(writer_seq);
    put_prior_counts(w, prior_counts);
  }
};

/// Home -> C(x): the write, with its position in x's total order.
struct CacheCommit final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  std::int64_t var_seq = 0;
  ProcessId requester = kNoProcess;
  TimePoint invoked{};
  std::int64_t writer_seq = 0;
  PriorCounts prior_counts;

  /// Pool recycling: scalar fields are overwritten on reuse (home commit
  /// path and wire decoder both assign every one).
  // pardsm-lint: overwritten-by-creator(x, v, id, var_seq, requester, invoked, writer_seq)
  void reset() { prior_counts.clear(); }

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kCacheCommit;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    w.i64(var_seq);
    w.i32(requester);
    wire::put_time(w, invoked);
    w.i64(writer_seq);
    put_prior_counts(w, prior_counts);
  }
};

}  // namespace pardsm::mcs::detail
