#include "simnet/scenario.h"

#include <algorithm>
#include <memory>

#include "simnet/check.h"
#include "simnet/parallel_sim.h"
#include "simnet/simulator.h"

namespace pardsm {

namespace {

/// Group id per process under a partition event: listed processes get
/// their group's index, everyone else a unique singleton id.
std::vector<std::size_t> group_ids(const FaultEvent& e, std::size_t n) {
  std::vector<std::size_t> gid(n);
  std::size_t next = e.groups.size();
  for (std::size_t p = 0; p < n; ++p) gid[p] = next++;
  for (std::size_t g = 0; g < e.groups.size(); ++g) {
    for (ProcessId p : e.groups[g]) {
      PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < n,
                   "partition: process outside the system");
      gid[static_cast<std::size_t>(p)] = g;
    }
  }
  return gid;
}

/// True for events that *end* a condition (heals, recoveries).  At equal
/// timestamps these fire before events that start one, regardless of
/// builder call order.
bool closes_condition(const FaultEvent& e) {
  return e.type == FaultEvent::Type::kHeal ||
         e.type == FaultEvent::Type::kRecover;
}

}  // namespace

/// Plan-time rate source over the scenario's probability windows: what a
/// message faces at its send instant, no simulator events needed.
class Scenario::Rates final : public RateOverride {
 public:
  explicit Rates(const Scenario* scenario) : scenario_(scenario) {}

  [[nodiscard]] double loss(ProcessId from, ProcessId to,
                            TimePoint now) const override {
    return window_rate(scenario_->loss_windows_, from, to, now);
  }
  [[nodiscard]] double duplicate(ProcessId from, ProcessId to,
                                 TimePoint now) const override {
    return window_rate(scenario_->dup_windows_, from, to, now);
  }

 private:
  const Scenario* scenario_;
};

double Scenario::window_rate(const std::vector<ProbWindow>& windows,
                             ProcessId from, ProcessId to, TimePoint now) {
  // The most recently opened active window covering the pair wins;
  // builder order breaks open-time ties (>= keeps the later builder).
  double rate = -1.0;
  TimePoint best_open{};
  for (const ProbWindow& w : windows) {
    if (!(w.open <= now && now < w.close)) continue;
    if (w.a != kNoProcess && (w.a != from || w.b != to)) continue;
    if (rate < 0.0 || w.open >= best_open) {
      rate = w.prob;
      best_open = w.open;
    }
  }
  return rate;
}

Scenario& Scenario::add(FaultEvent e) {
  max_process_ = std::max(max_process_, e.a);
  for (const auto& group : e.groups) {
    for (ProcessId p : group) max_process_ = std::max(max_process_, p);
  }
  events_.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::add_window(std::vector<ProbWindow>& windows, ProcessId a,
                               ProcessId b, double probability,
                               TimePoint from, TimePoint until,
                               const char* what) {
  PARDSM_CHECK(probability >= 0.0 && probability <= 1.0, what);
  PARDSM_CHECK(until > from, what);
  // Same liveness contract as partition()/crash(): a total-loss window
  // must end, or the ARQ layer can never drain the channel.
  PARDSM_CHECK(probability < 1.0 || until != kTimeForever,
               "probability window: a permanent total-loss/duplication "
               "window never quiesces (give it an end time)");
  if (probability > 0.0) faulty_ = true;
  max_process_ = std::max({max_process_, a, b});
  windows.push_back({a, b, probability, from, until});
  return *this;
}

Scenario& Scenario::set_loss(double probability, TimePoint from,
                             TimePoint until) {
  return set_loss(kNoProcess, kNoProcess, probability, from, until);
}

Scenario& Scenario::set_loss(ProcessId from_p, ProcessId to_p,
                             double probability, TimePoint from,
                             TimePoint until) {
  return add_window(loss_windows_, from_p, to_p, probability, from, until,
                    "set_loss: bad probability or interval");
}

Scenario& Scenario::duplicate(double probability, TimePoint from,
                              TimePoint until) {
  return duplicate(kNoProcess, kNoProcess, probability, from, until);
}

Scenario& Scenario::duplicate(ProcessId from_p, ProcessId to_p,
                              double probability, TimePoint from,
                              TimePoint until) {
  return add_window(dup_windows_, from_p, to_p, probability, from, until,
                    "duplicate: bad probability or interval");
}

Scenario& Scenario::partition(std::vector<std::vector<ProcessId>> groups,
                              TimePoint at, TimePoint heal_at) {
  PARDSM_CHECK(!groups.empty(), "partition: no groups");
  PARDSM_CHECK(heal_at > at, "partition: heal_at must follow at");
  PARDSM_CHECK(heal_at != kTimeForever,
               "partition: must heal before the end of the run (liveness)");
  faulty_ = true;
  FaultEvent sever{FaultEvent::Type::kSever, at, kNoProcess, groups};
  FaultEvent heal{FaultEvent::Type::kHeal, heal_at, kNoProcess,
                  std::move(groups)};
  add(std::move(sever));
  return add(std::move(heal));
}

Scenario& Scenario::crash(ProcessId p, TimePoint at, TimePoint recover_at) {
  PARDSM_CHECK(p >= 0, "crash: bad process");
  PARDSM_CHECK(recover_at > at, "crash: recover_at must follow at");
  PARDSM_CHECK(recover_at != kTimeForever,
               "crash: must recover before the end of the run (liveness)");
  for (const auto& [q, from, to] : crash_windows_) {
    PARDSM_CHECK(q != p || recover_at <= from || at >= to,
                 "crash: overlapping crash windows for one process");
  }
  crash_windows_.emplace_back(p, at, recover_at);
  faulty_ = true;
  ++crashes_;
  add({FaultEvent::Type::kCrash, at, p, {}});
  return add({FaultEvent::Type::kRecover, recover_at, p, {}});
}

void Scenario::fire(const FaultEvent& e, Network& net,
                    const ScenarioHooks& hooks) const {
  const auto n = net.process_count();
  switch (e.type) {
    case FaultEvent::Type::kSever:
    case FaultEvent::Type::kHeal: {
      const auto gid = group_ids(e, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j || gid[i] == gid[j]) continue;
          const auto a = static_cast<ProcessId>(i);
          const auto b = static_cast<ProcessId>(j);
          if (e.type == FaultEvent::Type::kSever) {
            net.sever(a, b);
          } else {
            net.heal(a, b);
          }
        }
      }
      break;
    }
    case FaultEvent::Type::kCrash:
      net.set_down(e.a, true);
      if (hooks.on_crash) hooks.on_crash(e.a, e.at);
      break;
    case FaultEvent::Type::kRecover:
      net.set_down(e.a, false);
      if (hooks.on_recover) hooks.on_recover(e.a, e.at);
      break;
  }
}

std::vector<TimePoint> Scenario::window_edges() const {
  std::vector<TimePoint> edges;
  const auto add = [&edges](TimePoint t) {
    if (t != kTimeForever) edges.push_back(t);
  };
  for (const ProbWindow& w : loss_windows_) {
    add(w.open);
    add(w.close);
  }
  for (const ProbWindow& w : dup_windows_) {
    add(w.open);
    add(w.close);
  }
  for (const FaultEvent& e : events_) add(e.at);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<const FaultEvent*> Scenario::ordered_events() const {
  std::vector<const FaultEvent*> ordered;
  ordered.reserve(events_.size());
  for (const FaultEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     if (a->at != b->at) return a->at < b->at;
                     return closes_condition(*a) && !closes_condition(*b);
                   });
  return ordered;
}

void Scenario::apply(Simulator& sim, ScenarioHooks hooks) const {
  Network& net = sim.ensure_network();
  PARDSM_CHECK(max_process_ == kNoProcess ||
                   static_cast<std::size_t>(max_process_) <
                       net.process_count(),
               "scenario mentions a process outside the system");
  // Probability windows: resolved per message at planning time, so they
  // need no events and never delay quiescence.
  if (!loss_windows_.empty() || !dup_windows_.empty()) {
    net.set_rate_override(std::make_shared<Rates>(this));
  }
  // Structural events, in timeline order independent of builder call
  // order: by time, closing edges before opening edges at equal times,
  // builder order as the tie break (stable sort).
  for (const FaultEvent* ep : ordered_events()) {
    const FaultEvent& e = *ep;
    if (e.at <= sim.now()) {
      fire(e, net, hooks);
    } else {
      sim.schedule_at(e.at, [this, &net, hooks, &e] { fire(e, net, hooks); });
    }
  }
}

void Scenario::apply(ParallelSimulator& sim, ScenarioHooks hooks) const {
  Network& net = sim.fault_network();
  PARDSM_CHECK(max_process_ == kNoProcess ||
                   static_cast<std::size_t>(max_process_) <
                       net.process_count(),
               "scenario mentions a process outside the system");
  if (!loss_windows_.empty() || !dup_windows_.empty()) {
    net.set_rate_override(std::make_shared<Rates>(this));
  }
  // Structural events mutate shared fault state, so each becomes a
  // stop-the-world global: the coordinator fires it with every worker
  // parked, at its exact time (windows never span a global's instant).
  for (const FaultEvent* ep : ordered_events()) {
    const FaultEvent& e = *ep;
    if (e.at <= sim.now()) {
      fire(e, net, hooks);
    } else {
      sim.schedule_global(e.at,
                          [this, &net, hooks, &e] { fire(e, net, hooks); });
    }
  }
}

}  // namespace pardsm
