#include "workload/generator.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "simnet/check.h"
#include "simnet/rng.h"

namespace pardsm::workload {

namespace {

/// Stream tag separating op-content draws from every other counter_rng
/// user (the parallel engine's channel streams use small tags).
constexpr std::uint64_t kOpStreamTag = 0x774C'4F41'4421'0001ULL;  // "wLOAD!"

}  // namespace

Generator::Generator(const graph::Distribution& dist, const Spec& spec)
    : dist_(&dist), spec_(spec) {
  PARDSM_CHECK(spec_.ops_per_process > 0, "workload: ops_per_process == 0");
  PARDSM_CHECK(spec_.read_fraction >= 0.0 && spec_.read_fraction <= 1.0,
               "workload: read_fraction outside [0, 1]");
  PARDSM_CHECK(spec_.arrival_rate >= 0.0, "workload: negative arrival_rate");
  PARDSM_CHECK(dist.process_count() > 0, "workload: empty distribution");
  PARDSM_CHECK(dist.process_count() < (1ULL << kProcessBits),
               "workload: process count exceeds the value-packing width");
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    PARDSM_CHECK(!dist.per_process[p].empty(),
                 "workload: process replicates no variable");
  }
  if (spec_.keys != KeyDist::kZipf) return;

  PARDSM_CHECK(spec_.zipf_theta > 0.0 && spec_.zipf_theta < 1.0,
               "workload: zipf_theta must lie in (0, 1)");
  // One zeta sum per distinct replica-set size; processes share them.
  // Lookup-only cache local to the constructor: zipf_[p] is filled by
  // process index, so hash order never reaches generated ops.
  // pardsm-lint: allow(unordered-iter): lookup-only zeta cache, never iterated
  std::unordered_map<std::uint64_t, ZipfParams> by_size;
  zipf_.resize(dist.process_count());
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    const auto n = static_cast<std::uint64_t>(dist.per_process[p].size());
    auto it = by_size.find(n);
    if (it == by_size.end()) {
      ZipfParams z;
      z.n = n;
      z.theta = spec_.zipf_theta;
      for (std::uint64_t i = 1; i <= n; ++i) {
        z.zetan += 1.0 / std::pow(static_cast<double>(i), z.theta);
      }
      z.alpha = 1.0 / (1.0 - z.theta);
      z.eta = n < 2 ? 0.0
                    : (1.0 - std::pow(2.0 / static_cast<double>(n),
                                      1.0 - z.theta)) /
                          (1.0 - (1.0 + std::pow(0.5, z.theta)) / z.zetan);
      it = by_size.emplace(n, z).first;
    }
    zipf_[p] = it->second;
  }
}

std::uint64_t Generator::zipf_rank(const ZipfParams& z, double u) {
  // The YCSB zipfian inversion (Gray et al. "Quickly generating
  // billion-record synthetic databases"): rank 0 is the hottest key.
  if (z.n < 2) return 0;
  const double uz = u * z.zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, z.theta)) return 1;
  const double r = static_cast<double>(z.n) *
                   std::pow(z.eta * u - z.eta + 1.0, z.alpha);
  auto rank = static_cast<std::uint64_t>(r);
  return rank >= z.n ? z.n - 1 : rank;
}

OpSpec Generator::op(ProcessId p, std::uint64_t k) const {
  PARDSM_CHECK(p >= 0 && static_cast<std::size_t>(p) < dist_->process_count(),
               "workload: op() for unknown process");
  PARDSM_CHECK(k < spec_.ops_per_process, "workload: op index out of range");
  // Coordinates, not draw order, pick the stream: (seed, p, k) fully
  // determines this op wherever and whenever it is generated.
  Rng rng = counter_rng(spec_.seed, static_cast<std::uint64_t>(p), 0, k,
                        kOpStreamTag);
  const auto& vars = dist_->per_process[static_cast<std::size_t>(p)];
  OpSpec out;
  out.is_read = rng.chance(spec_.read_fraction);
  std::uint64_t idx = 0;
  if (vars.size() > 1) {
    idx = spec_.keys == KeyDist::kZipf
              ? zipf_rank(zipf_[static_cast<std::size_t>(p)], rng.uniform01())
              : rng.below(vars.size());
  }
  out.var = vars[idx];
  if (!out.is_read) out.value = packed_value(p, k);
  return out;
}

Value Generator::packed_value(ProcessId p, std::uint64_t k) {
  PARDSM_CHECK(p >= 0 && p < static_cast<ProcessId>(1U << kProcessBits),
               "workload: process id exceeds the value-packing width");
  PARDSM_CHECK(k < (1ULL << (63 - kProcessBits)),
               "workload: op index exceeds the value-packing width");
  // Positive, globally unique, never kBottom.  The +1 happens in
  // unsigned space and the very top packed value is rejected too: at
  // (p_max, k_max) the increment would overflow int64 — UB in signed
  // arithmetic, and a silent kBottom collision after wraparound.
  const std::uint64_t packed =
      (k << kProcessBits) | static_cast<std::uint64_t>(p);
  PARDSM_CHECK(packed < static_cast<std::uint64_t>(
                            std::numeric_limits<Value>::max()),
               "workload: packed value exceeds the int64 value range");
  return static_cast<Value>(packed + 1);
}

std::uint64_t Generator::arrival_offset_us(double rate, std::uint64_t k) {
  PARDSM_CHECK(rate > 0.0, "workload: arrival_offset_us needs a rate");
  const double off = static_cast<double>(k) * (1e6 / rate);
  // The simulated clock is int64 microseconds; an offset that cannot fit
  // is a configuration error, not a silent wrap into the past.
  PARDSM_CHECK(off < 9.0e18, "workload: arrival schedule overflows the "
                             "microsecond clock");
  return static_cast<std::uint64_t>(std::llround(off));
}

}  // namespace pardsm::workload
