// E7/E8/E9 — Figures 7-9: distributed Bellman-Ford on the Figure 8
// network, across protocols.
//
// Rows: per protocol — correctness vs centralized reference, message and
// control-byte cost, convergence time.  Expected shape: every protocol
// computes {0,2,1,4,4}; PRAM does it with the fewest control bytes (the
// paper's argument for weakening consistency under partial replication).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "apps/bellman_ford.h"

namespace {

using namespace pardsm;
using namespace pardsm::apps;
namespace bu = pardsm::benchutil;

void print_fig8_table(bu::Harness& h) {
  bu::banner("E8: Figure 8 network, Figure 7 algorithm, per protocol");
  bu::row({"protocol", "distances ok", "msgs", "ctrl-bytes", "payload",
           "sim-ms", "polls"});
  for (auto kind : mcs::all_protocols()) {
    BellmanFordOptions options;
    options.protocol = kind;
    const auto r = run_bellman_ford(WeightedGraph::fig8(), options);
    // wall_ns times a second, warm run of the identical (deterministic)
    // computation so the row measures the engine, not cold-start noise.
    const std::uint64_t wall_ns = bu::time_ns(
        [&] { (void)run_bellman_ford(WeightedGraph::fig8(), options); });
    bu::row({mcs::to_string(kind), bu::yesno(r.matches_reference),
             bu::num(r.total_traffic.msgs_sent),
             bu::num(r.total_traffic.control_bytes_sent),
             bu::num(r.total_traffic.payload_bytes_sent),
             bu::num(static_cast<double>(r.finished_at.us) / 1000.0, 1),
             bu::num(r.barrier_polls)});
    h.record(
        {.label = "fig8",
         .protocol = mcs::to_string(kind),
         .distribution = "fig8",
         .ops = r.history.size(),
         .messages = r.total_traffic.msgs_sent,
         .bytes = r.total_traffic.wire_bytes_sent(),
         .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
         .wall_ns = wall_ns,
         .extra = {{"correct", r.matches_reference ? 1.0 : 0.0},
                   {"ctrl_bytes",
                    static_cast<double>(r.total_traffic.control_bytes_sent)},
                   {"payload_bytes",
                    static_cast<double>(r.total_traffic.payload_bytes_sent)},
                   {"polls", static_cast<double>(r.barrier_polls)}}});
  }
  std::cout << "(expected: all correct; pram-partial minimizes control "
               "bytes — §5/§6)\n";

  bu::banner("E9: Figure 9 — step-by-step operation pattern (PRAM run)");
  const auto r = run_bellman_ford(WeightedGraph::fig8());
  std::cout << format_fig9_table(r, 5, /*max_steps=*/2)
            << "  (per paper: each step ends with w(x_i) then w(k_i); "
               "readers see predecessors' writes in program order)\n";
}

void print_scaling_table(bu::Harness& h) {
  bu::banner("E7 scaling: random networks, PRAM vs causal-partial-naive");
  bu::row({"n", "protocol", "ok", "msgs", "ctrl-bytes", "sim-ms"});
  for (std::size_t n : {6u, 10u, 14u}) {
    const auto g = WeightedGraph::random_network(n, n, 9, 42);
    for (auto kind : {mcs::ProtocolKind::kPramPartial,
                      mcs::ProtocolKind::kCausalPartialNaive}) {
      BellmanFordOptions options;
      options.protocol = kind;
      const auto r = run_bellman_ford(g, options);
      const std::uint64_t wall_ns =
          bu::time_ns([&] { (void)run_bellman_ford(g, options); });
      bu::row({bu::num(static_cast<std::uint64_t>(n)), mcs::to_string(kind),
               bu::yesno(r.matches_reference),
               bu::num(r.total_traffic.msgs_sent),
               bu::num(r.total_traffic.control_bytes_sent),
               bu::num(static_cast<double>(r.finished_at.us) / 1000.0, 1)});
      h.record(
          {.label = "random-n" + std::to_string(n),
           .protocol = mcs::to_string(kind),
           .distribution = "random-network-" + std::to_string(n),
           .ops = r.history.size(),
           .messages = r.total_traffic.msgs_sent,
           .bytes = r.total_traffic.wire_bytes_sent(),
           .sim_time_ms = static_cast<double>(r.finished_at.us) / 1000.0,
           .wall_ns = wall_ns,
           .extra = {{"correct", r.matches_reference ? 1.0 : 0.0},
                     {"ctrl_bytes", static_cast<double>(
                                        r.total_traffic.control_bytes_sent)}}});
    }
  }
  std::cout << "(expected: the causal/PRAM control-byte gap widens with "
               "n)\n";
}

void BM_BellmanFordFig8(benchmark::State& state, mcs::ProtocolKind kind) {
  for (auto _ : state) {
    BellmanFordOptions options;
    options.protocol = kind;
    benchmark::DoNotOptimize(
        run_bellman_ford(WeightedGraph::fig8(), options));
  }
}
BENCHMARK_CAPTURE(BM_BellmanFordFig8, pram,
                  mcs::ProtocolKind::kPramPartial);
BENCHMARK_CAPTURE(BM_BellmanFordFig8, causal_naive,
                  mcs::ProtocolKind::kCausalPartialNaive);
BENCHMARK_CAPTURE(BM_BellmanFordFig8, causal_adhoc,
                  mcs::ProtocolKind::kCausalPartialAdHoc);
BENCHMARK_CAPTURE(BM_BellmanFordFig8, sequencer,
                  mcs::ProtocolKind::kSequencerSC);

void BM_BellmanFordRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = WeightedGraph::random_network(n, n, 9, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_bellman_ford(g));
  }
}
BENCHMARK(BM_BellmanFordRandom)->DenseRange(6, 18, 4);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "fig789_bellman_ford");
  print_fig8_table(h);
  print_scaling_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
