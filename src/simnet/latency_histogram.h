// Allocation-free per-operation latency capture.
//
// A fixed-bucket log-linear histogram (HDR-histogram shape): values are
// microseconds, each power of two is split into 2^kSubBits linear
// sub-buckets, so any recorded value lands in a bucket whose width is at
// most value/32 — quantiles read back from bucket upper edges are within
// ~3.1% ("one histogram bucket") of the exact order statistic.  The
// bucket array is a value-type std::array, sized for the full 64-bit
// range (1920 counters, 15 KiB): record() is a single array increment,
// merge_from() an element-wise add, and neither ever allocates — the same
// pooled, steady-state-allocation-free discipline as the event queue, so
// per-op capture can sit on the million-ops hot path and inside the
// parallel engine's shards (one histogram per client, merged after the
// run; element-wise merge is associative and commutative, so the merge
// order cannot change the result).
//
// Censoring: an operation that was issued (or was due per the open-loop
// arrival schedule) but never completed — dead channel, never-recovered
// crash — must not vanish from the ledger or show up as a ~0 latency.
// add_censored() accounts such ops as a mass *above every bucket*:
// quantiles whose rank falls into the censored mass report
// `censored == true` (latency "at least longer than the run") instead of
// a made-up number.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace pardsm {

class LatencyHistogram {
 public:
  /// Each power of two splits into 2^kSubBits linear sub-buckets.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBits;  // 32
  /// Values < kSubBuckets get exact unit buckets; exponents kSubBits..63
  /// get one group of kSubBuckets each.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;  // 1920

  /// Bucket index of a microsecond value (total over the 64-bit range).
  [[nodiscard]] static constexpr std::uint32_t bucket_index(std::uint64_t us) {
    if (us < kSubBuckets) return static_cast<std::uint32_t>(us);
    const unsigned exp = 63U - static_cast<unsigned>(std::countl_zero(us));
    const std::uint64_t sub = (us >> (exp - kSubBits)) & (kSubBuckets - 1);
    return static_cast<std::uint32_t>((exp - (kSubBits - 1)) * kSubBuckets +
                                      sub);
  }

  /// Largest microsecond value mapping to bucket `index` (quantiles report
  /// this edge, which over-approximates by at most one bucket width).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_us(
      std::uint32_t index) {
    if (index < kSubBuckets) return index;
    const unsigned exp =
        static_cast<unsigned>(index / kSubBuckets) + (kSubBits - 1);
    const std::uint64_t sub = index & (kSubBuckets - 1);
    const std::uint64_t lower = (kSubBuckets + sub) << (exp - kSubBits);
    return lower + ((1ULL << (exp - kSubBits)) - 1);
  }

  /// Record one completed operation's latency.  Never allocates.
  void record(std::uint64_t us) {
    ++buckets_[bucket_index(us)];
    ++samples_;
    sum_us_ += us;
    if (us > max_us_) max_us_ = us;
  }

  /// Account `n` censored operations (issued or due, never completed).
  void add_censored(std::uint64_t n) { censored_ += n; }

  /// Element-wise merge; associative and commutative, so per-client /
  /// per-shard histograms can be folded in any order.  Never allocates.
  void merge_from(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    samples_ += other.samples_;
    censored_ += other.censored_;
    sum_us_ += other.sum_us_;
    if (other.max_us_ > max_us_) max_us_ = other.max_us_;
  }

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t censored() const { return censored_; }
  [[nodiscard]] std::uint64_t total() const { return samples_ + censored_; }
  [[nodiscard]] std::uint64_t max_us() const { return max_us_; }
  [[nodiscard]] std::uint64_t sum_us() const { return sum_us_; }
  [[nodiscard]] double mean_us() const {
    return samples_ == 0
               ? 0.0
               : static_cast<double>(sum_us_) / static_cast<double>(samples_);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i];
  }

  /// A quantile answer: either a latency bound in microseconds, or the
  /// statement that the rank falls into the censored mass (the op at that
  /// rank never completed, so its latency is only known to exceed the
  /// run).
  struct Quantile {
    double us = 0.0;
    bool censored = false;
  };

  /// The q-quantile over *all* accounted ops — completed samples plus the
  /// censored mass, which sits above every bucket.  q is clamped to
  /// [0, 1]; an empty histogram reports {0, false}.  Never allocates.
  [[nodiscard]] Quantile quantile(double q) const {
    const std::uint64_t n = total();
    if (n == 0) return {};
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // 1-based rank of the order statistic: ceil(q * n), at least 1.
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    if (rank > samples_) {
      return {std::numeric_limits<double>::infinity(), true};
    }
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cum += buckets_[i];
      if (cum >= rank) {
        const std::uint64_t edge = bucket_upper_us(static_cast<std::uint32_t>(i));
        // The top occupied bucket's edge over-reports the true maximum;
        // clamp to the exact recorded max.
        return {static_cast<double>(edge < max_us_ ? edge : max_us_), false};
      }
    }
    return {static_cast<double>(max_us_), false};  // unreachable
  }

  void clear() {
    buckets_.fill(0);
    samples_ = censored_ = sum_us_ = max_us_ = 0;
  }

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t samples_ = 0;
  std::uint64_t censored_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
};

}  // namespace pardsm
