// PRAM consistency with partial replication — the paper's efficient case.
//
// Theorem 2: under PRAM no dependency chain crosses a hoop, so only C(x)
// members are x-relevant.  The protocol is correspondingly minimal:
//
//   write(x)v : apply locally, send UPDATE(x, v, writer-seq) to C(x)\{self};
//   receive   : apply immediately (FIFO channels preserve each writer's
//               program order per receiver — the pipelined RAM of [13]);
//   read(x)   : wait-free local read.
//
// Control information per update: one 16-byte write id.  Nothing is ever
// sent to a process outside C(x) — bench_theorem2_pram asserts exactly
// this from observed traffic.
#pragma once

#include <vector>

#include "mcs/protocol.h"

namespace pardsm::mcs {

struct PramUpdate;

/// One process of the PRAM partial-replication protocol.
class PramPartialProcess final : public McsProcess {
 public:
  PramPartialProcess(ProcessId self, const graph::Distribution& dist,
                     HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override { return "pram-partial"; }
  [[nodiscard]] bool wait_free() const override { return true; }

 protected:
  /// Updates of x reach this process straight from each writer, so a
  /// re-synced copy of the responder's *own* writes rides the same FIFO
  /// channel as any backlog and can safely be adopted.
  [[nodiscard]] bool resync_adoptable(VarId, ProcessId responder,
                                      const WriteId& source) const override {
    return source.writer == responder;
  }

 private:
  /// Pool handle cached at attach() so each write is a freelist pop.
  BodyPool<PramUpdate>* update_pool_ = nullptr;
  std::int64_t next_write_seq_ = 0;
  /// Duplicate suppression: highest writer-seq applied per sender (dense,
  /// -1 = nothing applied).  FIFO channels deliver originals in order; a
  /// duplicated copy arrives late and must not overwrite newer state.
  std::vector<std::int64_t> last_applied_;
};

}  // namespace pardsm::mcs
