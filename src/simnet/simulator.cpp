#include "simnet/simulator.h"

#include <string>
#include <utility>

#include "simnet/check.h"

namespace pardsm {

Simulator::Simulator(SimOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

Simulator::~Simulator() = default;

ProcessId Simulator::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  PARDSM_CHECK(!network_frozen_,
               "add_endpoint: cannot add endpoints after first send");
  endpoints_.push_back(ep);
  return static_cast<ProcessId>(endpoints_.size() - 1);
}

Network& Simulator::ensure_network() {
  if (!network_frozen_) {
    network_ = std::make_unique<Network>(
        endpoints_.size(), options_.channel,
        options_.latency ? options_.latency->clone() : nullptr,
        rng_.fork(/*tag=*/0x4E455457ULL));  // "NETW"
    stats_.resize(endpoints_.size());
    network_frozen_ = true;
  }
  return *network_;
}

void Simulator::send(ProcessId from, ProcessId to, BodyRef body,
                     MessageMeta meta) {
  ensure_network();
  PARDSM_CHECK(to >= 0 && static_cast<std::size_t>(to) < endpoints_.size(),
               "send: bad destination");

  Message m;
  m.from = from;
  m.to = to;
  m.body = std::move(body);
  m.meta = std::move(meta);
  m.id = next_msg_id_++;
  m.send_time = now_;

  stats_.on_send(m);
  if (trace_.enabled()) {
    trace_.record({TraceEntry::Type::kSend, now_, from, to, m.id,
                   std::string(m.meta.kind.name())});
  }

  const DeliveryPlan deliveries = network_->plan_delivery(from, to, now_);
  if (deliveries.empty()) {
    if (trace_.enabled()) {
      trace_.record({TraceEntry::Type::kDrop, now_, from, to, m.id,
                     std::string(m.meta.kind.name())});
    }
    return;
  }
  // Duplicated messages need a copy per extra delivery; the last (and
  // common, single-delivery) schedule moves the message straight into its
  // pooled event slot — no allocation.
  for (std::size_t i = 0; i + 1 < deliveries.size(); ++i) {
    Message copy = m;
    copy.deliver_time = deliveries[i];
    queue_.schedule_deliver(deliveries[i], std::move(copy));
  }
  m.deliver_time = deliveries[deliveries.size() - 1];
  queue_.schedule_deliver(m.deliver_time, std::move(m));
}

void Simulator::set_timer(ProcessId who, Duration delay, TimerTag tag) {
  PARDSM_CHECK(who >= 0 && static_cast<std::size_t>(who) < endpoints_.size(),
               "set_timer: bad process");
  PARDSM_CHECK(delay.us >= 0, "set_timer: negative delay");
  queue_.schedule_timer(now_ + delay, who, tag);
}

void Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  PARDSM_CHECK(when >= now_, "schedule_at: time in the past");
  queue_.schedule(when, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // In-place access: the payload stays in its pooled slot while the
  // handler runs (slots are stable, and this one is only recycled by the
  // release below), so stepping never moves a Message.
  Event& e = queue_.pop_ref();
  PARDSM_CHECK(e.when >= now_, "event queue went backwards");
  now_ = e.when;
  ++events_fired_;
  PARDSM_CHECK(events_fired_ <= options_.max_events,
               "simulation exceeded max_events — non-terminating protocol?");
  switch (e.type) {
    case Event::Type::kDeliver:
      deliver(e.msg);
      break;
    case Event::Type::kTimer:
      if (trace_.enabled()) {
        trace_.record({TraceEntry::Type::kTimer, now_, e.timer_who,
                       kNoProcess, e.timer_tag, "timer"});
      }
      endpoints_[static_cast<std::size_t>(e.timer_who)]->on_timer(
          e.timer_tag);
      break;
    case Event::Type::kClosure:
      e.fire();
      break;
  }
  queue_.release(e);
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  return queue_.empty();
}

void Simulator::deliver(Message& m) {
  // A message in flight toward a process that crashed after the send is
  // lost with the crash: it never reaches the endpoint (messages already
  // *sent by* the victim were on the wire and still arrive).
  if (network_->is_down(m.to)) {
    network_->count_in_flight_drop();
    if (trace_.enabled()) {
      trace_.record({TraceEntry::Type::kDrop, now_, m.from, m.to, m.id,
                     std::string(m.meta.kind.name())});
    }
    return;
  }
  stats_.on_deliver(m);
  if (trace_.enabled()) {
    trace_.record({TraceEntry::Type::kDeliver, now_, m.from, m.to, m.id,
                   std::string(m.meta.kind.name())});
  }
  endpoints_[static_cast<std::size_t>(m.to)]->on_message(m);
}

}  // namespace pardsm
