// Deterministic random number generation.
//
// All stochastic behaviour in pardsm (latency samples, workload generation,
// topology generation) flows through Rng so that a (seed, code path) pair
// fully determines an execution.  The generator is xoshiro256** seeded via
// SplitMix64, both public-domain algorithms reimplemented here.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/check.h"

namespace pardsm {

/// SplitMix64 step; used to expand a single 64-bit seed into generator
/// state and to derive independent child seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, although pardsm code prefers the built-in
/// helpers below for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a seed; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x1727'2005'0623ULL) { reseed(seed); }

  /// Re-initialize the stream from a seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint64_t below(std::uint64_t bound) {
    PARDSM_CHECK(bound > 0, "Rng::below requires positive bound");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PARDSM_CHECK(lo <= hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Fisher–Yates shuffle (deterministic given the stream position).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator; children with distinct tags
  /// have decorrelated streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    std::uint64_t mix = (*this)() ^ (tag * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(mix));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Fold one word into a running SplitMix64 chain.  Chaining mix_word over a
/// tuple of coordinates yields a seed that depends on every coordinate and
/// on their order, with SplitMix64's full-avalanche output guaranteeing
/// adjacent tuples (counter, counter+1) decorrelate.
inline std::uint64_t mix_word(std::uint64_t acc, std::uint64_t word) {
  std::uint64_t sm = acc ^ (word + 0x9E3779B97F4A7C15ULL);
  return splitmix64(sm);
}

/// Counter-based stream: a generator fully determined by logical
/// coordinates instead of draw order.  The parallel engine keys channel
/// randomness on (run seed, sender, dest, per-pair message counter, stream
/// tag), so latency and fault draws are identical for any thread count and
/// any interleaving — the coordinates, not the schedule, pick the stream.
inline Rng counter_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                       std::uint64_t counter, std::uint64_t tag) {
  std::uint64_t acc = mix_word(seed, tag);
  acc = mix_word(acc, a);
  acc = mix_word(acc, b);
  acc = mix_word(acc, counter);
  return Rng(acc);
}

}  // namespace pardsm
