// Protocol instantiation.
#pragma once

#include <memory>
#include <vector>

#include "mcs/protocol.h"

namespace pardsm::mcs {

/// Create one McsProcess per process of the distribution, for the given
/// protocol.  The recorder must outlive the processes.  After creation the
/// caller registers each process with a runtime and calls attach().
[[nodiscard]] std::vector<std::unique_ptr<McsProcess>> make_processes(
    ProtocolKind kind, const graph::Distribution& dist,
    HistoryRecorder& recorder);

}  // namespace pardsm::mcs
