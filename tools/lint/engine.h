// Walks source roots, runs every rule, applies `// pardsm-lint: allow`
// suppressions and renders the report (text or JSON).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rules.h"

namespace pardsm::lint {

struct LintOptions {
  /// Directories (or single files) to lint.  For a directory, layer names
  /// are derived from the first path component below it, so pass the
  /// `src/` root itself (or a fixture tree shaped like it).
  std::vector<std::string> roots;
};

struct Report {
  int files_scanned = 0;
  std::vector<Diagnostic> findings;    ///< unsuppressed, sorted
  std::vector<Diagnostic> suppressed;  ///< silenced by allow(...)
  std::map<std::string, int> by_rule;  ///< active findings per rule

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Lint every .h/.hpp/.cpp/.cc under the roots.  Deterministic: files are
/// visited in sorted path order.  Throws std::runtime_error on an
/// unreadable root.
Report run_lint(const LintOptions& options);

/// Run the rules over already-scanned files (the test harness uses this to
/// lint fixture text without touching the filesystem).
Report run_lint_on(const std::vector<FileScan>& files);

/// Human-readable report: one `path:line: [rule] message` per finding plus
/// a summary line.
std::string render_text(const Report& report);

/// Machine-readable report (schema pardsm-lint-v1).
std::string render_json(const Report& report);

}  // namespace pardsm::lint
