// Real-sockets transport root: length-prefixed TCP frames between actual
// OS processes (or over loopback within one).
//
// SocketTransport is the fourth HostTransport root, next to Simulator,
// ThreadRuntime and ParallelSimulator.  Endpoints registered here run on
// mailbox worker threads exactly like under ThreadRuntime, but every
// message is serialized (simnet/wire.h), framed and written onto a real
// TCP connection — even when sender and receiver live in the same OS
// process.  Two deployment shapes share the implementation:
//
//   * all-local (EngineRuntime::kSockets): every endpoint is registered in
//     one process, ids 0..n-1 in order, one auto-bound loopback listener.
//     Decorators (ReliableTransport, BatchingTransport) stack above it
//     unchanged, and await_quiescence() works like ThreadRuntime's.
//   * multi-process (pardsm_node): each OS process hosts one endpoint
//     (options.local_ids = {i}); peers are dialed at options.addrs[j].
//     Global quiescence is unknowable, so runs settle with drain().
//
// Robustness machinery (the reason this root exists):
//
//   * every directed pair has a sender-owned outbound channel with its own
//     writer thread; a failed dial or broken write triggers reconnection
//     with capped exponential backoff plus deterministic jitter
//     (counter_rng keyed on (seed, from, to, attempt) — independent of
//     thread interleaving).  Queued frames are retained across reconnects
//     and flushed in order after the HELLO.
//   * each channel emits HEARTBEAT frames when idle; the receiver-side
//     failure detector declares a peer down when nothing (heartbeat or
//     data) has arrived within heartbeat_timeout and up again on the next
//     frame, reporting transitions through set_peer_callback — the hook
//     the engine routes into McsProcess crash()/recover() + RSYNC.
//   * HELLO frames carry an incarnation number; a bumped incarnation
//     identifies a restarted (kill -9'd and respawned) peer.
//   * ChaosOptions injects faults at the socket layer: sender-side frame
//     drops and duplications, head-of-line delivery delays and deliberate
//     mid-stream disconnects, all drawn from counter-based streams so a
//     chaos run is reproducible.  Scenario loss/duplication windows map
//     onto set_loss_rate()/set_duplicate_rate(); partitions map onto
//     set_severed() — the property net (P1-P6) runs unmodified above.
//
// Wire format: [u32 length][u8 frame type][payload ...], little-endian.
// See docs/DEPLOYMENT.md for the full frame catalogue and tuning guide.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "simnet/network.h"
#include "simnet/stats.h"
#include "simnet/transport.h"

namespace pardsm {

/// Socket-layer fault injection (all decisions sender-side, deterministic
/// given the seed and the per-pair frame counters).
struct ChaosOptions {
  /// Probability a data frame is silently not sent.
  double drop_probability = 0.0;
  /// Probability a data frame is enqueued twice.
  double duplicate_probability = 0.0;
  /// Probability the connection is closed right after writing a frame
  /// (exercises reconnection; the frame itself arrives).
  double disconnect_probability = 0.0;
  /// Extra head-of-line delay per frame, uniform in [delay_min, delay_max]
  /// (later frames on the pair queue behind it — FIFO is preserved).
  Duration delay_min{};
  Duration delay_max{};
  std::uint64_t seed = 0x50C'CA05;

  [[nodiscard]] bool any() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           disconnect_probability > 0.0 || delay_max.us > 0;
  }
};

/// Options for the sockets root.
struct SocketOptions {
  /// Global process count n (ids 0..n-1).
  std::size_t total_processes = 0;
  /// Which ids live in this OS process, in add_endpoint() order.  Empty
  /// means all of them (the all-local shape).
  std::vector<ProcessId> local_ids;
  /// Peer addresses ("host:port"), indexed by ProcessId.  An empty entry
  /// (or an empty vector) means "this transport's own listener" — the
  /// all-local loopback shape.  set_peer_addr() edits entries pre-start.
  std::vector<std::string> addrs;
  /// Address to listen on; empty = 127.0.0.1 with a kernel-chosen port
  /// (query with port()).  Ignored when listen_fd is given.
  std::string listen_addr;
  /// Pre-bound listening socket inherited from a bootstrap parent (so a
  /// respawned node reuses the same binding and peers' reconnect attempts
  /// queue in the kernel backlog across the kill).  -1 = bind our own.
  int listen_fd = -1;
  /// This process's incarnation (bumped by the bootstrap on respawn).
  std::uint64_t incarnation = 1;

  /// Heartbeat emission period per outbound channel (wall time).
  Duration heartbeat_period = millis(25);
  /// Silence threshold after which the failure detector declares a peer
  /// down.  Must comfortably exceed heartbeat_period.
  Duration heartbeat_timeout = millis(150);

  /// Reconnect/dial backoff: base delay, cap, multiplier and jitter
  /// amplitude (fraction of the delay, deterministic draws).
  Duration dial_backoff_base = millis(5);
  Duration dial_backoff_max = millis(300);
  double dial_backoff_factor = 2.0;
  double dial_jitter = 0.25;
  std::uint64_t backoff_seed = 0xD1A1'B0FF;

  ChaosOptions chaos;
};

/// Socket-layer counters (what actually happened on the wire — distinct
/// from NetworkStats, which accounts the modelled message bytes).
struct SocketCounters {
  std::uint64_t frames_sent = 0;       ///< data frames written
  std::uint64_t frames_received = 0;   ///< data frames decoded
  std::uint64_t bytes_sent = 0;        ///< wire bytes written (all frames)
  std::uint64_t bytes_received = 0;    ///< wire bytes read (all frames)
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t dials = 0;             ///< connection attempts
  std::uint64_t reconnects = 0;        ///< re-dials after an established
                                       ///< connection broke
  std::uint64_t chaos_drops = 0;
  std::uint64_t chaos_duplicates = 0;
  std::uint64_t chaos_disconnects = 0;
  std::uint64_t chaos_delays = 0;
  std::uint64_t peer_down_events = 0;  ///< failure-detector transitions
  std::uint64_t peer_up_events = 0;
};

/// TCP transport root.  See the file comment for the architecture.
class SocketTransport final : public HostTransport {
 public:
  explicit SocketTransport(SocketOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Register the endpoint for the next id in options.local_ids (or the
  /// next sequential id when local_ids is empty).  Pre-start only.
  ProcessId add_endpoint(Endpoint* ep) override;

  /// Set/override a peer's address (pre-start).
  void set_peer_addr(ProcessId p, std::string host_port);

  /// Bind the listener, spawn mailbox/channel/acceptor/detector threads.
  void start();

  /// Stop and join every thread; closes all sockets.
  void stop();

  /// All-local shape only: block until no queued message, running handler,
  /// pending timer or undelivered frame remains.  Returns true on
  /// quiescence, false on timeout.
  bool await_quiescence(std::chrono::milliseconds timeout);

  /// Multi-process settle: block until no local activity (message, task or
  /// non-heartbeat frame) has happened for `idle`, or `timeout` elapses.
  /// Returns true if the idle window was observed.
  bool drain(std::chrono::milliseconds idle, std::chrono::milliseconds timeout);

  /// Run `task` on the mailbox thread owning local process `who`.
  void post(ProcessId who, std::function<void()> task);

  // -- Transport ------------------------------------------------------------
  void send(ProcessId from, ProcessId to, BodyRef body,
            MessageMeta meta) override;
  [[nodiscard]] TimePoint now() const override;
  void set_timer(ProcessId who, Duration delay, TimerTag tag) override;
  [[nodiscard]] std::size_t process_count() const override;
  /// Concurrent arena: bodies are created on app/mailbox threads and
  /// decoded on reader threads, and recycle from any of them.
  [[nodiscard]] BodyArena& arena(ProcessId owner) override {
    (void)owner;
    return arena_;
  }

  // -- fault injection / scenario hooks -------------------------------------
  /// Sever / heal the directed pair (a -> b): sends are dropped at the
  /// sender (counted in drops().severed).
  void set_severed(ProcessId a, ProcessId b, bool severed);
  /// Take a process down / up: frames from and to it are dropped at the
  /// sender (counted in drops().down).
  void set_down(ProcessId p, bool down);
  /// Time-varying probabilistic loss/duplication on (a -> b) — the socket
  /// mapping of Scenario's ProbWindow rates.  Draws share the chaos
  /// streams, so they are deterministic too.
  void set_loss_rate(ProcessId a, ProcessId b, double rate);
  void set_duplicate_rate(ProcessId a, ProcessId b, double rate);

  // -- peer liveness ---------------------------------------------------------
  /// Callback invoked (on the detector thread) when the failure detector
  /// changes its mind about a remote peer: up=false on silence past
  /// heartbeat_timeout, up=true on the next frame.  `incarnation` is the
  /// peer's latest announced incarnation (0 before its first HELLO).
  using PeerCallback =
      std::function<void(ProcessId peer, bool up, std::uint64_t incarnation)>;
  void set_peer_callback(PeerCallback cb);
  /// Current detector verdict for `p` (true until proven silent).
  [[nodiscard]] bool peer_up(ProcessId p) const;
  /// Latest incarnation announced by `p` (0 = never heard from).
  [[nodiscard]] std::uint64_t peer_incarnation(ProcessId p) const;

  // -- bootstrap control plane ----------------------------------------------
  /// Out-of-band control frames (DONE/FINISH barrier of pardsm_node);
  /// never delivered to endpoints, never counted in NetworkStats.
  using ControlCallback = std::function<void(
      ProcessId from, std::uint32_t code, std::uint64_t arg)>;
  void set_control_callback(ControlCallback cb);
  void send_control(ProcessId to, std::uint32_t code, std::uint64_t arg);

  // -- introspection ---------------------------------------------------------
  /// The port the listener is bound to (valid after start()).
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] DropCounters drops() const;
  [[nodiscard]] SocketCounters counters() const;

 private:
  struct TimerItem {
    std::chrono::steady_clock::time_point deadline;
    TimerTag tag = 0;
    friend bool operator>(const TimerItem& a, const TimerItem& b) {
      return a.deadline > b.deadline;
    }
  };

  /// One per local process: its queue, timers and worker thread.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
    std::deque<std::function<void()>> tasks;
    std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>>
        timers;
    std::thread worker;
  };

  /// An encoded frame queued on an outbound channel.
  struct QueuedFrame {
    std::vector<std::uint8_t> bytes;
    std::chrono::steady_clock::time_point earliest;  ///< chaos delay
    bool counts_pending = false;  ///< finish_item() after the write
    bool chaos_disconnect = false;
  };

  /// Sender-owned state of one directed pair (from is local).
  struct OutChannel {
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<QueuedFrame> queue;
    std::thread writer;
    int fd = -1;                      ///< writer thread only
    std::uint64_t dial_attempts = 0;  ///< consecutive failures (backoff)
    bool was_connected = false;
    std::uint64_t chaos_counter = 0;  ///< per-pair deterministic stream
    std::uint64_t jitter_counter = 0;
  };

  /// Receiver-side view of one remote process.
  struct PeerState {
    std::chrono::steady_clock::time_point last_rx{};
    std::uint64_t incarnation = 0;
    bool up = true;
  };

  /// Per-directed-pair scenario rates (socket ProbWindow mapping).
  struct PairRates {
    std::atomic<double> loss{0.0};
    std::atomic<double> dup{0.0};
  };

  [[nodiscard]] bool is_local(ProcessId p) const;
  [[nodiscard]] std::size_t local_index(ProcessId p) const;
  [[nodiscard]] std::size_t pair_index(ProcessId a, ProcessId b) const {
    return static_cast<std::size_t>(a) * options_.total_processes +
           static_cast<std::size_t>(b);
  }

  void enqueue_frame(OutChannel& ch, QueuedFrame frame);
  void enqueue_local(ProcessId to, Message m);
  void writer_loop(OutChannel& ch);
  bool ensure_connected(OutChannel& ch);
  bool write_all(int fd, const std::uint8_t* data, std::size_t size);
  void acceptor_loop();
  void reader_loop(int fd);
  void detector_loop();
  void worker_loop(std::size_t local_idx);
  void finish_item();
  void note_activity() { activity_.fetch_add(1, std::memory_order_relaxed); }
  void note_rx(ProcessId from, std::uint64_t incarnation, bool is_hello);
  void handle_frame(const std::vector<std::uint8_t>& payload);
  [[nodiscard]] std::chrono::steady_clock::time_point steady_now() const {
    return std::chrono::steady_clock::now();
  }

  SocketOptions options_;
  BodyArena arena_{/*concurrent=*/true};
  std::vector<ProcessId> local_ids_;          ///< registration order
  std::vector<Endpoint*> endpoints_;          ///< parallel to local_ids_
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::map<ProcessId, std::size_t> local_index_;
  std::vector<std::unique_ptr<OutChannel>> channels_;
  std::map<std::size_t, OutChannel*> channel_by_pair_;

  NetworkStats stats_;
  mutable std::mutex counters_mu_;
  SocketCounters counters_;
  DropCounters drops_;

  std::vector<PairRates> rates_;                  ///< n*n scenario rates
  std::unique_ptr<std::atomic<bool>[]> severed_;  ///< n*n
  std::unique_ptr<std::atomic<bool>[]> down_;     ///< n

  mutable std::mutex peers_mu_;
  std::vector<PeerState> peers_;
  PeerCallback peer_cb_;
  ControlCallback control_cb_;
  std::mutex cb_mu_;

  int own_listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::thread acceptor_;
  std::thread detector_;
  std::mutex readers_mu_;
  std::vector<int> reader_fds_;
  std::vector<std::thread> readers_;

  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  std::atomic<std::uint64_t> activity_{0};

  std::chrono::steady_clock::time_point start_time_;
  std::atomic<std::uint64_t> next_msg_id_{1};
};

}  // namespace pardsm
