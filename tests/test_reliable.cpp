// ARQ reliable-delivery layer: exactly-once FIFO over lossy channels, and
// protocol liveness restored under loss.

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"
#include "simnet/reliable.h"

namespace pardsm {
namespace {

struct Payload final : MessageBody {
  int n = 0;
};

struct Collector final : Endpoint {
  std::vector<int> got;
  void on_message(const Message& m) override {
    got.push_back(m.as<Payload>()->n);
  }
};

SimOptions lossy(double drop, double dup, std::uint64_t seed) {
  SimOptions o;
  o.seed = seed;
  o.channel.drop_probability = drop;
  o.channel.duplicate_probability = dup;
  o.channel.fifo = false;  // ARQ restores order itself
  o.latency = std::make_unique<UniformLatency>(millis(1), millis(10));
  return o;
}

TEST(Reliable, ExactlyOnceInOrderUnderHeavyLoss) {
  Simulator sim(lossy(0.4, 0.2, 3));
  ReliableTransport rel(sim, {});
  Collector sender_side, receiver;
  const ProcessId s = rel.add_endpoint(&sender_side);
  const ProcessId r = rel.add_endpoint(&receiver);

  sim.schedule_at(kTimeZero, [&] {
    for (int i = 0; i < 100; ++i) {
      auto* body = new_body<Payload>();
      body->n = i;
      rel.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
    }
  });
  sim.run();

  ASSERT_EQ(receiver.got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(receiver.got[i], i);
  EXPECT_GT(rel.retransmissions(), 0u);
}

TEST(Reliable, NoLossMeansNoRetransmissions) {
  Simulator sim(lossy(0.0, 0.0, 4));
  ReliableTransport rel(sim, {});
  Collector a, b;
  const ProcessId s = rel.add_endpoint(&a);
  const ProcessId r = rel.add_endpoint(&b);
  sim.schedule_at(kTimeZero, [&] {
    auto* body = new_body<Payload>();
    body->n = 7;
    rel.send(s, r, BodyRef::adopt(body), MessageMeta{"ONE", 4, 0, {}});
  });
  sim.run();
  EXPECT_EQ(b.got, (std::vector<int>{7}));
  EXPECT_EQ(rel.retransmissions(), 0u);
}

TEST(Reliable, AppTimersPassThrough) {
  struct Timed final : Endpoint {
    std::vector<TimerTag> tags;
    void on_message(const Message&) override {}
    void on_timer(TimerTag t) override { tags.push_back(t); }
  };
  Simulator sim(lossy(0.0, 0.0, 5));
  ReliableTransport rel(sim, {});
  Timed t;
  const ProcessId p = rel.add_endpoint(&t);
  rel.set_timer(p, millis(2), 42);
  sim.run();
  EXPECT_EQ(t.tags, (std::vector<TimerTag>{42}));
}

// The headline: a PRAM system over a 30%-lossy network, with the ARQ layer
// underneath, completes every script and the history is PRAM-consistent —
// loss costs retransmissions, not safety or liveness.
TEST(Reliable, PramProtocolLiveUnderLoss) {
  const auto dist = graph::topo::random_replication(4, 3, 2, 9);
  Simulator sim(lossy(0.3, 0.1, 9));
  ReliableTransport rel(sim, {});

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs =
      mcs::make_processes(mcs::ProtocolKind::kPramPartial, dist, recorder);
  for (auto& proc : procs) {
    rel.add_endpoint(proc.get());
    proc->attach(rel);
  }

  mcs::WorkloadSpec spec;
  spec.ops_per_process = 8;
  spec.seed = 2;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  std::vector<std::unique_ptr<mcs::ScriptedClient>> clients;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    clients.push_back(
        std::make_unique<mcs::ScriptedClient>(*procs[p], sim, scripts[p]));
    clients.back()->start(kTimeZero);
  }
  sim.run();

  for (const auto& c : clients) EXPECT_TRUE(c->done());
  // Every update eventually arrived: replicas of each variable agree with
  // the last write in some writer-consistent way; the history checks out.
  const auto h = recorder.history();
  EXPECT_TRUE(hist::check_history(h, hist::Criterion::kPram).consistent)
      << h.to_string();
  EXPECT_GT(rel.retransmissions(), 0u);
}

// Causal protocol (vector clocks) over lossy network + ARQ: the causal
// delivery condition sees no gaps because ARQ fills them.
TEST(Reliable, CausalProtocolLiveUnderLoss) {
  const auto dist = graph::topo::star(3);
  Simulator sim(lossy(0.25, 0.0, 11));
  ReliableTransport rel(sim, {});

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs = mcs::make_processes(mcs::ProtocolKind::kCausalPartialNaive,
                                   dist, recorder);
  for (auto& proc : procs) {
    rel.add_endpoint(proc.get());
    proc->attach(rel);
  }
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 4;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  std::vector<std::unique_ptr<mcs::ScriptedClient>> clients;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    clients.push_back(
        std::make_unique<mcs::ScriptedClient>(*procs[p], sim, scripts[p]));
    clients.back()->start(kTimeZero);
  }
  sim.run();

  const auto h = recorder.history();
  EXPECT_TRUE(hist::check_history(h, hist::Criterion::kCausal).consistent);
  // All updates were eventually applied everywhere relevant: each process's
  // buffered queue drained (no stuck messages => applied counts match).
  for (const auto& proc : procs) {
    EXPECT_GE(proc->stats().updates_applied, 0u);
  }
}

// ---------------------------------------------------------------------------
// Adaptive retransmission: capped exponential backoff + deterministic
// jitter (ReliableOptions.backoff_factor / retransmit_max / jitter).
// ---------------------------------------------------------------------------

ReliableOptions backoff_options() {
  ReliableOptions o;
  o.retransmit_after = millis(20);
  o.max_retransmits = 1'000'000;
  o.backoff_factor = 2.0;
  o.retransmit_max = millis(200);
  o.jitter = 0.25;
  return o;
}

TEST(Reliable, BackoffDeliversExactlyOnceUnderHeavyLoss) {
  Simulator sim(lossy(0.4, 0.2, 3));
  ReliableTransport rel(sim, backoff_options());
  Collector sender_side, receiver;
  const ProcessId s = rel.add_endpoint(&sender_side);
  const ProcessId r = rel.add_endpoint(&receiver);

  sim.schedule_at(kTimeZero, [&] {
    for (int i = 0; i < 100; ++i) {
      auto* body = new_body<Payload>();
      body->n = i;
      rel.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
    }
  });
  sim.run();

  ASSERT_EQ(receiver.got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(receiver.got[i], i);
  EXPECT_GT(rel.retransmissions(), 0u);
  EXPECT_TRUE(rel.dead_channels().empty());
}

TEST(Reliable, BackoffIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t jitter_seed) {
    Simulator sim(lossy(0.35, 0.1, 7));
    ReliableOptions o = backoff_options();
    o.jitter_seed = jitter_seed;
    ReliableTransport rel(sim, o);
    Collector sender_side, receiver;
    const ProcessId s = rel.add_endpoint(&sender_side);
    const ProcessId r = rel.add_endpoint(&receiver);
    sim.schedule_at(kTimeZero, [&] {
      for (int i = 0; i < 50; ++i) {
        auto* body = new_body<Payload>();
        body->n = i;
        rel.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
      }
    });
    sim.run();
    EXPECT_EQ(receiver.got.size(), 50u);
    return std::make_pair(rel.retransmissions(), sim.now().us);
  };
  // Same seed, same run — the jitter stream is a pure function of
  // (seed, pair, draw index), never of scheduling history.
  EXPECT_EQ(run_once(11), run_once(11));
  // A different seed perturbs the retransmit schedule.
  EXPECT_NE(run_once(11), run_once(12));
}

// The engine's lossy scenario sweep still completes with backoff enabled:
// same protocol liveness, the knobs only reshape *when* repairs happen.
TEST(Reliable, BackoffUnderLossyScenarioSweep) {
  const auto dist = graph::topo::ring(4);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 5;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  for (const double loss : {0.1, 0.3}) {
    SCOPED_TRACE(loss);
    Scenario scenario("sweep");
    scenario.set_loss(loss);
    mcs::EngineConfig config;
    config.protocol = mcs::ProtocolKind::kPramPartial;
    config.distribution = &dist;
    config.scripts = &scripts;
    config.scenario = &scenario;
    config.reliable = backoff_options();
    const auto r = mcs::run(std::move(config));
    EXPECT_TRUE(r.used_reliable_transport);
    EXPECT_EQ(r.unfinished_clients, 0u);
    EXPECT_TRUE(r.dead_channels.empty());
    EXPECT_TRUE(
        hist::check_history(r.history, hist::Criterion::kPram).consistent);
  }
}

// ---------------------------------------------------------------------------
// Retransmit exhaustion: the default now degrades the channel to dead
// (counted drops, reported pairs) instead of tearing down the whole run;
// the old throw is an opt-in (OnExhausted::kThrow).
// ---------------------------------------------------------------------------

SimOptions black_hole(std::uint64_t seed) {
  SimOptions o = lossy(1.0, 0.0, seed);
  return o;
}

TEST(Reliable, ExhaustionThrowsWhenOptedIn) {
  Simulator sim(black_hole(21));
  ReliableOptions o;
  o.retransmit_after = millis(5);
  o.max_retransmits = 3;
  o.on_exhausted = OnExhausted::kThrow;
  ReliableTransport rel(sim, o);
  Collector a, b;
  const ProcessId s = rel.add_endpoint(&a);
  const ProcessId r = rel.add_endpoint(&b);
  sim.schedule_at(kTimeZero, [&] {
    auto* body = new_body<Payload>();
    body->n = 1;
    rel.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Reliable, ExhaustionDegradesToDeadChannelByDefault) {
  Simulator sim(black_hole(22));
  ReliableOptions o;
  o.retransmit_after = millis(5);
  o.max_retransmits = 3;
  ReliableTransport rel(sim, o);
  Collector a, b;
  const ProcessId s = rel.add_endpoint(&a);
  const ProcessId r = rel.add_endpoint(&b);
  sim.schedule_at(kTimeZero, [&] {
    for (int i = 0; i < 4; ++i) {
      auto* body = new_body<Payload>();
      body->n = i;
      rel.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
    }
  });
  sim.run();  // no throw: the channel dies, the run quiesces

  EXPECT_TRUE(b.got.empty());
  ASSERT_EQ(rel.dead_channels().size(), 1u);
  EXPECT_EQ(rel.dead_channels()[0], std::make_pair(s, r));
  // All four unacked frames were abandoned with the channel.
  EXPECT_EQ(rel.dead_channel_drops(), 4u);

  // Later sends onto the dead pair are swallowed (counted), not retried.
  sim.schedule_at(sim.now(), [&] {
    auto* body = new_body<Payload>();
    body->n = 99;
    rel.send(s, r, BodyRef::adopt(body), MessageMeta{"SEQ", 4, 0, {}});
  });
  sim.run();
  EXPECT_TRUE(b.got.empty());
  EXPECT_EQ(rel.dead_channel_drops(), 5u);
}

// Engine surface of the same event: an RPC protocol over a total black
// hole quiesces with the channel pairs and the stranded clients reported
// in the result instead of an exception.
TEST(Reliable, EngineReportsDeadChannelsAndUnfinishedClients) {
  const auto dist = graph::topo::complete(3, 2);
  std::vector<mcs::Script> scripts(3);
  // Two RPCs to var 0's home: the first can never be acked, so the
  // second never even issues and the client stays visibly unfinished.
  scripts[1].push_back(mcs::ScriptOp::write(0, 42));
  scripts[1].push_back(mcs::ScriptOp::write(0, 43));

  mcs::EngineConfig config;
  config.protocol = mcs::ProtocolKind::kAtomicHome;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.channel.drop_probability = 1.0;  // routes through ARQ (kAuto)
  config.reliable.retransmit_after = millis(5);
  config.reliable.max_retransmits = 2;
  const auto r = mcs::run(std::move(config));

  EXPECT_TRUE(r.used_reliable_transport);
  EXPECT_FALSE(r.dead_channels.empty());
  EXPECT_EQ(r.unfinished_clients, 1u);
  EXPECT_GT(r.drops.dead_channel, 0u);
}

}  // namespace
}  // namespace pardsm
