// Real-loopback numbers beside simulated ones: the same workloads run on
// the deterministic simulator and on the sockets root (EngineRuntime::
// kSockets — real TCP frames over loopback, mailbox threads, wire
// serialization), so the table prices what the simulator abstracts away:
// frame encoding, kernel round trips, heartbeats and — in the chaos rows
// — ARQ repair of genuine socket-level frame loss.
//
// Model-level columns (messages, bytes, ops) are identical between the
// two runtimes by construction (same protocol, same scripts; conservation
// is asserted in tests/test_sockets.cpp); what differs is the wall clock
// and the wire ledger (socket frames/bytes include framing, HELLOs and
// heartbeats — SocketCounters, not NetworkStats).

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

constexpr std::size_t kProcs = 4;
constexpr std::size_t kOpsPerProc = 16;

struct Workload {
  graph::Distribution dist;
  std::vector<Script> scripts;
};

Workload make_workload() {
  Workload w;
  w.dist = graph::topo::complete(kProcs, kProcs);
  WorkloadSpec spec;
  spec.ops_per_process = kOpsPerProc;
  spec.seed = 17;
  w.scripts = mcs::make_single_writer_scripts(w.dist, spec);
  return w;
}

EngineConfig base_config(ProtocolKind kind, const Workload& w) {
  EngineConfig config;
  config.protocol = kind;
  config.distribution = &w.dist;
  config.scripts = &w.scripts;
  return config;
}

const ProtocolKind kProtocols[] = {ProtocolKind::kPramPartial,
                                   ProtocolKind::kCachePartial,
                                   ProtocolKind::kSequencerSC};

void sweep(bu::Harness& h) {
  const Workload w = make_workload();
  bu::banner("simulator vs loopback sockets (complete-" +
             bu::num(static_cast<std::uint64_t>(kProcs)) + ", " +
             bu::num(static_cast<std::uint64_t>(kProcs * kOpsPerProc)) +
             " ops)");
  bu::row({"row", "runtime", "msgs", "model_bytes", "frames", "wire_bytes",
           "heartbeats", "wall_ms"});

  for (const ProtocolKind kind : kProtocols) {
    // -- deterministic simulator reference -----------------------------------
    ScenarioRunResult sim_r;
    const std::uint64_t sim_ns =
        bu::time_ns([&] { sim_r = run(base_config(kind, w)); });
    bu::row({std::string("sim-") + to_string(kind), "simulator",
             bu::num(sim_r.total_traffic.msgs_sent),
             bu::num(sim_r.total_traffic.wire_bytes_sent()), "-", "-", "-",
             bu::num(static_cast<double>(sim_ns) / 1e6, 2)});
    h.record({.label = std::string("sim-") + to_string(kind),
              .protocol = to_string(kind),
              .distribution = w.dist.name,
              .ops = kProcs * kOpsPerProc,
              .messages = sim_r.total_traffic.msgs_sent,
              .bytes = sim_r.total_traffic.wire_bytes_sent(),
              .sim_time_ms = static_cast<double>(sim_r.finished_at.us) / 1e3,
              .wall_ns = sim_ns,
              .extra = {{"runtime_sockets", 0.0}}});

    // -- same workload on real loopback TCP ----------------------------------
    for (const double chaos_drop : {0.0, 0.1}) {
      EngineConfig config = base_config(kind, w);
      config.runtime = EngineRuntime::kSockets;
      config.sockets.chaos.drop_probability = chaos_drop;
      ScenarioRunResult r;
      const std::uint64_t ns = bu::time_ns([&] { r = run(std::move(config)); });
      const std::string label =
          (chaos_drop > 0.0 ? "sockets-chaos10-" : "sockets-") +
          std::string(to_string(kind));
      bu::row({label, "sockets", bu::num(r.total_traffic.msgs_sent),
               bu::num(r.total_traffic.wire_bytes_sent()),
               bu::num(r.socket_counters.frames_sent),
               bu::num(r.socket_counters.bytes_sent),
               bu::num(r.socket_counters.heartbeats_sent),
               bu::num(static_cast<double>(ns) / 1e6, 2)});
      h.record(
          {.label = label,
           .protocol = to_string(kind),
           .distribution = w.dist.name,
           .ops = kProcs * kOpsPerProc,
           .messages = r.total_traffic.msgs_sent,
           .bytes = r.total_traffic.wire_bytes_sent(),
           .sim_time_ms = static_cast<double>(r.finished_at.us) / 1e3,
           .wall_ns = ns,
           .extra = {
               {"runtime_sockets", 1.0},
               {"chaos_drop", chaos_drop},
               {"frames_sent", static_cast<double>(r.socket_counters.frames_sent)},
               {"wire_bytes_sent",
                static_cast<double>(r.socket_counters.bytes_sent)},
               {"heartbeats_sent",
                static_cast<double>(r.socket_counters.heartbeats_sent)},
               {"chaos_drops",
                static_cast<double>(r.socket_counters.chaos_drops)},
               {"retransmissions", static_cast<double>(r.retransmissions)},
           }});
    }
  }
  std::cout << "(model columns match the simulator rows by construction; "
               "frames/wire_bytes are the real TCP ledger incl. framing, "
               "HELLOs and heartbeats)\n";
}

void BM_SimulatorRun(benchmark::State& state) {
  const Workload w = make_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(base_config(ProtocolKind::kPramPartial, w)));
  }
}
BENCHMARK(BM_SimulatorRun)->Unit(benchmark::kMillisecond);

void BM_SocketRun(benchmark::State& state) {
  const Workload w = make_workload();
  for (auto _ : state) {
    EngineConfig config = base_config(ProtocolKind::kPramPartial, w);
    config.runtime = EngineRuntime::kSockets;
    benchmark::DoNotOptimize(run(std::move(config)));
  }
}
BENCHMARK(BM_SocketRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "sockets");
  sweep(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
