// Interned message-kind identifiers.
//
// Every message used to carry its kind tag ("PRAM", "RREQ", ...) as a
// std::string copied through the event queue.  The set of kinds in any run
// is tiny and fixed, so kinds are interned once into a process-global
// table and messages carry a 2-byte KindId.  Ids are assigned in first-
// intern order and are stable for the lifetime of the process; id 0 is
// always the empty kind.  The table is thread-safe (the std::thread
// runtime sends from many threads), but protocols are expected to intern
// their kinds once into namespace-scope constants so the steady-state send
// path never touches the table lock.
#pragma once

#include <cstdint>
#include <string_view>

namespace pardsm {

class KindId {
 public:
  /// The empty kind "" (id 0) — the default of MessageMeta.
  constexpr KindId() = default;

  /// Intern `name` (implicit: lets `meta.kind = "PRAM"` keep working).
  KindId(std::string_view name);           // NOLINT(google-explicit-*)
  KindId(const char* name) : KindId(std::string_view(name)) {}  // NOLINT

  /// The interned spelling.  Valid for the process lifetime.
  [[nodiscard]] std::string_view name() const;

  [[nodiscard]] std::uint16_t value() const { return id_; }

  friend bool operator==(KindId, KindId) = default;

 private:
  friend KindId arq_wrapped(KindId base);
  explicit constexpr KindId(std::uint16_t id, int) : id_(id) {}

  std::uint16_t id_ = 0;
};

/// The kind "ARQ:" + base.name(), interned once per base kind and cached,
/// so the reliable-transport wrapper adds no allocation per frame.
[[nodiscard]] KindId arq_wrapped(KindId base);

/// Number of distinct kinds interned so far (diagnostics/tests).
[[nodiscard]] std::size_t kind_table_size();

}  // namespace pardsm
