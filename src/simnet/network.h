// Channel behaviour: latency, FIFO ordering, loss, duplication, partitions
// and process downtime.
//
// Network decides *when* (and whether, and how many times) each sent
// message is delivered.  It is deliberately independent of the event queue
// so channel semantics can be unit-tested in isolation.
//
// RNG stream isolation: latency sampling and fault decisions draw from two
// decorrelated generators.  The latency stream is consumed once per send
// in a fixed position (sampled *before* any fault decision), so changing
// loss or duplication rates — statically via ChannelOptions or dynamically
// via the per-pair setters a Scenario drives — never perturbs the latency
// a surviving message would have received in the fault-free run.  The
// extra copy of a duplicated message samples its latency from the fault
// stream for the same reason.  tests/test_scenario.cpp pins this.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "simnet/check.h"
#include "simnet/ids.h"
#include "simnet/latency.h"
#include "simnet/pair_map.h"
#include "simnet/rng.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Per-channel fault and ordering knobs.
struct ChannelOptions {
  /// Deliver messages of each directed pair in send order.  PRAM and slow
  /// protocols rely on FIFO; causal protocols tolerate reordering.
  bool fifo = true;

  /// Probability that a message is silently dropped.
  double drop_probability = 0.0;

  /// Probability that a message is delivered twice.
  double duplicate_probability = 0.0;
};

/// Delivery times of one sent message: empty if dropped, two entries if
/// duplicated.  A fixed-capacity value type so planning a delivery never
/// touches the heap.
struct DeliveryPlan {
  std::array<TimePoint, 2> at{};
  std::uint8_t count = 0;

  void push(TimePoint t) {
    PARDSM_CHECK(count < at.size(),
                 "DeliveryPlan: more deliveries than the fixed capacity "
                 "(one original + one duplicate)");
    at[count++] = t;
  }
  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] TimePoint operator[](std::size_t i) const { return at[i]; }
  [[nodiscard]] const TimePoint* begin() const { return at.data(); }
  [[nodiscard]] const TimePoint* end() const { return at.data() + count; }
};

/// Time-dependent per-pair probability source installed by a scenario:
/// consulted at planning time, so probability windows need no simulator
/// events (a window that outlasts the traffic never delays quiescence).
/// Returning a negative value falls back to the network's own table.
class RateOverride {
 public:
  virtual ~RateOverride() = default;
  virtual double loss(ProcessId from, ProcessId to, TimePoint now) const = 0;
  virtual double duplicate(ProcessId from, ProcessId to,
                           TimePoint now) const = 0;
};

/// Why messages were dropped (scenario benches report the split).
struct DropCounters {
  std::uint64_t loss = 0;       ///< probabilistic channel loss
  std::uint64_t severed = 0;    ///< partitioned directed pair
  std::uint64_t down = 0;       ///< sender or receiver process down
  std::uint64_t in_flight = 0;  ///< delivery suppressed: receiver went down
  /// Frames discarded by the ARQ layer on a channel it declared dead
  /// (OnExhausted::kDeadChannel); the engine folds
  /// ReliableTransport::dead_channel_drops() in here.
  std::uint64_t dead_channel = 0;

  [[nodiscard]] std::uint64_t total() const {
    return loss + severed + down + in_flight + dead_channel;
  }
};

/// Computes delivery schedules for messages.
class Network {
 public:
  /// Build a network over `n` processes.  `latency` may be null, meaning
  /// a default 1ms constant latency.  `rng` seeds both internal streams:
  /// the latency stream is a verbatim copy (so fault-free executions are
  /// unchanged by the stream split) and the fault stream is forked from it.
  Network(std::size_t n, ChannelOptions options,
          std::unique_ptr<LatencyModel> latency, Rng rng);

  /// Decide the fate of one message sent at `send_time`.  FIFO clamping
  /// guarantees strictly increasing delivery times per directed pair when
  /// options.fifo is set.
  DeliveryPlan plan_delivery(ProcessId from, ProcessId to,
                             TimePoint send_time);

  [[nodiscard]] std::size_t process_count() const { return n_; }
  [[nodiscard]] const ChannelOptions& options() const { return options_; }

  /// Partition control: while a directed pair is severed, messages are
  /// dropped.  Cuts are counted, not flagged — overlapping partitions
  /// compose, and a pair stays severed until every cut covering it heals.
  void sever(ProcessId from, ProcessId to);
  void heal(ProcessId from, ProcessId to);
  [[nodiscard]] bool severed(ProcessId from, ProcessId to) const;

  /// Dynamic per-pair loss/duplication rates: a default (seeded from
  /// ChannelOptions) plus sparse per-pair overrides.  set_*_all rewrites
  /// the default and drops every override, which is observably what
  /// overwriting a dense table did.
  void set_loss(ProcessId from, ProcessId to, double probability);
  void set_loss_all(double probability);
  [[nodiscard]] double loss(ProcessId from, ProcessId to) const;
  void set_duplicate(ProcessId from, ProcessId to, double probability);
  void set_duplicate_all(double probability);
  [[nodiscard]] double duplicate(ProcessId from, ProcessId to) const;

  /// Install (or clear, with null) a time-dependent rate source; it must
  /// outlive the network's use of it.  Scenario::apply installs one over
  /// its probability windows.
  void set_rate_override(std::shared_ptr<const RateOverride> override_src) {
    override_ = std::move(override_src);
    refresh_fault_flag();
  }

  /// The probability a message planned now would face: the override when
  /// one is installed and covers the instant, else the table.
  [[nodiscard]] double effective_loss(ProcessId from, ProcessId to,
                                      TimePoint now) const;
  [[nodiscard]] double effective_duplicate(ProcessId from, ProcessId to,
                                           TimePoint now) const;

  /// Process downtime (crash windows): a down process neither sends nor
  /// receives; both directions drop.  The runtime additionally consults
  /// is_down() for messages already in flight at crash time.
  void set_down(ProcessId p, bool down);
  [[nodiscard]] bool is_down(ProcessId p) const;

  /// Record a delivery suppressed by the runtime because the receiver was
  /// down when the message arrived (in-flight at crash time).
  void count_in_flight_drop() { ++drops_.in_flight; }

  /// Directed pairs holding FIFO clamp state (pairs that carried at least
  /// one surviving message) — the "active pairs" of the memory model.
  [[nodiscard]] std::size_t fifo_pairs() const {
    return last_delivery_.size();
  }

  /// Explicit override entries across the loss, duplication and cut
  /// tables.  An entry count, not a pair count: a pair carrying several
  /// kinds of override contributes once per kind, and a healed pair keeps
  /// its (zero-valued) cut entry.
  [[nodiscard]] std::size_t override_entries() const {
    return loss_.size() + duplicate_.size() + severed_.size();
  }

  /// Bytes of per-pair channel state currently held (slot arrays of the
  /// four sparse tables).  O(active pairs), not O(n²): an idle or sharded
  /// system pays only for the pairs that diverged from the defaults.
  [[nodiscard]] std::size_t state_bytes() const {
    return last_delivery_.memory_bytes() + severed_.memory_bytes() +
           loss_.memory_bytes() + duplicate_.memory_bytes();
  }

  /// Messages dropped so far (fault injection, loss, downtime), total and
  /// by cause.
  [[nodiscard]] std::uint64_t dropped_count() const { return drops_.total(); }
  [[nodiscard]] const DropCounters& drop_counters() const { return drops_; }

 private:
  /// Flat index of the directed pair (from, to).
  [[nodiscard]] std::size_t pair(ProcessId from, ProcessId to) const {
    return static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to);
  }
  void check_pair(ProcessId from, ProcessId to, const char* what) const;

  /// Recompute `has_faults_` after any fault-config mutation.  The flag is
  /// conservative: a healed cut or zero-valued override entry keeps it set
  /// (the slow path re-derives the truth), but a network nobody ever
  /// configured a fault on plans every delivery without touching the
  /// severed/down/rate tables.  Observably identical either way —
  /// Rng::chance(0.0) consumes no draw, so the fast path leaves the fault
  /// stream exactly where the slow path would.
  void refresh_fault_flag() {
    has_faults_ = override_ != nullptr || default_loss_ > 0.0 ||
                  default_duplicate_ > 0.0 || loss_.size() != 0 ||
                  duplicate_.size() != 0 || severed_.size() != 0 ||
                  down_count_ != 0;
  }

  std::size_t n_;
  ChannelOptions options_;
  std::unique_ptr<LatencyModel> latency_;
  /// Latency sampling stream: consumed exactly once per plan_delivery.
  Rng latency_rng_;
  /// Fault decision stream (loss/duplication draws, duplicate-copy
  /// latency): isolated so fault knobs never shift latency sampling.
  Rng fault_rng_;
  /// Last planned delivery time per directed pair (FIFO clamp state),
  /// allocated lazily on a pair's first surviving message: an idle pair
  /// costs nothing, so total channel state is O(active pairs), not O(n²).
  PairMap<TimePoint> last_delivery_;
  /// Cut count per directed pair (> 0 = severed); only pairs a partition
  /// ever touched have an entry.
  PairMap<std::uint32_t> severed_;
  /// Per-pair rate overrides over the ChannelOptions defaults.  The
  /// defaults answer for every absent pair; set_*_all rewrites the
  /// default and drops the overrides — observably identical to the dense
  /// tables these replaced (every pair seeded, set_*_all overwrote all).
  double default_loss_;
  double default_duplicate_;
  PairMap<double> loss_;
  PairMap<double> duplicate_;
  std::shared_ptr<const RateOverride> override_;
  std::vector<std::uint8_t> down_;
  std::size_t down_count_ = 0;  ///< processes currently down
  /// False only when no fault configuration exists at all; gates the
  /// per-message severed/down/loss/duplicate lookups in plan_delivery.
  bool has_faults_ = false;
  DropCounters drops_;
};

}  // namespace pardsm
