// The streaming-workload subsystem end to end: the log-linear latency
// histogram (exactness vs a sorted-vector reference, merge algebra, the
// zero-allocation gate), the lazy YCSB-style generator (purity, mix and
// skew shape, the packing/offset wrap guards), and the engine surface
// (WorkloadClient on all four runtimes, open-loop arrivals, censored
// accounting on dead channels, peak-RSS independence of the op count).

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <stdexcept>
#include <vector>

#include "history/history.h"
#include "mcs/engine.h"
#include "sharegraph/topologies.h"
#include "simnet/event_queue.h"
#include "simnet/latency_histogram.h"
#include "workload/generator.h"

// ---------------------------------------------------------------------------
// Global allocation counter (same discipline as test_hotpath_containers):
// counts every operator new while armed, for the capture-path gate.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// new is malloc-backed so the matching delete frees with std::free; GCC
// cannot see the pairing across the replaced global operators and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace pardsm {
namespace {

// ------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, BucketIndexRoundTripsAndIsMonotone) {
  const std::vector<std::uint64_t> probes = {
      0,   1,    31,   32,         33,         63,        64,
      95,  1000, 4096, 1ULL << 20, 1ULL << 40, 1ULL << 63,
      std::numeric_limits<std::uint64_t>::max()};
  std::uint32_t prev_index = 0;
  for (const std::uint64_t v : probes) {
    const std::uint32_t i = LatencyHistogram::bucket_index(v);
    ASSERT_LT(i, LatencyHistogram::kBucketCount) << v;
    EXPECT_GE(LatencyHistogram::bucket_upper_us(i), v) << v;
    EXPECT_GE(i, prev_index) << v;  // probes ascend, so must indices
    prev_index = i;
  }
  // Values below kSubBuckets are exact unit buckets.
  EXPECT_EQ(LatencyHistogram::bucket_upper_us(LatencyHistogram::bucket_index(7)),
            7u);
}

/// Quantiles read back from the histogram must match the exact order
/// statistic of a sorted-vector reference to within one histogram bucket
/// (relative error <= 1/32 of the value, and exact below 32 us).
TEST(LatencyHistogram, QuantilesMatchSortedVectorWithinOneBucket) {
  std::mt19937_64 rng(20260808);
  // Mix of regimes: sub-bucket exact values, mid-range, heavy tail.
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20'000; ++i) {
    std::uint64_t v = 0;
    switch (i % 4) {
      case 0: v = rng() % 32; break;                   // exact buckets
      case 1: v = rng() % 10'000; break;               // ~ms range
      case 2: v = rng() % 1'000'000; break;            // ~s range
      default: v = 1'000'000 + rng() % (1ULL << 40);   // tail
    }
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(h.samples(), values.size());
  EXPECT_EQ(h.max_us(), values.back());

  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    // Same rank convention as the histogram: 1-based ceil(q*n), min 1.
    const auto n = static_cast<double>(values.size());
    auto rank = static_cast<std::size_t>(q * n);
    if (static_cast<double>(rank) < q * n) ++rank;
    if (rank == 0) rank = 1;
    const std::uint64_t exact = values[rank - 1];

    const auto got = h.quantile(q);
    ASSERT_FALSE(got.censored) << q;
    EXPECT_GE(got.us, static_cast<double>(exact)) << q;
    const double one_bucket =
        static_cast<double>(exact) / 32.0 + 1.0;  // width <= value/32 (+1)
    EXPECT_LE(got.us, static_cast<double>(exact) + one_bucket) << q;
  }
  // The top quantile is clamped to the exact recorded max, not the edge.
  EXPECT_EQ(h.quantile(1.0).us, static_cast<double>(values.back()));
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(7);
  LatencyHistogram a, b, c;
  for (int i = 0; i < 1000; ++i) a.record(rng() % 100'000);
  for (int i = 0; i < 500; ++i) b.record(rng() % (1ULL << 33));
  for (int i = 0; i < 200; ++i) c.record(rng() % 32);
  b.add_censored(3);

  LatencyHistogram ab = a;
  ab.merge_from(b);
  LatencyHistogram ba = b;
  ba.merge_from(a);
  EXPECT_EQ(ab, ba);

  LatencyHistogram ab_c = ab;
  ab_c.merge_from(c);
  LatencyHistogram bc = b;
  bc.merge_from(c);
  LatencyHistogram a_bc = a;
  a_bc.merge_from(bc);
  EXPECT_EQ(ab_c, a_bc);

  EXPECT_EQ(ab_c.samples(), 1700u);
  EXPECT_EQ(ab_c.censored(), 3u);
  EXPECT_EQ(ab_c.total(), 1703u);
}

TEST(LatencyHistogram, CensoredMassSitsAboveEveryBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(100);
  h.add_censored(10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_FALSE(h.quantile(0.5).censored);
  EXPECT_FALSE(h.quantile(0.9).censored);  // rank 90 = last completed op
  EXPECT_TRUE(h.quantile(0.95).censored);
  EXPECT_TRUE(h.quantile(1.0).censored);
  EXPECT_TRUE(std::isinf(h.quantile(1.0).us));
}

/// The capture path — record, merge, quantile — must not allocate: it
/// sits on the per-op hot path of million-op runs and inside the parallel
/// engine's shards.
TEST(LatencyHistogram, CapturePathDoesNotAllocate) {
  LatencyHistogram a, b;
  // Touch everything once, outside the gate.
  a.record(1);
  b.record(1ULL << 40);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    a.record(i * 37 % (1ULL << 45));
  }
  b.merge_from(a);
  b.add_censored(5);
  const auto q50 = b.quantile(0.5);
  const auto q999 = b.quantile(0.999);
  g_count_allocs.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "latency capture path allocated on the hot path";
  EXPECT_FALSE(q50.censored);
  EXPECT_GE(q999.us, q50.us);
}

// ------------------------------------------------------------- Generator

graph::Distribution test_dist() {
  return graph::topo::random_replication(6, 24, 3, 42);
}

TEST(Generator, OpStreamIsPureInProcessAndIndex) {
  const auto dist = test_dist();
  workload::Spec spec;
  spec.ops_per_process = 1000;
  spec.keys = workload::KeyDist::kZipf;
  spec.seed = 99;
  const workload::Generator gen(dist, spec);

  // Forward sweep, then a scrambled re-query on a second generator built
  // from the same spec: every (p, k) must agree — op content is a pure
  // function of (seed, p, k), not of call order or generator instance.
  std::map<std::pair<ProcessId, std::uint64_t>, workload::OpSpec> first;
  for (ProcessId p = 0; p < 6; ++p) {
    for (std::uint64_t k = 0; k < 50; ++k) {
      first[{p, k}] = gen.op(p, k);
    }
  }
  const workload::Generator gen2(dist, spec);
  for (std::uint64_t k = 50; k-- > 0;) {
    for (ProcessId p = 6; p-- > 0;) {
      const auto again = gen2.op(p, k);
      const auto& want = first.at({p, k});
      EXPECT_EQ(again.is_read, want.is_read);
      EXPECT_EQ(again.var, want.var);
      EXPECT_EQ(again.value, want.value);
    }
  }
}

TEST(Generator, MixAndSkewShapeTheStream) {
  const auto dist = test_dist();
  workload::Spec spec;
  spec.ops_per_process = 20'000;
  spec.read_fraction = 0.9;
  spec.keys = workload::KeyDist::kZipf;
  spec.zipf_theta = 0.99;
  const workload::Generator gen(dist, spec);

  std::uint64_t reads = 0;
  std::map<VarId, std::uint64_t> hits;
  for (std::uint64_t k = 0; k < spec.ops_per_process; ++k) {
    const auto op = gen.op(0, k);
    reads += op.is_read ? 1 : 0;
    ++hits[op.var];
    // Keys stay inside the process's own replica set.
    const auto& mine = dist.per_process[0];
    EXPECT_TRUE(std::find(mine.begin(), mine.end(), op.var) != mine.end());
    if (!op.is_read) {
      EXPECT_EQ(op.value, workload::Generator::packed_value(0, k));
    }
  }
  const double read_frac =
      static_cast<double>(reads) / static_cast<double>(spec.ops_per_process);
  EXPECT_NEAR(read_frac, 0.9, 0.02);

  // Zipf θ=0.99: rank 0 (the process's first variable) is the hottest,
  // far above the uniform share.
  const VarId hottest = dist.per_process[0].front();
  const double hot_share = static_cast<double>(hits[hottest]) /
                           static_cast<double>(spec.ops_per_process);
  const double uniform_share = 1.0 / static_cast<double>(
                                         dist.per_process[0].size());
  EXPECT_GT(hot_share, 2.0 * uniform_share);
}

TEST(Generator, WriteValuesAreGloballyUnique) {
  // packed_value(p, k) = (k << 20 | p) + 1: distinct across p and k, and
  // never kBottom.
  EXPECT_NE(workload::Generator::packed_value(0, 0),
            workload::Generator::packed_value(1, 0));
  EXPECT_NE(workload::Generator::packed_value(0, 0),
            workload::Generator::packed_value(0, 1));
  EXPECT_NE(workload::Generator::packed_value(0, 0), kBottom);
}

// ------------------------------------------------- wrap / overflow guards

TEST(WrapGuards, EventPoolSlotWidth) {
  // The event pool indexes slots with uint32; the checked cast trips
  // loudly at 2^32 instead of silently aliasing slot 0.
  EXPECT_EQ(EventQueue::checked_slot(0u), 0u);
  EXPECT_EQ(EventQueue::checked_slot(0xFFFF'FFFFULL), 0xFFFF'FFFFu);
  EXPECT_THROW((void)EventQueue::checked_slot(0x1'0000'0000ULL),
               std::logic_error);
}

TEST(WrapGuards, HistoryOpIndexWidth) {
  // OpIndex is int32: the 2^31-1st push must fail loudly (and point at
  // discard mode), not wrap into a negative index.
  EXPECT_EQ(hist::History::checked_op_index(0u), 0);
  EXPECT_EQ(hist::History::checked_op_index(0x7FFF'FFFEULL), 0x7FFF'FFFE);
  EXPECT_THROW((void)hist::History::checked_op_index(0x7FFF'FFFFULL),
               std::logic_error);
}

TEST(WrapGuards, PackedValueBitBudget) {
  // k has 43 bits, p has 20: both boundaries throw instead of colliding.
  EXPECT_THROW((void)workload::Generator::packed_value(0, 1ULL << 43),
               std::logic_error);
  EXPECT_THROW((void)workload::Generator::packed_value(1 << 20, 0),
               std::logic_error);
  // The very top in-range packing is fine and stays a positive int64...
  const Value top = workload::Generator::packed_value((1 << 20) - 2,
                                                      (1ULL << 43) - 1);
  EXPECT_GT(top, 0);
  EXPECT_NE(top, kBottom);
  // ...but the single (p_max, k_max) corner would wrap the +1 past
  // INT64_MAX (and alias kBottom): it must throw, not overflow.
  EXPECT_THROW((void)workload::Generator::packed_value((1 << 20) - 1,
                                                       (1ULL << 43) - 1),
               std::logic_error);
}

TEST(WrapGuards, ArrivalOffsetIsMonotoneAndGuarded) {
  // Monotone (no precision cliff) around a > 2^32 op index...
  const std::uint64_t k = (1ULL << 33) + 12345;
  const auto a = workload::Generator::arrival_offset_us(1000.0, k);
  const auto b = workload::Generator::arrival_offset_us(1000.0, k + 1);
  const auto c = workload::Generator::arrival_offset_us(1000.0, k + 2);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // ...and loud when the offset would overflow the int64 us clock.
  EXPECT_THROW(
      (void)workload::Generator::arrival_offset_us(1.0, 10'000'000'000'000ULL),
      std::logic_error);
}

// ------------------------------------------------------- engine surface

mcs::ScenarioRunResult run_workload_on(mcs::EngineRuntime runtime,
                                       const graph::Distribution& dist,
                                       const workload::Spec& spec,
                                       mcs::ProtocolKind kind,
                                       bool record_history,
                                       unsigned threads = 2) {
  mcs::EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.workload = &spec;
  config.record_history = record_history;
  config.runtime = runtime;
  config.parallel.num_threads = threads;
  return mcs::run(std::move(config));
}

TEST(WorkloadEngine, RequiresExactlyOneLoad) {
  const auto dist = test_dist();
  mcs::EngineConfig config;
  config.distribution = &dist;
  EXPECT_THROW((void)mcs::run(std::move(config)), std::logic_error);

  workload::Spec spec;
  std::vector<mcs::Script> scripts(6);
  mcs::EngineConfig both;
  both.distribution = &dist;
  both.scripts = &scripts;
  both.workload = &spec;
  EXPECT_THROW((void)mcs::run(std::move(both)), std::logic_error);
}

TEST(WorkloadEngine, RunsOnAllFourRuntimes) {
  const auto dist = graph::topo::complete(4, 8);
  workload::Spec spec;
  spec.ops_per_process = 50;
  spec.read_fraction = 0.8;
  spec.seed = 5;
  const std::uint64_t target = spec.ops_per_process * 4;

  for (const auto runtime :
       {mcs::EngineRuntime::kSimulator, mcs::EngineRuntime::kParallelSim,
        mcs::EngineRuntime::kThreads, mcs::EngineRuntime::kSockets}) {
    const auto r = run_workload_on(runtime, dist, spec,
                                   mcs::ProtocolKind::kPramPartial,
                                   /*record_history=*/true);
    EXPECT_EQ(r.ops_issued, target);
    EXPECT_EQ(r.ops_completed, target);
    EXPECT_EQ(r.ops_censored, 0u);
    EXPECT_EQ(r.op_latency.samples(), target);
    EXPECT_EQ(r.op_latency.censored(), 0u);
    EXPECT_EQ(r.unfinished_clients, 0u);
    // record_history=true: the full History is there for the checkers.
    EXPECT_EQ(r.history.size(), target);
  }
}

TEST(WorkloadEngine, OpenLoopCompletesAndChargesQueueing) {
  const auto dist = test_dist();
  workload::Spec spec;
  spec.ops_per_process = 200;
  spec.seed = 3;

  // Closed loop first: atomic-home RPC latency is ~2 ms per op.
  const auto closed = run_workload_on(
      mcs::EngineRuntime::kSimulator, dist, spec,
      mcs::ProtocolKind::kAtomicHome, /*record_history=*/false);
  EXPECT_EQ(closed.ops_completed, spec.ops_per_process * 6);

  // Open loop far over capacity (2000/s vs ~500/s service): every op
  // still completes, but waiting in the arrival backlog is charged to
  // the ops — the tail must stretch far past the closed-loop service
  // latency instead of being omitted.
  spec.arrival_rate = 2000.0;
  const auto open = run_workload_on(
      mcs::EngineRuntime::kSimulator, dist, spec,
      mcs::ProtocolKind::kAtomicHome, /*record_history=*/false);
  EXPECT_EQ(open.ops_completed, spec.ops_per_process * 6);
  EXPECT_EQ(open.ops_censored, 0u);

  const auto p50 = open.op_latency.quantile(0.5);
  const auto p99 = open.op_latency.quantile(0.99);
  const auto p999 = open.op_latency.quantile(0.999);
  ASSERT_FALSE(p999.censored);
  EXPECT_LE(p50.us, p99.us);
  EXPECT_LE(p99.us, p999.us);
  const auto closed_p99 = closed.op_latency.quantile(0.99);
  EXPECT_GT(p99.us, 4.0 * closed_p99.us)
      << "open-loop overload must surface queueing delay";

  // Open loop needs virtual time: the wall-clock runtimes reject it.
  EXPECT_THROW((void)run_workload_on(mcs::EngineRuntime::kThreads, dist, spec,
                                     mcs::ProtocolKind::kAtomicHome, false),
               std::logic_error);
}

/// The parallel root must produce the identical workload result at any
/// worker count — histograms merged over shards included.  (PR 6 pins
/// parallel-vs-parallel determinism; this extends it to the workload
/// path's per-shard latency capture.)
TEST(WorkloadEngine, ParallelResultIndependentOfThreadCount) {
  const auto dist = test_dist();
  workload::Spec spec;
  spec.ops_per_process = 300;
  spec.keys = workload::KeyDist::kZipf;
  spec.seed = 17;

  const auto r1 = run_workload_on(mcs::EngineRuntime::kParallelSim, dist, spec,
                                  mcs::ProtocolKind::kPramPartial, true, 1);
  const auto r2 = run_workload_on(mcs::EngineRuntime::kParallelSim, dist, spec,
                                  mcs::ProtocolKind::kPramPartial, true, 2);
  const auto r4 = run_workload_on(mcs::EngineRuntime::kParallelSim, dist, spec,
                                  mcs::ProtocolKind::kPramPartial, true, 4);

  EXPECT_EQ(r1.ops_completed, r2.ops_completed);
  EXPECT_EQ(r2.ops_completed, r4.ops_completed);
  EXPECT_EQ(r1.op_latency, r2.op_latency);
  EXPECT_EQ(r2.op_latency, r4.op_latency);
  EXPECT_EQ(r1.final_replicas, r2.final_replicas);
  EXPECT_EQ(r2.final_replicas, r4.final_replicas);
}

/// Dead channels censor ops: they vanish from neither the count nor the
/// percentile ledger, and never masquerade as ~0-latency completions.
TEST(WorkloadEngine, DeadChannelsCensorInsteadOfDropping) {
  const auto dist = graph::topo::complete(3, 2);
  workload::Spec spec;
  spec.ops_per_process = 4;
  spec.read_fraction = 0.0;  // all writes: every op is an RPC for the home
  spec.seed = 9;

  mcs::EngineConfig config;
  config.protocol = mcs::ProtocolKind::kAtomicHome;
  config.distribution = &dist;
  config.workload = &spec;
  config.record_history = false;
  config.channel.drop_probability = 1.0;  // total black hole (ARQ engages)
  config.reliable.retransmit_after = millis(5);
  config.reliable.max_retransmits = 2;
  const auto r = mcs::run(std::move(config));

  EXPECT_TRUE(r.used_reliable_transport);
  EXPECT_FALSE(r.dead_channels.empty());
  EXPECT_GT(r.unfinished_clients, 0u);

  const std::uint64_t target = spec.ops_per_process * 3;
  EXPECT_GT(r.ops_censored, 0u);
  EXPECT_EQ(r.ops_completed + r.ops_censored, target);
  EXPECT_EQ(r.op_latency.samples(), r.ops_completed);
  EXPECT_EQ(r.op_latency.censored(), r.ops_censored);
  EXPECT_EQ(r.op_latency.total(), target);
  // The max quantile falls into the censored mass: "at least longer than
  // the run", not a number.
  EXPECT_TRUE(r.op_latency.quantile(1.0).censored);
}

std::uint64_t rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss > 0 ? static_cast<std::uint64_t>(usage.ru_maxrss) : 0;
}

/// Streaming + recorder discard mode: peak RSS must be independent of the
/// op count.  A 6x bigger run may not move the high-water mark by more
/// than a small fixed margin (a materialized Script or recorded History
/// would add tens of MB).
TEST(WorkloadEngine, PeakRssIndependentOfOpCount) {
  // Under TSan ru_maxrss measures the sanitizer's shadow and history
  // allocations, which grow with events executed regardless of product
  // memory — the assertion is meaningful only uninstrumented (it also
  // runs, and passes, under ASan's lighter shadow).
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "peak-RSS high-water is dominated by TSan shadow state";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "peak-RSS high-water is dominated by TSan shadow state";
#endif
#endif
  const auto dist = test_dist();
  workload::Spec spec;
  spec.ops_per_process = 10'000;
  spec.seed = 21;

  // Warm-up run: allocator pools, event queue, protocol state all reach
  // their steady-state footprint here.
  auto small = run_workload_on(mcs::EngineRuntime::kSimulator, dist, spec,
                               mcs::ProtocolKind::kPramPartial,
                               /*record_history=*/false);
  EXPECT_EQ(small.ops_completed, spec.ops_per_process * 6);
  EXPECT_EQ(small.history.size(), 0u);  // discard mode: nothing stored
  const std::uint64_t high_water_small = rss_kb();

  spec.ops_per_process = 60'000;
  auto big = run_workload_on(mcs::EngineRuntime::kSimulator, dist, spec,
                             mcs::ProtocolKind::kPramPartial,
                             /*record_history=*/false);
  EXPECT_EQ(big.ops_completed, spec.ops_per_process * 6);
  const std::uint64_t high_water_big = rss_kb();

  ASSERT_GT(high_water_small, 0u);
  EXPECT_LE(high_water_big, high_water_small + 24 * 1024)
      << "6x the ops moved peak RSS by more than 24 MB — something "
         "materializes per-op state";
}

}  // namespace
}  // namespace pardsm
