// Stress points of the parallel engine where the barrier machinery is
// most likely to crack:
//
//   * Timers landing *exactly* on quantum boundaries — an event at
//     window_end belongs to the next window, never the current one; a
//     zero-delay timer armed inside a handler fires in the same window
//     after its parent.  Both orderings must be identical at every
//     thread count.
//   * Crash/recover scenario events hitting processes on *different
//     shards* — stop-the-world globals must pause and resume clients
//     with the PR 3 semantics (scripts keep their place, recovery
//     re-syncs replicas) regardless of which worker owns the victim.
//   * Coexistence with the std::thread runtime and with other parallel
//     runs in flight — the engines share nothing but a thread_local
//     shard-context key, and a run's results must not change because
//     another runtime is executing concurrently in the same address
//     space.

#include <gtest/gtest.h>

#include <thread>

#include "mcs/driver.h"
#include "sharegraph/sharding.h"
#include "sharegraph/topologies.h"
#include "simnet/parallel_sim.h"

namespace pardsm::mcs {
namespace {

// ---------------------------------------------------------------------------
// Quantum-boundary timers on a raw ParallelSimulator.

struct TimerFire {
  std::int64_t at_us = 0;
  TimerTag tag = 0;

  friend bool operator==(const TimerFire&, const TimerFire&) = default;
};

/// Chains a timer with delay == quantum (so every fire lands exactly on a
/// window boundary) and arms a zero-delay echo inside each handler (so
/// every window also contains a same-instant insertion).
class BoundaryChain final : public Endpoint {
 public:
  explicit BoundaryChain(ParallelSimulator& sim) : sim_(sim) {}

  void arm_first() { sim_.set_timer(id_, sim_.quantum(), kChain); }

  void on_message(const Message&) override {}
  void on_timer(TimerTag tag) override {
    trace_.push_back({sim_.now().us, tag});
    if (tag == kChain && ++fires_ < kChainLength) {
      sim_.set_timer(id_, sim_.quantum(), kChain);
    }
    if (tag == kChain) {
      sim_.set_timer(id_, Duration{}, kEcho);
    }
  }

  ProcessId id_ = kNoProcess;
  std::vector<TimerFire> trace_;

  static constexpr TimerTag kChain = 7;
  static constexpr TimerTag kEcho = 8;
  static constexpr int kChainLength = 5;

 private:
  ParallelSimulator& sim_;
  int fires_ = 0;
};

std::vector<std::vector<TimerFire>> run_boundary_chains(unsigned threads) {
  ParallelSimOptions options;
  options.seed = 3;
  options.num_threads = threads;  // default 1ms constant latency → Q = 1ms
  ParallelSimulator sim(std::move(options));

  constexpr int kProcs = 4;
  std::vector<std::unique_ptr<BoundaryChain>> chains;
  for (int p = 0; p < kProcs; ++p) {
    chains.push_back(std::make_unique<BoundaryChain>(sim));
    chains.back()->id_ = sim.add_endpoint(chains.back().get());
  }
  sim.freeze();
  EXPECT_EQ(sim.quantum(), millis(1));
  for (auto& c : chains) {
    sim.schedule_at(kTimeZero, c->id_, [&chain = *c] { chain.arm_first(); });
  }
  sim.run();

  std::vector<std::vector<TimerFire>> traces;
  for (auto& c : chains) traces.push_back(std::move(c->trace_));
  return traces;
}

TEST(QuantumBoundary, TimersFireExactlyOnWindowEdges) {
  const auto traces = run_boundary_chains(2);

  // Every process: chain fire at exactly k·Q for k = 1..5, each followed
  // by its same-instant echo — the canonical order (arm order within the
  // process) is the only admissible interleaving.
  std::vector<TimerFire> expected;
  for (int k = 1; k <= BoundaryChain::kChainLength; ++k) {
    expected.push_back({k * 1000, BoundaryChain::kChain});
    expected.push_back({k * 1000, BoundaryChain::kEcho});
  }
  for (const auto& trace : traces) {
    EXPECT_EQ(trace, expected);
  }
}

TEST(QuantumBoundary, TracesIdenticalAtEveryThreadCount) {
  const auto baseline = run_boundary_chains(1);
  for (unsigned threads : {2u, 3u, 4u}) {
    EXPECT_EQ(run_boundary_chains(threads), baseline)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Crash/recover on different shards.

TEST(CrossShardFaults, CrashAndRecoverOnDistinctShards) {
  const auto dist = graph::topo::clusters(2, 3, true);  // two 3-cells

  // The share-graph assignment must put the two victims on different
  // shards, or this test is not testing what its name says.
  const auto shard = graph::shard_assignment(dist, 2);
  ASSERT_NE(shard[1], shard[4]);

  WorkloadSpec spec;
  spec.ops_per_process = 5;
  spec.read_fraction = 0.4;
  spec.seed = 17;
  spec.think_time = millis(1);
  const auto scripts = make_single_writer_scripts(dist, spec);

  Scenario scenario("cross-shard-crashes");
  scenario.crash(1, after(millis(3)), after(millis(9)));
  scenario.crash(4, after(millis(4)), after(millis(10)));

  // Lossless sequential run = the P6 ground truth for final replicas.
  const RunResult truth = run_workload(
      ProtocolKind::kCausalPartialAdHoc, dist, scripts, [] {
        RunOptions o;
        o.sim_seed = 5;
        return o;
      }());

  std::optional<std::string> first_history;
  for (unsigned threads : {1u, 2u, 4u}) {
    SCOPED_TRACE(threads);
    RunOptions options;
    options.sim_seed = 5;
    const ScenarioRunResult r =
        run_scenario_parallel(ProtocolKind::kCausalPartialAdHoc, dist,
                              scripts, scenario, threads, std::move(options));

    // PR 3 pause/resume semantics: both victims crashed, both recovered
    // and re-synced, every script ran to completion (the engine throws on
    // a stalled client), and the history still resolves every read.
    EXPECT_EQ(r.crashes, 2u);
    EXPECT_GT(r.resync_messages, 0u);
    EXPECT_TRUE(r.history.read_from_resolvable());
    EXPECT_EQ(r.final_replicas, truth.final_replicas)
        << "crash/recovery failed to converge back to the lossless state";

    if (!first_history) {
      first_history = r.history.to_string();
    } else {
      EXPECT_EQ(r.history.to_string(), *first_history);
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime coexistence.

RunOptions stress_options() {
  RunOptions o;
  o.sim_seed = 23;
  o.latency = std::make_unique<UniformLatency>(millis(1), millis(3));
  return o;
}

TEST(RuntimeCoexistence, ParallelRunUnchangedBesideThreadRuntime) {
  const auto dist = graph::topo::clusters(2, 3, true);
  WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.seed = 31;
  spec.think_time = millis(1);
  const auto scripts = make_random_scripts(dist, spec);

  const RunResult solo = run_workload_parallel(
      ProtocolKind::kPramPartial, dist, scripts, 2, stress_options());

  RunResult threaded;
  std::thread other([&] {
    threaded =
        run_workload_threaded(ProtocolKind::kPramPartial, dist, scripts);
  });
  const RunResult beside = run_workload_parallel(
      ProtocolKind::kPramPartial, dist, scripts, 2, stress_options());
  other.join();

  EXPECT_EQ(beside.history.to_string(), solo.history.to_string());
  EXPECT_EQ(beside.finished_at, solo.finished_at);
  EXPECT_EQ(beside.events, solo.events);
  EXPECT_TRUE(threaded.history.read_from_resolvable());
}

TEST(RuntimeCoexistence, TwoParallelRunsSideBySide) {
  const auto dist = graph::topo::sharded(3, 3, 6);
  WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.seed = 37;
  spec.think_time = millis(1);
  const auto scripts = make_random_scripts(dist, spec);

  const RunResult solo_a = run_workload_parallel(
      ProtocolKind::kAtomicHome, dist, scripts, 2, stress_options());
  const RunResult solo_b = run_workload_parallel(
      ProtocolKind::kProcessorPartial, dist, scripts, 4, stress_options());

  RunResult beside_b;
  std::thread other([&] {
    beside_b = run_workload_parallel(ProtocolKind::kProcessorPartial, dist,
                                     scripts, 4, stress_options());
  });
  const RunResult beside_a = run_workload_parallel(
      ProtocolKind::kAtomicHome, dist, scripts, 2, stress_options());
  other.join();

  // Two coordinator threads, six worker threads, one address space: each
  // run must still be a pure function of its own (config, seed).
  EXPECT_EQ(beside_a.history.to_string(), solo_a.history.to_string());
  EXPECT_EQ(beside_b.history.to_string(), solo_b.history.to_string());
  EXPECT_EQ(beside_a.finished_at, solo_a.finished_at);
  EXPECT_EQ(beside_b.finished_at, solo_b.finished_at);
}

}  // namespace
}  // namespace pardsm::mcs
