#include "rules.h"

#include <algorithm>
#include <array>
#include <set>

namespace pardsm::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index of the token matching the opener at `open` ("{"/"}", "("/")").
/// Returns tokens.size() when unbalanced (malformed input never loops).
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          const char* opener, const char* closer) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], opener)) ++depth;
    else if (is_punct(toks[i], closer) && --depth == 0) return i;
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// R1: determinism — wall-clock / environment / libc-rand outside the
// wall-clock roots.  The simulation must be a pure function of
// (config, seed) at any thread count (docs/PARALLEL.md); only the real-time
// transport roots and the process bootstrap may read the host environment.
// ---------------------------------------------------------------------------

// layer/stem pairs allowed to touch wall clocks and the environment.
constexpr std::array<const char*, 4> kWallClockRoots = {
    "simnet/thread_runtime",
    "simnet/socket_transport",
    "apps/pardsm_node",
    "mcs/engine",
};

// Identifiers that are nondeterministic wherever they appear.
constexpr std::array<const char*, 10> kForbiddenIdents = {
    "rand",          "srand",          "random_device",
    "system_clock",  "steady_clock",   "high_resolution_clock",
    "getenv",        "gettimeofday",   "clock_gettime",
    "timespec_get",
};

// Identifiers forbidden only as direct calls (`time(...)`), so members and
// fields named `time`/`clock` stay legal.
constexpr std::array<const char*, 2> kForbiddenCalls = {"time", "clock"};

/// True when `name(` at token i reads as a call rather than a function
/// declaration or member access: declarations have a type / `&` / `*`
/// directly before the name, member calls have `.` or `->`.
bool looks_like_call(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind != TokKind::kPunct) {
    // `return time(...)` / `co_return` are calls; `clock_t time(...)`,
    // `auto clock()` are declarations.
    return prev.text == "return" || prev.text == "co_return";
  }
  static const char* kCallPrefixes[] = {"::", "(", ",", ";", "{", "}", "=",
                                        "+",  "-", "!", "<", ">", "?", ":"};
  for (const char* p : kCallPrefixes) {
    if (prev.text == p) {
      // `x->time(` lexes '-' '>' — member access, not a call of ::time.
      if (prev.text == ">" && i >= 2 && is_punct(toks[i - 2], "-")) {
        return false;
      }
      return true;
    }
  }
  return false;
}

void rule_determinism(const FileScan& fs, std::vector<Diagnostic>& out) {
  const std::string key = fs.layer + "/" + fs.stem;
  for (const char* root : kWallClockRoots) {
    if (key == root) return;
  }
  const auto& toks = fs.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    bool hit = false;
    for (const char* name : kForbiddenIdents) {
      if (t.text == name) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      for (const char* name : kForbiddenCalls) {
        if (t.text == name && i + 1 < toks.size() &&
            is_punct(toks[i + 1], "(") && looks_like_call(toks, i)) {
          hit = true;
          break;
        }
      }
    }
    if (!hit) continue;
    out.push_back({fs.path, t.line, kRuleDeterminism,
                   "'" + t.text +
                       "' breaks (config, seed) determinism; use the "
                       "simulated clock / Rng, or move the call into a "
                       "wall-clock root (thread_runtime, socket_transport, "
                       "pardsm_node, mcs/engine)"});
  }
}

// ---------------------------------------------------------------------------
// R2: rng-streams — <random> engines and distributions in simnet/mcs.
// Channel randomness must flow through simnet/rng.h (Rng, counter_rng):
// std:: distributions are not cross-platform deterministic and draw-order
// streams break the parallel engine's counter-based keying.
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 27> kStdRandom = {
    "mt19937",
    "mt19937_64",
    "minstd_rand",
    "minstd_rand0",
    "default_random_engine",
    "knuth_b",
    "ranlux24",
    "ranlux48",
    "ranlux24_base",
    "ranlux48_base",
    "seed_seq",
    "uniform_int_distribution",
    "uniform_real_distribution",
    "normal_distribution",
    "lognormal_distribution",
    "bernoulli_distribution",
    "exponential_distribution",
    "poisson_distribution",
    "geometric_distribution",
    "binomial_distribution",
    "negative_binomial_distribution",
    "discrete_distribution",
    "piecewise_constant_distribution",
    "piecewise_linear_distribution",
    "cauchy_distribution",
    "gamma_distribution",
    "weibull_distribution",
};

void rule_rng_streams(const FileScan& fs, std::vector<Diagnostic>& out) {
  if (fs.layer != "simnet" && fs.layer != "mcs") return;
  if (fs.stem == "rng") return;  // the one place allowed to define streams
  for (const Include& inc : fs.lx.includes) {
    if (inc.angled && inc.target == "random") {
      out.push_back({fs.path, inc.line, kRuleRngStreams,
                     "#include <random> in " + fs.layer +
                         ": draw randomness from simnet/rng.h (Rng, "
                         "counter_rng) so streams stay deterministic and "
                         "coordinate-keyed"});
    }
  }
  for (const Token& t : fs.lx.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    for (const char* name : kStdRandom) {
      if (t.text == name) {
        out.push_back({fs.path, t.line, kRuleRngStreams,
                       "'" + t.text +
                           "' bypasses the counter-based streams; use Rng / "
                           "counter_rng from simnet/rng.h"});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R3: pooled-reset — BodyPool keeps types with reset() constructed across
// recycles, so any member reset() does not clear carries the previous
// message's state into the next one (docs/HOTPATH.md, the
// unconditional-overwrite hazard).  Every member must either be cleared in
// reset() or carry an explicit `// pardsm-lint: overwritten-by-creator`
// annotation recording that every creation site overwrites it.
// ---------------------------------------------------------------------------

struct Member {
  std::string name;
  int line = 0;
};

struct PooledClass {
  std::string name;
  int first_line = 0;
  int last_line = 0;
  bool has_reset = false;
  std::set<std::string> reset_mentions;  ///< identifiers in reset()'s body
  std::vector<Member> members;
};

/// Scan one class body (tokens between body_open and its match) for data
/// members and the in-class reset() definition.
void scan_class_body(const std::vector<Token>& toks, std::size_t body_open,
                     std::size_t body_close, PooledClass& cls) {
  std::size_t j = body_open + 1;
  while (j < body_close) {
    const Token& t = toks[j];
    // Access specifiers.
    if ((is_ident(t, "public") || is_ident(t, "private") ||
         is_ident(t, "protected")) &&
        j + 1 < body_close && is_punct(toks[j + 1], ":")) {
      j += 2;
      continue;
    }
    // Nested types: skip their whole body (members belong to them).
    if (is_ident(t, "struct") || is_ident(t, "class") ||
        is_ident(t, "union") || is_ident(t, "enum")) {
      std::size_t k = j + 1;
      while (k < body_close && !is_punct(toks[k], "{") &&
             !is_punct(toks[k], ";")) {
        ++k;
      }
      if (k < body_close && is_punct(toks[k], "{")) {
        k = match_forward(toks, k, "{", "}");
      }
      while (k < body_close && !is_punct(toks[k], ";")) ++k;
      j = k + 1;
      continue;
    }
    // Declarations that are never data members.
    if (is_ident(t, "using") || is_ident(t, "typedef") ||
        is_ident(t, "friend") || is_ident(t, "static_assert")) {
      while (j < body_close && !is_punct(toks[j], ";")) ++j;
      ++j;
      continue;
    }
    if (is_punct(t, ";")) {
      ++j;
      continue;
    }

    // Generic declaration: scan ahead for the first structural stop.
    // Track the last depth-0 identifier (the declarator name) on the way.
    std::size_t k = j;
    std::string last_ident;
    int angle = 0, bracket = 0;
    std::size_t stop = body_close;
    char stop_kind = 0;
    while (k < body_close) {
      const Token& u = toks[k];
      if (u.kind == TokKind::kPunct) {
        const std::string& p = u.text;
        if (p == "<") ++angle;
        else if (p == ">" && angle > 0) --angle;
        else if (p == "[") ++bracket;
        else if (p == "]" && bracket > 0) --bracket;
        else if (angle == 0 && bracket == 0 &&
                 (p == "(" || p == "=" || p == "{" || p == ";")) {
          // alignas/decltype/noexcept parenthesized specifiers are part of
          // the declaration head, not a function signature.
          if (p == "(" && !last_ident.empty() &&
              (last_ident == "alignas" || last_ident == "decltype" ||
               last_ident == "noexcept")) {
            k = match_forward(toks, k, "(", ")") + 1;
            continue;
          }
          stop = k;
          stop_kind = p[0];
          break;
        }
      } else if (u.kind == TokKind::kIdent && angle == 0 && bracket == 0) {
        last_ident = u.text;
      }
      ++k;
    }
    if (stop >= body_close) break;

    if (stop_kind == '(') {
      // Member function (or constructor).  Skip the parameter list, then
      // everything up to the body or terminating ';'.
      const std::string fn = last_ident;
      std::size_t close = match_forward(toks, stop, "(", ")");
      std::size_t m = close + 1;
      while (m < body_close && !is_punct(toks[m], "{") &&
             !is_punct(toks[m], ";")) {
        if (is_punct(toks[m], "(")) {
          m = match_forward(toks, m, "(", ")");
        }
        ++m;
      }
      if (m < body_close && is_punct(toks[m], "{")) {
        const std::size_t end = match_forward(toks, m, "{", "}");
        if (fn == "reset") {
          cls.has_reset = true;
          for (std::size_t b = m + 1; b < end && b < body_close; ++b) {
            if (toks[b].kind == TokKind::kIdent) {
              cls.reset_mentions.insert(toks[b].text);
            }
          }
        }
        j = end + 1;
      } else {
        if (fn == "reset") cls.has_reset = true;  // out-of-line definition
        j = m + 1;
      }
      continue;
    }

    // Data member.  Record it, then consume through the initializer to ';'.
    if (!last_ident.empty()) {
      cls.members.push_back({last_ident, toks[stop].line});
    }
    std::size_t m = stop;
    while (m < body_close && !is_punct(toks[m], ";")) {
      if (is_punct(toks[m], "{")) m = match_forward(toks, m, "{", "}");
      else if (is_punct(toks[m], "(")) m = match_forward(toks, m, "(", ")");
      ++m;
    }
    j = m + 1;
  }
}

void rule_pooled_reset(const FileScan& fs, std::vector<Diagnostic>& out) {
  const auto& toks = fs.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "struct") && !is_ident(toks[i], "class")) continue;
    // Head: up to '{' (definition) or ';' (forward declaration).
    std::size_t head_end = i + 1;
    bool derives_body = false;
    bool saw_colon = false;
    std::string cls_name;
    while (head_end < toks.size() && !is_punct(toks[head_end], "{") &&
           !is_punct(toks[head_end], ";")) {
      const Token& u = toks[head_end];
      if (u.kind == TokKind::kIdent && cls_name.empty()) cls_name = u.text;
      if (is_punct(u, ":")) saw_colon = true;
      if (saw_colon && is_ident(u, "MessageBody")) derives_body = true;
      ++head_end;
    }
    if (head_end >= toks.size() || !is_punct(toks[head_end], "{") ||
        !derives_body) {
      continue;
    }
    const std::size_t body_close = match_forward(toks, head_end, "{", "}");
    PooledClass cls;
    cls.name = cls_name;
    cls.first_line = toks[i].line;
    cls.last_line =
        body_close < toks.size() ? toks[body_close].line : toks.back().line;
    scan_class_body(toks, head_end, body_close, cls);
    i = body_close;

    // Only types with reset() stay constructed across recycles; the rest
    // are destroyed and placement-new'ed, so they cannot carry stale state.
    if (!cls.has_reset) continue;

    for (const Member& m : cls.members) {
      if (cls.reset_mentions.count(m.name) > 0) continue;
      bool annotated = false;
      for (const FileScan::OverwriteAnno& a : fs.overwrites) {
        if (a.target_line < cls.first_line || a.target_line > cls.last_line) {
          continue;
        }
        if (a.names.empty() ? a.target_line == m.line
                            : std::find(a.names.begin(), a.names.end(),
                                        m.name) != a.names.end()) {
          annotated = true;
          break;
        }
      }
      if (annotated) continue;
      out.push_back(
          {fs.path, m.line, kRulePooledReset,
           "member '" + m.name + "' of pooled body '" + cls.name +
               "' is neither cleared in reset() nor annotated "
               "'// pardsm-lint: overwritten-by-creator' — a recycled slot "
               "would leak the previous message's state (docs/HOTPATH.md)"});
    }
  }
}

// ---------------------------------------------------------------------------
// R4: unordered-iter — hash-ordered containers where traversal order can
// reach messages or serialized output.  Two checks: (a) a range-for over an
// unordered container anywhere, (b) an unordered container declared in an
// order-sensitive layer (simnet, mcs, history, workload) — those must
// either move to an ordered/insertion-order container or carry an
// allow(unordered-iter) annotation justifying why they are never iterated.
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

bool is_unordered_type(const Token& t) {
  if (t.kind != TokKind::kIdent) return false;
  for (const char* name : kUnorderedTypes) {
    if (t.text == name) return true;
  }
  return false;
}

void rule_unordered_iter(const FileScan& fs, std::vector<Diagnostic>& out) {
  const auto& toks = fs.lx.tokens;
  const bool order_sensitive = fs.layer == "simnet" || fs.layer == "mcs" ||
                               fs.layer == "history" ||
                               fs.layer == "workload";

  // Pass 1: unordered declarations — remember variable names, flag the
  // declaration itself in order-sensitive layers.
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_unordered_type(toks[i])) continue;
    const int decl_line = toks[i].line;
    const std::string type_name = toks[i].text;
    std::string var_name;
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "<")) {
      int angle = 0;
      std::size_t k = i + 1;
      for (; k < toks.size(); ++k) {
        if (is_punct(toks[k], "<")) ++angle;
        else if (is_punct(toks[k], ">") && --angle == 0) break;
      }
      if (k + 1 < toks.size() && toks[k + 1].kind == TokKind::kIdent) {
        var_name = toks[k + 1].text;
        unordered_vars.insert(var_name);
      }
      i = k;
    }
    if (order_sensitive) {
      out.push_back(
          {fs.path, decl_line, kRuleUnorderedIter,
           "std::" + type_name +
               (var_name.empty() ? std::string()
                                 : " '" + var_name + "'") +
               " in order-sensitive code (" + fs.layer +
               "): hash order can leak into message or serialized order — "
               "use a sorted/insertion-order container, or annotate "
               "allow(unordered-iter) with why it is never iterated"});
    }
  }

  // Pass 2: range-for statements whose range names an unordered container.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    if (close >= toks.size()) continue;
    // The range-for ':' sits at depth 0 relative to the for-parens.
    std::size_t colon = toks.size();
    int depth = 0;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (toks[k].kind != TokKind::kPunct) continue;
      const std::string& p = toks[k].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (p == ":" && depth == 0) {
        colon = k;
        break;
      }
    }
    if (colon >= close) continue;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (unordered_vars.count(toks[k].text) == 0 &&
          !is_unordered_type(toks[k])) {
        continue;
      }
      out.push_back(
          {fs.path, toks[i].line, kRuleUnorderedIter,
           "range-for over hash-ordered container '" + toks[k].text +
               "': traversal order depends on the hash seed/layout and is "
               "not a deterministic function of (config, seed)"});
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// R5: layer-dag — include edges must respect the layer order observed in
// the real include graph:
//   simnet <- history <- sharegraph <- workload <- mcs <- core <- apps
// (simnet is the foundation: check/rng/ids/transport; core hosts the
// paper-level analysis above the protocol layer).  A file may include its
// own layer and anything below it.
// ---------------------------------------------------------------------------

constexpr std::array<const char*, 7> kLayerOrder = {
    "simnet", "history", "sharegraph", "workload", "mcs", "core", "apps"};

void rule_layer_dag(const FileScan& fs, std::vector<Diagnostic>& out) {
  const int own = layer_rank(fs.layer);
  if (own < 0) return;  // not inside a ranked layer (tools, tests, fixtures)
  for (const Include& inc : fs.lx.includes) {
    if (inc.angled) continue;
    const std::size_t slash = inc.target.find('/');
    if (slash == std::string::npos) continue;
    const int dep = layer_rank(inc.target.substr(0, slash));
    if (dep < 0 || dep <= own) continue;
    out.push_back(
        {fs.path, inc.line, kRuleLayerDag,
         "layer '" + fs.layer + "' may not include '" + inc.target +
             "': the layer DAG is simnet <- history <- sharegraph <- "
             "workload <- mcs <- core <- apps (lower layers never depend "
             "on higher ones)"});
  }
}

}  // namespace

int layer_rank(const std::string& layer) {
  for (std::size_t i = 0; i < kLayerOrder.size(); ++i) {
    if (layer == kLayerOrder[i]) return static_cast<int>(i);
  }
  return -1;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      kRuleDeterminism, kRuleRngStreams, kRulePooledReset, kRuleUnorderedIter,
      kRuleLayerDag};
  return names;
}

void run_all_rules(const FileScan& fs, std::vector<Diagnostic>& out) {
  rule_determinism(fs, out);
  rule_rng_streams(fs, out);
  rule_pooled_reset(fs, out);
  rule_unordered_iter(fs, out);
  rule_layer_dag(fs, out);
}

}  // namespace pardsm::lint
