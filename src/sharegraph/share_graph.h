// The share graph SG (Section 3.1 of the paper).
//
// Vertices are processes; an edge (i, j) exists iff some variable is
// replicated on both p_i and p_j; the edge label is X_i ∩ X_j.  Each
// variable x spans a clique C(x) (the processes replicating x), and
// SG = ∪_x C(x).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/ids.h"

namespace pardsm::graph {

/// A variable distribution: per_process[i] = X_i.
struct Distribution {
  std::string name;
  std::size_t var_count = 0;
  std::vector<std::vector<VarId>> per_process;

  [[nodiscard]] std::size_t process_count() const {
    return per_process.size();
  }

  /// True if process p replicates variable x.
  [[nodiscard]] bool holds(ProcessId p, VarId x) const;

  /// C(x) as a sorted list of processes.
  [[nodiscard]] std::vector<ProcessId> replicas_of(VarId x) const;

  /// Average replication degree (|C(x)| averaged over variables).
  [[nodiscard]] double average_replication() const;
};

/// The share graph of a distribution.
class ShareGraph {
 public:
  explicit ShareGraph(Distribution dist);

  [[nodiscard]] const Distribution& distribution() const { return dist_; }
  [[nodiscard]] std::size_t process_count() const {
    return dist_.process_count();
  }
  [[nodiscard]] std::size_t var_count() const { return dist_.var_count; }

  /// True if (i, j) is an edge of SG (some shared variable).
  [[nodiscard]] bool has_edge(ProcessId i, ProcessId j) const;

  /// Edge label: variables shared by p_i and p_j (empty if no edge).
  [[nodiscard]] std::vector<VarId> label(ProcessId i, ProcessId j) const;

  /// Neighbours of p_i in SG (sorted).
  [[nodiscard]] const std::vector<ProcessId>& neighbours(ProcessId i) const;

  /// Per-edge label summary, parallel to neighbours(i): the shared-variable
  /// count capped at 2, plus the single shared variable when the count is
  /// exactly 1.  Hoop analysis asks "does (i, j) share some variable ≠ x"
  /// per (edge, x) pair; the summary answers in O(1) where label() would
  /// build a vector.
  struct EdgeSummary {
    std::uint8_t shared_count = 0;  ///< 0, 1, or 2 (meaning "≥ 2")
    VarId only_shared = kNoVar;     ///< valid iff shared_count == 1
  };
  [[nodiscard]] const std::vector<EdgeSummary>& edge_summaries(
      ProcessId i) const;

  /// The clique C(x): processes replicating x (sorted).
  [[nodiscard]] const std::vector<ProcessId>& clique(VarId x) const;

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const;

  /// Connected components of SG (each sorted; components sorted by min).
  [[nodiscard]] std::vector<std::vector<ProcessId>> components() const;

  /// GraphViz "dot" rendering with variable labels on edges.
  [[nodiscard]] std::string to_dot() const;

 private:
  Distribution dist_;
  std::vector<std::vector<ProcessId>> adjacency_;
  std::vector<std::vector<EdgeSummary>> summaries_;  ///< ∥ adjacency_
  std::vector<std::vector<ProcessId>> cliques_;      ///< var -> C(x)
  std::vector<std::vector<VarId>> var_sets_;  ///< process -> X_i, sorted
};

}  // namespace pardsm::graph
