// Fault injection: duplicate delivery and message loss.
//
// The protocols assume reliable channels for *liveness* (no retransmit
// layer), but their *safety* must survive duplicates and, for the
// wait-free protocols, losses: a recorded history must stay consistent no
// matter which updates never arrived.

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

using hist::Criterion;

RunResult run_faulty(ProtocolKind kind, double dup, double drop,
                     std::uint64_t seed) {
  const auto dist = graph::topo::random_replication(4, 3, 2, seed);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.read_fraction = 0.5;
  spec.seed = seed;
  const auto scripts = make_random_scripts(dist, spec);
  RunOptions options;
  options.sim_seed = seed;
  options.channel.duplicate_probability = dup;
  options.channel.drop_probability = drop;
  options.latency = std::make_unique<UniformLatency>(millis(1), millis(15));
  return run_workload(kind, dist, scripts, std::move(options));
}

class DuplicateTolerance : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DuplicateTolerance, SafetyHoldsUnderDuplication) {
  const ProtocolKind kind = GetParam();
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto result = run_faulty(kind, /*dup=*/0.3, /*drop=*/0.0, seed);
    Criterion c;
    switch (guarantee_of(kind)) {
      case GuaranteeLevel::kCausal:
        c = Criterion::kCausal;
        break;
      case GuaranteeLevel::kPram:
        c = Criterion::kPram;
        break;
      default:
        c = Criterion::kSlow;
        break;
    }
    const auto check = hist::check_history(result.history, c);
    EXPECT_TRUE(check.consistent)
        << to_string(kind) << " seed " << seed << "\n"
        << result.history.to_string();
  }
}

std::string sanitize(std::string s) {
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(WaitFree, DuplicateTolerance,
                         ::testing::Values(ProtocolKind::kPramPartial,
                                           ProtocolKind::kSlowPartial,
                                           ProtocolKind::kCausalFull,
                                           ProtocolKind::kCausalPartialNaive),
                         [](const auto& info) {
                           return sanitize(to_string(info.param));
                         });

// Loss: wait-free protocols complete their clients regardless of delivery;
// the history must remain consistent — missing updates just look like
// very slow propagation (safety, not liveness).
class LossTolerance : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(LossTolerance, SafetyHoldsUnderLoss) {
  const ProtocolKind kind = GetParam();
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto result = run_faulty(kind, /*dup=*/0.0, /*drop=*/0.25, seed);
    Criterion c = guarantee_of(kind) == GuaranteeLevel::kCausal
                      ? Criterion::kCausal
                      : (guarantee_of(kind) == GuaranteeLevel::kPram
                             ? Criterion::kPram
                             : Criterion::kSlow);
    const auto check = hist::check_history(result.history, c);
    EXPECT_TRUE(check.consistent)
        << to_string(kind) << " seed " << seed << "\n"
        << result.history.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(WaitFree, LossTolerance,
                         ::testing::Values(ProtocolKind::kPramPartial,
                                           ProtocolKind::kSlowPartial,
                                           ProtocolKind::kCausalFull,
                                           ProtocolKind::kCausalPartialNaive),
                         [](const auto& info) {
                           return sanitize(to_string(info.param));
                         });

// A severed link: PRAM updates to the victim never arrive; everyone else
// keeps functioning and safety holds.
TEST(Partition, PramSafeUnderOneWayPartition) {
  const auto dist = graph::topo::complete(3, 2);
  WorkloadSpec spec;
  spec.ops_per_process = 6;
  spec.seed = 5;
  const auto scripts = make_random_scripts(dist, spec);

  SimOptions sim_options;
  sim_options.seed = 5;
  Simulator sim(std::move(sim_options));
  HistoryRecorder recorder(3, 2);
  auto procs = make_processes(ProtocolKind::kPramPartial, dist, recorder);
  for (auto& p : procs) {
    sim.add_endpoint(p.get());
    p->attach(sim);
  }
  std::vector<std::unique_ptr<ScriptedClient>> clients;
  for (std::size_t p = 0; p < 3; ++p) {
    clients.push_back(
        std::make_unique<ScriptedClient>(*procs[p], sim, scripts[p]));
    clients.back()->start(kTimeZero + micros(1));
  }
  // network() is created lazily at first send; sever just after start.
  sim.schedule_at(kTimeZero + micros(2), [&] { sim.network().sever(0, 2); });
  sim.run();

  const auto h = recorder.history();
  EXPECT_TRUE(hist::check_history(h, Criterion::kPram).consistent)
      << h.to_string();
}

}  // namespace
}  // namespace pardsm::mcs
