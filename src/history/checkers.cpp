#include "history/checkers.h"

#include <sstream>

#include "simnet/check.h"

namespace pardsm::hist {

const std::vector<Criterion>& all_criteria() {
  static const std::vector<Criterion> kAll = {
      Criterion::kSequential,     Criterion::kCausal,
      Criterion::kLazyCausal,     Criterion::kLazySemiCausal,
      Criterion::kPram,           Criterion::kSlow,
      Criterion::kCache,
  };
  return kAll;
}

const char* to_string(Criterion c) {
  switch (c) {
    case Criterion::kSequential:
      return "sequential";
    case Criterion::kCausal:
      return "causal";
    case Criterion::kLazyCausal:
      return "lazy-causal";
    case Criterion::kLazySemiCausal:
      return "lazy-semi-causal";
    case Criterion::kPram:
      return "PRAM";
    case Criterion::kSlow:
      return "slow";
    case Criterion::kCache:
      return "cache";
  }
  return "?";
}

bool implies(Criterion stronger, Criterion weaker) {
  if (stronger == weaker) return true;
  switch (stronger) {
    case Criterion::kSequential:
      return true;  // implies everything below
    case Criterion::kCausal:
      return weaker != Criterion::kSequential && weaker != Criterion::kCache;
    case Criterion::kLazyCausal:
      return weaker == Criterion::kLazySemiCausal;
    case Criterion::kLazySemiCausal:
      return false;
    case Criterion::kPram:
      return weaker == Criterion::kSlow;
    case Criterion::kSlow:
      return false;
    case Criterion::kCache:
      return weaker == Criterion::kSlow;
  }
  return false;
}

Relation criterion_relation(const History& h, Criterion c, LazyMode mode) {
  switch (c) {
    case Criterion::kSequential:
    case Criterion::kCache:  // per-variable: program order, restricted to
                             // each variable's ops by the subset search
      return program_order(h);
    case Criterion::kCausal:
      return causality_order(h);
    case Criterion::kLazyCausal:
      return lazy_causality_order(h, mode);
    case Criterion::kLazySemiCausal:
      return lazy_semi_causal_order(h, mode);
    case Criterion::kPram:
      return pram_relation(h);
    case Criterion::kSlow:
      return slow_relation(h);
  }
  PARDSM_CHECK(false, "unreachable criterion");
  return Relation(0);
}

CheckResult check_history(const History& h, Criterion c,
                          const CheckOptions& options) {
  CheckResult result;
  if (!h.read_from_resolvable()) {
    // A read returning a value never written (other than ⊥) violates every
    // criterion here (all include the read-from constraint).
    result.consistent = false;
    result.definitive = true;
    return result;
  }

  const Relation relation = criterion_relation(h, c, options.lazy_mode);

  if (c == Criterion::kSequential) {
    // One serialization of all operations.
    std::vector<OpIndex> everything;
    everything.reserve(h.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
      everything.push_back(static_cast<OpIndex>(i));
    }
    auto sr = find_serialization(h, everything, relation, options.search);
    ProcessVerdict pv;
    pv.proc = kNoProcess;  // global serialization, not per-process
    pv.verdict = sr.verdict;
    pv.witness = std::move(sr.order);
    result.per_process.push_back(std::move(pv));
  } else if (c == Criterion::kCache) {
    // Per *variable*: one serialization of the variable's ops respecting
    // (the restriction of) program order.  ProcessVerdict::proc carries
    // the variable id in this mode.
    for (std::size_t x = 0; x < h.var_count(); ++x) {
      std::vector<OpIndex> subset;
      for (std::size_t i = 0; i < h.size(); ++i) {
        if (h.op(static_cast<OpIndex>(i)).var == static_cast<VarId>(x)) {
          subset.push_back(static_cast<OpIndex>(i));
        }
      }
      auto sr = find_serialization(h, subset, relation, options.search);
      ProcessVerdict pv;
      pv.proc = static_cast<ProcessId>(x);
      pv.verdict = sr.verdict;
      pv.witness = std::move(sr.order);
      const bool failed = pv.verdict == SearchVerdict::kNotSerializable;
      result.per_process.push_back(std::move(pv));
      if (failed) break;
    }
  } else {
    // Per application process: serialization of H_{i+w}.
    for (std::size_t p = 0; p < h.process_count(); ++p) {
      auto subset = h.projection_i_plus_w(static_cast<ProcessId>(p));
      auto sr = find_serialization(h, subset, relation, options.search);
      ProcessVerdict pv;
      pv.proc = static_cast<ProcessId>(p);
      pv.verdict = sr.verdict;
      pv.witness = std::move(sr.order);
      const bool failed = pv.verdict == SearchVerdict::kNotSerializable;
      result.per_process.push_back(std::move(pv));
      // One refuted projection settles the verdict; stop early to bound cost.
      if (failed) break;
    }
  }

  result.consistent = true;
  for (const auto& pv : result.per_process) {
    if (pv.verdict == SearchVerdict::kUnknown) result.definitive = false;
    if (pv.verdict != SearchVerdict::kSerializable) result.consistent = false;
  }
  return result;
}

Classification classify(const History& h, const CheckOptions& options) {
  Classification out;
  for (Criterion c : all_criteria()) {
    out.admitted.emplace_back(c, check_history(h, c, options).consistent);
  }
  return out;
}

std::string Classification::to_string() const {
  std::ostringstream os;
  for (const auto& [c, ok] : admitted) {
    os << pardsm::hist::to_string(c) << '=' << (ok ? "yes" : "no") << ' ';
  }
  return os.str();
}

}  // namespace pardsm::hist
