// Public facade (pardsm::System) and the efficiency analyzer.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/dsm.h"
#include "history/checkers.h"
#include "sharegraph/topologies.h"

namespace pardsm {
namespace {

SystemConfig pram_on_chain() {
  SystemConfig config;
  config.protocol = mcs::ProtocolKind::kPramPartial;
  config.distribution = graph::topo::chain_with_hoop(4);
  config.latency_lo = millis(1);
  config.latency_hi = millis(3);
  return config;
}

TEST(SystemFacade, WriteThenRemoteReadAfterPropagation) {
  System dsm(pram_on_chain());
  // Variable 0 (x) is shared by processes 0 and 3.
  dsm.at(kTimeZero, [&] { dsm.write(0, 0, 42, [] {}); });
  dsm.run();
  EXPECT_EQ(dsm.read_now(3, 0), 42);
  EXPECT_EQ(dsm.read_now(0, 0), 42);
}

TEST(SystemFacade, ReadNowBeforeAnyWriteIsBottom) {
  System dsm(pram_on_chain());
  EXPECT_EQ(dsm.read_now(0, 0), kBottom);
}

TEST(SystemFacade, HistoryIsRecorded) {
  System dsm(pram_on_chain());
  dsm.at(kTimeZero, [&] {
    dsm.write(0, 0, 1, [&] { dsm.read(0, 0, [](Value) {}); });
  });
  dsm.run();
  const auto h = dsm.history();
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(
      hist::check_history(h, hist::Criterion::kPram).consistent);
}

TEST(SystemFacade, ReadNowRejectedForBlockingProtocols) {
  SystemConfig config;
  config.protocol = mcs::ProtocolKind::kAtomicHome;
  config.distribution = graph::topo::complete(3, 2);
  System dsm(std::move(config));
  EXPECT_THROW((void)dsm.read_now(1, 0), std::logic_error);
}

TEST(SystemFacade, AfterSchedulesRelative) {
  System dsm(pram_on_chain());
  bool fired = false;
  dsm.after(millis(7), [&] { fired = true; });
  dsm.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(dsm.now(), kTimeZero + millis(7));
}

TEST(SystemFacade, VersionString) {
  EXPECT_NE(std::string(version()).find("pardsm"), std::string::npos);
}

// ----------------------------------------------------------- analyzer
TEST(Analysis, PramRunIsEfficient) {
  SystemConfig config = pram_on_chain();
  System dsm(std::move(config));
  // Everyone writes each of its variables once.
  dsm.at(kTimeZero, [&] {
    for (ProcessId p = 0; p < static_cast<ProcessId>(dsm.process_count());
         ++p) {
      for (VarId x : dsm.distribution().per_process[
               static_cast<std::size_t>(p)]) {
        dsm.write(p, x, p * 100 + x, [] {});
      }
    }
  });
  dsm.run();
  const auto report = core::analyze_run(
      dsm.distribution(), dsm.observed_relevance(), dsm.stats().total());
  EXPECT_TRUE(report.efficient());
  EXPECT_EQ(report.vars_leaking_past_clique, 0u);
  EXPECT_NE(report.to_table().find("yes"), std::string::npos);
}

TEST(Analysis, NaiveCausalRunIsNotEfficient) {
  SystemConfig config = pram_on_chain();
  config.protocol = mcs::ProtocolKind::kCausalPartialNaive;
  System dsm(std::move(config));
  dsm.at(kTimeZero, [&] { dsm.write(0, 0, 1, [] {}); });
  dsm.run();
  const auto report = core::analyze_run(
      dsm.distribution(), dsm.observed_relevance(), dsm.stats().total());
  EXPECT_FALSE(report.efficient());
  EXPECT_GT(report.vars_leaking_past_clique, 0u);
}

TEST(Analysis, AdHocStaysWithinTheorem1Sets) {
  SystemConfig config = pram_on_chain();
  config.protocol = mcs::ProtocolKind::kCausalPartialAdHoc;
  System dsm(std::move(config));
  dsm.at(kTimeZero, [&] {
    for (ProcessId p = 0; p < static_cast<ProcessId>(dsm.process_count());
         ++p) {
      for (VarId x :
           dsm.distribution().per_process[static_cast<std::size_t>(p)]) {
        dsm.write(p, x, p * 100 + x, [] {});
      }
    }
  });
  dsm.run();
  const auto report = core::analyze_run(
      dsm.distribution(), dsm.observed_relevance(), dsm.stats().total());
  EXPECT_EQ(report.vars_leaking_past_relevant, 0u);
  // The chain hoop makes causal metadata travel beyond C(x) for x = 0.
  EXPECT_FALSE(report.efficient());
}

// ----------------------------------------------------- analytic model
TEST(Analysis, PredictPramMatchesMeasurement) {
  const auto dist = graph::topo::ring(6);
  const auto model = core::predict(mcs::ProtocolKind::kPramPartial, dist);
  // Ring: |C(x)| = 2, so 1 message of 24 control bytes per write.
  EXPECT_DOUBLE_EQ(model.messages_per_write, 1.0);
  EXPECT_DOUBLE_EQ(model.control_bytes_per_write, 24.0);
  EXPECT_DOUBLE_EQ(model.recipients_outside_clique, 0.0);

  // Measure: one write per (process, variable) pair.
  SystemConfig config;
  config.protocol = mcs::ProtocolKind::kPramPartial;
  config.distribution = dist;
  System dsm(std::move(config));
  std::size_t writes = 0;
  dsm.at(kTimeZero, [&] {
    for (ProcessId p = 0; p < 6; ++p) {
      for (VarId x :
           dsm.distribution().per_process[static_cast<std::size_t>(p)]) {
        dsm.write(p, x, p * 100 + x, [] {});
        ++writes;
      }
    }
  });
  dsm.run();
  const auto traffic = dsm.stats().total();
  EXPECT_DOUBLE_EQ(
      static_cast<double>(traffic.msgs_sent) / static_cast<double>(writes),
      model.messages_per_write);
  EXPECT_DOUBLE_EQ(static_cast<double>(traffic.control_bytes_sent) /
                       static_cast<double>(writes),
                   model.control_bytes_per_write);
}

TEST(Analysis, PredictCausalScalesWithN) {
  const auto small = core::predict(mcs::ProtocolKind::kCausalPartialNaive,
                                   graph::topo::ring(4));
  const auto large = core::predict(mcs::ProtocolKind::kCausalPartialNaive,
                                   graph::topo::ring(16));
  EXPECT_GT(large.messages_per_write, small.messages_per_write);
  EXPECT_GT(large.control_bytes_per_write, small.control_bytes_per_write);
  EXPECT_GT(large.recipients_outside_clique, 0.0);
}

TEST(Analysis, PredictCacheAndProcessorMatchMeasurement) {
  // One write per (variable, clique member): exactly the analytic model's
  // uniform-load assumption, so measured == predicted to the byte.
  const auto dist = graph::topo::ring(6);
  for (auto kind : {mcs::ProtocolKind::kCachePartial,
                    mcs::ProtocolKind::kProcessorPartial}) {
    const auto model = core::predict(kind, dist);

    SystemConfig config;
    config.protocol = kind;
    config.distribution = dist;
    System dsm(std::move(config));
    std::size_t writes = 0;
    dsm.at(kTimeZero, [&] {
      for (ProcessId p = 0; p < 6; ++p) {
        for (VarId x :
             dsm.distribution().per_process[static_cast<std::size_t>(p)]) {
          dsm.write(p, x, p * 100 + x, [] {});
          ++writes;
        }
      }
    });
    dsm.run();
    const auto traffic = dsm.stats().total();
    EXPECT_DOUBLE_EQ(
        static_cast<double>(traffic.msgs_sent) / static_cast<double>(writes),
        model.messages_per_write)
        << mcs::to_string(kind);
    EXPECT_DOUBLE_EQ(static_cast<double>(traffic.control_bytes_sent) /
                         static_cast<double>(writes),
                     model.control_bytes_per_write)
        << mcs::to_string(kind);
    EXPECT_DOUBLE_EQ(model.recipients_outside_clique, 0.0);
  }
}

TEST(Analysis, PredictAdHocBetweenPramAndNaive) {
  const auto dist = graph::topo::clusters(3, 3, /*cyclic=*/false);
  const auto pram = core::predict(mcs::ProtocolKind::kPramPartial, dist);
  const auto adhoc =
      core::predict(mcs::ProtocolKind::kCausalPartialAdHoc, dist);
  const auto naive =
      core::predict(mcs::ProtocolKind::kCausalPartialNaive, dist);
  EXPECT_LE(pram.messages_per_write, adhoc.messages_per_write);
  EXPECT_LE(adhoc.messages_per_write, naive.messages_per_write);
  EXPECT_LT(adhoc.control_bytes_per_write, naive.control_bytes_per_write);
}

}  // namespace
}  // namespace pardsm
