#include "mcs/cache_partial.h"

#include <algorithm>

#include "mcs/cache_messages.h"

namespace pardsm::mcs {

namespace {

/// Message kinds, interned once so the send path never hits the table.
const KindId kWriteReqKind("CWRQ");
const KindId kCommitKind("CCMT");

// Decoders for the shared cache/processor bodies live here (exactly one TU
// may register each tag; processor_partial.cpp reuses these bodies).
const wire::BodyRegistrar cache_wreq_codec(
    wire::kCacheWriteReq, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<detail::CacheWriteReq>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->invoked = wire::get_time(r);
      b->writer_seq = r.i64();
      detail::get_prior_counts(r, b->prior_counts);
      return BodyRef::adopt(b);
    });
const wire::BodyRegistrar cache_commit_codec(
    wire::kCacheCommit, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<detail::CacheCommit>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->var_seq = r.i64();
      b->requester = r.i32();
      b->invoked = wire::get_time(r);
      b->writer_seq = r.i64();
      detail::get_prior_counts(r, b->prior_counts);
      return BodyRef::adopt(b);
    });

}  // namespace

CachePartialProcess::CachePartialProcess(ProcessId self,
                                         const graph::Distribution& dist,
                                         HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder) {}

void CachePartialProcess::on_attach() {
  request_pool_ = &arena().pool<detail::CacheWriteReq>();
  commit_pool_ = &arena().pool<detail::CacheCommit>();
}

ProcessId CachePartialProcess::home_of(VarId x) const {
  const auto& replicas = replicas_of(x);
  PARDSM_CHECK(!replicas.empty(), "variable with no replicas");
  return replicas.front();
}

void CachePartialProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void CachePartialProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const WriteId wid{id(), next_write_seq_};
  const std::int64_t writer_seq = next_write_seq_++;
  const TimePoint t = now();

  PendingWrite pending;
  pending.x = x;
  pending.v = v;
  pending.id = wid;
  pending.done = std::move(done);
  pending.invoked = t;
  waiting_[wid] = std::move(pending);
  ++mutable_stats().writes;

  const auto priors = prior_counts_for(x);

  if (home_of(x) == id()) {
    sequence(x, v, wid, id(), t, writer_seq, priors);
    return;
  }
  auto* body = request_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->invoked = t;
  body->writer_seq = writer_seq;
  body->prior_counts = priors;

  MessageMeta meta;
  meta.kind = kWriteReqKind;
  meta.control_bytes = 16 + 8 + 8 + 16 * priors.size();
  meta.payload_bytes = 8;
  meta.vars_mentioned = {x};
  emit_to(home_of(x), BodyRef::adopt(body), std::move(meta), /*urgent=*/true);
}

detail::PriorCounts CachePartialProcess::prior_counts_for(VarId) {
  return {};  // plain cache consistency needs no cross-variable metadata
}

void CachePartialProcess::sequence(VarId x, Value v, WriteId wid,
                                   ProcessId requester, TimePoint invoked,
                                   std::int64_t writer_seq,
                                   const detail::PriorCounts& prior_counts) {
  PARDSM_CHECK(home_of(x) == id(), "sequence() at non-home");
  const std::int64_t seq = ++var_seq_[x];

  auto* body = commit_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->var_seq = seq;
  body->requester = requester;
  body->invoked = invoked;
  body->writer_seq = writer_seq;
  body->prior_counts = prior_counts;
  // One commit body, two holders: the multicast plan and the home-local
  // delivery below share it by refcount.
  const BodyRef commit_ref = BodyRef::adopt(body);

  MessageMeta meta;
  meta.kind = kCommitKind;
  meta.control_bytes = 16 + 8 + 8 + 8 + 8 + 16 * prior_counts.size();
  meta.payload_bytes = 8;
  meta.vars_mentioned = {x};

  // Urgent: the requester's write completes only when its commit lands.
  SendPlan plan;
  plan.body = commit_ref;
  plan.meta = meta;
  plan.urgent = true;
  for (ProcessId q : replicas_of(x)) {
    if (q != id()) plan.to.push_back(q);
  }
  emit(std::move(plan));
  // Home-local copy of the commit.
  Message self_msg;
  self_msg.from = id();
  self_msg.to = id();
  self_msg.body = commit_ref;
  self_msg.meta = meta;
  handle_commit(self_msg);
}

void CachePartialProcess::handle_commit(const Message& m) {
  if (commit_ready(m)) {
    apply_commit(m);
    // Applying one commit can unblock buffered ones (PC subclass).
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
        if (commit_ready(*it)) {
          const Message msg = *it;
          buffer_.erase(it);
          apply_commit(msg);
          progress = true;
          break;
        }
      }
    }
  } else {
    buffer_.push_back(m);
    mutable_stats().max_buffer_depth =
        std::max(mutable_stats().max_buffer_depth,
                 static_cast<std::uint64_t>(buffer_.size()));
  }
}

bool CachePartialProcess::commit_ready(const Message&) { return true; }

void CachePartialProcess::apply_commit(const Message& m) {
  const auto* c = m.as<detail::CacheCommit>();
  PARDSM_CHECK(c != nullptr, "cache: unexpected commit body");
  // Duplicate suppression: originals arrive in var_seq order (FIFO from
  // the home); a late duplicate must not revert the replica.
  auto [seq_it, first] = applied_var_seq_.try_emplace(c->x, 0);
  if (c->var_seq <= seq_it->second) return;
  seq_it->second = c->var_seq;

  if (replicates(c->x)) {
    mutable_store().put(c->x, c->v, c->id);
    ++mutable_stats().updates_applied;
  }
  on_applied(c->id.writer);
  if (c->requester == id()) {
    auto it = waiting_.find(c->id);
    if (it == waiting_.end()) return;  // duplicated own commit
    PendingWrite pending = std::move(it->second);
    waiting_.erase(it);
    recorder().record_write(id(), pending.x, pending.v, pending.id,
                            pending.invoked, now());
    pending.done();
  }
}

void CachePartialProcess::on_applied(ProcessId) {}

void CachePartialProcess::handle_message(const Message& m) {
  if (const auto* req = m.try_as<detail::CacheWriteReq>()) {
    sequence(req->x, req->v, req->id, m.from, req->invoked, req->writer_seq,
             req->prior_counts);
    return;
  }
  PARDSM_CHECK(m.as<detail::CacheCommit>() != nullptr,
               "cache: unexpected message body");
  handle_commit(m);
}

}  // namespace pardsm::mcs
