// pardsm_lint fixture: R2 (rng-streams) seeded violations.  simnet is an
// RNG-disciplined layer: all randomness must flow through simnet/rng.h.
// Line numbers are pinned by test_lint.cpp.
#include <random>

namespace fixture {

int bad_engine() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

int bad_distribution(std::mt19937_64& gen) {
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(gen);
}

int suppressed_engine() {
  std::minstd_rand gen(7);  // pardsm-lint: allow(rng-streams)
  return static_cast<int>(gen());
}

}  // namespace fixture
