// Totally asynchronous Jacobi fixed-point iteration on *slow* memory.
//
// Sinha [16] (cited in §5 of the paper) shows that totally asynchronous
// iterative fixed-point methods converge on memories even weaker than
// PRAM.  We reproduce that claim with a fixed-point solve of
//
//     x = A·x + b      (A a contraction, fixed-point arithmetic)
//
// where process i owns x_i, re-reads its neighbours' entries *without any
// synchronization* (stale values allowed) and re-writes x_i every round.
// By the classical asynchronous-iteration theorem (Bertsekas), convergence
// only needs every component to be updated infinitely often with
// eventually-fresh reads — per-variable FIFO (slow memory) is enough; no
// cross-variable ordering is ever used.
//
// A is tridiagonal (process i reads x_{i-1}, x_i, x_{i+1}), so the share
// graph is an open chain: hoop-free, fully partial replication.
#pragma once

#include <vector>

#include "mcs/driver.h"

namespace pardsm::apps {

/// Fixed-point scale (values are stored as value * kJacobiScale).
inline constexpr std::int64_t kJacobiScale = 1 << 16;

/// Problem definition: tridiagonal A (sub/diag/super coefficients in
/// fixed-point) and offset vector b.
struct JacobiProblem {
  std::vector<std::int64_t> sub;    ///< a(i, i-1), fixed-point
  std::vector<std::int64_t> diag;   ///< a(i, i), fixed-point
  std::vector<std::int64_t> super;  ///< a(i, i+1), fixed-point
  std::vector<std::int64_t> b;      ///< offsets, fixed-point

  [[nodiscard]] std::size_t size() const { return b.size(); }

  /// A well-conditioned random contraction (row sums ≈ 0.6 < 1).
  [[nodiscard]] static JacobiProblem contraction(std::size_t n,
                                                 std::uint64_t seed);
};

/// Synchronous reference iteration to numerical convergence.
[[nodiscard]] std::vector<std::int64_t> jacobi_reference(
    const JacobiProblem& p, std::size_t max_rounds = 10000);

/// Options for the distributed asynchronous run.
struct JacobiOptions {
  mcs::ProtocolKind protocol = mcs::ProtocolKind::kSlowPartial;
  std::uint64_t sim_seed = 1;
  std::size_t rounds = 80;       ///< asynchronous updates per process
  Duration round_delay = millis(2);
};

/// Result of the distributed run.
struct JacobiResult {
  std::vector<std::int64_t> solution;  ///< final x (fixed-point)
  std::int64_t max_abs_error = 0;      ///< vs reference, fixed-point
  bool converged = false;              ///< error below tolerance
  ProcessTraffic total_traffic;
  TimePoint finished_at{};
};

/// Run the asynchronous iteration (one process per component).
[[nodiscard]] JacobiResult run_async_jacobi(const JacobiProblem& p,
                                            const JacobiOptions& options = {});

}  // namespace pardsm::apps
