// Exact search for legal serializations (Definition 1 of the paper).
//
// Given a subset of a history's operations and a precedence relation, find
// a sequence S containing exactly those operations such that
//   (1) S respects the relation, and
//   (2) every read of x returns the value of the most recent preceding
//       write of x in S (⊥ if none) — checked via exact read-from sources.
//
// The search is a backtracking construction of S with
//   - forced-edge propagation: for a read r from write w on x and any other
//     write w' on x, "w before w'" forces "r before w'", and "w' before r"
//     forces "w' before w"; propagated to fixpoint before searching, which
//     detects most inconsistencies without any search;
//   - memoization of failed states keyed by (placed-set, last-write-per-var).
//
// Deciding serialization existence is NP-hard in general; the finder is
// exact but bounded by `max_states`; exceeding the budget yields verdict
// kUnknown (never a wrong answer).
#pragma once

#include <cstdint>
#include <vector>

#include "history/history.h"
#include "history/relation.h"

namespace pardsm::hist {

/// Outcome of a serialization search.
enum class SearchVerdict {
  kSerializable,    ///< witness found
  kNotSerializable, ///< exhaustively refuted
  kUnknown,         ///< state budget exceeded
};

/// Result of find_serialization.
struct SerializationResult {
  SearchVerdict verdict = SearchVerdict::kUnknown;
  /// Witness (global op indices in serialization order) when serializable.
  std::vector<OpIndex> order;
  /// Diagnostic counters.
  std::uint64_t states_explored = 0;
  bool refuted_by_propagation = false;  ///< no search was needed
};

/// Search options.
struct SearchOptions {
  std::uint64_t max_states = 4'000'000;
};

/// Find a serialization of `subset` (global indices into `h`) respecting
/// `constraint` (a Relation over all of h's ops; it is restricted to the
/// subset internally and transitively closed).
[[nodiscard]] SerializationResult find_serialization(
    const History& h, const std::vector<OpIndex>& subset,
    const Relation& constraint, const SearchOptions& options = {});

/// Verify that `order` is a legal serialization of exactly `subset` under
/// `constraint` (used to validate witnesses in tests).
[[nodiscard]] bool is_legal_serialization(const History& h,
                                          const std::vector<OpIndex>& subset,
                                          const std::vector<OpIndex>& order,
                                          const Relation& constraint);

}  // namespace pardsm::hist
