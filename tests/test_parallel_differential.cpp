// Differential verification of the parallel engine against the sequential
// golden mode, across all nine protocols × three topologies × thread
// counts {1, 2, 4, 8} × two seeds.
//
// Three layers of assertion per cell:
//
//   * Sequential agreement — with a single-writer workload the final
//     replica state is a pure function of the scripts (the P6 argument),
//     so the parallel run must end in exactly the sequential run's
//     replica state, value and provenance alike, even though the two
//     engines draw channel latency from different RNG stream designs.
//   * Internal soundness — message/byte conservation at quiescence (a
//     lossless run delivers everything it sends) and the property net
//     (P1 weakest-criterion consistency, P2 exposure bounds, P4 exact
//     provenance) on the parallel run's own history.
//   * Thread-count independence — every thread count must produce the
//     byte-identical history, traffic ledger, exposure sets, event count
//     and finish time as the 1-thread parallel run.  The canonical event
//     order and counter-based RNG streams make the run a function of the
//     seed, not of the schedule; this is the assertion that catches any
//     leak of physical scheduling into logical results.

#include <gtest/gtest.h>

#include "history/checkers.h"
#include "mcs/driver.h"
#include "sharegraph/hoops.h"
#include "sharegraph/sharding.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

using graph::Distribution;
using hist::Criterion;

enum class PTopo { kSharded, kHierarchical, kOpenChain };

Distribution make_topo(PTopo t) {
  switch (t) {
    case PTopo::kSharded:
      return graph::topo::sharded(3, 3, 6);  // 9 processes, 3 cells
    case PTopo::kHierarchical:
      return graph::topo::hierarchical(2, 3);  // 7 processes
    case PTopo::kOpenChain:
      return graph::topo::open_chain(6);  // connected: hash sharding
  }
  return graph::topo::open_chain(6);
}

const char* topo_name(PTopo t) {
  switch (t) {
    case PTopo::kSharded:
      return "sharded";
    case PTopo::kHierarchical:
      return "hierarchical";
    case PTopo::kOpenChain:
      return "openchain";
  }
  return "?";
}

Criterion weakest_criterion(ProtocolKind kind) {
  switch (guarantee_of(kind)) {
    case GuaranteeLevel::kAtomic:
    case GuaranteeLevel::kSequential:
      return Criterion::kSequential;
    case GuaranteeLevel::kCausal:
      return Criterion::kCausal;
    case GuaranteeLevel::kProcessor:
    case GuaranteeLevel::kPram:
      return Criterion::kPram;
    case GuaranteeLevel::kCache:
      return Criterion::kCache;
    case GuaranteeLevel::kSlow:
      return Criterion::kSlow;
  }
  return Criterion::kSlow;
}

bool clique_confined(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPramPartial:
    case ProtocolKind::kSlowPartial:
    case ProtocolKind::kCachePartial:
    case ProtocolKind::kProcessorPartial:
    case ProtocolKind::kAtomicHome:
      return true;
    default:
      return false;
  }
}

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

class ParallelDifferential
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, PTopo, int>> {};

TEST_P(ParallelDifferential, AgreesWithSequentialAtEveryThreadCount) {
  const auto [kind, topo, seed] = GetParam();
  const auto dist = make_topo(topo);

  WorkloadSpec spec;
  spec.ops_per_process = 3;
  spec.read_fraction = 0.4;
  spec.seed = static_cast<std::uint64_t>(seed) * 613 + 29;
  spec.think_time = millis(1);
  const auto scripts = make_single_writer_scripts(dist, spec);

  const auto options = [&] {
    RunOptions o;
    o.sim_seed = static_cast<std::uint64_t>(seed);
    o.latency = std::make_unique<UniformLatency>(millis(1), millis(5));
    return o;
  };

  const RunResult baseline = run_workload(kind, dist, scripts, options());

  std::optional<RunResult> one_thread;
  for (const unsigned threads : kThreadCounts) {
    SCOPED_TRACE(std::string(to_string(kind)) + " on " + topo_name(topo) +
                 " seed " + std::to_string(seed) + " threads " +
                 std::to_string(threads));
    const RunResult par =
        run_workload_parallel(kind, dist, scripts, threads, options());

    // -- sequential agreement: final replica state, value and provenance.
    ASSERT_EQ(par.final_replicas.size(), baseline.final_replicas.size());
    for (std::size_t p = 0; p < baseline.final_replicas.size(); ++p) {
      EXPECT_EQ(par.final_replicas[p], baseline.final_replicas[p])
          << "replica state of process " << p
          << " diverged from the sequential engine";
    }

    // -- conservation: a lossless quiesced run delivers all it sends.
    EXPECT_EQ(par.total_traffic.msgs_received, par.total_traffic.msgs_sent);
    EXPECT_EQ(par.total_traffic.control_bytes_received,
              par.total_traffic.control_bytes_sent);
    EXPECT_EQ(par.total_traffic.payload_bytes_received,
              par.total_traffic.payload_bytes_sent);

    // -- property net on the parallel run's own history.
    const auto check =
        hist::check_history(par.history, weakest_criterion(kind));
    EXPECT_TRUE(check.definitive);
    EXPECT_TRUE(check.consistent) << par.history.to_string();
    EXPECT_TRUE(par.history.read_from_resolvable());
    const graph::ShareGraph sg(dist);
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      const auto xv = static_cast<VarId>(x);
      std::set<ProcessId> bound;
      if (clique_confined(kind)) {
        const auto clique = sg.clique(xv);
        bound.insert(clique.begin(), clique.end());
      } else if (kind == ProtocolKind::kCausalPartialAdHoc) {
        bound = graph::x_relevant(sg, xv);
      } else {
        continue;
      }
      for (ProcessId p : par.observed_relevant[x]) {
        EXPECT_TRUE(bound.count(p))
            << "x" << x << " metadata reached p" << p;
      }
    }

    // -- thread-count independence: byte-identical observables vs 1T.
    if (!one_thread) {
      one_thread = par;
      continue;
    }
    EXPECT_EQ(par.history.to_string(), one_thread->history.to_string());
    EXPECT_EQ(par.total_traffic.msgs_sent,
              one_thread->total_traffic.msgs_sent);
    EXPECT_EQ(par.total_traffic.control_bytes_sent,
              one_thread->total_traffic.control_bytes_sent);
    EXPECT_EQ(par.total_traffic.payload_bytes_sent,
              one_thread->total_traffic.payload_bytes_sent);
    EXPECT_EQ(par.observed_relevant, one_thread->observed_relevant);
    EXPECT_EQ(par.events, one_thread->events);
    EXPECT_EQ(par.finished_at, one_thread->finished_at);
    EXPECT_EQ(par.active_channel_pairs, one_thread->active_channel_pairs);
    for (std::size_t p = 0; p < par.per_process_traffic.size(); ++p) {
      EXPECT_EQ(par.per_process_traffic[p].msgs_sent,
                one_thread->per_process_traffic[p].msgs_sent)
          << "process " << p;
      EXPECT_EQ(par.per_process_traffic[p].msgs_received,
                one_thread->per_process_traffic[p].msgs_received)
          << "process " << p;
    }
  }
}

std::string differential_name(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, PTopo, int>>&
        info) {
  std::string s = to_string(std::get<0>(info.param));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s + "_" + topo_name(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ParallelDifferential,
    ::testing::Combine(::testing::ValuesIn(all_protocols()),
                       ::testing::Values(PTopo::kSharded,
                                         PTopo::kHierarchical,
                                         PTopo::kOpenChain),
                       ::testing::Values(1, 2)),
    differential_name);

// The share-graph shard assignment itself: disconnected cells must map
// whole-cell to one shard; connected topologies round-robin.
TEST(ShardAssignment, CellsStayTogether) {
  const auto dist = graph::topo::sharded(4, 3, 8);  // 4 cells, 12 processes
  const auto shard = graph::shard_assignment(dist, 2);
  const graph::ShareGraph sg(dist);
  for (const auto& component : sg.components()) {
    for (ProcessId p : component) {
      EXPECT_EQ(shard[static_cast<std::size_t>(p)],
                shard[static_cast<std::size_t>(component.front())])
          << "cell split across shards at p" << p;
    }
  }
}

TEST(ShardAssignment, ConnectedTopologyRoundRobins) {
  const auto dist = graph::topo::open_chain(6);
  const auto shard = graph::shard_assignment(dist, 4);
  for (std::size_t p = 0; p < 6; ++p) {
    EXPECT_EQ(shard[p], static_cast<int>(p % 4));
  }
}

}  // namespace
}  // namespace pardsm::mcs
