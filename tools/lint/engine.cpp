#include "engine.h"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>

namespace pardsm::lint {

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

void collect(const std::string& root, std::vector<FileScan>& out) {
  const fs::path rp(root);
  if (fs::is_regular_file(rp)) {
    out.push_back(scan_file(rp.string(), rp.filename().string()));
    return;
  }
  if (!fs::is_directory(rp)) {
    throw std::runtime_error("pardsm_lint: no such file or directory: " +
                             root);
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(rp)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    out.push_back(
        scan_file(p.string(), fs::relative(p, rp).generic_string()));
  }
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void json_diag_array(std::ostringstream& os,
                     const std::vector<Diagnostic>& diags) {
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << (i == 0 ? "" : ",") << "\n    {\"file\": \"";
    json_escape(os, d.file);
    os << "\", \"line\": " << d.line << ", \"rule\": \"";
    json_escape(os, d.rule);
    os << "\", \"message\": \"";
    json_escape(os, d.message);
    os << "\"}";
  }
  os << (diags.empty() ? "]" : "\n  ]");
}

}  // namespace

Report run_lint_on(const std::vector<FileScan>& files) {
  Report report;
  report.files_scanned = static_cast<int>(files.size());
  std::vector<Diagnostic> raw;
  for (const FileScan& f : files) {
    std::vector<Diagnostic> here;
    run_all_rules(f, here);
    for (Diagnostic& d : here) {
      if (f.allowed(d.rule, d.line)) {
        report.suppressed.push_back(std::move(d));
      } else {
        raw.push_back(std::move(d));
      }
    }
  }
  const auto order = [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  };
  std::sort(raw.begin(), raw.end(), order);
  std::sort(report.suppressed.begin(), report.suppressed.end(), order);
  for (const Diagnostic& d : raw) ++report.by_rule[d.rule];
  report.findings = std::move(raw);
  return report;
}

Report run_lint(const LintOptions& options) {
  std::vector<FileScan> files;
  for (const std::string& root : options.roots) collect(root, files);
  return run_lint_on(files);
}

std::string render_text(const Report& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.findings) {
    os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
       << "\n";
  }
  os << "pardsm-lint: " << report.files_scanned << " files, "
     << report.findings.size() << " finding"
     << (report.findings.size() == 1 ? "" : "s") << " ("
     << report.suppressed.size() << " suppressed)";
  if (!report.by_rule.empty()) {
    os << " [";
    bool first = true;
    for (const auto& [rule, n] : report.by_rule) {
      os << (first ? "" : ", ") << rule << ": " << n;
      first = false;
    }
    os << "]";
  }
  os << "\n";
  return os.str();
}

std::string render_json(const Report& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"pardsm-lint-v1\",\n  \"files_scanned\": "
     << report.files_scanned << ",\n  \"findings\": ";
  json_diag_array(os, report.findings);
  os << ",\n  \"suppressed\": ";
  json_diag_array(os, report.suppressed);
  os << ",\n  \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, n] : report.by_rule) {
    os << (first ? "" : ",") << "\n    \"" << rule << "\": " << n;
    first = false;
  }
  os << (report.by_rule.empty() ? "}" : "\n  }") << ",\n  \"clean\": "
     << (report.clean() ? "true" : "false") << "\n}\n";
  return os.str();
}

}  // namespace pardsm::lint
