#include "simnet/network.h"

#include "simnet/check.h"

namespace pardsm {

Network::Network(std::size_t n, ChannelOptions options,
                 std::unique_ptr<LatencyModel> latency, Rng rng)
    : n_(n),
      options_(options),
      latency_(latency ? std::move(latency)
                       : std::make_unique<ConstantLatency>(millis(1))),
      rng_(rng) {}

std::vector<TimePoint> Network::plan_delivery(ProcessId from, ProcessId to,
                                              TimePoint send_time) {
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n_,
               "plan_delivery: bad sender");
  PARDSM_CHECK(to >= 0 && static_cast<std::size_t>(to) < n_,
               "plan_delivery: bad receiver");

  if (severed(from, to) || rng_.chance(options_.drop_probability)) {
    ++dropped_;
    return {};
  }

  std::vector<TimePoint> deliveries;
  const int copies = rng_.chance(options_.duplicate_probability) ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    TimePoint at = send_time + latency_->sample(from, to, rng_);
    if (options_.fifo) {
      auto& last = last_delivery_[{from, to}];
      if (at <= last) at = last + micros(1);
      last = at;
    }
    deliveries.push_back(at);
  }
  return deliveries;
}

void Network::sever(ProcessId from, ProcessId to) {
  severed_[{from, to}] = true;
}

void Network::heal(ProcessId from, ProcessId to) {
  severed_[{from, to}] = false;
}

bool Network::severed(ProcessId from, ProcessId to) const {
  auto it = severed_.find({from, to});
  return it != severed_.end() && it->second;
}

}  // namespace pardsm
