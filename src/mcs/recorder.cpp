#include "mcs/recorder.h"

namespace pardsm::mcs {

void HistoryRecorder::record_write(ProcessId p, VarId x, Value v, WriteId id,
                                   TimePoint invoked, TimePoint responded) {
  std::lock_guard lock(mu_);
  const auto op = history_.push_write(p, x, v, id);
  history_.set_interval(op, invoked, responded);
}

void HistoryRecorder::record_read(ProcessId p, VarId x, Value value,
                                  WriteId source, TimePoint invoked,
                                  TimePoint responded) {
  std::lock_guard lock(mu_);
  const auto op = history_.push_read(p, x, value, source);
  history_.set_interval(op, invoked, responded);
}

hist::History HistoryRecorder::history() const {
  std::lock_guard lock(mu_);
  return history_;
}

hist::History HistoryRecorder::take_history() {
  std::lock_guard lock(mu_);
  return std::move(history_);
}

std::size_t HistoryRecorder::size() const {
  std::lock_guard lock(mu_);
  return history_.size();
}

}  // namespace pardsm::mcs
