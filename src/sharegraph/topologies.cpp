#include "sharegraph/topologies.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <set>
#include <sstream>

#include "simnet/check.h"
#include "simnet/rng.h"

namespace pardsm::graph::topo {

Distribution fig1() {
  Distribution d;
  d.name = "fig1";
  d.var_count = 2;
  d.per_process = {{0, 1}, {0}, {1}};  // X_i={x1,x2}, X_j={x1}, X_k={x2}
  return d;
}

Distribution complete(std::size_t n, std::size_t m) {
  Distribution d;
  d.name = "complete-n" + std::to_string(n) + "-m" + std::to_string(m);
  d.var_count = m;
  d.per_process.resize(n);
  for (auto& xs : d.per_process) {
    xs.resize(m);
    for (std::size_t x = 0; x < m; ++x) xs[x] = static_cast<VarId>(x);
  }
  return d;
}

Distribution chain_with_hoop(std::size_t n) {
  PARDSM_CHECK(n >= 3, "chain_with_hoop needs >= 3 processes");
  Distribution d;
  d.name = "chain-n" + std::to_string(n);
  // var 0 = x (shared by the two ends); vars 1..n-1 = links l_i between
  // (i-1, i).
  d.var_count = n;
  d.per_process.resize(n);
  d.per_process[0].push_back(0);
  d.per_process[n - 1].push_back(0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto link = static_cast<VarId>(i + 1);
    d.per_process[i].push_back(link);
    d.per_process[i + 1].push_back(link);
  }
  return d;
}

Distribution open_chain(std::size_t n) {
  PARDSM_CHECK(n >= 2, "open_chain needs >= 2 processes");
  Distribution d;
  d.name = "open-chain-n" + std::to_string(n);
  d.var_count = n - 1;
  d.per_process.resize(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto link = static_cast<VarId>(i);
    d.per_process[i].push_back(link);
    d.per_process[i + 1].push_back(link);
  }
  return d;
}

Distribution ring(std::size_t n) {
  PARDSM_CHECK(n >= 3, "ring needs >= 3 processes");
  Distribution d;
  d.name = "ring-n" + std::to_string(n);
  d.var_count = n;
  d.per_process.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto link = static_cast<VarId>(i);
    d.per_process[i].push_back(link);
    d.per_process[(i + 1) % n].push_back(link);
  }
  return d;
}

Distribution grid(std::size_t rows, std::size_t cols) {
  PARDSM_CHECK(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  Distribution d;
  d.name = "grid-" + std::to_string(rows) + "x" + std::to_string(cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  d.per_process.resize(rows * cols);
  VarId next = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        d.per_process[id(r, c)].push_back(next);
        d.per_process[id(r, c + 1)].push_back(next);
        ++next;
      }
      if (r + 1 < rows) {
        d.per_process[id(r, c)].push_back(next);
        d.per_process[id(r + 1, c)].push_back(next);
        ++next;
      }
    }
  }
  d.var_count = static_cast<std::size_t>(next);
  return d;
}

Distribution clusters(std::size_t k, std::size_t cluster_size, bool cyclic) {
  PARDSM_CHECK(k >= 2 && cluster_size >= 1, "clusters parameter sanity");
  Distribution d;
  d.name = "clusters-k" + std::to_string(k) + "-s" +
           std::to_string(cluster_size) + (cyclic ? "-cyclic" : "");
  const std::size_t n = k * cluster_size;
  d.per_process.resize(n);
  VarId next = 0;
  // One fully replicated variable per cluster.
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < cluster_size; ++i) {
      d.per_process[c * cluster_size + i].push_back(next);
    }
    ++next;
  }
  // Bridge variable between last member of cluster c and first member of
  // cluster c+1.
  const std::size_t bridges = cyclic ? k : k - 1;
  for (std::size_t c = 0; c < bridges; ++c) {
    const std::size_t from = c * cluster_size + (cluster_size - 1);
    const std::size_t to = ((c + 1) % k) * cluster_size;
    d.per_process[from].push_back(next);
    d.per_process[to].push_back(next);
    ++next;
  }
  d.var_count = static_cast<std::size_t>(next);
  return d;
}

Distribution random_replication(std::size_t n, std::size_t m, std::size_t r,
                                std::uint64_t seed) {
  PARDSM_CHECK(r >= 1 && r <= n, "replication degree must be in [1, n]");
  Distribution d;
  d.name = "random-n" + std::to_string(n) + "-m" + std::to_string(m) + "-r" +
           std::to_string(r) + "-s" + std::to_string(seed);
  d.var_count = m;
  d.per_process.resize(n);
  Rng rng(seed);
  std::vector<ProcessId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<ProcessId>(i);
  for (std::size_t x = 0; x < m; ++x) {
    rng.shuffle(all);
    for (std::size_t i = 0; i < r; ++i) {
      d.per_process[static_cast<std::size_t>(all[i])].push_back(
          static_cast<VarId>(x));
    }
  }
  for (auto& xs : d.per_process) std::sort(xs.begin(), xs.end());
  return d;
}

Distribution star(std::size_t leaves) {
  PARDSM_CHECK(leaves >= 2, "star needs >= 2 leaves");
  Distribution d;
  d.name = "star-l" + std::to_string(leaves);
  const std::size_t n = leaves + 1;  // p0 = hub
  d.per_process.resize(n);
  VarId next = 0;
  for (std::size_t l = 1; l <= leaves; ++l) {
    d.per_process[0].push_back(next);
    d.per_process[l].push_back(next);
    ++next;
  }
  // One leaf-to-leaf variable (x): its C(x) = {p1, p2}; the path through
  // the hub [p1, p0, p2] is an x-hoop.
  d.per_process[1].push_back(next);
  d.per_process[2].push_back(next);
  ++next;
  d.var_count = static_cast<std::size_t>(next);
  return d;
}

Distribution bellman_ford_fig8() {
  Distribution d;
  d.name = "bellman-ford-fig8";
  // Variables: x_1..x_5 -> ids 0..4, k_1..k_5 -> ids 5..9.
  // Paper (Section 6): X_1 = {x1,k1}; X_2 = {x1,x2,x3,k1,k2,k3};
  // X_3 = {x1,x2,x3,k1,k2,k3}; X_4 = {x2,x3,x4,k2,k3,k4};
  // X_5 = {x3,x4,x5,k3,k4,k5}.
  d.var_count = 10;
  const auto x = [](int i) { return static_cast<VarId>(i - 1); };
  const auto k = [](int i) { return static_cast<VarId>(5 + i - 1); };
  d.per_process = {
      {x(1), k(1)},
      {x(1), x(2), x(3), k(1), k(2), k(3)},
      {x(1), x(2), x(3), k(1), k(2), k(3)},
      {x(2), x(3), x(4), k(2), k(3), k(4)},
      {x(3), x(4), x(5), k(3), k(4), k(5)},
  };
  return d;
}

Distribution hypercube(std::size_t dimensions) {
  PARDSM_CHECK(dimensions >= 1 && dimensions <= 10,
               "hypercube dimension sanity");
  Distribution d;
  d.name = "hypercube-d" + std::to_string(dimensions);
  const std::size_t n = 1u << dimensions;
  d.per_process.resize(n);
  VarId next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < dimensions; ++bit) {
      const std::size_t w = v ^ (1u << bit);
      if (w <= v) continue;  // each edge once
      d.per_process[v].push_back(next);
      d.per_process[w].push_back(next);
      ++next;
    }
  }
  d.var_count = static_cast<std::size_t>(next);
  return d;
}

Distribution torus(std::size_t rows, std::size_t cols) {
  PARDSM_CHECK(rows >= 3 && cols >= 3, "torus needs >= 3x3");
  Distribution d;
  d.name = "torus-" + std::to_string(rows) + "x" + std::to_string(cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  d.per_process.resize(rows * cols);
  VarId next = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Right and down edges with wrap-around: every edge exactly once.
      d.per_process[id(r, c)].push_back(next);
      d.per_process[id(r, (c + 1) % cols)].push_back(next);
      ++next;
      d.per_process[id(r, c)].push_back(next);
      d.per_process[id((r + 1) % rows, c)].push_back(next);
      ++next;
    }
  }
  d.var_count = static_cast<std::size_t>(next);
  return d;
}

Distribution preferential_attachment(std::size_t n, std::size_t attach,
                                     std::uint64_t seed) {
  PARDSM_CHECK(n >= 2 && attach >= 1, "preferential_attachment sanity");
  Rng rng(seed);
  Distribution d;
  d.name = "prefattach-n" + std::to_string(n) + "-a" +
           std::to_string(attach) + "-s" + std::to_string(seed);
  d.per_process.resize(n);
  VarId next = 0;
  // Degree-weighted target list: every edge endpoint appears once.
  std::vector<ProcessId> endpoints{0};
  for (std::size_t v = 1; v < n; ++v) {
    std::set<ProcessId> chosen;
    const std::size_t want = std::min(attach, v);
    while (chosen.size() < want) {
      const ProcessId target =
          endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
      if (static_cast<std::size_t>(target) < v) chosen.insert(target);
    }
    for (ProcessId target : chosen) {
      d.per_process[v].push_back(next);
      d.per_process[static_cast<std::size_t>(target)].push_back(next);
      ++next;
      endpoints.push_back(static_cast<ProcessId>(v));
      endpoints.push_back(target);
    }
  }
  d.var_count = static_cast<std::size_t>(next);
  return d;
}

Distribution sharded(std::size_t shards, std::size_t replicas_per_var,
                     std::size_t vars) {
  PARDSM_CHECK(shards >= 1 && replicas_per_var >= 1 && vars >= 1,
               "sharded parameter sanity");
  Distribution d;
  d.name = "sharded-s" + std::to_string(shards) + "-r" +
           std::to_string(replicas_per_var) + "-m" + std::to_string(vars);
  d.var_count = vars;
  d.per_process.resize(shards * replicas_per_var);
  // Exact reserve: shard s holds ceil((vars - s) / shards) variables.
  for (std::size_t p = 0; p < d.per_process.size(); ++p) {
    const std::size_t s = p / replicas_per_var;
    if (s < vars) {
      d.per_process[p].reserve((vars - s + shards - 1) / shards);
    }
  }
  for (std::size_t x = 0; x < vars; ++x) {
    const std::size_t shard = x % shards;
    for (std::size_t i = 0; i < replicas_per_var; ++i) {
      d.per_process[shard * replicas_per_var + i].push_back(
          static_cast<VarId>(x));
    }
  }
  return d;
}

Distribution hierarchical(std::size_t branching, std::size_t depth) {
  PARDSM_CHECK(branching >= 2 && depth >= 2, "hierarchical needs b>=2, d>=2");
  std::size_t n = 0;
  std::size_t level_size = 1;
  for (std::size_t l = 0; l < depth; ++l) {
    n += level_size;
    level_size *= branching;
  }
  Distribution d;
  d.name = "hier-b" + std::to_string(branching) + "-d" + std::to_string(depth);
  d.per_process.resize(n);
  // BFS numbering: children of node p are branching*p + 1 .. + branching.
  const std::size_t internal = (n - 1) / branching;  // nodes with children
  d.var_count = internal;
  VarId next = 0;
  for (std::size_t p = 0; p < internal; ++p) {
    d.per_process[p].push_back(next);
    for (std::size_t c = 1; c <= branching; ++c) {
      d.per_process[branching * p + c].push_back(next);
    }
    ++next;
  }
  return d;
}

Distribution zipf_replication(std::size_t n, std::size_t m, std::size_t r,
                              double skew, std::uint64_t seed) {
  PARDSM_CHECK(r >= 1 && r <= n, "replication degree must be in [1, n]");
  PARDSM_CHECK(skew >= 0.0, "zipf_replication needs skew >= 0");
  Distribution d;
  {
    std::ostringstream name;
    name << "zipf-n" << n << "-m" << m << "-r" << r << "-a" << std::fixed
         << std::setprecision(2) << skew << "-s" << seed;
    d.name = name.str();
  }
  d.var_count = m;
  d.per_process.resize(n);
  // Cumulative Zipf weights over process ids: P(p) ∝ 1 / (p + 1)^skew.
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    total += 1.0 / std::pow(static_cast<double>(p + 1), skew);
    cdf[p] = total;
  }
  Rng rng(seed);
  std::vector<ProcessId> chosen;
  chosen.reserve(r);
  for (std::size_t x = 0; x < m; ++x) {
    chosen.clear();
    while (chosen.size() < r) {
      const double u = rng.uniform01() * total;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      const auto p = static_cast<ProcessId>(it == cdf.end()
                                                ? n - 1
                                                : it - cdf.begin());
      if (std::find(chosen.begin(), chosen.end(), p) == chosen.end()) {
        chosen.push_back(p);
      }
    }
    for (ProcessId p : chosen) {
      d.per_process[static_cast<std::size_t>(p)].push_back(
          static_cast<VarId>(x));
    }
  }
  for (auto& xs : d.per_process) std::sort(xs.begin(), xs.end());
  return d;
}

}  // namespace pardsm::graph::topo
