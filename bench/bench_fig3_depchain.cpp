// E3 — Figure 3: x-dependency chains along hoops.
//
// Regenerates the canonical chain pattern for growing hoop lengths and
// shows the detector finding it under the causal relation while the PRAM
// relation never chains (Theorem 2's mechanism).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "history/canned.h"
#include "sharegraph/dependency_chain.h"

namespace {

using namespace pardsm;
using namespace pardsm::graph;
namespace bu = pardsm::benchutil;

Distribution to_dist(const hist::paper::Example& ex) {
  return Distribution{ex.name, ex.history.var_count(), ex.distribution};
}

void print_table(bu::Harness& h) {
  bu::banner("E3: x-dependency chain detection along the Fig-3 hoop");
  bu::row({"hoop length k", "causal chain", "chain ops", "PRAM chain",
           "detect-ms"});
  for (std::size_t k : {2u, 3u, 4u, 6u, 8u}) {
    const auto ex = hist::paper::fig3_dependency_chain(k);
    const ShareGraph sg(to_dist(ex));
    ChainWitness causal;
    const double ms = bu::time_ms([&] {
      causal = find_chain(ex.history, sg, ex.focus_var,
                          ChainRelation::kCausal);
    });
    const auto pram =
        find_chain(ex.history, sg, ex.focus_var, ChainRelation::kPram);
    bu::row({bu::num(static_cast<std::uint64_t>(k)),
             bu::yesno(causal.found),
             bu::num(static_cast<std::uint64_t>(causal.ops.size())),
             pram.found ? "YES(!)" : "no  (thm 2)", bu::num(ms, 3)});
    h.record({.label = "fig3-k" + std::to_string(k),
              .distribution = ex.name,
              .ops = ex.history.size(),
              .wall_ns = static_cast<std::uint64_t>(ms * 1e6),
              .extra = {{"causal_chain", causal.found ? 1.0 : 0.0},
                        {"chain_ops", static_cast<double>(causal.ops.size())},
                        {"pram_chain", pram.found ? 1.0 : 0.0},
                        {"detect_ms", ms}}});
  }

  bu::banner("Fig 3 witness (k = 3)");
  const auto ex = hist::paper::fig3_dependency_chain(3);
  const ShareGraph sg(to_dist(ex));
  const auto w =
      find_chain(ex.history, sg, ex.focus_var, ChainRelation::kCausal);
  std::cout << "  ";
  for (hist::OpIndex op : w.ops) {
    std::cout << ex.history.op(op).to_string() << "  ";
  }
  std::cout << "\n  (paper: w_a(x)v 7->co o_b(x) through every hoop "
               "process)\n";
}

void BM_FindChainCausal(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto ex = hist::paper::fig3_dependency_chain(k);
  const ShareGraph sg(to_dist(ex));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_chain(ex.history, sg, ex.focus_var, ChainRelation::kCausal));
  }
}
BENCHMARK(BM_FindChainCausal)->DenseRange(2, 10, 2);

void BM_FindChainLazySemiCausal(benchmark::State& state) {
  const auto ex = hist::paper::fig6_not_lazy_semi_causal();
  const ShareGraph sg(to_dist(ex));
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_chain(ex.history, sg, ex.focus_var,
                                        ChainRelation::kLazySemiCausal));
  }
}
BENCHMARK(BM_FindChainLazySemiCausal);

void BM_GeneratingEdges(benchmark::State& state) {
  const auto ex = hist::paper::fig3_dependency_chain(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generating_edges(ex.history, ChainRelation::kCausal));
  }
}
BENCHMARK(BM_GeneratingEdges);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "fig3_depchain");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
