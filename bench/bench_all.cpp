// bench_all — run every bench binary and merge their JSON results.
//
//   $ ./bench/bench_all [--quick] [--out BENCH_ALL.json] [--baseline OLD.json]
//                       [--filter REGEX] [--list]
//
// Each bench_* binary understands --quick (skip google-benchmark timings,
// print the paper artifact and record counters only) and
// --json=<path> (where to write its BENCH_<name>.json).  bench_all invokes
// the siblings living next to its own binary, then splices the per-bench
// JSON files into one results document, so the perf trajectory of the
// repo is a single machine-readable artifact per run.
//
// --filter runs only the benches whose name matches REGEX (re-run a
// single bench without the whole suite); --list prints the bench names
// and exits.  ci.sh forwards $BENCH_FILTER as --filter.
//
// --baseline compares the freshly produced document against an earlier
// BENCH_ALL.json: rows are matched on (bench, label, protocol,
// distribution) and the wall_ns speedup is printed per row plus a
// geometric-mean summary, and a guarded "baseline" section is appended
// to the merged JSON.  Rows whose wall_ns is missing, zero or non-finite
// in either document are skipped (and counted) rather than turned into
// inf/NaN speedups.  The parser is deliberately minimal — it reads the
// line-oriented format this harness itself emits, not arbitrary JSON.
//
// --gate[=MIN] turns the baseline diff into a pass/fail perf smoke (ci.sh
// runs it against the committed BENCH_BASELINE.json): the run fails when
// any current row carries a non-finite wall_ns, when no rows match the
// baseline at all (a silently dead gate is a failure, not a pass), or
// when any matched row is wildly regressed — speedup below MIN (default
// 0.1, i.e. 10x slower).  The threshold is deliberately loose: quick-mode
// rows are short and CI machines are noisy, so the gate exists to catch
// order-of-magnitude regressions and NaN corruption, not percent drift.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <regex>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

constexpr std::array kBenches = {
    "bench_fig1_sharegraph",    "bench_fig2_hoops",
    "bench_fig3_depchain",      "bench_fig456_checkers",
    "bench_fig789_bellman_ford", "bench_theorem1_relevance",
    "bench_theorem2_pram",      "bench_control_overhead",
    "bench_batching",
    "bench_latency",            "bench_checkers_scaling",
    "bench_oblivious_apps",     "bench_open_question",
    "bench_scenarios",          "bench_scale",
    "bench_sockets",            "bench_workload",
};

/// Bench-JSON schemas this runner understands.  The v4 row format is a
/// strict superset of v3 (new percentile columns only), so rows from
/// either version parse with the same line-oriented reader — which is
/// what lets --baseline diff a v3 BENCH_ALL.json against a v4 run.
/// Rows under any *other* schema are skipped (and counted) rather than
/// misparsed.
bool known_schema(const std::string& schema) {
  return schema == "pardsm-bench-v3" || schema == "pardsm-bench-v4";
}

std::string self_dir() {
  std::array<char, 4096> buf{};
  const auto n = ::readlink("/proc/self/exe", buf.data(), buf.size() - 1);
  std::string path = n > 0 ? std::string(buf.data(), static_cast<std::size_t>(n)) : ".";
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Value of a `"key": "string"` field on `line`, or "" if absent.
std::string string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto begin = pos + needle.size();
  const auto end = line.find('"', begin);
  return end == std::string::npos ? std::string{} : line.substr(begin, end - begin);
}

/// Value of a `"key": 123` numeric field on `line`, or -1 if absent.
double number_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// wall_ns per (bench, label, protocol, distribution) row of a BENCH_ALL
/// document.  Rows whose wall_ns is missing, zero or non-finite are
/// counted into `skipped` instead of being kept: a 0/absent measurement
/// must never become an inf/NaN speedup downstream.  Non-finite rows are
/// additionally counted into `nonfinite` — the harness writes doubles
/// through finite_or(), so a NaN/inf here means a corrupted document and
/// the --gate smoke fails on it.
std::map<std::string, double> wall_ns_by_row(const std::string& doc,
                                             std::size_t& skipped,
                                             std::size_t& nonfinite) {
  skipped = 0;
  nonfinite = 0;
  std::map<std::string, double> out;
  std::istringstream in(doc);
  std::string line;
  std::string bench;
  bool parseable = true;
  while (std::getline(in, line)) {
    const std::string b = string_field(line, "bench");
    if (!b.empty()) bench = b;
    const std::string schema = string_field(line, "schema");
    if (!schema.empty()) parseable = known_schema(schema);
    const std::string label = string_field(line, "label");
    if (label.empty()) continue;
    if (!parseable) {
      // A future (or foreign) schema version: its rows are not ours to
      // interpret — count them as unmatched instead of misparsing.
      ++skipped;
      continue;
    }
    const double wall_ns = number_field(line, "wall_ns");
    if (!std::isfinite(wall_ns)) {
      ++nonfinite;
      ++skipped;
      continue;
    }
    if (wall_ns <= 0) {
      ++skipped;
      continue;
    }
    const std::string key = bench + " | " + label + " | " +
                            string_field(line, "protocol") + " | " +
                            string_field(line, "distribution");
    out[key] = wall_ns;
  }
  return out;
}

/// Outcome of the baseline diff, for the optional --gate verdict.
struct BaselineDiff {
  std::string json;           ///< "baseline" JSON section ("" = no match)
  std::size_t matched = 0;
  double min_speedup = 0.0;   ///< worst matched row (0 when none matched)
  std::size_t nonfinite_current = 0;  ///< corrupted rows in the new doc
};

/// Print the per-row speedup table and return the diff outcome; the JSON
/// "baseline" object holds only finite, guarded speedups (empty string
/// when nothing matched).
BaselineDiff diff_against_baseline(const std::string& baseline_doc,
                                   const std::string& current_doc) {
  BaselineDiff result;
  // Skip counters kept per document: a quick-mode baseline is full of
  // unmeasured rows that could never match a filtered run — lumping them
  // together would make the current run's coverage look artificially low.
  std::size_t skipped_baseline = 0;
  std::size_t skipped_current = 0;
  std::size_t nonfinite_baseline = 0;
  const auto before =
      wall_ns_by_row(baseline_doc, skipped_baseline, nonfinite_baseline);
  const auto after =
      wall_ns_by_row(current_doc, skipped_current, result.nonfinite_current);
  std::printf("\n%-72s %12s %12s %8s\n", "row (bench | label | protocol | dist)",
              "old ns", "new ns", "speedup");
  std::ostringstream rows;
  double log_sum = 0;
  std::size_t matched = 0;
  for (const auto& [key, new_ns] : after) {
    const auto it = before.find(key);
    if (it == before.end()) continue;
    // Both maps only hold finite wall_ns > 0, so the ratio is always a
    // finite, positive speedup.
    const double speedup = it->second / new_ns;
    std::printf("%-72s %12.0f %12.0f %7.2fx\n", key.c_str(), it->second,
                new_ns, speedup);
    if (matched != 0) rows << ",\n";
    rows << "      {\"row\": \"" << key << "\", \"old_ns\": " << it->second
         << ", \"new_ns\": " << new_ns << ", \"speedup\": " << speedup
         << "}";
    log_sum += std::log(speedup);
    result.min_speedup =
        matched == 0 ? speedup : std::min(result.min_speedup, speedup);
    ++matched;
  }
  result.matched = matched;
  if (matched == 0) {
    std::printf("[bench_all] baseline: no matching wall_ns rows "
                "(%zu current / %zu baseline rows unmeasured)\n",
                skipped_current, skipped_baseline);
    return result;
  }
  const double geomean = std::exp(log_sum / static_cast<double>(matched));
  std::printf("[bench_all] baseline: %zu rows matched, geomean speedup "
              "%.2fx, worst row %.2fx (%zu current / %zu baseline rows "
              "unmeasured, skipped)\n",
              matched, geomean, result.min_speedup, skipped_current,
              skipped_baseline);
  std::ostringstream os;
  os << "  \"baseline\": {\n    \"matched\": " << matched
     << ",\n    \"skipped_unmeasured_current\": " << skipped_current
     << ",\n    \"skipped_unmeasured_baseline\": " << skipped_baseline
     << ",\n    \"geomean_speedup\": " << geomean
     << ",\n    \"min_speedup\": " << result.min_speedup
     << ",\n    \"rows\": [\n" << rows.str() << "\n    ]\n  },\n";
  result.json = os.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool list = false;
  bool out_explicit = false;
  bool gate = false;
  double gate_min = 0.1;  // a matched row 10x slower than baseline fails
  std::string out = "BENCH_ALL.json";
  std::string baseline;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--gate=", 0) == 0) {
      gate = true;
      gate_min = std::atof(arg.c_str() + 7);
      if (!(gate_min > 0) || !std::isfinite(gate_min)) {
        std::cerr << "bench_all: --gate threshold must be a positive "
                     "number, got '" << arg << "'\n";
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
      out_explicit = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
      out_explicit = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(11);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else if (arg.rfind("--filter=", 0) == 0) {
      filter = arg.substr(9);
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else {
      std::cerr << "usage: bench_all [--quick] [--out BENCH_ALL.json] "
                   "[--baseline OLD.json] [--gate[=MIN_SPEEDUP]] "
                   "[--filter REGEX] [--list]\n";
      return 2;
    }
  }
  if (gate && baseline.empty()) {
    std::cerr << "bench_all: --gate requires --baseline\n";
    return 2;
  }

  if (list) {
    for (const char* name : kBenches) std::cout << name << '\n';
    return 0;
  }

  // A filtered run holds a subset of the rows: never clobber the default
  // full merged document with it unless the caller chose the path.
  if (!filter.empty() && !out_explicit) {
    out = "BENCH_FILTERED.json";
    std::cout << "[bench_all] --filter active: writing " << out
              << " (pass --out to override)\n";
  }

  std::regex filter_re;
  if (!filter.empty()) {
    try {
      filter_re = std::regex(filter);
    } catch (const std::regex_error& e) {
      std::cerr << "bench_all: bad --filter regex '" << filter
                << "': " << e.what() << '\n';
      return 2;
    }
  }

  const std::string dir = self_dir();
  std::vector<std::string> merged;
  std::size_t selected = 0;
  int failures = 0;

  for (const char* name : kBenches) {
    if (!filter.empty() && !std::regex_search(name, filter_re)) continue;
    ++selected;
    const std::string json = "BENCH_" + std::string(name).substr(6) + ".json";
    std::string cmd = dir + "/" + name + " --json=" + json;
    if (quick) cmd += " --quick";
    std::cout << "[bench_all] " << name << (quick ? " (quick)" : "") << "\n";
    std::cout.flush();
    const int status = std::system(cmd.c_str());
    const std::string body = read_file(json);
    if (status != 0 || body.empty()) {
      std::cerr << "[bench_all] FAILED: " << name;
      if (WIFSIGNALED(status)) {
        std::cerr << " (signal " << WTERMSIG(status) << ")";
      } else {
        std::cerr << " (exit " << WEXITSTATUS(status) << ")";
      }
      std::cerr << '\n';
      ++failures;
      continue;
    }
    merged.push_back(body);
  }

  if (selected == 0) {
    std::cerr << "bench_all: --filter '" << filter
              << "' matched no benches (try --list)\n";
    return 2;
  }

  std::ostringstream benches_json;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    benches_json << merged[i];
    if (i + 1 < merged.size()) benches_json << ",";
    benches_json << "\n";
  }

  // The guarded baseline diff runs before the write so its (finite-only)
  // speedup rows land inside the merged document.
  std::string baseline_json;
  int gate_failures = 0;
  if (!baseline.empty()) {
    const std::string baseline_doc = read_file(baseline);
    if (baseline_doc.empty()) {
      std::cerr << "[bench_all] cannot read baseline " << baseline << '\n';
      return 1;
    }
    const BaselineDiff diff =
        diff_against_baseline(baseline_doc, benches_json.str());
    baseline_json = diff.json;
    if (gate) {
      if (diff.nonfinite_current != 0) {
        std::cerr << "[bench_all] GATE FAILED: " << diff.nonfinite_current
                  << " current rows carry non-finite wall_ns\n";
        ++gate_failures;
      }
      if (diff.matched == 0) {
        std::cerr << "[bench_all] GATE FAILED: no rows matched the "
                     "baseline (dead gate)\n";
        ++gate_failures;
      } else if (diff.min_speedup < gate_min) {
        std::cerr << "[bench_all] GATE FAILED: worst matched row speedup "
                  << diff.min_speedup << "x is below the --gate threshold "
                  << gate_min << "x\n";
        ++gate_failures;
      }
      if (gate_failures == 0) {
        std::cout << "[bench_all] gate passed: " << diff.matched
                  << " rows within " << gate_min << "x of baseline\n";
      }
    }
  }

  std::ostringstream doc;
  doc << "{\n  \"schema\": \"pardsm-bench-v4\",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n" << baseline_json
      << "  \"benches\": [\n" << benches_json.str() << "  ]\n}\n";

  std::ofstream os(out);
  os << doc.str();
  os.close();

  std::cout << "[bench_all] wrote " << out << " (" << merged.size() << "/"
            << selected << " selected benches)\n";
  return failures == 0 && gate_failures == 0 ? 0 : 1;
}
