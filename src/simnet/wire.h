// Byte-level serialization for the real-sockets transport root.
//
// The simulated runtimes pass MessageBody pointers through one address
// space; SocketTransport puts frames on real TCP connections between OS
// processes, so every body that may cross a socket needs an exact byte
// codec.  WireWriter/WireReader are bounds-checked little-endian buffer
// cursors; the body registry maps a stable WireType tag to a decoder, and
// encode_body/decode_body frame a polymorphic body as [tag][fields].
//
// Codecs live next to the bodies they serialize: each protocol .cpp
// overrides MessageBody::wire_type()/wire_encode() on its private body
// structs and registers the matching decoder with a namespace-scope
// wire::BodyRegistrar.  Transport-layer frames (ARQ DATA/ACK, batching
// BatchFrame) nest their payload bodies recursively through
// encode_body/decode_body, so any stack order serializes.
//
// The format favours obviousness over compactness (fixed-width fields,
// kind tags as strings re-interned on receipt): the paper's byte ledger is
// MessageMeta::wire_bytes(), not the frame encoding, and SocketTransport
// reports real frame bytes separately (SocketCounters::bytes_*).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/check.h"
#include "simnet/message.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Append-only little-endian buffer cursor.
class WireWriter {
 public:
  /// Pre-size the buffer (a capacity hint also keeps GCC's inlined
  /// vector-growth analysis from flagging spurious -Warray-bounds).
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s) {
    PARDSM_CHECK(s.size() <= 0xFFFF, "wire: string too long");
    u16(static_cast<std::uint16_t>(s.size()));
    for (char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a received frame.  Every accessor throws
/// (PARDSM_CHECK) on underrun — a truncated or corrupt frame must never
/// read past the buffer.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return load<std::uint16_t>(); }
  std::uint32_t u32() { return load<std::uint32_t>(); }
  std::uint64_t u64() { return load<std::uint64_t>(); }
  std::int32_t i32() { return load<std::int32_t>(); }
  std::int64_t i64() { return load<std::int64_t>(); }
  double f64() { return load<double>(); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::size_t n = u16();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    PARDSM_CHECK(pos_ + n <= size_, "wire: frame underrun");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  template <typename T>
  T load() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

namespace wire {

/// Stable body tags.  Append only — a tag is part of the wire contract
/// between node binaries of the same build (the bootstrap never mixes
/// builds, but stable tags keep frame dumps readable).
enum WireType : std::uint32_t {
  kNone = 0,
  // mcs/protocol.cpp (crash-recovery re-sync handshake)
  kResyncRequest = 1,
  kResyncResponse = 2,
  // protocol payloads
  kPramUpdate = 10,
  kCausalUpdate = 11,
  kPartialCausalMsg = 12,
  kAdHocMsg = 13,
  kSlowUpdate = 14,
  kSeqWriteRequest = 15,
  kSeqWriteCommit = 16,
  kAtomicReadRequest = 17,
  kAtomicReadReply = 18,
  kAtomicWriteRequest = 19,
  kAtomicWriteAck = 20,
  kAtomicRefresh = 21,
  kCacheWriteReq = 22,
  kCacheCommit = 23,
  // transport-layer frames (nest payload bodies recursively)
  kArqData = 40,
  kArqAck = 41,
  kBatchFrame = 42,
  // tests
  kTestPayload = 90,
};

/// Decoders allocate the body from the receiving transport's arena, so
/// decoded bodies recycle through the same pools as locally created ones.
using DecodeFn = BodyRef (*)(WireReader&, BodyArena&);

/// Register the decoder for `type` (duplicate registration is a bug).
void register_decoder(std::uint32_t type, DecodeFn fn);

/// Encode [wire_type][fields]; rejects bodies with wire_type() == 0.
void encode_body(WireWriter& w, const MessageBody& body);

/// Decode one framed body; rejects unknown tags.
[[nodiscard]] BodyRef decode_body(WireReader& r, BodyArena& arena);

/// MessageMeta: kind travels as its string spelling and is re-interned on
/// receipt (KindId values are process-local).
void encode_meta(WireWriter& w, const MessageMeta& meta);
[[nodiscard]] MessageMeta decode_meta(WireReader& r);

// -- small shared field helpers ---------------------------------------------

inline void put_time(WireWriter& w, TimePoint t) { w.i64(t.us); }
inline TimePoint get_time(WireReader& r) { return TimePoint{r.i64()}; }
inline void put_duration(WireWriter& w, Duration d) { w.i64(d.us); }
inline Duration get_duration(WireReader& r) { return Duration{r.i64()}; }
inline void put_write_id(WireWriter& w, const WriteId& id) {
  w.i32(id.writer);
  w.i64(id.seq);
}
inline WriteId get_write_id(WireReader& r) {
  WriteId id;
  id.writer = r.i32();
  id.seq = r.i64();
  return id;
}

/// Registers a decoder at namespace scope:
///   const wire::BodyRegistrar reg(wire::kPramUpdate, decode_pram);
struct BodyRegistrar {
  BodyRegistrar(std::uint32_t type, DecodeFn fn) {
    register_decoder(type, fn);
  }
};

}  // namespace wire
}  // namespace pardsm
