// Network latency models.
//
// A LatencyModel answers "how long does a message from p to q take?".
// Models draw from the channel's own Rng stream, so latency sequences are
// reproducible per (seed, channel) regardless of global event interleaving.
#pragma once

#include <memory>
#include <vector>

#include "simnet/ids.h"
#include "simnet/rng.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Strategy interface for sampling per-message network latency.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Sample the latency of one message from `from` to `to`.
  virtual Duration sample(ProcessId from, ProcessId to, Rng& rng) = 0;

  /// A value no sample() can undershoot, for any pair.  The parallel
  /// engine sizes its conservative quantum from this (every message
  /// crossing a shard boundary must span at least one quantum); the
  /// default is the 1 µs clock granularity — always safe, but a model
  /// with a real floor should report it or parallel windows degenerate
  /// to single-tick lockstep.
  [[nodiscard]] virtual Duration lower_bound() const { return micros(1); }

  /// Deep copy (each Network owns its own instance).
  [[nodiscard]] virtual std::unique_ptr<LatencyModel> clone() const = 0;
};

/// Every message takes exactly `fixed` time.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration fixed) : fixed_(fixed) {}
  Duration sample(ProcessId, ProcessId, Rng&) override { return fixed_; }
  [[nodiscard]] Duration lower_bound() const override { return fixed_; }
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override {
    return std::make_unique<ConstantLatency>(fixed_);
  }

 private:
  Duration fixed_;
};

/// Latency uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration lo, Duration hi);
  Duration sample(ProcessId, ProcessId, Rng& rng) override;
  [[nodiscard]] Duration lower_bound() const override { return lo_; }
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override {
    return std::make_unique<UniformLatency>(lo_, hi_);
  }

 private:
  Duration lo_, hi_;
};

/// Base latency plus an exponential tail (truncated), approximating a
/// congested WAN link: base + Exp(mean_tail), capped at base + cap.
class ExponentialTailLatency final : public LatencyModel {
 public:
  ExponentialTailLatency(Duration base, Duration mean_tail, Duration cap);
  Duration sample(ProcessId, ProcessId, Rng& rng) override;
  [[nodiscard]] Duration lower_bound() const override { return base_; }
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override {
    return std::make_unique<ExponentialTailLatency>(base_, mean_, cap_);
  }

 private:
  Duration base_, mean_, cap_;
};

/// Fully specified per-directed-pair latency matrix (geo-distributed sites).
class MatrixLatency final : public LatencyModel {
 public:
  /// `matrix[from][to]` is the one-way latency; diagonal entries are used
  /// for loopback sends.
  explicit MatrixLatency(std::vector<std::vector<Duration>> matrix);
  Duration sample(ProcessId from, ProcessId to, Rng&) override;
  [[nodiscard]] Duration lower_bound() const override { return min_; }
  [[nodiscard]] std::unique_ptr<LatencyModel> clone() const override {
    return std::make_unique<MatrixLatency>(matrix_);
  }

 private:
  std::vector<std::vector<Duration>> matrix_;
  Duration min_ = micros(1);
};

}  // namespace pardsm
