// Variable-distribution generators.
//
// Every generator returns a Distribution (per-process variable sets) from
// which a ShareGraph is built.  The corpus covers the paper's figures and
// the parameter sweeps of the benches: hoop-free topologies, single-hoop
// chains, hoop-rich rings/grids, clustered systems and random
// r-replication.
#pragma once

#include <cstdint>

#include "sharegraph/share_graph.h"

namespace pardsm::graph::topo {

/// Figure 1 of the paper: three processes, two variables;
/// X_i = {x1, x2}, X_j = {x1}, X_k = {x2}  (ids: p0=i, p1=j, p2=k;
/// x1=var 0, x2=var 1).
[[nodiscard]] Distribution fig1();

/// Every variable on every process (complete replication, no hoops).
[[nodiscard]] Distribution complete(std::size_t n, std::size_t m);

/// Chain with one closing variable: processes 0..n-1; a "link" variable
/// l_i shared by (i, i+1), and variable x (id 0) shared by the two ends
/// {0, n-1}.  The whole chain is an x-hoop — the canonical Figure 2 shape.
/// Note the closing variable turns the share graph into a cycle, so every
/// link variable gains a hoop around the other side too.
[[nodiscard]] Distribution chain_with_hoop(std::size_t n);

/// Open chain: link variables only, no closing variable.  Removing any
/// C(l_i) disconnects the graph, so *no* variable has a hoop — the
/// hoop-free baseline of the benches.
[[nodiscard]] Distribution open_chain(std::size_t n);

/// Ring: link variable between every (i, (i+1) mod n).  Every variable has
/// a hoop around the other side of the ring.
[[nodiscard]] Distribution ring(std::size_t n);

/// r×c grid: one variable per grid edge (shared by its two endpoints).
[[nodiscard]] Distribution grid(std::size_t rows, std::size_t cols);

/// k fully-replicated clusters of `cluster_size` processes, adjacent
/// clusters bridged by one shared variable.  Hoops exist for bridge
/// variables when clusters form a cycle (`cyclic`).
[[nodiscard]] Distribution clusters(std::size_t k, std::size_t cluster_size,
                                    bool cyclic);

/// Random distribution: m variables, each replicated on `r` distinct
/// processes chosen uniformly (deterministic in `seed`).
[[nodiscard]] Distribution random_replication(std::size_t n, std::size_t m,
                                              std::size_t r,
                                              std::uint64_t seed);

/// Star: variable s_i shared by the hub (p0) and leaf i; plus one variable
/// shared by two leaves (creating a hoop through the hub).
[[nodiscard]] Distribution star(std::size_t leaves);

/// The Bellman-Ford example of Section 6 / Figure 8: five processes.
/// Variables: x_i = ids 0..4 (distance values), k_i = ids 5..9
/// (synchronization counters).  X_i sets exactly as printed in the paper.
[[nodiscard]] Distribution bellman_ford_fig8();

/// d-dimensional hypercube: 2^d processes, one variable per edge.
/// Dense in hoops (every edge closes through the other 2^d - 2 vertices).
[[nodiscard]] Distribution hypercube(std::size_t dimensions);

/// rows×cols torus (wrap-around grid), one variable per edge.
[[nodiscard]] Distribution torus(std::size_t rows, std::size_t cols);

/// Preferential-attachment ("scale-free") share graph: each new process
/// shares one fresh variable with `attach` existing processes chosen with
/// probability proportional to their current degree.  Models the skewed
/// sharing patterns of collaborative large-scale systems (§3.3).
[[nodiscard]] Distribution preferential_attachment(std::size_t n,
                                                   std::size_t attach,
                                                   std::uint64_t seed);

// -- scale-oriented generators (hundreds to thousands of processes) --------
//
// The paper's figures stop at a handful of processes, but its efficiency
// argument — metadata cost tracks *which* processes share, not how many
// exist — only shows at sizes where O(n) and O(|C(x)|) visibly diverge.
// These three shapes are the large-n corpus of bench_scale and
// tests/test_scale.cpp.

/// Datacenter sharding: `shards` disjoint replica groups of
/// `replicas_per_var` processes each (n = shards · replicas_per_var);
/// variable x lives on every process of shard x mod shards.  Cliques never
/// cross shards, so the share graph is `shards` disconnected cells — the
/// best case for partial replication (and for O(active pairs) channel
/// state: traffic touches only intra-shard pairs).
[[nodiscard]] Distribution sharded(std::size_t shards,
                                   std::size_t replicas_per_var,
                                   std::size_t vars);

/// Hierarchical ("tree of cells"): a complete `branching`-ary tree of
/// `depth` levels, one process per node (n = Σ branching^l).  Every
/// internal node owns one cell variable replicated on itself and its
/// children, so each cell is fully replicated internally and bridged to
/// its parent cell through the shared parent process — the classic
/// aggregation topology (rack → pod → datacenter).
[[nodiscard]] Distribution hierarchical(std::size_t branching,
                                        std::size_t depth);

/// Popularity-skewed replication: m variables, each replicated on `r`
/// distinct processes drawn from a Zipf(`skew`) distribution over process
/// ids (process 0 hottest).  Low-id processes join many cliques (hot
/// coordinators), the tail joins few — the skewed overlap patterns of
/// real sharded stores, rich in hoops through the hot processes.
/// Deterministic in `seed`; skew = 0 degenerates to uniform replication.
[[nodiscard]] Distribution zipf_replication(std::size_t n, std::size_t m,
                                            std::size_t r, double skew,
                                            std::uint64_t seed);

}  // namespace pardsm::graph::topo
