// Vector clocks over processes.
//
// Used by the causal protocols to timestamp updates.  Entry k counts the
// writes by process k that the owner has causally incorporated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/ids.h"

namespace pardsm::mcs {

/// A process-indexed vector clock.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : entries_(n, 0) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::int64_t at(ProcessId p) const {
    return entries_[static_cast<std::size_t>(p)];
  }
  void set(ProcessId p, std::int64_t v) {
    entries_[static_cast<std::size_t>(p)] = v;
  }
  void increment(ProcessId p) { ++entries_[static_cast<std::size_t>(p)]; }

  /// Component-wise maximum.
  void merge(const VectorClock& other);

  /// True if every entry of *this <= the matching entry of other.
  [[nodiscard]] bool leq(const VectorClock& other) const;

  /// Causal-delivery readiness test for a message timestamped `msg` from
  /// `sender`, at a receiver whose clock is *this:
  ///   msg[sender] == this[sender] + 1 and msg[k] <= this[k] for k≠sender.
  [[nodiscard]] bool ready_from(const VectorClock& msg,
                                ProcessId sender) const;

  /// Serialized size in bytes (8 per entry) — control-byte accounting.
  [[nodiscard]] std::uint64_t wire_bytes() const { return 8 * entries_.size(); }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  std::vector<std::int64_t> entries_;
};

}  // namespace pardsm::mcs
