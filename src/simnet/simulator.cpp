#include "simnet/simulator.h"

#include <utility>

#include "simnet/check.h"

namespace pardsm {

Simulator::Simulator(SimOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

Simulator::~Simulator() = default;

ProcessId Simulator::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  PARDSM_CHECK(!network_frozen_,
               "add_endpoint: cannot add endpoints after first send");
  endpoints_.push_back(ep);
  return static_cast<ProcessId>(endpoints_.size() - 1);
}

void Simulator::send(ProcessId from, ProcessId to,
                     std::shared_ptr<const MessageBody> body,
                     MessageMeta meta) {
  if (!network_frozen_) {
    network_ = std::make_unique<Network>(
        endpoints_.size(), options_.channel,
        options_.latency ? options_.latency->clone() : nullptr,
        rng_.fork(/*tag=*/0x4E455457ULL));  // "NETW"
    stats_.resize(endpoints_.size());
    network_frozen_ = true;
  }
  PARDSM_CHECK(to >= 0 && static_cast<std::size_t>(to) < endpoints_.size(),
               "send: bad destination");

  Message m;
  m.from = from;
  m.to = to;
  m.body = std::move(body);
  m.meta = std::move(meta);
  m.id = next_msg_id_++;
  m.send_time = now_;

  stats_.on_send(m);
  trace_.record({TraceEntry::Type::kSend, now_, from, to, m.id, m.meta.kind});

  const auto deliveries = network_->plan_delivery(from, to, now_);
  if (deliveries.empty()) {
    trace_.record({TraceEntry::Type::kDrop, now_, from, to, m.id, m.meta.kind});
    return;
  }
  for (TimePoint at : deliveries) {
    Message copy = m;
    copy.deliver_time = at;
    queue_.schedule(at, [this, msg = std::move(copy)]() mutable {
      deliver(std::move(msg));
    });
  }
}

void Simulator::set_timer(ProcessId who, Duration delay, TimerTag tag) {
  PARDSM_CHECK(who >= 0 && static_cast<std::size_t>(who) < endpoints_.size(),
               "set_timer: bad process");
  PARDSM_CHECK(delay.us >= 0, "set_timer: negative delay");
  queue_.schedule(now_ + delay, [this, who, tag] {
    trace_.record({TraceEntry::Type::kTimer, now_, who, kNoProcess, tag,
                   "timer"});
    endpoints_[static_cast<std::size_t>(who)]->on_timer(tag);
  });
}

void Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  PARDSM_CHECK(when >= now_, "schedule_at: time in the past");
  queue_.schedule(when, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  PARDSM_CHECK(e.when >= now_, "event queue went backwards");
  now_ = e.when;
  ++events_fired_;
  PARDSM_CHECK(events_fired_ <= options_.max_events,
               "simulation exceeded max_events — non-terminating protocol?");
  e.fire();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  return queue_.empty();
}

void Simulator::deliver(Message m) {
  stats_.on_deliver(m);
  trace_.record({TraceEntry::Type::kDeliver, now_, m.from, m.to, m.id,
                 m.meta.kind});
  endpoints_[static_cast<std::size_t>(m.to)]->on_message(m);
}

}  // namespace pardsm
