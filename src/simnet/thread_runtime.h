// Real-thread runtime: one std::thread per MCS process.
//
// Protocols validated under the deterministic simulator also run here,
// under genuine preemptive parallelism with lock-guarded mailboxes.  This
// is the repository's "multi-node emulation": each process has private
// state touched only by its own thread, and all interaction happens through
// messages — a faithful shared-nothing execution on one machine.
//
// Delivery guarantees: per sender-receiver pair, FIFO (a mailbox is a
// mutex-protected queue appended in program order).  Loss/duplication can
// be injected like in the simulator.  There is no artificial latency;
// asynchrony comes from the OS scheduler.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "simnet/network.h"
#include "simnet/rng.h"
#include "simnet/stats.h"
#include "simnet/transport.h"

namespace pardsm {

/// Options for the thread runtime.
struct ThreadRuntimeOptions {
  std::uint64_t seed = 1;
  /// Loss / duplication (FIFO ordering is inherent and cannot be disabled).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

/// Transport implementation where every endpoint runs on its own thread.
class ThreadRuntime final : public HostTransport {
 public:
  explicit ThreadRuntime(ThreadRuntimeOptions options = {});
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  /// Register an endpoint; must be called before start().
  ProcessId add_endpoint(Endpoint* ep) override;

  /// Spawn one thread per endpoint and begin processing.
  void start();

  /// Block until no queued work, no running handler and no pending timer
  /// remains, or until `timeout` elapses.  Returns true on quiescence.
  bool await_quiescence(std::chrono::milliseconds timeout);

  /// Stop all threads (after draining is the caller's responsibility —
  /// pair with await_quiescence for clean shutdown) and join them.
  void stop();

  /// Run `task` on the thread owning process `who`.  This is how drivers
  /// invoke protocol operations without data races.
  void post(ProcessId who, std::function<void()> task);

  // -- Transport interface ---------------------------------------------------
  void send(ProcessId from, ProcessId to, BodyRef body,
            MessageMeta meta) override;
  [[nodiscard]] TimePoint now() const override;
  void set_timer(ProcessId who, Duration delay, TimerTag tag) override;
  [[nodiscard]] std::size_t process_count() const override;
  /// Concurrent arena: bodies cross worker threads, so refcounts are
  /// atomic and freelists locked.
  [[nodiscard]] BodyArena& arena(ProcessId owner) override {
    (void)owner;
    return arena_;
  }

  [[nodiscard]] NetworkStats& stats() { return stats_; }

 private:
  struct TimerItem {
    std::chrono::steady_clock::time_point deadline;
    TimerTag tag = 0;
    friend bool operator>(const TimerItem& a, const TimerItem& b) {
      return a.deadline > b.deadline;
    }
  };

  /// One per process: its queue, timers and worker thread.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
    std::deque<std::function<void()>> tasks;
    std::priority_queue<TimerItem, std::vector<TimerItem>, std::greater<>>
        timers;
    std::thread worker;
  };

  void worker_loop(ProcessId self);
  void finish_item();

  ThreadRuntimeOptions options_;
  BodyArena arena_{/*concurrent=*/true};
  std::vector<Endpoint*> endpoints_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  NetworkStats stats_;

  std::mutex rng_mu_;
  Rng rng_;

  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> pending_{0};
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;

  std::chrono::steady_clock::time_point start_time_{};
  std::uint64_t next_msg_id_ = 1;
  std::mutex msg_id_mu_;
};

}  // namespace pardsm
