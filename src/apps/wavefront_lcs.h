// Wavefront dynamic programming (longest common subsequence) on PRAM
// shared memory.
//
// Dynamic programming is the third oblivious-computation family Lipton &
// Sandberg [13] name (echoed in §5 of the paper).  Process p computes row
// p+1 of the LCS table of strings s (rows) and t (columns); it reads row p
// — owned by process p-1 — gated by p-1's progress counter.
//
// The distribution is an *open chain*: process p shares variables only
// with p-1 and p+1, so the share graph has no hoops at all and even
// causal consistency would be hoop-free here (DESIGN.md E2/S1 use this as
// the hoop-free contrast topology).  PRAM again suffices by the
// single-writer flag hand-off: cells of row p are written before the
// counter c_p advances past them.
#pragma once

#include <string>

#include "mcs/driver.h"
#include "sharegraph/share_graph.h"

namespace pardsm::apps {

/// Reference LCS length (oracle).
[[nodiscard]] std::size_t lcs_reference(const std::string& s,
                                        const std::string& t);

/// Options for a distributed run.
struct LcsOptions {
  mcs::ProtocolKind protocol = mcs::ProtocolKind::kPramPartial;
  std::uint64_t sim_seed = 1;
  Duration poll = millis(1);
};

/// Result of a distributed LCS computation.
struct LcsResult {
  std::size_t length = 0;
  bool matches_reference = false;
  ProcessTraffic total_traffic;
  TimePoint finished_at{};
  /// The share graph of the run's distribution had no hoops (always true
  /// for this app; asserted by tests).
  bool hoop_free = false;
};

/// Compute |LCS(s, t)| with one process per row of the DP table.
[[nodiscard]] LcsResult run_wavefront_lcs(const std::string& s,
                                          const std::string& t,
                                          const LcsOptions& options = {});

}  // namespace pardsm::apps
