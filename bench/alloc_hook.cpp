#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

namespace pardsm::benchutil {

std::uint64_t allocs_so_far() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace pardsm::benchutil

// new is malloc-backed so the matching delete frees with std::free; GCC
// cannot see the pairing across the replaced global operators and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop
