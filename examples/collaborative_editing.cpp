// Collaborative editing — the large-scale scenario motivating §3.3.
//
// "Shared memory is a powerful abstraction in large-scale systems spanning
// geographically distant sites; these environments are naturally
// appropriate for distributed applications supporting collaboration."
//
// A document of S sections is edited by S authors; author i owns section
// i and also reads/annotates the two adjacent sections (an open-chain
// share graph — hoop-free).  A handful of "reviewers" additionally watch
// disjoint section ranges.  Each author repeatedly: reads its
// neighbourhood, then commits a new revision of its own section.
//
// The example runs the same edit workload under a causal protocol that is
// sound for unknown distributions (metadata goes everywhere) and under
// the hoop-aware causal and PRAM protocols, and prints the §3.3 ledger:
// who had to know about what, and at what byte cost.
//
//   $ ./examples/collaborative_editing

#include <iostream>

#include "core/analysis.h"
#include "mcs/driver.h"
#include "sharegraph/hoops.h"

namespace {

using namespace pardsm;

/// Authors 0..S-1 own sections 0..S-1; reviewer processes watch ranges.
graph::Distribution document(std::size_t sections, std::size_t reviewers) {
  graph::Distribution d;
  d.name = "document-s" + std::to_string(sections) + "-r" +
           std::to_string(reviewers);
  d.var_count = sections;
  d.per_process.resize(sections + reviewers);
  for (std::size_t a = 0; a < sections; ++a) {
    if (a > 0) d.per_process[a].push_back(static_cast<VarId>(a - 1));
    d.per_process[a].push_back(static_cast<VarId>(a));
    if (a + 1 < sections) d.per_process[a].push_back(static_cast<VarId>(a + 1));
  }
  // Reviewers watch disjoint ranges.
  for (std::size_t r = 0; r < reviewers; ++r) {
    const std::size_t lo = r * sections / reviewers;
    const std::size_t hi = (r + 1) * sections / reviewers;
    for (std::size_t s = lo; s < hi; ++s) {
      d.per_process[sections + r].push_back(static_cast<VarId>(s));
    }
  }
  return d;
}

/// Edit workload: authors alternate "read neighbourhood, write own
/// section (new revision id)"; reviewers only read.
std::vector<mcs::Script> edit_workload(const graph::Distribution& d,
                                       std::size_t sections,
                                       std::size_t rounds) {
  std::vector<mcs::Script> scripts(d.process_count());
  Value revision = 1;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t p = 0; p < d.process_count(); ++p) {
      for (VarId x : d.per_process[p]) {
        scripts[p].push_back(mcs::ScriptOp::read(x, millis(2)));
      }
      if (p < sections) {
        scripts[p].push_back(
            mcs::ScriptOp::write(static_cast<VarId>(p), revision++));
      }
    }
  }
  return scripts;
}

}  // namespace

int main() {
  const std::size_t sections = 8, reviewers = 2;
  const auto dist = document(sections, reviewers);
  const auto scripts = edit_workload(dist, sections, 3);

  const graph::ShareGraph sg(dist);
  const auto summary = graph::summarize_relevance(sg);
  std::cout << "document: " << sections << " sections, "
            << sections + reviewers << " participants; Σ|C(x)|="
            << summary.total_replicas << ", Σ|R(x)|="
            << summary.total_relevant << " (vars with hoops: "
            << summary.vars_with_hoops << ")\n\n";

  for (auto kind : {mcs::ProtocolKind::kCausalPartialNaive,
                    mcs::ProtocolKind::kCausalPartialAdHoc,
                    mcs::ProtocolKind::kPramPartial}) {
    mcs::RunOptions options;
    options.latency = std::make_unique<UniformLatency>(millis(5), millis(40));
    const auto run =
        mcs::run_workload(kind, dist, scripts, std::move(options));
    const auto report =
        core::analyze_run(dist, run.observed_relevant, run.total_traffic);
    std::size_t exposure = 0;
    for (const auto& vr : report.per_var) exposure += vr.observed.size();
    std::cout << mcs::to_string(kind) << ":\n  msgs="
              << run.total_traffic.msgs_sent
              << "  control-bytes=" << run.total_traffic.control_bytes_sent
              << "  Σ|exposed|=" << exposure
              << "  efficient=" << (report.efficient() ? "yes" : "no")
              << '\n';
  }
  std::cout << "\n(expected: reviewers make the share graph hoop-rich, so "
               "the ad-hoc causal\n protocol still informs bystanders; "
               "PRAM keeps each section's updates between\n its author, "
               "the neighbours and the watching reviewer)\n";
  return 0;
}
