#include "simnet/wire.h"

#include <array>
#include <mutex>

namespace pardsm::wire {

namespace {

/// Decoder table.  Registration happens during static initialization of
/// the protocol translation units (single-threaded), lookups happen on
/// socket reader threads — a plain array with no lock is safe because the
/// table is write-once-before-main.
constexpr std::size_t kMaxWireType = 128;

std::array<DecodeFn, kMaxWireType>& table() {
  static std::array<DecodeFn, kMaxWireType> t{};
  return t;
}

}  // namespace

void register_decoder(std::uint32_t type, DecodeFn fn) {
  PARDSM_CHECK(type > 0 && type < kMaxWireType, "wire: tag out of range");
  PARDSM_CHECK(fn != nullptr, "wire: null decoder");
  PARDSM_CHECK(table()[type] == nullptr, "wire: duplicate decoder tag");
  table()[type] = fn;
}

void encode_body(WireWriter& w, const MessageBody& body) {
  const std::uint32_t type = body.wire_type();
  PARDSM_CHECK(type != 0,
               "wire: body has no codec (wire_type 0) — this message kind "
               "cannot cross a socket; add a codec where the body is defined");
  w.u32(type);
  body.wire_encode(w);
}

BodyRef decode_body(WireReader& r, BodyArena& arena) {
  const std::uint32_t type = r.u32();
  PARDSM_CHECK(type < kMaxWireType && table()[type] != nullptr,
               "wire: unknown body tag in frame");
  return table()[type](r, arena);
}

void encode_meta(WireWriter& w, const MessageMeta& meta) {
  w.str(meta.kind.name());
  w.u64(meta.control_bytes);
  w.u64(meta.payload_bytes);
  w.boolean(meta.urgent);
  w.u16(static_cast<std::uint16_t>(meta.vars_mentioned.size()));
  for (VarId x : meta.vars_mentioned) w.i32(x);
}

MessageMeta decode_meta(WireReader& r) {
  MessageMeta meta;
  meta.kind = KindId(r.str());
  meta.control_bytes = r.u64();
  meta.payload_bytes = r.u64();
  meta.urgent = r.boolean();
  const std::size_t vars = r.u16();
  for (std::size_t i = 0; i < vars; ++i) meta.vars_mentioned.push_back(r.i32());
  return meta;
}

}  // namespace pardsm::wire
