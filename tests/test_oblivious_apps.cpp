// The §5 "power of PRAM" claims: matrix product, dynamic programming and
// asynchronous fixed-point iteration run correctly on weak memories with
// partial replication.

#include <gtest/gtest.h>

#include "apps/async_jacobi.h"
#include "apps/matrix_product.h"
#include "apps/wavefront_lcs.h"

namespace pardsm::apps {
namespace {

// ------------------------------------------------------------ matrix product
TEST(MatrixProduct, ReferenceOracle) {
  const Matrix a = {{1, 2}, {3, 4}};
  const Matrix b = {{5, 6}, {7, 8}};
  EXPECT_EQ(multiply_reference(a, b), (Matrix{{19, 22}, {43, 50}}));
}

TEST(MatrixProduct, DistributedOnPramMatchesReference) {
  const auto a = random_matrix(6, 9, 1);
  const auto b = random_matrix(6, 9, 2);
  const auto result = run_matrix_product(a, b, /*processes=*/3);
  EXPECT_TRUE(result.matches_reference);
}

TEST(MatrixProduct, UnevenRowBlocks) {
  const auto a = random_matrix(7, 5, 3);
  const auto b = random_matrix(7, 5, 4);
  const auto result = run_matrix_product(a, b, /*processes=*/3);
  EXPECT_TRUE(result.matches_reference);
}

TEST(MatrixProduct, OneProcessPerRow) {
  const auto a = random_matrix(5, 4, 5);
  const auto b = random_matrix(5, 4, 6);
  const auto result = run_matrix_product(a, b, /*processes=*/5);
  EXPECT_TRUE(result.matches_reference);
}

TEST(MatrixProduct, WorksOnCausalProtocolsToo) {
  const auto a = random_matrix(4, 4, 7);
  const auto b = random_matrix(4, 4, 8);
  MatrixProductOptions options;
  options.protocol = mcs::ProtocolKind::kCausalPartialNaive;
  const auto result = run_matrix_product(a, b, 2, options);
  EXPECT_TRUE(result.matches_reference);
}

// ------------------------------------------------------------------- LCS
TEST(WavefrontLcs, ReferenceOracle) {
  EXPECT_EQ(lcs_reference("ABCBDAB", "BDCABA"), 4u);
  EXPECT_EQ(lcs_reference("AAAA", "AA"), 2u);
  EXPECT_EQ(lcs_reference("ABC", "XYZ"), 0u);
}

TEST(WavefrontLcs, DistributedMatchesReference) {
  const auto result = run_wavefront_lcs("ABCBDAB", "BDCABA");
  EXPECT_TRUE(result.matches_reference);
  EXPECT_EQ(result.length, 4u);
}

TEST(WavefrontLcs, DistributionIsHoopFree) {
  // The wavefront chain is the hoop-free contrast case: partial
  // replication is efficient here even for causal consistency.
  const auto result = run_wavefront_lcs("GATTACA", "TACGATC");
  EXPECT_TRUE(result.hoop_free);
  EXPECT_TRUE(result.matches_reference);
}

TEST(WavefrontLcs, LongerStrings) {
  const std::string s = "THEQUICKBROWNFOX";
  const std::string t = "JUMPSOVERTHELAZYDOG";
  const auto result = run_wavefront_lcs(s, t);
  EXPECT_TRUE(result.matches_reference);
}

// ----------------------------------------------------------------- Jacobi
TEST(AsyncJacobi, ReferenceConverges) {
  const auto p = JacobiProblem::contraction(6, 5);
  const auto x = jacobi_reference(p);
  // Fixed point: x = Ax + b within one ulp per component.
  const auto again = jacobi_reference(p);
  EXPECT_EQ(x, again);
}

TEST(AsyncJacobi, ConvergesOnSlowMemory) {
  const auto p = JacobiProblem::contraction(6, 7);
  JacobiOptions options;
  options.protocol = mcs::ProtocolKind::kSlowPartial;
  const auto result = run_async_jacobi(p, options);
  EXPECT_TRUE(result.converged)
      << "max error (fixed-point): " << result.max_abs_error;
}

TEST(AsyncJacobi, ConvergesOnPramToo) {
  const auto p = JacobiProblem::contraction(5, 11);
  JacobiOptions options;
  options.protocol = mcs::ProtocolKind::kPramPartial;
  const auto result = run_async_jacobi(p, options);
  EXPECT_TRUE(result.converged);
}

TEST(AsyncJacobi, DifferentSeedsDifferentProblemsAllConverge) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto p = JacobiProblem::contraction(8, seed);
    JacobiOptions options;
    options.sim_seed = seed;
    const auto result = run_async_jacobi(p, options);
    EXPECT_TRUE(result.converged) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pardsm::apps
