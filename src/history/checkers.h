// Consistency-criterion checkers.
//
// Each checker decides whether a history is admitted by a memory model:
//
//   Sequential       one serialization of ALL of O_H respecting 7->i [11]
//   Causal           per process i: serialization of H_{i+w} resp. 7->co [3]
//   LazyCausal       ... respecting 7->lco (Definition 7)
//   LazySemiCausal   ... respecting 7->lsc (Definition 10)
//   Pram             ... respecting 7->pram (Definition 12) [13]
//   Slow             ... respecting the slow relation [16]
//
// The checkers are exact up to the serialization-search budget; a verdict
// of kUnknown is reported rather than guessed (never observed in this
// repository's test corpus).
//
// The criterion lattice used by the property tests ("a history admitted by
// a stronger model is admitted by every weaker one"):
//
//     Sequential → Causal → LazyCausal → LazySemiCausal
//                        ↘ Pram → Slow
#pragma once

#include <string>
#include <vector>

#include "history/orders.h"
#include "history/serialization.h"

namespace pardsm::hist {

/// The consistency criteria treated in the paper, plus cache consistency
/// (Goodman's per-variable sequential consistency), which the repository's
/// open-question extension protocols target.  kCache is incomparable to
/// kPram and kCausal; in the lattice it only implies kSlow.
enum class Criterion {
  kSequential,
  kCausal,
  kLazyCausal,
  kLazySemiCausal,
  kPram,
  kSlow,
  kCache,
};

/// All criteria, strongest first.
[[nodiscard]] const std::vector<Criterion>& all_criteria();

/// Human-readable name ("causal", "PRAM", ...).
[[nodiscard]] const char* to_string(Criterion c);

/// True if every history admitted by `stronger` is admitted by `weaker`
/// (reflexive; transitive over the lattice above).
[[nodiscard]] bool implies(Criterion stronger, Criterion weaker);

/// Options for checking.
struct CheckOptions {
  LazyMode lazy_mode = LazyMode::kPaperConsistent;
  SearchOptions search;
};

/// Verdict for one process's required serialization.
struct ProcessVerdict {
  ProcessId proc = kNoProcess;
  SearchVerdict verdict = SearchVerdict::kUnknown;
  std::vector<OpIndex> witness;  ///< serialization when found
};

/// Verdict for a whole history under one criterion.
struct CheckResult {
  bool consistent = false;   ///< all required serializations exist
  bool definitive = true;    ///< false if any sub-search hit its budget
  std::vector<ProcessVerdict> per_process;

  /// First failing process, or kNoProcess.
  [[nodiscard]] ProcessId first_violation() const {
    for (const auto& pv : per_process) {
      if (pv.verdict == SearchVerdict::kNotSerializable) return pv.proc;
    }
    return kNoProcess;
  }
};

/// Decide whether `h` satisfies criterion `c`.
[[nodiscard]] CheckResult check_history(const History& h, Criterion c,
                                        const CheckOptions& options = {});

/// The constraint relation a criterion imposes (over all ops of h).
[[nodiscard]] Relation criterion_relation(const History& h, Criterion c,
                                          LazyMode mode);

/// Classify a history under every criterion (strongest first); handy for
/// the consistency-explorer example and the Fig 4–6 benches.
struct Classification {
  std::vector<std::pair<Criterion, bool>> admitted;
  [[nodiscard]] std::string to_string() const;
};
[[nodiscard]] Classification classify(const History& h,
                                      const CheckOptions& options = {});

}  // namespace pardsm::hist
