// Workload drivers: the classic entry points over the unified engine.
//
// Script generation (make_random_scripts / make_single_writer_scripts)
// plus the three historical run functions.  All three are thin wrappers
// over mcs::run (engine.h) — they fill in an EngineConfig and forward, so
// every bench, test and example executes through the same code path.
// Benches that sweep transport parameters (batching windows, stacking
// order) build an EngineConfig themselves.
#pragma once

#include "mcs/engine.h"

namespace pardsm::mcs {

/// Workload generation parameters.
struct WorkloadSpec {
  std::size_t ops_per_process = 8;
  double read_fraction = 0.5;
  std::uint64_t seed = 1;
  Duration think_time{};  ///< fixed delay between a process's operations
};

/// Random scripts over the distribution: process i only touches X_i, and
/// every written value is globally unique (exact read-from resolution).
[[nodiscard]] std::vector<Script> make_random_scripts(
    const graph::Distribution& dist, const WorkloadSpec& spec);

/// Random scripts where each variable has exactly one writer: the
/// lowest-id member of C(x).  Every process still reads any of its
/// variables.  With no write-write races, the final replica contents of a
/// run are a pure function of the workload — what the differential
/// convergence test (P6) compares across fault scenarios.
[[nodiscard]] std::vector<Script> make_single_writer_scripts(
    const graph::Distribution& dist, const WorkloadSpec& spec);

/// Options for run_workload / run_scenario.
struct RunOptions {
  std::uint64_t sim_seed = 1;
  ChannelOptions channel;
  std::unique_ptr<LatencyModel> latency;  ///< null = constant 1ms
  /// ARQ configuration for scenario runs routed through ReliableTransport
  /// (ignored by run_workload; see kEngineReliableDefaults).
  ReliableOptions reliable = kEngineReliableDefaults;
};

/// Execute `scripts` against a fresh system of `kind` over `dist` on the
/// deterministic simulator; returns the recorded history and traffic.
/// Deliberately raw even when the caller's ChannelOptions drop or
/// duplicate: the fault-injection tests exercise protocol *safety* on an
/// unrepaired channel, where lost completions are expected behaviour.
[[nodiscard]] RunResult run_workload(ProtocolKind kind,
                                     const graph::Distribution& dist,
                                     const std::vector<Script>& scripts,
                                     RunOptions options = {});

/// Execute `scripts` under a scripted fault timeline.  Every protocol runs
/// every scenario unmodified: when any loss source exists — the timeline's
/// faults or lossy ChannelOptions — the system is routed through
/// ReliableTransport (ARQ restores the reliable FIFO channels the
/// protocols assume — its retransmissions and control bytes are charged to
/// the same NetworkStats ledger), crash events pause the victim's client
/// and drop its traffic, and recovery re-syncs the victim's replicas from
/// peers.  Deterministic per (scenario, seeds).
[[nodiscard]] ScenarioRunResult run_scenario(ProtocolKind kind,
                                             const graph::Distribution& dist,
                                             const std::vector<Script>& scripts,
                                             const Scenario& scenario,
                                             RunOptions options = {});

/// run_workload on the sharded parallel simulator: same raw-channel
/// semantics (ReliabilityMode::kNever), executed by `threads` worker
/// threads over share-graph-derived shards.  Deterministic per (config,
/// seed) and — unlike the thread runtime — independent of the thread
/// count itself; the differential suite pins that.
[[nodiscard]] RunResult run_workload_parallel(
    ProtocolKind kind, const graph::Distribution& dist,
    const std::vector<Script>& scripts, unsigned threads,
    RunOptions options = {});

/// run_scenario on the sharded parallel simulator: fault timelines become
/// stop-the-world events between barrier windows, ARQ rides on top
/// unchanged.  Deterministic per (scenario, seeds) at any thread count.
[[nodiscard]] ScenarioRunResult run_scenario_parallel(
    ProtocolKind kind, const graph::Distribution& dist,
    const std::vector<Script>& scripts, const Scenario& scenario,
    unsigned threads, RunOptions options = {});

/// Execute the same shape of run on the std::thread runtime (one OS thread
/// per MCS process, genuine preemptive parallelism).  Script think-times
/// are ignored; executions are non-deterministic by design — the property
/// tests assert that consistency holds regardless of interleaving.
/// `quiesce_timeout` bounds the wait for the system to drain.
[[nodiscard]] RunResult run_workload_threaded(
    ProtocolKind kind, const graph::Distribution& dist,
    const std::vector<Script>& scripts,
    std::chrono::milliseconds quiesce_timeout = std::chrono::milliseconds(
        10000));

}  // namespace pardsm::mcs
