// Causal consistency with partial replication — distribution-aware
// ("ad-hoc", §3.3 of the paper).
//
// When the variable distribution is known a priori, Theorem 1 pins exactly
// who must learn about writes on x: the clique C(x) plus every process on
// an x-hoop.  This protocol routes metadata accordingly:
//
//   * value updates  UPDATE(x,v)  →  C(x) \ {writer}
//   * value-less     NOTIFY(x)    →  R(x) \ C(x)   (hoop members)
//   * nobody else hears about x, ever.
//
// Dependency metadata is per-variable: each process tracks, for every
// variable y with self ∈ R(y), how many writes per writer it has seen
// (`seen[y][k]`).  A message carries the sender's seen-counters restricted
// to variables both sender and receiver track; delivery waits until the
// receiver's counters dominate them.  Correctness rests precisely on
// Theorem 1: an application-level causal chain from a write on y to a
// process r outside the metadata's reach would require an intermediary
// lying on a y-hoop — but all y-hoop members are in R(y) and do receive
// the y metadata.  (tests/test_causal_adhoc.cpp validates this against the
// exact checker over a corpus of hoop-rich topologies.)
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "mcs/protocol.h"
#include "sharegraph/hoops.h"

namespace pardsm::mcs {

/// Offline share-graph analysis shared by all processes of a system.
struct StaticRelevance {
  /// relevant[x] = R(x) = C(x) ∪ hoop members (Theorem 1).
  std::vector<std::set<ProcessId>> relevant;

  /// tracks[p] = sorted variables y with p ∈ R(y).
  std::vector<std::vector<VarId>> tracks;

  /// tracks_mask[p][y] != 0 iff p ∈ R(y): O(1) membership for the
  /// per-recipient control-byte restriction on the write hot path.
  std::vector<std::vector<std::uint8_t>> tracks_mask;

  /// Build from a distribution (enumerates nothing; polynomial).
  static std::shared_ptr<const StaticRelevance> analyze(
      const graph::Distribution& dist);
};

struct AdHocMsg;
struct DepSnapshotBody;

/// One process of the hoop-routed causal protocol.
class CausalPartialAdHocProcess final : public McsProcess {
 public:
  CausalPartialAdHocProcess(ProcessId self, const graph::Distribution& dist,
                            HistoryRecorder& recorder,
                            std::shared_ptr<const StaticRelevance> analysis);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override {
    return "causal-partial-adhoc";
  }
  [[nodiscard]] bool wait_free() const override { return true; }

  /// seen[y][k]: number of writes by k on y this process has incorporated.
  [[nodiscard]] std::int64_t seen(VarId y, ProcessId k) const;

 private:
  void try_deliver();
  [[nodiscard]] bool ready(const Message& m) const;
  void deliver(const Message& m);

  /// Pool handles cached at attach() so each write is two freelist pops
  /// (one snapshot shared by the round, one message per recipient).
  BodyPool<AdHocMsg>* msg_pool_ = nullptr;
  BodyPool<DepSnapshotBody>* snap_pool_ = nullptr;
  std::shared_ptr<const StaticRelevance> analysis_;
  /// seen_[y][k]: per-writer counters, dense by VarId (an empty inner
  /// vector means y is untracked here).  Dense indexing keeps ready() —
  /// the single hottest protocol predicate — a straight array walk with
  /// no map lookups.
  std::vector<std::vector<std::int64_t>> seen_;
  std::int64_t next_write_seq_ = 0;
  std::deque<Message> buffer_;
};

}  // namespace pardsm::mcs
