// Linearizability (atomicity [12]) checking for register histories.
//
// Atomicity is the strongest criterion the paper mentions; it is defined
// over real-time operation intervals, which recorded protocol histories
// carry (Operation::invoked/responded).  By the locality property of
// linearizability, a register history is linearizable iff each variable's
// subhistory is, so the check decomposes per variable and reuses the exact
// serialization finder with the real-time precedence relation.
#pragma once

#include "history/history.h"
#include "history/serialization.h"

namespace pardsm::hist {

/// Result of a linearizability check.
struct LinearizabilityResult {
  bool linearizable = false;
  bool definitive = true;  ///< false if a per-variable search hit its budget
  /// Per-variable linearization witnesses (global op indices), var-indexed;
  /// empty vectors for variables with no operations.
  std::vector<std::vector<OpIndex>> witnesses;
};

/// Check whether `h` (with populated operation intervals) is linearizable.
/// Operations with zero-width unset intervals are treated as concurrent
/// with everything, which can only make the check more permissive.
[[nodiscard]] LinearizabilityResult check_linearizable(
    const History& h, const SearchOptions& options = {});

}  // namespace pardsm::hist
