// Lightweight invariant checking for library code.
//
// Tests use gtest assertions; library code uses PARDSM_CHECK for conditions
// that indicate a programming error by the caller or a broken internal
// invariant.  Violations throw std::logic_error so both the simulator and
// the thread runtime fail loudly and testably.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pardsm::detail {

[[noreturn]] inline void check_fail(const char* cond, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "PARDSM_CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace pardsm::detail

#define PARDSM_CHECK(cond, msg)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::pardsm::detail::check_fail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (false)

// Debug-only invariant: compiled out under NDEBUG so hot paths (release
// benches) pay nothing, active in the default and sanitizer builds where
// the test suite runs.
#ifndef NDEBUG
#define PARDSM_DCHECK(cond, msg) PARDSM_CHECK(cond, msg)
#else
#define PARDSM_DCHECK(cond, msg) \
  do {                           \
    (void)sizeof(cond);          \
  } while (false)
#endif
