// Channel behaviour: latency, FIFO ordering, loss and duplication.
//
// Network decides *when* (and whether, and how many times) each sent
// message is delivered.  It is deliberately independent of the event queue
// so channel semantics can be unit-tested in isolation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "simnet/ids.h"
#include "simnet/latency.h"
#include "simnet/rng.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// Per-channel fault and ordering knobs.
struct ChannelOptions {
  /// Deliver messages of each directed pair in send order.  PRAM and slow
  /// protocols rely on FIFO; causal protocols tolerate reordering.
  bool fifo = true;

  /// Probability that a message is silently dropped.
  double drop_probability = 0.0;

  /// Probability that a message is delivered twice.
  double duplicate_probability = 0.0;
};

/// Delivery times of one sent message: empty if dropped, two entries if
/// duplicated.  A fixed-capacity value type so planning a delivery never
/// touches the heap.
struct DeliveryPlan {
  std::array<TimePoint, 2> at{};
  std::uint8_t count = 0;

  void push(TimePoint t) { at[count++] = t; }
  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] TimePoint operator[](std::size_t i) const { return at[i]; }
  [[nodiscard]] const TimePoint* begin() const { return at.data(); }
  [[nodiscard]] const TimePoint* end() const { return at.data() + count; }
};

/// Computes delivery schedules for messages.
class Network {
 public:
  /// Build a network over `n` processes.  `latency` may be null, meaning
  /// a default 1ms constant latency.
  Network(std::size_t n, ChannelOptions options,
          std::unique_ptr<LatencyModel> latency, Rng rng);

  /// Decide the fate of one message sent at `send_time`.  FIFO clamping
  /// guarantees strictly increasing delivery times per directed pair when
  /// options.fifo is set.
  DeliveryPlan plan_delivery(ProcessId from, ProcessId to,
                             TimePoint send_time);

  [[nodiscard]] std::size_t process_count() const { return n_; }
  [[nodiscard]] const ChannelOptions& options() const { return options_; }

  /// Partition control: while a directed pair is severed, messages are
  /// dropped.  Used by fault-injection tests.
  void sever(ProcessId from, ProcessId to);
  void heal(ProcessId from, ProcessId to);
  [[nodiscard]] bool severed(ProcessId from, ProcessId to) const;

  /// Messages dropped so far (by fault injection or loss probability).
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }

 private:
  /// Flat index of the directed pair (from, to).
  [[nodiscard]] std::size_t pair(ProcessId from, ProcessId to) const {
    return static_cast<std::size_t>(from) * n_ + static_cast<std::size_t>(to);
  }

  std::size_t n_;
  ChannelOptions options_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  /// Last planned delivery time per directed pair (FIFO clamp state),
  /// dense so the per-send lookup is an indexed load, not a tree walk.
  std::vector<TimePoint> last_delivery_;
  std::vector<std::uint8_t> severed_;
  std::uint64_t dropped_ = 0;
};

}  // namespace pardsm
