#include "core/analysis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "mcs/causal_partial_adhoc.h"
#include "simnet/check.h"

namespace pardsm::core {

namespace {

bool subset(const std::set<ProcessId>& a, const std::set<ProcessId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

bool VariableReport::within_clique() const { return subset(observed, clique); }

bool VariableReport::within_relevant() const {
  return subset(observed, theorem1_relevant);
}

EfficiencyReport analyze_run(
    const graph::Distribution& dist,
    const std::vector<std::set<ProcessId>>& observed_relevance,
    const ProcessTraffic& traffic) {
  PARDSM_CHECK(observed_relevance.size() == dist.var_count,
               "one observation set per variable required");
  const graph::ShareGraph sg(dist);
  EfficiencyReport report;
  report.traffic = traffic;
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    const auto xv = static_cast<VarId>(x);
    VariableReport vr;
    vr.var = xv;
    const auto clique = sg.clique(xv);
    vr.clique.insert(clique.begin(), clique.end());
    vr.theorem1_relevant = graph::x_relevant(sg, xv);
    vr.observed = observed_relevance[x];
    if (!vr.within_clique()) ++report.vars_leaking_past_clique;
    if (!vr.within_relevant()) ++report.vars_leaking_past_relevant;
    report.per_var.push_back(std::move(vr));
  }
  return report;
}

std::string EfficiencyReport::to_table() const {
  std::ostringstream os;
  os << std::left << std::setw(6) << "var" << std::setw(8) << "|C(x)|"
     << std::setw(8) << "|R(x)|" << std::setw(10) << "observed"
     << std::setw(12) << "in-C(x)?" << "in-R(x)?\n";
  for (const auto& vr : per_var) {
    // Two-step append (not `"x" + std::to_string(...)`): avoids GCC 12's
    // -Wrestrict false positive on operator+(const char*, string&&).
    std::string var_label = "x";
    var_label += std::to_string(vr.var);
    os << std::left << std::setw(6) << var_label
       << std::setw(8) << vr.clique.size() << std::setw(8)
       << vr.theorem1_relevant.size() << std::setw(10) << vr.observed.size()
       << std::setw(12) << (vr.within_clique() ? "yes" : "NO")
       << (vr.within_relevant() ? "yes" : "NO") << '\n';
  }
  os << "leaking past C(x): " << vars_leaking_past_clique << "/"
     << per_var.size() << "; past R(x): " << vars_leaking_past_relevant
     << "/" << per_var.size() << '\n';
  return os.str();
}

ControlModel predict(mcs::ProtocolKind kind, const graph::Distribution& dist) {
  const std::size_t n = dist.process_count();
  const std::size_t m = dist.var_count;
  PARDSM_CHECK(m > 0, "predict: empty distribution");
  const graph::ShareGraph sg(dist);

  double total_msgs = 0;
  double total_bytes = 0;
  double total_outside = 0;
  double total_writes = 0;  // one per (x, writer) pair, uniform load

  std::shared_ptr<const mcs::StaticRelevance> analysis;
  if (kind == mcs::ProtocolKind::kCausalPartialAdHoc) {
    analysis = mcs::StaticRelevance::analyze(dist);
  }

  for (std::size_t x = 0; x < m; ++x) {
    const auto xv = static_cast<VarId>(x);
    const auto& clique = sg.clique(xv);
    if (clique.empty()) continue;
    const std::set<ProcessId> cset(clique.begin(), clique.end());

    for (ProcessId w : clique) {
      total_writes += 1;
      switch (kind) {
        case mcs::ProtocolKind::kCausalFull:
        case mcs::ProtocolKind::kCausalPartialNaive: {
          total_msgs += static_cast<double>(n - 1);
          total_bytes += static_cast<double>(n - 1) *
                         static_cast<double>(8 * n + 24);
          total_outside += static_cast<double>(n - cset.size());
          break;
        }
        case mcs::ProtocolKind::kCausalPartialAdHoc: {
          const auto& relevant = analysis->relevant[x];
          const auto& tw = analysis->tracks[static_cast<std::size_t>(w)];
          for (ProcessId q : relevant) {
            if (q == w) continue;
            const auto& tq = analysis->tracks[static_cast<std::size_t>(q)];
            std::size_t shared = 0;
            for (VarId y : tw) {
              if (std::binary_search(tq.begin(), tq.end(), y)) ++shared;
            }
            total_msgs += 1;
            total_bytes += 32.0 + static_cast<double>(shared) *
                                      static_cast<double>(8 + 8 * n);
            if (!cset.count(q)) total_outside += 1;
          }
          break;
        }
        case mcs::ProtocolKind::kPramPartial: {
          total_msgs += static_cast<double>(cset.size() - 1);
          total_bytes += static_cast<double>(cset.size() - 1) * 24.0;
          break;
        }
        case mcs::ProtocolKind::kSlowPartial: {
          total_msgs += static_cast<double>(cset.size() - 1);
          total_bytes += static_cast<double>(cset.size() - 1) * 32.0;
          break;
        }
        case mcs::ProtocolKind::kSequencerSC: {
          const bool at_sequencer = (w == 0);
          const double commits =
              static_cast<double>(cset.size()) - (cset.count(0) ? 1.0 : 0.0);
          if (at_sequencer) {
            total_msgs += commits;
            total_bytes += commits * 40.0;
          } else {
            total_msgs += 1.0 + commits;
            total_bytes += 24.0 + commits * 40.0;
            if (!cset.count(0)) total_outside += 1;
          }
          break;
        }
        case mcs::ProtocolKind::kAtomicHome: {
          const ProcessId home = clique.front();
          if (w == home) {
            total_msgs += static_cast<double>(cset.size() - 1);
            total_bytes += static_cast<double>(cset.size() - 1) * 24.0;
          } else {
            // request + ack + refresh to the other replicas
            total_msgs += 2.0 + static_cast<double>(cset.size() - 2);
            total_bytes +=
                32.0 + 16.0 + static_cast<double>(cset.size() - 2) * 24.0;
          }
          break;
        }
        case mcs::ProtocolKind::kCachePartial:
        case mcs::ProtocolKind::kProcessorPartial: {
          // request to the home (unless the writer is the home) + a commit
          // to every other C(x) member.  Processor consistency adds one
          // (receiver, count) pair per C(x) member to both messages.
          const ProcessId home = clique.front();
          const double pri =
              kind == mcs::ProtocolKind::kProcessorPartial
                  ? 16.0 * static_cast<double>(cset.size())
                  : 0.0;
          const double commits = static_cast<double>(cset.size() - 1);
          total_msgs += commits;
          total_bytes += commits * (48.0 + pri);
          if (w != home) {
            total_msgs += 1.0;
            total_bytes += 32.0 + pri;
          }
          break;
        }
      }
    }
  }

  ControlModel model;
  if (total_writes > 0) {
    model.messages_per_write = total_msgs / total_writes;
    model.control_bytes_per_write = total_bytes / total_writes;
    model.recipients_outside_clique = total_outside / total_writes;
  }
  return model;
}

}  // namespace pardsm::core
